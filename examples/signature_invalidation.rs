//! The dynamic-signature extension in action (the paper's §9 future work):
//! compare static-region self-invalidation against DeNovoND-style
//! signatures on a read-mostly workload.
//!
//! ```text
//! cargo run --release --example signature_invalidation
//! ```

use denovosync_suite::apps::{all_apps, build_app};
use denovosync_suite::core::config::{DataInvalidation, Protocol, SystemConfig};
use dvs_bench::run_workload;

fn main() {
    println!(
        "{:14} {:>12} {:>10} {:>14} {:>12}",
        "app", "mode", "cycles", "data-rd-miss", "crossings"
    );
    for name in ["fluidanimate", "water", "barnes"] {
        let spec = all_apps()
            .into_iter()
            .find(|a| a.name == name)
            .expect("app");
        let threads = 16;
        let w = build_app(&spec, threads);
        for mode in [
            DataInvalidation::StaticRegions,
            DataInvalidation::Signatures,
        ] {
            let mut cfg = SystemConfig::paper(threads, Protocol::DeNovoSync);
            cfg.data_inv = mode;
            let stats = run_workload(cfg, &w).expect("run verifies");
            println!(
                "{:14} {:>12} {:>10} {:>14} {:>12}",
                name,
                if mode == DataInvalidation::StaticRegions {
                    "static"
                } else {
                    "signature"
                },
                stats.cycles,
                stats.cache.data_read_misses,
                stats.traffic.total()
            );
        }
        println!();
    }
    println!(
        "Static regions invalidate every Valid word of the protected region at\n\
         each acquire; the signature mode invalidates only words other cores\n\
         actually wrote since this core's last acquire, so read-mostly critical\n\
         sections keep their cached data (fewer data-read misses, less refetch\n\
         traffic). This is the paper's closing future-work item, built on\n\
         DeNovoND's idea."
    );
}
