//! The paper's Figure 2, live: trace the Michael–Scott queue's
//! synchronization accesses under MESI, DeNovoSync0, and DeNovoSync.
//!
//! DeNovoSync0 turns the read-mostly equality checks into registration
//! misses (R-R and W-R "false races"); DeNovoSync inserts hardware-backoff
//! stalls instead of some of those misses. MESI spins on cached copies.
//!
//! ```text
//! cargo run --release --example ms_queue_trace
//! ```

use dvs_bench::trace::fig2_trace;

fn main() {
    fig2_trace();
}
