//! Write your own synchronization kernel against the public API: a ticket
//! lock (FAI to take a ticket, spin until `now_serving` reaches it), which
//! is not one of the paper's 24 kernels.
//!
//! Demonstrates the full workflow: layout → assembler DSL → functional
//! validation on the SC reference machine → timed runs on all protocols.
//!
//! ```text
//! cargo run --release --example custom_kernel
//! ```

use denovosync_suite::core::config::{Protocol, SystemConfig};
use denovosync_suite::core::System;
use dvs_mem::{Addr, LayoutBuilder};
use dvs_vm::isa::{Cond, Reg};
use dvs_vm::reference::RefMachine;
use dvs_vm::{Asm, Program};

const THREADS: usize = 9;
const ITERS: u64 = 15;

fn ticket_lock_program(next_ticket: Addr, now_serving: Addr, counter: Addr) -> Program {
    let mut a = Asm::new("ticket-lock");
    let (one, iter, iters) = (Reg(26), Reg(29), Reg(28));
    let (addr, ticket, tmp) = (Reg(1), Reg(2), Reg(3));
    a.movi(one, 1).movi(iter, 0).movi(iters, ITERS);
    let top = a.here();
    // acquire: my ticket = FAI(next_ticket); spin until now_serving == it
    a.movi(addr, next_ticket.raw());
    a.fai(ticket, addr, 0, one);
    a.movi(addr, now_serving.raw());
    a.spin_until(tmp, addr, 0, Cond::Eq, ticket);
    // critical section: counter += 1 (plain data accesses)
    a.movi(addr, counter.raw());
    a.load(tmp, addr, 0);
    a.addi(tmp, tmp, 1);
    a.store(tmp, addr, 0);
    // release: now_serving = ticket + 1
    a.fence();
    a.addi(tmp, ticket, 1);
    a.movi(addr, now_serving.raw());
    a.stores(tmp, addr, 0);
    a.addi(iter, iter, 1);
    a.blt(iter, iters, top);
    a.halt();
    a.build()
}

fn main() {
    let mut lb = LayoutBuilder::new();
    let sync = lb.region("sync");
    let data = lb.region("data");
    let next_ticket = lb.sync_var("next_ticket", sync, true);
    let now_serving = lb.sync_var("now_serving", sync, true);
    let counter = lb.segment("counter", 8, data);
    let layout = lb.build();
    let expected = THREADS as u64 * ITERS;

    // Functional validation on the untimed SC reference machine first.
    let programs: Vec<Program> = (0..THREADS)
        .map(|_| ticket_lock_program(next_ticket, now_serving, counter))
        .collect();
    let mut reference = RefMachine::new(programs.clone());
    reference.run(10_000_000).expect("reference run");
    assert_eq!(reference.memory().read_word(counter.word()), expected);
    println!("reference machine: counter = {expected} as expected\n");

    // Timed runs. (Ticket locks are FIFO, so DeNovo's read registration of
    // now_serving ping-pongs hard — compare with the paper's array lock,
    // which gives each waiter a private location.)
    println!("{:6} {:>12} {:>16}", "proto", "cycles", "flit-crossings");
    for proto in Protocol::ALL {
        let cfg = SystemConfig::small(THREADS, proto);
        let mut sys = System::new(cfg, layout.clone(), programs.clone());
        let stats = sys.run().expect("timed run");
        assert_eq!(sys.read_word(counter), expected);
        println!(
            "{:6} {:>12} {:>16}",
            proto.label(),
            stats.cycles,
            stats.traffic.total()
        );
    }
}
