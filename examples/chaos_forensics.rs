//! Chaos + forensics in action: run a kernel on every protocol under
//! deterministic fault injection with the runtime invariant checkers on,
//! then re-run with an artificially tight cycle budget to show the stall
//! forensics report a hung run produces.
//!
//! ```text
//! cargo run --release --example chaos_forensics
//! ```

use denovosync_suite::core::chaos::FaultPlan;
use denovosync_suite::core::config::{Protocol, SystemConfig};
use dvs_bench::run_kernel;
use dvs_kernels::{KernelId, KernelParams, LockKind, LockedStruct};

fn chaos_cfg(proto: Protocol, seed: u64) -> SystemConfig {
    let mut cfg = SystemConfig::small(4, proto);
    cfg.check_invariants = true;
    cfg.fault_plan = Some(FaultPlan::from_seed(seed));
    cfg
}

fn main() {
    let kernel = KernelId::Locked(LockedStruct::Counter, LockKind::Tatas);
    let params = KernelParams::smoke(4);

    println!(
        "== {} under chaos (seed 42, invariant checking on) ==",
        kernel.name()
    );
    for proto in Protocol::ALL {
        let stats = run_kernel(kernel, chaos_cfg(proto, 42), &params).expect("chaos run");
        println!(
            "{:12} {:>8} cycles  {:>6} messages",
            proto.label(),
            stats.cycles,
            stats.traffic.total()
        );
    }

    println!();
    println!("== induced stall: cycle budget far below what the kernel needs ==");
    let mut cfg = chaos_cfg(Protocol::DeNovoSync, 42);
    cfg.max_cycles = 300;
    match run_kernel(kernel, cfg, &params) {
        Err(e) => println!("{e}"),
        Ok(_) => println!("unexpectedly finished within 300 cycles"),
    }
}
