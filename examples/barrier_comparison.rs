//! Compare the three barrier shapes (binary tree, 4-ary tree, centralized)
//! across protocols — §6.3's analysis in action: tree barriers behave like
//! single-producer/single-consumer pairs and are protocol-agnostic, while
//! the centralized barrier's many-readers-one-writer sense word is exactly
//! the pattern DeNovo's read registration dislikes.
//!
//! ```text
//! cargo run --release --example barrier_comparison
//! ```

use denovosync_suite::core::config::{Protocol, SystemConfig};
use dvs_bench::run_kernel;
use dvs_kernels::{BarrierKind, KernelId, KernelParams};

fn main() {
    let cores = 16;
    println!("{cores}-core barrier kernels (20 iterations, 2 barrier episodes each):\n");
    println!(
        "{:10} {:6} {:>12} {:>16} {:>14}",
        "barrier", "proto", "cycles", "flit-crossings", "sync-misses"
    );
    for kind in [BarrierKind::Tree, BarrierKind::Nary, BarrierKind::Central] {
        let kernel = KernelId::Barrier(kind, false);
        for proto in Protocol::ALL {
            let mut params = KernelParams::paper(kernel, cores);
            params.iters = 20;
            let cfg = SystemConfig::paper(cores, proto);
            let stats = run_kernel(kernel, cfg, &params).expect("barrier kernel runs");
            println!(
                "{:10} {:6} {:>12} {:>16} {:>14}",
                kernel.name(),
                proto.label(),
                stats.cycles,
                stats.traffic.total(),
                stats.cache.sync_read_misses,
            );
        }
        println!();
    }
    println!(
        "Expected shape (paper §7.1.4): all protocols comparable on the tree \
         barriers; the centralized barrier costs DeNovo extra traffic from \
         serialized read registrations of the shared sense word."
    );
}
