//! Quickstart: build a tiny workload with the assembler DSL, run it on all
//! three protocols, and compare cycles and traffic.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use denovosync_suite::core::config::{Protocol, SystemConfig};
use denovosync_suite::core::System;
use dvs_mem::LayoutBuilder;
use dvs_stats::TrafficClass;
use dvs_vm::isa::Reg;
use dvs_vm::Asm;

fn main() {
    // 1. Lay out memory: one line-padded synchronization counter.
    let mut lb = LayoutBuilder::new();
    let sync = lb.region("sync");
    let counter = lb.sync_var("counter", sync, true);
    let layout = lb.build();

    // 2. Write the per-thread program: 50 atomic increments.
    let program = || {
        let mut a = Asm::new("quickstart");
        let (addr, one, old) = (Reg(1), Reg(2), Reg(3));
        a.movi(addr, counter.raw());
        a.movi(one, 1);
        for _ in 0..50 {
            a.fai(old, addr, 0, one);
        }
        a.halt();
        a.build()
    };

    // 3. Run the same program on MESI, DeNovoSync0, and DeNovoSync.
    println!("16 cores, 800 atomic increments of one contended counter:\n");
    println!(
        "{:12} {:>12} {:>16} {:>10} {:>12}",
        "protocol", "cycles", "flit-crossings", "inv-flits", "sync-flits"
    );
    for proto in Protocol::ALL {
        let cfg = SystemConfig::paper(16, proto);
        let mut sys = System::new(
            cfg,
            layout.clone(),
            (0..16).map(|_| program()).collect::<Vec<_>>(),
        );
        let stats = sys.run().expect("simulation completes");
        assert_eq!(sys.read_word(counter), 16 * 50, "every increment must land");
        println!(
            "{:12} {:>12} {:>16} {:>10} {:>12}",
            proto.label(),
            stats.cycles,
            stats.traffic.total(),
            stats.traffic.get(TrafficClass::Invalidation),
            stats.traffic.get(TrafficClass::Sync),
        );
    }
    println!(
        "\nTwo things to notice:\n\
         * DeNovo has zero invalidation traffic — writer-initiated invalidations\n\
           do not exist in the protocol; ownership moves point-to-point (SYNCH).\n\
         * With back-to-back RMWs and no think time, MESI's *blocking* directory\n\
           lets each core hog the line in M and burst its increments before the\n\
           forwarded request arrives, while DeNovo's *non-blocking* registry\n\
           re-points the word on every racing request, so ownership ping-pongs\n\
           per increment. Spaced out realistically (the paper inserts thousands\n\
           of cycles of work between increments — see the FAI-counter kernel in\n\
           `cargo bench --bench fig5_nonblocking`), the protocols converge."
    );
}
