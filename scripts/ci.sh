#!/usr/bin/env bash
# Full CI gate: formatting, lints, tier-1 verification, and the chaos matrix.
# Everything runs offline against the committed Cargo.lock — no network.
#
# Usage: ci.sh [--stage <name>]
#   With no arguments every stage runs in order; --stage runs exactly one,
#   for local iteration (e.g. `scripts/ci.sh --stage gcs`).
set -euo pipefail
cd "$(dirname "$0")/.."

STAGES="fmt lint tier1 chaos check check-scale campaign gcs step telemetry fuzz serve trace"

ONLY=""
while [ $# -gt 0 ]; do
  case "$1" in
    --stage)
      ONLY=${2:?--stage needs a name}
      shift 2
      ;;
    *)
      echo "usage: $0 [--stage <name>]   (stages: $STAGES)" >&2
      exit 2
      ;;
  esac
done

# Temp dirs registered by stages, cleaned on exit (paths are space-free).
CLEANUP=""
# shellcheck disable=SC2064
trap 'rm -rf $CLEANUP' EXIT

stage_fmt() {
  echo "== cargo fmt --check =="
  cargo fmt --check
}

stage_lint() {
  echo "== cargo clippy (deny warnings) =="
  cargo clippy --workspace --all-targets --offline -- -D warnings
}

stage_tier1() {
  echo "== tier-1: release build + full test suite =="
  cargo build --release --offline
  cargo build --release --offline --examples
  cargo test -q --offline
}

stage_chaos() {
  echo "== chaos matrix (fixed fault seeds, invariant checking on) =="
  cargo test -q --offline --test chaos
}

stage_check() {
  echo "== model-checker smoke (bounded-depth, 2 litmus x 4 protocols + 2 mutations) =="
  cargo run --release --offline -p dvs-check --example smoke
}

stage_check_scale() {
  echo "== check-scale smoke (deep-exploration floors: throughput, spill RSS, swarm, resume) =="
  cargo build --release --offline -p dvs-check --bin dvs-check
  CHECK=./target/release/dvs-check
  # Pull one key=value token out of a dvs-check report line.
  ck_tok() { echo "$1" | tr ' ' '\n' | sed -n "s/^$2=//p" | tail -1; }

  # Throughput floor: a 100k-expansion exact exploration of tatas8 must
  # sustain >= 2000 unique states/s (a single release core does ~6k; the
  # floor only catches order-of-magnitude regressions on slow CI hosts).
  out=$("$CHECK" explore --litmus tatas8 --proto M --max-states 100000); echo "$out"
  rate=$(ck_tok "$out" states_per_s)
  [ "$rate" -ge 2000 ] || { echo "states/s floor missed: $rate < 2000"; exit 1; }

  # Spill-tier RSS ceiling: a 4 MB visited budget on a ~5.6 MB working set
  # must actually page shards out, and the process high-water mark must
  # stay under 64 MB (the un-spilled run of the same space needs none).
  out=$("$CHECK" explore --litmus tatas8 --proto M --max-states 300000 --spill-budget 4000000); echo "$out"
  spilled=$(ck_tok "$out" spilled_entries)
  rss=$(ck_tok "$out" peak_rss)
  [ "$spilled" -gt 0 ] || { echo "spill budget never fired"; exit 1; }
  [ "$rss" -le $((64 * 1024 * 1024)) ] || { echo "spill-tier peak RSS over 64MB: $rss"; exit 1; }

  # Swarm mutation-catch: randomized probes sharing one bitstate filter
  # must find the seeded MESI mutation (exit 3 = violation found).
  out=$("$CHECK" swarm --litmus tatas --proto M --mutation mesi-skip-invalidate \
        --probes 64 --probe-depth 2000 --probe-states 20000 --seed 1) && rc=0 || rc=$?
  echo "$out"
  [ "$rc" -eq 3 ] || { echo "swarm did not catch the mutation (exit $rc)"; exit 1; }
  case "$out" in *"verdict=violated"*) ;; *) echo "swarm report lacks verdict=violated"; exit 1; esac

  # Checkpoint resume drill: kill -9 a slowed deepening run after its first
  # checkpoint lands, resume it, and demand the same verdict and cumulative
  # unique-state count as an uninterrupted invocation.
  DEEPEN="deepen --litmus tatas --proto M --start 6 --step 2 --max-depth 40"
  ref=$("$CHECK" $DEEPEN); echo "$ref"
  CDIR=$(mktemp -d)
  CLEANUP="$CLEANUP $CDIR"
  CKPT="$CDIR/deepen.ckpt"
  "$CHECK" $DEEPEN --checkpoint "$CKPT" --round-delay-ms 500 &
  victim=$!
  for _ in $(seq 1 400); do
    [ -f "$CKPT" ] && break
    kill -0 "$victim" 2>/dev/null || { echo "victim finished before the kill"; exit 1; }
    sleep 0.025
  done
  kill -9 "$victim"; wait "$victim" 2>/dev/null || true
  [ -f "$CKPT" ] || { echo "no checkpoint survived the kill"; exit 1; }
  resumed=$("$CHECK" $DEEPEN --checkpoint "$CKPT"); echo "$resumed"
  [ "$(ck_tok "$resumed" resumed)" = "true" ] || { echo "run ignored the checkpoint"; exit 1; }
  [ "$(ck_tok "$resumed" verdict)" = "$(ck_tok "$ref" verdict)" ] || { echo "resumed verdict differs"; exit 1; }
  [ "$(ck_tok "$resumed" unique)" = "$(ck_tok "$ref" unique)" ] || { echo "resumed unique-state count differs"; exit 1; }
  [ ! -f "$CKPT" ] || { echo "completed resume left its checkpoint behind"; exit 1; }
}

stage_campaign() {
  echo "== campaign smoke (reduced fig3+fig7 grid at 1/2/4 workers, digest must match) =="
  DVS_QUICK=1 DVS_WORKERS=4 cargo bench --offline -p dvs-bench --bench campaign
}

stage_gcs() {
  echo "== gcs smoke (litmus x gcs, negative controls, 4-protocol grid digest compare) =="
  # The timed litmus suite runs every litmus under Protocol::EXTENDED —
  # GCS included — stock and chaos-perturbed.
  cargo test -q --offline --test litmus
  # Fuzz corpus replay with the GCS negative controls: gcs-skip-update and
  # gcs-drop-notify must be caught and re-shrunk to their committed floors.
  cargo test -q --offline -p dvs-fuzz --test corpus -- controls
  # The 24-kernel x 4-protocol comparison grid; the bench itself asserts
  # the results digest matches a single-worker run before writing
  # BENCH_gcs.json.
  DVS_WORKERS=2 cargo bench --offline -p dvs-bench --bench gcs_compare
}

stage_step() {
  echo "== step_micro (stepping-throughput floors; see BENCH_step.json) =="
  # Perf-regression gate for the hot path: best-of-2 single-thread run of the
  # fig3 quick grid + the 500-case fuzz batch; fails below the committed
  # events/s and cases/s floors (set above the pre-refactor baseline).
  DVS_STEP_ITERS=2 cargo bench --offline -p dvs-bench --bench step_micro
}

stage_telemetry() {
  echo "== telemetry smoke (zero-perturbation + Perfetto export validation) =="
  # Captures one tatas run per protocol with a recorder sink, asserts the
  # stats/metrics match the no-telemetry baseline, validates the exported
  # Chrome trace JSON, and writes TRACE_telemetry_*.json + BENCH_telemetry.json.
  DVS_QUICK=1 cargo bench --offline -p dvs-bench --bench telemetry_timeline
  # Digest invariance across telemetry policies and worker counts.
  cargo test -q --offline -p dvs-campaign --test telemetry
}

stage_fuzz() {
  echo "== fuzz smoke (fixed seeds; fails on divergence, corpus drift, or missed controls) =="
  # Corpus replay: benign cases green with committed fingerprints, negative
  # controls caught and re-shrunk to their committed floors.
  cargo test -q --offline -p dvs-fuzz --test corpus
  # A fixed-seed stock-protocol hunt: any divergence, sick case, or panic
  # exits nonzero, and the result digest must not depend on the worker count.
  hunt() { cargo run --release --offline -p dvs-fuzz --bin dvsf -- hunt 0 60 --workers "$1"; }
  d2=$(hunt 2); echo "$d2"
  d1=$(hunt 1); echo "$d1"
  [ "${d1##*digest=}" = "${d2##*digest=}" ] || { echo "fuzz digest differs across worker counts"; exit 1; }
}

stage_serve() {
  echo "== serve smoke (crash-safe job service: kill -9 resume + warm cache) =="
  # Robustness artifact: cold + warm + corruption-repair + retry counters.
  DVS_QUICK=1 cargo bench --offline -p dvs-bench --bench serve_matrix
  # Crash drill against the real binary: SIGKILL a slowed run mid-job, resume,
  # and demand the digest match an uninterrupted run; then re-run warm and
  # demand >= 90% cache hits.
  cargo build --release --offline -p dvs-serve --bin dvs-serve
  SERVE=./target/release/dvs-serve
  SDIR=$(mktemp -d)
  CLEANUP="$CLEANUP $SDIR"
  ref=$("$SERVE" submit --dir "$SDIR/ref" --grid smoke --workers 2); echo "$ref"
  want=${ref##*digest=}
  "$SERVE" submit --dir "$SDIR/victim" --grid smoke --workers 2 --cell-delay-ms 200 &
  victim=$!
  # Kill as soon as the journal shows the first completed cell.
  for _ in $(seq 1 400); do
    grep -q '^cell ' "$SDIR/victim/journal.log" 2>/dev/null && break
    kill -0 "$victim" 2>/dev/null || { echo "victim finished before the kill"; exit 1; }
    sleep 0.025
  done
  kill -9 "$victim"; wait "$victim" 2>/dev/null || true
  resumed=$("$SERVE" resume --dir "$SDIR/victim" --workers 2); echo "$resumed"
  [ "${resumed##*digest=}" = "$want" ] || { echo "resumed digest differs from uninterrupted run"; exit 1; }
  warm=$("$SERVE" submit --dir "$SDIR/ref" --grid smoke --workers 2); echo "$warm"
  [ "${warm##*digest=}" = "$want" ] || { echo "warm digest differs"; exit 1; }
  hits=$(echo "$warm" | sed -n 's/.*hits=\([0-9]*\).*/\1/p' | tail -1)
  cells=$(echo "$warm" | sed -n 's/.*cells=\([0-9]*\).*/\1/p' | tail -1)
  [ $((hits * 10)) -ge $((cells * 9)) ] || { echo "warm hit rate below 90% ($hits/$cells)"; exit 1; }
  "$SERVE" verify-store --dir "$SDIR/ref"
  # The journal tail sees the whole story and exits once every job seals.
  "$SERVE" status --dir "$SDIR/ref" --follow --poll-ms 10 | tail -3
}

stage_trace() {
  echo "== trace smoke (record/replay across protocols + committed corpus) =="
  # Committed .dvst corpus: parse, replay on MESI/DS0/DS timed + the oracle,
  # validate every pinned final; plus format/compose/mix round-trip tests.
  cargo test -q --offline -p dvs-trace --test trace
  # Record a kernel with the dvst CLI, replay it on all three protocols, and
  # demand the pinned fingerprint is reproduced identically everywhere.
  cargo build --release --offline -p dvs-trace --bin dvst
  DVST=./target/release/dvst
  TDIR=$(mktemp -d)
  CLEANUP="$CLEANUP $TDIR"
  "$DVST" record tatas:counter --threads 4 --iters 4 -o "$TDIR/t.dvst"
  fp=""
  for proto in M DS0 DS; do
    out=$("$DVST" replay "$TDIR/t.dvst" --proto "$proto"); echo "$out"
    this=${out##*fingerprint }
    [ -z "$fp" ] && fp=$this
    [ "$this" = "$fp" ] || { echo "fingerprint differs on $proto"; exit 1; }
  done
  "$DVST" replay "$TDIR/t.dvst" --oracle --seed 9
  # Replay-vs-VM throughput artifact; quick mode gates the speedup at >= 2x.
  DVS_QUICK=1 cargo bench --offline -p dvs-bench --bench trace_matrix
}

if [ -n "$ONLY" ]; then
  case " $STAGES " in
    *" $ONLY "*) "stage_${ONLY//-/_}" ;;
    *)
      echo "unknown stage \"$ONLY\" (stages: $STAGES)" >&2
      exit 2
      ;;
  esac
  echo "stage $ONLY OK"
else
  for s in $STAGES; do "stage_${s//-/_}"; done
  echo "CI OK"
fi
