#!/usr/bin/env bash
# Full CI gate: formatting, lints, tier-1 verification, and the chaos matrix.
# Everything runs offline against the committed Cargo.lock — no network.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== tier-1: release build + full test suite =="
cargo build --release --offline
cargo build --release --offline --examples
cargo test -q --offline

echo "== chaos matrix (fixed fault seeds, invariant checking on) =="
cargo test -q --offline --test chaos

echo "== model-checker smoke (bounded-depth, 2 litmus x 3 protocols + 1 mutation) =="
cargo run --release --offline -p dvs-check --example smoke

echo "== campaign smoke (reduced fig3+fig7 grid at 1/2/4 workers, digest must match) =="
DVS_QUICK=1 DVS_WORKERS=4 cargo bench --offline -p dvs-bench --bench campaign

echo "== step_micro (stepping-throughput floors; see BENCH_step.json) =="
# Perf-regression gate for the hot path: best-of-2 single-thread run of the
# fig3 quick grid + the 500-case fuzz batch; fails below the committed
# events/s and cases/s floors (set above the pre-refactor baseline).
DVS_STEP_ITERS=2 cargo bench --offline -p dvs-bench --bench step_micro

echo "== telemetry smoke (zero-perturbation + Perfetto export validation) =="
# Captures one tatas run per protocol with a recorder sink, asserts the
# stats/metrics match the no-telemetry baseline, validates the exported
# Chrome trace JSON, and writes TRACE_telemetry_*.json + BENCH_telemetry.json.
DVS_QUICK=1 cargo bench --offline -p dvs-bench --bench telemetry_timeline
# Digest invariance across telemetry policies and worker counts.
cargo test -q --offline -p dvs-campaign --test telemetry

echo "== fuzz smoke (fixed seeds; fails on divergence, corpus drift, or missed controls) =="
# Corpus replay: benign cases green with committed fingerprints, negative
# controls caught and re-shrunk to their committed floors.
cargo test -q --offline -p dvs-fuzz --test corpus
# A fixed-seed stock-protocol hunt: any divergence, sick case, or panic
# exits nonzero, and the result digest must not depend on the worker count.
hunt() { cargo run --release --offline -p dvs-fuzz --bin dvsf -- hunt 0 60 --workers "$1"; }
d2=$(hunt 2); echo "$d2"
d1=$(hunt 1); echo "$d1"
[ "${d1##*digest=}" = "${d2##*digest=}" ] || { echo "fuzz digest differs across worker counts"; exit 1; }

echo "== serve smoke (crash-safe job service: kill -9 resume + warm cache) =="
# Robustness artifact: cold + warm + corruption-repair + retry counters.
DVS_QUICK=1 cargo bench --offline -p dvs-bench --bench serve_matrix
# Crash drill against the real binary: SIGKILL a slowed run mid-job, resume,
# and demand the digest match an uninterrupted run; then re-run warm and
# demand >= 90% cache hits.
cargo build --release --offline -p dvs-serve --bin dvs-serve
SERVE=./target/release/dvs-serve
SDIR=$(mktemp -d)
trap 'rm -rf "$SDIR"' EXIT
ref=$("$SERVE" submit --dir "$SDIR/ref" --grid smoke --workers 2); echo "$ref"
want=${ref##*digest=}
"$SERVE" submit --dir "$SDIR/victim" --grid smoke --workers 2 --cell-delay-ms 200 &
victim=$!
# Kill as soon as the journal shows the first completed cell.
for _ in $(seq 1 400); do
  grep -q '^cell ' "$SDIR/victim/journal.log" 2>/dev/null && break
  kill -0 "$victim" 2>/dev/null || { echo "victim finished before the kill"; exit 1; }
  sleep 0.025
done
kill -9 "$victim"; wait "$victim" 2>/dev/null || true
resumed=$("$SERVE" resume --dir "$SDIR/victim" --workers 2); echo "$resumed"
[ "${resumed##*digest=}" = "$want" ] || { echo "resumed digest differs from uninterrupted run"; exit 1; }
warm=$("$SERVE" submit --dir "$SDIR/ref" --grid smoke --workers 2); echo "$warm"
[ "${warm##*digest=}" = "$want" ] || { echo "warm digest differs"; exit 1; }
hits=$(echo "$warm" | sed -n 's/.*hits=\([0-9]*\).*/\1/p' | tail -1)
cells=$(echo "$warm" | sed -n 's/.*cells=\([0-9]*\).*/\1/p' | tail -1)
[ $((hits * 10)) -ge $((cells * 9)) ] || { echo "warm hit rate below 90% ($hits/$cells)"; exit 1; }
"$SERVE" verify-store --dir "$SDIR/ref"

echo "== trace smoke (record/replay across protocols + committed corpus) =="
# Committed .dvst corpus: parse, replay on MESI/DS0/DS timed + the oracle,
# validate every pinned final; plus format/compose/mix round-trip tests.
cargo test -q --offline -p dvs-trace --test trace
# Record a kernel with the dvst CLI, replay it on all three protocols, and
# demand the pinned fingerprint is reproduced identically everywhere.
cargo build --release --offline -p dvs-trace --bin dvst
DVST=./target/release/dvst
TDIR=$(mktemp -d)
trap 'rm -rf "$SDIR" "$TDIR"' EXIT
"$DVST" record tatas:counter --threads 4 --iters 4 -o "$TDIR/t.dvst"
fp=""
for proto in M DS0 DS; do
  out=$("$DVST" replay "$TDIR/t.dvst" --proto "$proto"); echo "$out"
  this=${out##*fingerprint }
  [ -z "$fp" ] && fp=$this
  [ "$this" = "$fp" ] || { echo "fingerprint differs on $proto"; exit 1; }
done
"$DVST" replay "$TDIR/t.dvst" --oracle --seed 9
# Replay-vs-VM throughput artifact; quick mode gates the speedup at >= 2x.
DVS_QUICK=1 cargo bench --offline -p dvs-bench --bench trace_matrix

echo "CI OK"
