#!/usr/bin/env bash
# Full CI gate: formatting, lints, tier-1 verification, and the chaos matrix.
# Everything runs offline against the committed Cargo.lock — no network.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== tier-1: release build + full test suite =="
cargo build --release --offline
cargo build --release --offline --examples
cargo test -q --offline

echo "== chaos matrix (fixed fault seeds, invariant checking on) =="
cargo test -q --offline --test chaos

echo "== model-checker smoke (bounded-depth, 2 litmus x 3 protocols + 1 mutation) =="
cargo run --release --offline -p dvs-check --example smoke

echo "== campaign smoke (reduced fig3+fig7 grid at 1/2/4 workers, digest must match) =="
DVS_QUICK=1 DVS_WORKERS=4 cargo bench --offline -p dvs-bench --bench campaign

echo "== telemetry smoke (zero-perturbation + Perfetto export validation) =="
# Captures one tatas run per protocol with a recorder sink, asserts the
# stats/metrics match the no-telemetry baseline, validates the exported
# Chrome trace JSON, and writes TRACE_telemetry_*.json + BENCH_telemetry.json.
DVS_QUICK=1 cargo bench --offline -p dvs-bench --bench telemetry_timeline
# Digest invariance across telemetry policies and worker counts.
cargo test -q --offline -p dvs-campaign --test telemetry

echo "== fuzz smoke (fixed seeds; fails on divergence, corpus drift, or missed controls) =="
# Corpus replay: benign cases green with committed fingerprints, negative
# controls caught and re-shrunk to their committed floors.
cargo test -q --offline -p dvs-fuzz --test corpus
# A fixed-seed stock-protocol hunt: any divergence, sick case, or panic
# exits nonzero, and the result digest must not depend on the worker count.
hunt() { cargo run --release --offline -p dvs-fuzz --bin dvsf -- hunt 0 60 --workers "$1"; }
d2=$(hunt 2); echo "$d2"
d1=$(hunt 1); echo "$d1"
[ "${d1##*digest=}" = "${d2##*digest=}" ] || { echo "fuzz digest differs across worker counts"; exit 1; }

echo "CI OK"
