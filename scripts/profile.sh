#!/usr/bin/env bash
# CPU-profile the simulator's hot path with gprofng (binutils' profiler —
# the only sampling profiler on the CI image; perf and valgrind are absent).
#
# The profiled workload is the step_micro bench: the fig3 quick grid plus
# the stock fuzz batch, run inline on the main thread. That inline-ness
# matters: on this host gprofng only attributes samples to the process's
# initial thread, so a workload that farms cells out to spawned workers
# profiles as an idle main thread. step_micro exists partly for this.
#
# Usage:
#   scripts/profile.sh [iters]        # default 5 iterations (~8s of samples)
#
# Output: a gprofng experiment under /tmp/dvs-prof.er and a function-sorted
# text report on stdout. Re-display later with:
#   gprofng display text -functions /tmp/dvs-prof.er
#   gprofng display text -callers-callees <fn> /tmp/dvs-prof.er
set -euo pipefail
cd "$(dirname "$0")/.."

ITERS="${1:-5}"
EXP=/tmp/dvs-prof.er

command -v gprofng >/dev/null || { echo "gprofng not found (binutils)"; exit 1; }

# Build the bench binary without running it, then locate it. Cargo names
# bench binaries with a metadata hash, so take the newest match.
cargo bench --offline -p dvs-bench --bench step_micro --no-run
BIN=$(ls -t target/release/deps/step_micro-* | grep -v '\.d$' | head -1)

rm -rf "$EXP"
# DVS_STEP_NO_GATE: a profiling run should never fail the regression floor;
# DVS_STEP_ITERS: repeat the measurement loop so the sampler has something
# to chew on (one iteration is ~2.5s; gprofng's default 10ms period wants
# more). The bench still writes BENCH_step.json — restore it afterwards if
# you do not want a profiling run's numbers committed.
DVS_STEP_NO_GATE=1 DVS_STEP_ITERS="$ITERS" \
  gprofng collect app -o "$EXP" "$BIN" --bench

echo
gprofng display text -functions "$EXP"
echo
echo "experiment: $EXP  (gprofng display text -callers-callees <fn> $EXP)"
