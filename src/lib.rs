//! Umbrella crate: re-exports the DeNovoSync reproduction workspace for examples and integration tests.
pub use dvs_apps as apps;
pub use dvs_core as core;
pub use dvs_engine as engine;
pub use dvs_kernels as kernels;
pub use dvs_mem as mem;
pub use dvs_noc as noc;
pub use dvs_stats as stats;
pub use dvs_vm as vm;
