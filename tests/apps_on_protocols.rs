//! Integration: every application model runs and passes its semantic check
//! on MESI and DeNovoSync (the two protocols of Figure 7), at reduced scale.

use denovosync_suite::apps::{all_apps, build_app};
use denovosync_suite::core::config::{Protocol, SystemConfig};
use dvs_bench::run_workload;

#[test]
fn all_thirteen_apps_on_mesi_and_denovosync() {
    for spec in all_apps() {
        let threads = 4;
        let w = build_app(&spec, threads);
        for proto in [Protocol::Mesi, Protocol::DeNovoSync] {
            let cfg = SystemConfig::small(threads, proto);
            let stats =
                run_workload(cfg, &w).unwrap_or_else(|e| panic!("{} on {proto:?}: {e}", spec.name));
            assert!(stats.cycles > 0, "{}", spec.name);
        }
    }
}

#[test]
fn canneal_is_sync_heavy_on_denovo() {
    use dvs_stats::TrafficClass;
    let spec = all_apps()
        .into_iter()
        .find(|a| a.name == "canneal")
        .unwrap();
    let w = build_app(&spec, 4);
    let stats = run_workload(SystemConfig::small(4, Protocol::DeNovoSync), &w).unwrap();
    let sync = stats.traffic.get(TrafficClass::Sync);
    let data = stats.traffic.get(TrafficClass::Load) + stats.traffic.get(TrafficClass::Store);
    assert!(
        sync > data,
        "canneal should be synchronization-dominated: sync={sync} data={data}"
    );
}

#[test]
fn denovo_has_no_invalidation_traffic_in_apps() {
    use dvs_stats::TrafficClass;
    for spec in all_apps().into_iter().take(3) {
        let w = build_app(&spec, 4);
        let stats = run_workload(SystemConfig::small(4, Protocol::DeNovoSync0), &w).unwrap();
        assert_eq!(
            stats.traffic.get(TrafficClass::Invalidation),
            0,
            "{}",
            spec.name
        );
    }
}
