//! The litmus suite on the timed simulator: every litmus program, under
//! every protocol, must complete and satisfy its sequential-consistency
//! verdict — in the stock timing and under chaos-perturbed schedules.
//!
//! This is the cheap, sampled counterpart of the `dvs-check` model checker
//! (which *enumerates* delivery interleavings of the same programs): it
//! validates that the litmus programs themselves are well-formed workloads
//! for the full machine, and catches SC regressions in ordinary timed runs.

use denovosync_suite::core::chaos::FaultPlan;
use denovosync_suite::core::config::{Protocol, SystemConfig};
use denovosync_suite::core::system::System;
use denovosync_suite::vm::litmus::Litmus;
use denovosync_suite::vm::Asm;

/// Runs a litmus test on the timed simulator and applies its verdict. The
/// mesh needs a square tile count, so the two litmus threads are padded to
/// four cores with idle programs.
fn run_timed(lit: &Litmus, mut cfg: SystemConfig) {
    cfg.check_invariants = true;
    let mut programs = lit.programs.clone();
    while programs.len() < cfg.cores {
        let mut a = Asm::new("idle");
        a.halt();
        programs.push(a.build());
    }
    let mut sys = System::new(cfg, lit.layout.clone(), programs);
    sys.run()
        .unwrap_or_else(|e| panic!("{} ({:?}): {e}", lit.name, cfg.protocol));
    lit.check(|a| sys.read_word(a)).unwrap_or_else(|vals| {
        panic!(
            "{} ({:?}): {} — observed {:?}",
            lit.name, cfg.protocol, lit.property, vals
        )
    });
}

/// The checker-sized suite plus the extended shapes (IRIW, MP chains) — the
/// timed simulator is cheap enough to cover both.
fn full_suite() -> Vec<Litmus> {
    Litmus::all()
        .into_iter()
        .chain(Litmus::extended())
        .collect()
}

#[test]
fn all_litmus_sc_on_all_protocols() {
    for lit in full_suite() {
        for proto in Protocol::EXTENDED {
            run_timed(&lit, SystemConfig::small(4, proto));
        }
    }
}

#[test]
fn all_litmus_sc_under_chaos() {
    for lit in full_suite() {
        for proto in Protocol::EXTENDED {
            for seed in [1, 0xC0FFEE, 0xDE40_5EED] {
                let mut cfg = SystemConfig::small(4, proto);
                cfg.fault_plan = Some(FaultPlan::from_seed(seed));
                run_timed(&lit, cfg);
            }
        }
    }
}
