//! Randomized tests on the substrate crates: mesh routing, traffic
//! accounting, cache-array invariants, and layout/region lookups.
//! Driven by the in-house [`DetRng`] (no external dependencies); each case
//! derives from a fixed seed, so failures reproduce exactly.

use dvs_engine::DetRng;
use dvs_mem::{Addr, CacheArray, CacheGeometry, LayoutBuilder, LineAddr};
use dvs_noc::{Mesh, Network, NocParams};

const SEED: u64 = 0x40C_3E5;

/// Route length equals Manhattan distance and crossings equal
/// flits × hops, for any pair on either paper mesh.
#[test]
fn crossings_are_flits_times_hops() {
    let root = DetRng::new(SEED);
    for case in 0..128u64 {
        let mut rng = root.split(case);
        let square = if rng.chance(1, 2) { 16usize } else { 64 };
        let src = rng.below(square);
        let dst = rng.below(square);
        let flits = rng.range(1, 64);
        let mesh = Mesh::square(square);
        let mut net = Network::new(mesh, NocParams::default());
        let d = net.send(0, src, dst, flits);
        assert_eq!(
            d.crossings,
            flits * mesh.hops(src, dst) as u64,
            "case {case}: {square}-mesh {src}->{dst} x{flits}"
        );
        assert_eq!(mesh.route(src, dst).len(), mesh.hops(src, dst));
        assert_eq!(net.total_crossings(), d.crossings);
    }
}

/// Uncontended latency is monotone in both distance and message size.
#[test]
fn latency_is_monotone() {
    let root = DetRng::new(SEED ^ 0x10);
    for case in 0..128u64 {
        let mut rng = root.split(case);
        let hops_a = rng.below(14);
        let hops_b = rng.below(14);
        let flits = rng.range(1, 64);
        let net = Network::new(Mesh::square(64), NocParams::default());
        let (lo, hi) = if hops_a <= hops_b {
            (hops_a, hops_b)
        } else {
            (hops_b, hops_a)
        };
        assert!(net.ideal_latency(lo, flits) <= net.ideal_latency(hi, flits));
        assert!(net.ideal_latency(hi, flits) <= net.ideal_latency(hi, flits + 8));
    }
}

/// A cache array never holds more lines than its capacity, never holds
/// duplicates, and always contains the most recently inserted line
/// (when eviction is unrestricted).
#[test]
fn cache_array_capacity_and_recency() {
    let root = DetRng::new(SEED ^ 0x20);
    for case in 0..128u64 {
        let mut rng = root.split(case);
        let n = rng.range(1, 200) as usize;
        let lines: Vec<u64> = (0..n).map(|_| rng.range(0, 128)).collect();
        let geometry = CacheGeometry::new(16 * 64, 2); // 16 lines, 2-way
        let mut cache: CacheArray<u64> = CacheArray::new(geometry);
        for (i, &l) in lines.iter().enumerate() {
            cache.insert_filtered(LineAddr::new(l), i as u64, |_, _| true);
            assert!(cache.len() <= geometry.lines());
            assert!(
                cache.contains(LineAddr::new(l)),
                "case {case}: just-inserted line resident"
            );
        }
        // No duplicates: every resident address appears exactly once.
        let mut seen: Vec<u64> = cache.iter().map(|(a, _)| a.raw()).collect();
        let count = seen.len();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), count, "case {case}");
    }
}

/// Region lookup: every address inside a segment maps to its region;
/// addresses between segments map to none.
#[test]
fn layout_region_lookup_is_exact() {
    let root = DetRng::new(SEED ^ 0x30);
    for case in 0..128u64 {
        let mut rng = root.split(case);
        let n = rng.range(1, 8) as usize;
        let sizes: Vec<u64> = (0..n).map(|_| rng.range(1, 300)).collect();
        let mut lb = LayoutBuilder::new();
        let regions: Vec<_> = (0..sizes.len())
            .map(|i| lb.region(&format!("r{i}")))
            .collect();
        let bases: Vec<Addr> = sizes
            .iter()
            .enumerate()
            .map(|(i, &sz)| lb.segment(&format!("s{i}"), sz, regions[i]))
            .collect();
        let layout = lb.build();
        for (i, base) in bases.iter().enumerate() {
            let seg = layout.segment(&format!("s{i}")).expect("segment exists");
            assert_eq!(layout.region_of(*base), Some(regions[i]), "case {case}");
            assert_eq!(
                layout.region_of(base.offset(seg.bytes as i64 - 1)),
                Some(regions[i]),
                "case {case}"
            );
        }
        assert_eq!(layout.region_of(Addr::new(0)), None);
        assert_eq!(layout.region_of(Addr::new(1 << 50)), None);
    }
}

/// DetRng splits are stable and independent of sibling draws.
#[test]
fn rng_splits_are_order_independent() {
    let root_rng = DetRng::new(SEED ^ 0x40);
    for case in 0..128u64 {
        let mut rng = root_rng.split(case);
        let seed = rng.next_u64();
        let a = rng.range(0, 64);
        let b = rng.range(0, 64);
        if a == b {
            continue;
        }
        let root = DetRng::new(seed);
        let mut s1 = root.split(a);
        let mut s2 = root.split(a);
        assert_eq!(s1.next_u64(), s2.next_u64(), "case {case}");
        let mut other = root.split(b);
        // Not a proof of independence, but catches collapsed streams.
        assert_ne!(root.split(a).next_u64(), other.next_u64(), "case {case}");
    }
}
