//! Property tests on the substrate crates: mesh routing, traffic
//! accounting, cache-array invariants, and layout/region lookups.

use dvs_mem::{Addr, CacheArray, CacheGeometry, LayoutBuilder, LineAddr};
use dvs_noc::{Mesh, Network, NocParams};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Route length equals Manhattan distance and crossings equal
    /// flits × hops, for any pair on either paper mesh.
    #[test]
    fn crossings_are_flits_times_hops(
        square in prop_oneof![Just(16usize), Just(64usize)],
        src_i in 0usize..64,
        dst_i in 0usize..64,
        flits in 1u64..64,
    ) {
        let mesh = Mesh::square(square);
        let src = src_i % square;
        let dst = dst_i % square;
        let mut net = Network::new(mesh, NocParams::default());
        let d = net.send(0, src, dst, flits);
        prop_assert_eq!(d.crossings, flits * mesh.hops(src, dst) as u64);
        prop_assert_eq!(mesh.route(src, dst).len(), mesh.hops(src, dst));
        prop_assert_eq!(net.total_crossings(), d.crossings);
    }

    /// Uncontended latency is monotone in both distance and message size.
    #[test]
    fn latency_is_monotone(hops_a in 0usize..14, hops_b in 0usize..14, flits in 1u64..64) {
        let net = Network::new(Mesh::square(64), NocParams::default());
        let (lo, hi) = if hops_a <= hops_b { (hops_a, hops_b) } else { (hops_b, hops_a) };
        prop_assert!(net.ideal_latency(lo, flits) <= net.ideal_latency(hi, flits));
        prop_assert!(net.ideal_latency(hi, flits) <= net.ideal_latency(hi, flits + 8));
    }

    /// A cache array never holds more lines than its capacity, never holds
    /// duplicates, and always contains the most recently inserted line
    /// (when eviction is unrestricted).
    #[test]
    fn cache_array_capacity_and_recency(lines in proptest::collection::vec(0u64..128, 1..200)) {
        let geometry = CacheGeometry::new(16 * 64, 2); // 16 lines, 2-way
        let mut cache: CacheArray<u64> = CacheArray::new(geometry);
        for (i, &l) in lines.iter().enumerate() {
            cache.insert_filtered(LineAddr::new(l), i as u64, |_, _| true);
            prop_assert!(cache.len() <= geometry.lines());
            prop_assert!(cache.contains(LineAddr::new(l)), "just-inserted line resident");
        }
        // No duplicates: every resident address appears exactly once.
        let mut seen: Vec<u64> = cache.iter().map(|(a, _)| a.raw()).collect();
        let n = seen.len();
        seen.sort_unstable();
        seen.dedup();
        prop_assert_eq!(seen.len(), n);
    }

    /// Region lookup: every address inside a segment maps to its region;
    /// addresses between segments map to none.
    #[test]
    fn layout_region_lookup_is_exact(sizes in proptest::collection::vec(1u64..300, 1..8)) {
        let mut lb = LayoutBuilder::new();
        let regions: Vec<_> = (0..sizes.len()).map(|i| lb.region(&format!("r{i}"))).collect();
        let bases: Vec<Addr> = sizes
            .iter()
            .enumerate()
            .map(|(i, &sz)| lb.segment(&format!("s{i}"), sz, regions[i]))
            .collect();
        let layout = lb.build();
        for (i, base) in bases.iter().enumerate() {
            let seg = layout.segment(&format!("s{i}")).expect("segment exists");
            prop_assert_eq!(layout.region_of(*base), Some(regions[i]));
            prop_assert_eq!(layout.region_of(base.offset(seg.bytes as i64 - 1)), Some(regions[i]));
        }
        prop_assert_eq!(layout.region_of(Addr::new(0)), None);
        prop_assert_eq!(layout.region_of(Addr::new(1 << 50)), None);
    }

    /// DetRng splits are stable and independent of sibling draws.
    #[test]
    fn rng_splits_are_order_independent(seed in any::<u64>(), a in 0u64..64, b in 0u64..64) {
        use dvs_engine::DetRng;
        prop_assume!(a != b);
        let root = DetRng::new(seed);
        let mut s1 = root.split(a);
        let mut s2 = root.split(a);
        prop_assert_eq!(s1.next_u64(), s2.next_u64());
        let mut other = root.split(b);
        // Not a proof of independence, but catches collapsed streams.
        prop_assert_ne!(root.split(a).next_u64(), other.next_u64());
    }
}
