//! Stress tests: tiny L1 caches force constant evictions, driving the
//! protocols through their rarest paths — MESI Put*/recall-free evictions
//! racing forwards, and DeNovo's registered-word writeback handshake
//! (WbReq/WbAck/WbNack with parked transfers) — under every kernel.
//!
//! A 1 KB 2-way L1 (16 lines) cannot hold even one kernel's working set, so
//! every run here exercises paths the 32 KB configuration rarely touches.
//! Semantic checks still must pass: an eviction bug that loses a registered
//! word's value (or a directory that mis-acks a stale PutM) produces a
//! wrong answer, not just wrong timing.

use denovosync_suite::core::config::{Protocol, SystemConfig};
use dvs_bench::run_kernel;
use dvs_kernels::{BarrierKind, KernelId, KernelParams, LockKind, LockedStruct, NonBlocking};
use dvs_mem::CacheGeometry;

fn tiny_l1_config(threads: usize, proto: Protocol) -> SystemConfig {
    let mut cfg = SystemConfig::small(threads, proto);
    cfg.l1 = CacheGeometry::new(1024, 2); // 16 lines: constant evictions
    cfg
}

fn stress(kernel: KernelId) {
    let mut params = KernelParams::smoke(4);
    params.iters = 8;
    for proto in Protocol::EXTENDED {
        let stats = run_kernel(kernel, tiny_l1_config(4, proto), &params)
            .unwrap_or_else(|e| panic!("{} tiny-L1 on {proto:?}: {e}", kernel.name()));
        assert!(stats.cycles > 0);
    }
}

#[test]
fn tiny_l1_single_queue() {
    stress(KernelId::Locked(LockedStruct::SingleQueue, LockKind::Tatas));
}

#[test]
fn tiny_l1_double_queue_array() {
    stress(KernelId::Locked(LockedStruct::DoubleQueue, LockKind::Array));
}

#[test]
fn tiny_l1_stack() {
    stress(KernelId::Locked(LockedStruct::Stack, LockKind::Tatas));
}

#[test]
fn tiny_l1_heap() {
    stress(KernelId::Locked(LockedStruct::Heap, LockKind::Tatas));
}

#[test]
fn tiny_l1_heap_array() {
    stress(KernelId::Locked(LockedStruct::Heap, LockKind::Array));
}

#[test]
fn tiny_l1_large_cs() {
    // 64-word critical section vs a 16-line cache: the self-invalidation
    // and eviction paths fight over every set.
    stress(KernelId::Locked(LockedStruct::LargeCs, LockKind::Tatas));
}

#[test]
fn tiny_l1_ms_queue() {
    stress(KernelId::NonBlocking(NonBlocking::MsQueue));
}

#[test]
fn tiny_l1_plj_queue() {
    stress(KernelId::NonBlocking(NonBlocking::PljQueue));
}

#[test]
fn tiny_l1_treiber_stack() {
    stress(KernelId::NonBlocking(NonBlocking::TreiberStack));
}

#[test]
fn tiny_l1_herlihy_stack() {
    // Block copies of ~50 words through a 16-line cache: every copy evicts
    // registered words mid-construction.
    stress(KernelId::NonBlocking(NonBlocking::HerlihyStack));
}

#[test]
fn tiny_l1_herlihy_heap() {
    stress(KernelId::NonBlocking(NonBlocking::HerlihyHeap));
}

#[test]
fn tiny_l1_barriers() {
    stress(KernelId::Barrier(BarrierKind::Tree, false));
    stress(KernelId::Barrier(BarrierKind::Central, true));
}

/// Nine-thread run on a 3×3 mesh with a tiny cache: odd topology + deep
/// registration chains (more racing registrants than L1 ways).
#[test]
fn tiny_l1_nine_threads_fai_and_queue() {
    for kernel in [
        KernelId::NonBlocking(NonBlocking::FaiCounter),
        KernelId::NonBlocking(NonBlocking::MsQueue),
    ] {
        let mut params = KernelParams::smoke(9);
        params.iters = 5;
        for proto in Protocol::EXTENDED {
            run_kernel(kernel, tiny_l1_config(9, proto), &params)
                .unwrap_or_else(|e| panic!("{} 9-thread on {proto:?}: {e}", kernel.name()));
        }
    }
}

/// Degenerate configurations must still work: one thread (no contention at
/// all) and a direct-mapped cache (assoc 1 — every conflict evicts).
#[test]
fn degenerate_configurations() {
    let kernel = KernelId::Locked(LockedStruct::Counter, LockKind::Tatas);
    for proto in Protocol::EXTENDED {
        let params = KernelParams::smoke(1);
        run_kernel(kernel, tiny_l1_config(1, proto), &params)
            .unwrap_or_else(|e| panic!("1-thread on {proto:?}: {e}"));

        let mut cfg = SystemConfig::small(4, proto);
        cfg.l1 = CacheGeometry::new(512, 1); // direct-mapped, 8 lines
        let params = KernelParams::smoke(4);
        run_kernel(kernel, cfg, &params)
            .unwrap_or_else(|e| panic!("direct-mapped on {proto:?}: {e}"));
    }
}
