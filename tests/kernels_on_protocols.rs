//! Integration: every one of the 24 synchronization kernels must run to
//! completion and satisfy its semantic post-condition on all four simulated
//! protocols (MESI, DeNovoSync0, DeNovoSync, GCS).
//!
//! These runs use small workload parameters (a few iterations on 4 cores),
//! but they exercise the full stack: VM programs → L1 controllers →
//! mesh → L2 directory/registry → memory, with real data values carried
//! through the protocols — a protocol bug that delivers a stale or lost
//! value fails a kernel check or an in-VM assertion.

use denovosync_suite::core::config::{Protocol, SystemConfig};
use dvs_bench::run_kernel;
use dvs_kernels::{BarrierKind, KernelId, KernelParams, LockKind, LockedStruct, NonBlocking};

fn check_kernel_all_protocols(kernel: KernelId, threads: usize) {
    let params = KernelParams::smoke(threads);
    for proto in Protocol::EXTENDED {
        let cfg = SystemConfig::small(threads, proto);
        let stats = run_kernel(kernel, cfg, &params)
            .unwrap_or_else(|e| panic!("{} on {proto:?}: {e}", kernel.name()));
        assert!(stats.cycles > 0, "{} on {proto:?}", kernel.name());
    }
}

macro_rules! kernel_tests {
    ($($name:ident => $kernel:expr;)*) => {
        $(
            #[test]
            fn $name() {
                check_kernel_all_protocols($kernel, 4);
            }
        )*
    };
}

kernel_tests! {
    tatas_single_queue => KernelId::Locked(LockedStruct::SingleQueue, LockKind::Tatas);
    tatas_double_queue => KernelId::Locked(LockedStruct::DoubleQueue, LockKind::Tatas);
    tatas_stack => KernelId::Locked(LockedStruct::Stack, LockKind::Tatas);
    tatas_heap => KernelId::Locked(LockedStruct::Heap, LockKind::Tatas);
    tatas_counter => KernelId::Locked(LockedStruct::Counter, LockKind::Tatas);
    tatas_large_cs => KernelId::Locked(LockedStruct::LargeCs, LockKind::Tatas);
    array_single_queue => KernelId::Locked(LockedStruct::SingleQueue, LockKind::Array);
    array_double_queue => KernelId::Locked(LockedStruct::DoubleQueue, LockKind::Array);
    array_stack => KernelId::Locked(LockedStruct::Stack, LockKind::Array);
    array_heap => KernelId::Locked(LockedStruct::Heap, LockKind::Array);
    array_counter => KernelId::Locked(LockedStruct::Counter, LockKind::Array);
    array_large_cs => KernelId::Locked(LockedStruct::LargeCs, LockKind::Array);
    nb_ms_queue => KernelId::NonBlocking(NonBlocking::MsQueue);
    nb_plj_queue => KernelId::NonBlocking(NonBlocking::PljQueue);
    nb_treiber_stack => KernelId::NonBlocking(NonBlocking::TreiberStack);
    nb_herlihy_stack => KernelId::NonBlocking(NonBlocking::HerlihyStack);
    nb_herlihy_heap => KernelId::NonBlocking(NonBlocking::HerlihyHeap);
    nb_fai_counter => KernelId::NonBlocking(NonBlocking::FaiCounter);
    barrier_tree => KernelId::Barrier(BarrierKind::Tree, false);
    barrier_nary => KernelId::Barrier(BarrierKind::Nary, false);
    barrier_central => KernelId::Barrier(BarrierKind::Central, false);
    barrier_tree_unbalanced => KernelId::Barrier(BarrierKind::Tree, true);
    barrier_nary_unbalanced => KernelId::Barrier(BarrierKind::Nary, true);
    barrier_central_unbalanced => KernelId::Barrier(BarrierKind::Central, true);
}

/// The macro list above must cover every kernel exactly once.
#[test]
fn test_list_covers_all_24_kernels() {
    assert_eq!(KernelId::all().len(), 24);
}

/// Larger-scale sanity run: the full TATAS counter kernel at 16 cores on
/// every protocol, with the paper's iteration counts scaled down.
#[test]
fn tatas_counter_16_cores_all_protocols() {
    let kernel = KernelId::Locked(LockedStruct::Counter, LockKind::Tatas);
    let mut params = KernelParams::paper(kernel, 16);
    params.iters = 10;
    for proto in Protocol::EXTENDED {
        let cfg = SystemConfig::paper(16, proto);
        let stats = run_kernel(kernel, cfg, &params)
            .unwrap_or_else(|e| panic!("counter @16 on {proto:?}: {e}"));
        assert!(stats.cycles > 0);
    }
}

/// Reduced-equality-check Herlihy variants stay correct on all protocols.
#[test]
fn herlihy_reduced_checks_all_protocols() {
    for n in [NonBlocking::HerlihyStack, NonBlocking::HerlihyHeap] {
        let mut params = KernelParams::smoke(4);
        params.reduced_checks = true;
        for proto in Protocol::EXTENDED {
            let cfg = SystemConfig::small(4, proto);
            run_kernel(KernelId::NonBlocking(n), cfg, &params)
                .unwrap_or_else(|e| panic!("{n:?} reduced on {proto:?}: {e}"));
        }
    }
}

/// Unpadded locks stay correct (the padding ablation's configuration).
#[test]
fn unpadded_locks_all_protocols() {
    let kernel = KernelId::Locked(LockedStruct::Counter, LockKind::Tatas);
    let mut params = KernelParams::smoke(4);
    params.padded_locks = false;
    for proto in Protocol::EXTENDED {
        let cfg = SystemConfig::small(4, proto);
        run_kernel(kernel, cfg, &params)
            .unwrap_or_else(|e| panic!("unpadded counter on {proto:?}: {e}"));
    }
}
