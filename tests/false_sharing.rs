//! False-sharing correctness: concurrent stores to *different words of the
//! same cache line* must all survive on every protocol.
//!
//! Under MESI this exercises the upgrade/ownership races (SM_AD with an
//! incoming Inv, FwdGetM chains): each winner's line data must merge the
//! loser's word when ownership moves, or a store is silently lost. Under
//! DeNovo, word-granularity registration makes the case trivial — which is
//! precisely the paper's false-sharing argument for LU — but the test keeps
//! both honest.

use denovosync_suite::core::config::{Protocol, SystemConfig};
use denovosync_suite::core::System;
use dvs_mem::{Addr, LayoutBuilder, WORDS_PER_LINE, WORD_BYTES};
use dvs_stats::TimeComponent;
use dvs_vm::isa::Reg;
use dvs_vm::{Asm, Program};

/// Each of 8 threads owns one word of a single shared line and increments
/// it `iters` times with plain data stores (no lock: different words are
/// data-race-free). Every word must end exactly at `iters`.
fn run_case(proto: Protocol, jitter: bool) {
    let threads = WORDS_PER_LINE; // 8 writers < 9-core mesh
    let cores = 9;
    let iters = 40u64;
    let mut lb = LayoutBuilder::new();
    let data = lb.region("data");
    let line = lb.segment("shared_line", 64, data);

    let make = |tid: usize| -> Program {
        let mut a = Asm::new("false-sharing");
        if tid >= threads {
            a.halt();
            return a.build();
        }
        let my_word = line.raw() + tid as u64 * WORD_BYTES;
        a.movi(Reg(1), my_word);
        a.movi(Reg(2), 0);
        a.movi(Reg(3), iters);
        let top = a.here();
        a.load(Reg(4), Reg(1), 0);
        a.addi(Reg(4), Reg(4), 1);
        a.store(Reg(4), Reg(1), 0);
        if jitter {
            a.rand_delay(1, 40, TimeComponent::Compute);
        }
        a.addi(Reg(2), Reg(2), 1);
        a.blt(Reg(2), Reg(3), top);
        a.fence();
        a.halt();
        a.build()
    };

    let mut sys = System::new(
        SystemConfig::small(cores, proto),
        lb.build(),
        (0..cores).map(make).collect::<Vec<_>>(),
    );
    sys.run()
        .unwrap_or_else(|e| panic!("{proto:?} jitter={jitter}: {e}"));
    sys.verify_coherence()
        .unwrap_or_else(|e| panic!("{proto:?} jitter={jitter}: {e}"));
    for w in 0..threads {
        let got = sys.read_word(Addr::new(line.raw() + w as u64 * WORD_BYTES));
        assert_eq!(
            got,
            iters,
            "{proto:?} jitter={jitter}: word {w} lost {} increments",
            iters - got
        );
    }
}

#[test]
fn false_sharing_mesi() {
    run_case(Protocol::Mesi, false);
    run_case(Protocol::Mesi, true);
}

#[test]
fn false_sharing_denovosync0() {
    run_case(Protocol::DeNovoSync0, false);
    run_case(Protocol::DeNovoSync0, true);
}

#[test]
fn false_sharing_denovosync() {
    run_case(Protocol::DeNovoSync, false);
    run_case(Protocol::DeNovoSync, true);
}

/// The performance side of the same story (the paper's LU observation):
/// word-granularity DeNovo should move *much* less traffic than
/// line-granularity MESI when eight cores pound one line.
#[test]
fn denovo_wins_false_sharing_traffic() {
    let measure = |proto| {
        let threads = WORDS_PER_LINE;
        let cores = 9;
        let mut lb = LayoutBuilder::new();
        let data = lb.region("data");
        let line = lb.segment("shared_line", 64, data);
        let make = |tid: usize| -> Program {
            let mut a = Asm::new("fs-traffic");
            if tid >= threads {
                a.halt();
                return a.build();
            }
            a.movi(Reg(1), line.raw() + tid as u64 * WORD_BYTES);
            a.movi(Reg(2), 0);
            a.movi(Reg(3), 30);
            let top = a.here();
            a.load(Reg(4), Reg(1), 0);
            a.addi(Reg(4), Reg(4), 1);
            a.store(Reg(4), Reg(1), 0);
            // Jitter interleaves the writers, so the line genuinely
            // ping-pongs (without it, MESI's blocking directory lets each
            // core burst its whole loop during one ownership tenure).
            a.rand_delay(20, 200, TimeComponent::Compute);
            a.addi(Reg(2), Reg(2), 1);
            a.blt(Reg(2), Reg(3), top);
            a.fence();
            a.halt();
            a.build()
        };
        let mut sys = System::new(
            SystemConfig::small(cores, proto),
            lb.build(),
            (0..cores).map(make).collect::<Vec<_>>(),
        );
        let stats = sys.run().expect("runs");
        stats.traffic.total()
    };
    let mesi = measure(Protocol::Mesi);
    let dnv = measure(Protocol::DeNovoSync0);
    assert!(
        dnv * 2 < mesi,
        "DeNovo false-sharing traffic {dnv} should be far below MESI's {mesi}"
    );
}
