//! The DeNovoND-style dynamic-signature extension (the paper's future-work
//! item): correctness on the lock-based kernels, and the precision claim —
//! invalidating only the lock's accumulated write set must produce fewer
//! data-read misses than conservatively self-invalidating the whole static
//! region (§7.1.2's heap discussion, §7.2's fluidanimate discussion).

use denovosync_suite::apps::{all_apps, build_app};
use denovosync_suite::core::config::{DataInvalidation, Protocol, SystemConfig};
use dvs_bench::{run_kernel, run_workload};
use dvs_kernels::{KernelId, KernelParams, LockKind, LockedStruct};

fn cfg(proto: Protocol, mode: DataInvalidation) -> SystemConfig {
    let mut c = SystemConfig::small(4, proto);
    c.data_inv = mode;
    c
}

/// Every lock-based kernel stays semantically correct when acquires
/// invalidate by signature instead of by region — on both DeNovo variants.
#[test]
fn lock_kernels_correct_under_signatures() {
    for s in LockedStruct::ALL {
        for kind in [LockKind::Tatas, LockKind::Array] {
            let kernel = KernelId::Locked(s, kind);
            let params = KernelParams::smoke(4);
            for proto in [Protocol::DeNovoSync0, Protocol::DeNovoSync] {
                run_kernel(kernel, cfg(proto, DataInvalidation::Signatures), &params)
                    .unwrap_or_else(|e| {
                        panic!("{} under signatures on {proto:?}: {e}", kernel.name())
                    });
            }
        }
    }
}

/// Barrier kernels (epoch-flag releases publish the phase's writes) also
/// stay correct — including the thread-0 integrity probe, which reads data
/// written by every other thread.
#[test]
fn barrier_kernels_correct_under_signatures() {
    use dvs_kernels::BarrierKind;
    for kind in [BarrierKind::Tree, BarrierKind::Nary, BarrierKind::Central] {
        let kernel = KernelId::Barrier(kind, false);
        let mut params = KernelParams::smoke(4);
        params.iters = 8;
        run_kernel(
            kernel,
            cfg(Protocol::DeNovoSync, DataInvalidation::Signatures),
            &params,
        )
        .unwrap_or_else(|e| panic!("{} under signatures: {e}", kernel.name()));
    }
}

/// Signatures never invalidate more than static regions do: even on the
/// heap kernel — whose critical sections write almost everything they read,
/// so the written-set and the region nearly coincide — data-read misses
/// must not regress.
#[test]
fn signatures_never_regress_heap_data_misses() {
    let kernel = KernelId::Locked(LockedStruct::Heap, LockKind::Array);
    let mut params = KernelParams::smoke(4);
    params.iters = 20;
    let static_run = run_kernel(
        kernel,
        cfg(Protocol::DeNovoSync, DataInvalidation::StaticRegions),
        &params,
    )
    .expect("static run");
    let sig_run = run_kernel(
        kernel,
        cfg(Protocol::DeNovoSync, DataInvalidation::Signatures),
        &params,
    )
    .expect("signature run");
    assert!(
        sig_run.cache.data_read_misses <= static_run.cache.data_read_misses,
        "signatures must not over-invalidate: {} vs {} static",
        sig_run.cache.data_read_misses,
        static_run.cache.data_read_misses
    );
}

/// The strict precision win, isolated: a critical section that reads a
/// 32-word shared table but writes a single word. Static regions blow the
/// whole table away at every acquire; the signature invalidates only the
/// previously-written words.
#[test]
fn signatures_cut_misses_on_read_mostly_critical_sections() {
    use dvs_kernels::sync::{emit_prologue, TatasLock, ITER, ITERS, TID};
    use dvs_kernels::Workload;
    use dvs_mem::{Addr, LayoutBuilder};
    use dvs_vm::isa::Reg;
    use dvs_vm::Asm;

    const TABLE_WORDS: u64 = 32;
    let build = || -> Workload {
        let mut lb = LayoutBuilder::new();
        let sync = lb.region("sync");
        let data = lb.region("data");
        let lock = TatasLock {
            lock: lb.sync_var("lock", sync, true),
            data_region: Some(data),
            sw_backoff: false,
        };
        let table = lb.segment("table", TABLE_WORDS * 8, data);
        let programs = (0..4)
            .map(|_| {
                let mut a = Asm::new("read-mostly-cs");
                emit_prologue(&mut a, 12);
                let top = a.here();
                lock.emit_acquire(&mut a);
                // Read the whole table.
                for j in 0..TABLE_WORDS {
                    a.movi(Reg(10), table.raw() + j * 8);
                    a.load(Reg(4), Reg(10), 0);
                    a.add(Reg(16), Reg(16), Reg(4));
                }
                // Write one word: table[tid].
                a.shl(Reg(10), TID, 3);
                a.addi(Reg(10), Reg(10), table.raw() as i64);
                a.load(Reg(4), Reg(10), 0);
                a.addi(Reg(4), Reg(4), 1);
                a.store(Reg(4), Reg(10), 0);
                lock.emit_release(&mut a);
                a.addi(ITER, ITER, 1);
                a.blt(ITER, ITERS, top);
                a.halt();
                a.build()
            })
            .collect();
        Workload::new(
            lb.build(),
            programs,
            Vec::new(),
            Vec::new(),
            Box::new(move |read| {
                let total: u64 = (0..4).map(|t| read(Addr::new(table.raw() + t * 8))).sum();
                if total == 4 * 12 {
                    Ok(())
                } else {
                    Err(format!("table increments {total}, expected 48"))
                }
            }),
        )
    };
    let static_run = run_workload(
        cfg(Protocol::DeNovoSync, DataInvalidation::StaticRegions),
        &build(),
    )
    .expect("static run");
    let sig_run = run_workload(
        cfg(Protocol::DeNovoSync, DataInvalidation::Signatures),
        &build(),
    )
    .expect("signature run");
    assert!(
        sig_run.cache.data_read_misses < static_run.cache.data_read_misses / 2,
        "read-mostly CS: signature misses {} should be well under static {}",
        sig_run.cache.data_read_misses,
        static_run.cache.data_read_misses
    );
}

/// fluidanimate — the application the paper singles out as losing to MESI
/// because of whole-region invalidation at every fine-grained lock acquire
/// — must get faster with signatures.
#[test]
fn signatures_help_fluidanimate() {
    let spec = all_apps()
        .into_iter()
        .find(|a| a.name == "fluidanimate")
        .expect("fluidanimate exists");
    let w = build_app(&spec, 4);
    let static_run = run_workload(
        cfg(Protocol::DeNovoSync, DataInvalidation::StaticRegions),
        &w,
    )
    .expect("static run");
    let sig_run = run_workload(cfg(Protocol::DeNovoSync, DataInvalidation::Signatures), &w)
        .expect("signature run");
    assert!(
        sig_run.cache.data_read_misses < static_run.cache.data_read_misses,
        "signature misses {} should undercut static {}",
        sig_run.cache.data_read_misses,
        static_run.cache.data_read_misses
    );
    assert!(
        sig_run.cycles <= static_run.cycles,
        "signature cycles {} should not exceed static {}",
        sig_run.cycles,
        static_run.cycles
    );
}

/// MESI ignores the knob entirely: identical results in both modes.
#[test]
fn mesi_is_unaffected_by_invalidation_mode() {
    let kernel = KernelId::Locked(LockedStruct::Counter, LockKind::Tatas);
    let params = KernelParams::smoke(4);
    let a = run_kernel(
        kernel,
        cfg(Protocol::Mesi, DataInvalidation::StaticRegions),
        &params,
    )
    .unwrap();
    let b = run_kernel(
        kernel,
        cfg(Protocol::Mesi, DataInvalidation::Signatures),
        &params,
    )
    .unwrap();
    assert_eq!(a, b);
}
