//! Chaos matrix: every synchronization kernel, on every protocol, under
//! deterministic fault injection with the runtime coherence invariant
//! checkers enabled.
//!
//! The fault injector only applies *legal* perturbations — bounded extra
//! delivery delay and reordering of concurrently in-flight messages between
//! independent endpoint pairs; per-channel FIFO order is preserved and no
//! message is ever dropped or duplicated — so every run must still complete,
//! stay invariant-clean at each message-delivery boundary, and satisfy the
//! kernel's semantic post-condition. A protocol that only worked because of
//! lucky timing fails here.

use denovosync_suite::core::chaos::FaultPlan;
use denovosync_suite::core::config::{Protocol, SystemConfig};
use denovosync_suite::core::system::SimError;
use dvs_bench::{run_kernel, RunError};
use dvs_kernels::{BarrierKind, KernelId, KernelParams, LockKind, LockedStruct, NonBlocking};

/// Fixed fault seeds; `scripts/ci.sh` runs exactly this matrix.
const SEEDS: [u64; 4] = [1, 42, 0xDEAD_BEEF, 0x5EED_CAFE];

fn chaos_cfg(threads: usize, proto: Protocol, seed: u64) -> SystemConfig {
    let mut cfg = SystemConfig::small(threads, proto);
    cfg.check_invariants = true;
    cfg.fault_plan = Some(FaultPlan::from_seed(seed));
    cfg
}

fn check_kernel_under_chaos(kernel: KernelId, threads: usize) {
    let params = KernelParams::smoke(threads);
    for proto in Protocol::EXTENDED {
        for seed in SEEDS {
            run_kernel(kernel, chaos_cfg(threads, proto, seed), &params).unwrap_or_else(|e| {
                panic!(
                    "{} on {proto:?} with fault seed {seed:#x}: {e}",
                    kernel.name()
                )
            });
        }
    }
}

macro_rules! chaos_tests {
    ($($name:ident => $kernel:expr;)*) => {
        $(
            #[test]
            fn $name() {
                check_kernel_under_chaos($kernel, 4);
            }
        )*
    };
}

chaos_tests! {
    chaos_tatas_single_queue => KernelId::Locked(LockedStruct::SingleQueue, LockKind::Tatas);
    chaos_tatas_double_queue => KernelId::Locked(LockedStruct::DoubleQueue, LockKind::Tatas);
    chaos_tatas_stack => KernelId::Locked(LockedStruct::Stack, LockKind::Tatas);
    chaos_tatas_heap => KernelId::Locked(LockedStruct::Heap, LockKind::Tatas);
    chaos_tatas_counter => KernelId::Locked(LockedStruct::Counter, LockKind::Tatas);
    chaos_tatas_large_cs => KernelId::Locked(LockedStruct::LargeCs, LockKind::Tatas);
    chaos_array_single_queue => KernelId::Locked(LockedStruct::SingleQueue, LockKind::Array);
    chaos_array_double_queue => KernelId::Locked(LockedStruct::DoubleQueue, LockKind::Array);
    chaos_array_stack => KernelId::Locked(LockedStruct::Stack, LockKind::Array);
    chaos_array_heap => KernelId::Locked(LockedStruct::Heap, LockKind::Array);
    chaos_array_counter => KernelId::Locked(LockedStruct::Counter, LockKind::Array);
    chaos_array_large_cs => KernelId::Locked(LockedStruct::LargeCs, LockKind::Array);
    chaos_nb_ms_queue => KernelId::NonBlocking(NonBlocking::MsQueue);
    chaos_nb_plj_queue => KernelId::NonBlocking(NonBlocking::PljQueue);
    chaos_nb_treiber_stack => KernelId::NonBlocking(NonBlocking::TreiberStack);
    chaos_nb_herlihy_stack => KernelId::NonBlocking(NonBlocking::HerlihyStack);
    chaos_nb_herlihy_heap => KernelId::NonBlocking(NonBlocking::HerlihyHeap);
    chaos_nb_fai_counter => KernelId::NonBlocking(NonBlocking::FaiCounter);
    chaos_barrier_tree => KernelId::Barrier(BarrierKind::Tree, false);
    chaos_barrier_nary => KernelId::Barrier(BarrierKind::Nary, false);
    chaos_barrier_central => KernelId::Barrier(BarrierKind::Central, false);
    chaos_barrier_tree_unbalanced => KernelId::Barrier(BarrierKind::Tree, true);
    chaos_barrier_nary_unbalanced => KernelId::Barrier(BarrierKind::Nary, true);
    chaos_barrier_central_unbalanced => KernelId::Barrier(BarrierKind::Central, true);
}

/// The macro list above must cover every kernel exactly once.
#[test]
fn chaos_matrix_covers_all_24_kernels() {
    assert_eq!(KernelId::all().len(), 24);
}

/// The same fault seed must reproduce the exact same run — the whole point
/// of *deterministic* fault injection is that a chaos failure can be
/// replayed from its seed.
#[test]
fn chaos_runs_are_deterministic_per_seed() {
    let kernel = KernelId::Locked(LockedStruct::Counter, LockKind::Tatas);
    let params = KernelParams::smoke(4);
    for proto in Protocol::EXTENDED {
        let a = run_kernel(kernel, chaos_cfg(4, proto, 7), &params)
            .unwrap_or_else(|e| panic!("{proto:?} first run: {e}"));
        let b = run_kernel(kernel, chaos_cfg(4, proto, 7), &params)
            .unwrap_or_else(|e| panic!("{proto:?} second run: {e}"));
        assert_eq!(a.cycles, b.cycles, "{proto:?}: same seed, different run");
        assert_eq!(
            a.traffic.total(),
            b.traffic.total(),
            "{proto:?}: same seed, different traffic"
        );
    }
}

/// Different fault seeds must actually change message timing — otherwise the
/// matrix is testing the same schedule 4 times.
#[test]
fn fault_seeds_actually_perturb_timing() {
    let kernel = KernelId::Locked(LockedStruct::Counter, LockKind::Tatas);
    let params = KernelParams::smoke(4);
    let mut cycles = std::collections::BTreeSet::new();
    let base = run_kernel(
        kernel,
        SystemConfig::small(4, Protocol::DeNovoSync),
        &params,
    )
    .expect("baseline run");
    cycles.insert(base.cycles);
    for seed in SEEDS {
        let stats = run_kernel(kernel, chaos_cfg(4, Protocol::DeNovoSync, seed), &params)
            .unwrap_or_else(|e| panic!("seed {seed:#x}: {e}"));
        cycles.insert(stats.cycles);
    }
    assert!(
        cycles.len() >= 2,
        "baseline and all {} fault seeds produced identical cycle counts",
        SEEDS.len()
    );
}

/// A run that hits the cycle limit under chaos must surface the stall
/// forensics: per-core status lines and the recent-message ring.
#[test]
fn cycle_limit_under_chaos_reports_stall_forensics() {
    let kernel = KernelId::Locked(LockedStruct::Counter, LockKind::Tatas);
    let params = KernelParams::smoke(4);
    let mut cfg = chaos_cfg(4, Protocol::DeNovoSync, 1);
    cfg.max_cycles = 300; // far below what the kernel needs
    let err = run_kernel(kernel, cfg, &params).expect_err("must hit the cycle limit");
    match err {
        RunError::Sim(SimError::CycleLimit { limit, report }) => {
            assert_eq!(limit, 300);
            assert!(
                report.cores.iter().any(|l| l.starts_with("core ")),
                "report must name at least one unfinished core: {report}"
            );
            assert!(
                !report.recent_messages.is_empty(),
                "report must include the recent-message ring: {report}"
            );
        }
        other => panic!("expected CycleLimit, got: {other}"),
    }
}
