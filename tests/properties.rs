//! Randomized tests over the whole stack, driven by the in-house [`DetRng`]
//! so the workspace builds with no external dependencies.
//!
//! * random ALU programs agree with a direct Rust evaluation (VM semantics);
//! * random data-race-free phase programs produce identical results on
//!   MESI, DeNovoSync0, DeNovoSync, and the untimed SC reference machine
//!   (the data-consistency guarantee self-invalidation must provide);
//! * random racy synchronization-only programs preserve counter totals on
//!   every protocol (write serialization + atomicity of the registration
//!   path).
//!
//! Every case derives from a fixed seed via `DetRng::split`, so a failure
//! message's case index is enough to reproduce it exactly.

use denovosync_suite::core::config::{Protocol, SystemConfig};
use denovosync_suite::core::System;
use dvs_engine::DetRng;
use dvs_kernels::sync::{emit_prologue, TreeBarrier, ITER, ITERS};
use dvs_mem::{Addr, LayoutBuilder, MemoryLayout, LINE_BYTES};
use dvs_vm::isa::{Cond, Reg};
use dvs_vm::reference::RefMachine;
use dvs_vm::{Asm, Program};

/// Root seed for every randomized test in this file.
const SEED: u64 = 0xDE40_505C;

// ---------------------------------------------------------------------------
// 1. VM ALU semantics vs a direct evaluator.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
enum AluOp {
    Movi(u8, u64),
    Add(u8, u8, u8),
    Sub(u8, u8, u8),
    Mul(u8, u8, u8),
    Div(u8, u8, u8),
    Rem(u8, u8, u8),
    And(u8, u8, u8),
    Or(u8, u8, u8),
    Xor(u8, u8, u8),
    Shl(u8, u8, u8),
    Shr(u8, u8, u8),
    Addi(u8, u8, i32),
}

fn random_alu_op(rng: &mut DetRng) -> AluOp {
    let d = rng.below(12) as u8;
    let a = rng.below(12) as u8;
    let b = rng.below(12) as u8;
    match rng.below(12) {
        0 => AluOp::Movi(d, rng.next_u64()),
        1 => AluOp::Add(d, a, b),
        2 => AluOp::Sub(d, a, b),
        3 => AluOp::Mul(d, a, b),
        4 => AluOp::Div(d, a, b),
        5 => AluOp::Rem(d, a, b),
        6 => AluOp::And(d, a, b),
        7 => AluOp::Or(d, a, b),
        8 => AluOp::Xor(d, a, b),
        9 => AluOp::Shl(d, a, rng.below(64) as u8),
        10 => AluOp::Shr(d, a, rng.below(64) as u8),
        _ => AluOp::Addi(d, a, rng.next_u64() as i32),
    }
}

fn eval_alu(ops: &[AluOp]) -> [u64; 12] {
    let mut r = [0u64; 12];
    for &op in ops {
        match op {
            AluOp::Movi(d, v) => r[d as usize] = v,
            AluOp::Add(d, a, b) => r[d as usize] = r[a as usize].wrapping_add(r[b as usize]),
            AluOp::Sub(d, a, b) => r[d as usize] = r[a as usize].wrapping_sub(r[b as usize]),
            AluOp::Mul(d, a, b) => r[d as usize] = r[a as usize].wrapping_mul(r[b as usize]),
            AluOp::Div(d, a, b) => {
                r[d as usize] = r[a as usize].checked_div(r[b as usize]).unwrap_or(0)
            }
            AluOp::Rem(d, a, b) => {
                r[d as usize] = r[a as usize].checked_rem(r[b as usize]).unwrap_or(0)
            }
            AluOp::And(d, a, b) => r[d as usize] = r[a as usize] & r[b as usize],
            AluOp::Or(d, a, b) => r[d as usize] = r[a as usize] | r[b as usize],
            AluOp::Xor(d, a, b) => r[d as usize] = r[a as usize] ^ r[b as usize],
            AluOp::Shl(d, a, s) => r[d as usize] = r[a as usize] << (s & 63),
            AluOp::Shr(d, a, s) => r[d as usize] = r[a as usize] >> (s & 63),
            AluOp::Addi(d, a, i) => r[d as usize] = r[a as usize].wrapping_add(i as i64 as u64),
        }
    }
    r
}

fn assemble_alu(ops: &[AluOp]) -> Program {
    let mut a = Asm::new("prop-alu");
    for &op in ops {
        match op {
            AluOp::Movi(d, v) => a.movi(Reg(d), v),
            AluOp::Add(d, x, y) => a.add(Reg(d), Reg(x), Reg(y)),
            AluOp::Sub(d, x, y) => a.sub(Reg(d), Reg(x), Reg(y)),
            AluOp::Mul(d, x, y) => a.mul(Reg(d), Reg(x), Reg(y)),
            AluOp::Div(d, x, y) => a.div(Reg(d), Reg(x), Reg(y)),
            AluOp::Rem(d, x, y) => a.rem(Reg(d), Reg(x), Reg(y)),
            AluOp::And(d, x, y) => a.and(Reg(d), Reg(x), Reg(y)),
            AluOp::Or(d, x, y) => a.or(Reg(d), Reg(x), Reg(y)),
            AluOp::Xor(d, x, y) => a.xor(Reg(d), Reg(x), Reg(y)),
            AluOp::Shl(d, x, s) => a.shl(Reg(d), Reg(x), s),
            AluOp::Shr(d, x, s) => a.shr(Reg(d), Reg(x), s),
            AluOp::Addi(d, x, i) => a.addi(Reg(d), Reg(x), i as i64),
        };
    }
    a.halt();
    a.build()
}

#[test]
fn vm_alu_matches_direct_evaluation() {
    let root = DetRng::new(SEED);
    for case in 0..64u64 {
        let mut rng = root.split(case);
        let len = rng.range(1, 60) as usize;
        let ops: Vec<AluOp> = (0..len).map(|_| random_alu_op(&mut rng)).collect();
        let mut m = RefMachine::new(vec![assemble_alu(&ops)]);
        m.run(1_000).expect("alu program halts");
        let expected = eval_alu(&ops);
        for (i, &want) in expected.iter().enumerate() {
            assert_eq!(
                m.thread(0).reg(Reg(i as u8)),
                want,
                "case {case}: r{i} ops {ops:?}"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// 2. Random DRF phase programs agree across protocols and with the SC
//    reference.
// ---------------------------------------------------------------------------

const DRF_THREADS: usize = 4;

#[derive(Debug, Clone)]
struct DrfCase {
    phases: u64,
    slice_words: u64,
    /// For each (phase, reader): which thread's slice and which word to read.
    reads: Vec<(usize, u64)>,
}

fn random_drf_case(rng: &mut DetRng) -> DrfCase {
    let phases = rng.range(1, 4);
    let slice_words = rng.range(1, 6);
    let reads = (0..phases as usize * DRF_THREADS)
        .map(|_| (rng.below(DRF_THREADS), rng.range(0, slice_words)))
        .collect();
    DrfCase {
        phases,
        slice_words,
        reads,
    }
}

/// Builds: each phase, thread t writes `phase*4096 + t*97 + j` to its own
/// slice words, barrier, then reads an arbitrary slice word (data-race-free
/// by construction) and folds it into a checksum published at the end.
fn build_drf(case: &DrfCase) -> (MemoryLayout, Vec<Program>, Addr) {
    let mut lb = LayoutBuilder::new();
    let sync = lb.region("sync");
    let data = lb.region("data");
    let results = lb.segment("results", DRF_THREADS as u64 * LINE_BYTES, data);
    let slices = lb.segment("slices", DRF_THREADS as u64 * case.slice_words * 8, data);
    let barrier = TreeBarrier {
        arrive: lb.segment("arrive", DRF_THREADS as u64 * LINE_BYTES, sync),
        go: lb.segment("go", DRF_THREADS as u64 * LINE_BYTES, sync),
        fan_in: 2,
        fan_out: 2,
        n: DRF_THREADS,
        data_region: Some(data),
    };
    let programs = (0..DRF_THREADS)
        .map(|tid| {
            let mut a = Asm::new("prop-drf");
            emit_prologue(&mut a, case.phases);
            let my_base = slices.raw() + tid as u64 * case.slice_words * 8;
            let top = a.here();
            // value base = phase*4096 + tid*97
            a.movi(Reg(4), 4096);
            a.mul(Reg(4), ITER, Reg(4));
            a.addi(Reg(4), Reg(4), (tid * 97) as i64);
            for j in 0..case.slice_words {
                a.addi(Reg(5), Reg(4), j as i64);
                a.movi(Reg(10), my_base + j * 8);
                a.store(Reg(5), Reg(10), 0);
            }
            a.fence();
            barrier.emit(&mut a, tid);
            // One read per (phase, tid) position, folded into r16. The read
            // target is fixed at generation time, but the *phase* is the
            // loop counter, so emit a read for each phase guarded by ITER.
            let after = a.label();
            for phase in 0..case.phases {
                let (src, word) = case.reads[phase as usize * DRF_THREADS + tid];
                let skip = a.label();
                a.movi(Reg(6), phase);
                a.bne(ITER, Reg(6), skip);
                let addr = slices.raw() + src as u64 * case.slice_words * 8 + word * 8;
                a.movi(Reg(10), addr);
                a.load(Reg(7), Reg(10), 0);
                a.add(Reg(16), Reg(16), Reg(7));
                a.jmp(after);
                a.bind(skip);
            }
            a.bind(after);
            barrier.emit(&mut a, tid);
            a.addi(ITER, ITER, 1);
            a.blt(ITER, ITERS, top);
            a.movi(Reg(10), results.raw() + tid as u64 * LINE_BYTES);
            a.store(Reg(16), Reg(10), 0);
            a.fence();
            barrier.emit(&mut a, tid);
            a.halt();
            a.build()
        })
        .collect();
    (lb.build(), programs, results)
}

fn expected_drf(case: &DrfCase) -> Vec<u64> {
    (0..DRF_THREADS)
        .map(|tid| {
            (0..case.phases)
                .map(|phase| {
                    let (src, word) = case.reads[phase as usize * DRF_THREADS + tid];
                    phase * 4096 + src as u64 * 97 + word
                })
                .sum()
        })
        .collect()
}

#[test]
fn drf_programs_agree_on_every_protocol() {
    let root = DetRng::new(SEED ^ 0xD2F);
    for case_i in 0..12u64 {
        let mut rng = root.split(case_i);
        let case = random_drf_case(&mut rng);
        let expected = expected_drf(&case);
        // Untimed SC reference.
        let (_, programs, results) = build_drf(&case);
        let mut m = RefMachine::new(programs);
        m.run(10_000_000).expect("reference");
        for (tid, &want) in expected.iter().enumerate() {
            let got = m
                .memory()
                .read_word(Addr::new(results.raw() + tid as u64 * LINE_BYTES).word());
            assert_eq!(got, want, "case {case_i}: reference tid {tid}");
        }
        // Timed protocols.
        for proto in Protocol::ALL {
            let (layout, programs, results) = build_drf(&case);
            let mut sys = System::new(SystemConfig::small(DRF_THREADS, proto), layout, programs);
            sys.run()
                .unwrap_or_else(|e| panic!("case {case_i} {proto:?}: {e}"));
            for (tid, &want) in expected.iter().enumerate() {
                let got = sys.read_word(Addr::new(results.raw() + tid as u64 * LINE_BYTES));
                assert_eq!(
                    got, want,
                    "case {case_i} {proto:?} tid {tid} (stale data visible?)"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// 3. Racy synchronization-only programs: totals survive on every protocol.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct RacyCase {
    /// Per (thread, step): which of 3 counters to hit and with which
    /// operation (0 = FAI +1, 1 = FAI +2, 2 = CAS-increment loop).
    ops: Vec<(u8, u8)>,
    threads: usize,
}

fn random_racy_case(rng: &mut DetRng) -> RacyCase {
    let threads = rng.range(2, 5) as usize;
    let steps = rng.range(1, 12) as usize;
    let ops = (0..threads * steps)
        .map(|_| (rng.below(3) as u8, rng.below(3) as u8))
        .collect();
    RacyCase { ops, threads }
}

#[test]
fn racy_sync_totals_are_exact_on_every_protocol() {
    let root = DetRng::new(SEED ^ 0x4AC7);
    for case_i in 0..12u64 {
        let mut rng = root.split(case_i);
        let case = random_racy_case(&mut rng);
        let steps = case.ops.len() / case.threads;
        // Expected per-counter totals.
        let mut expected = [0u64; 3];
        for &(c, op) in &case.ops {
            expected[c as usize] += match op {
                0 => 1,
                1 => 2,
                _ => 1,
            };
        }
        let build = || {
            let mut lb = LayoutBuilder::new();
            let sync = lb.region("sync");
            let counters: Vec<Addr> = (0..3)
                .map(|i| lb.sync_var(&format!("c{i}"), sync, true))
                .collect();
            let programs: Vec<Program> = (0..case.threads)
                .map(|tid| {
                    let mut a = Asm::new("prop-racy");
                    emit_prologue(&mut a, 1);
                    for s in 0..steps {
                        let (c, op) = case.ops[tid * steps + s];
                        let addr = counters[c as usize];
                        a.movi(Reg(10), addr.raw());
                        match op {
                            0 => {
                                a.fai(Reg(4), Reg(10), 0, Reg(26));
                            }
                            1 => {
                                a.movi(Reg(5), 2);
                                a.fai(Reg(4), Reg(10), 0, Reg(5));
                            }
                            _ => {
                                // CAS-increment retry loop.
                                let retry = a.here();
                                let done = a.label();
                                a.loads(Reg(4), Reg(10), 0);
                                a.addi(Reg(5), Reg(4), 1);
                                a.cas(Reg(6), Reg(10), 0, Reg(4), Reg(5));
                                a.beq(Reg(6), Reg(4), done);
                                a.jmp(retry);
                                a.bind(done);
                            }
                        }
                    }
                    a.halt();
                    a.build()
                })
                .collect();
            (lb.build(), programs, counters.clone())
        };
        for proto in Protocol::ALL {
            let (layout, programs, counters) = build();
            let n = match case.threads {
                2 | 3 => 4,
                n => n,
            }; // square mesh
            let mut padded = programs;
            while padded.len() < n {
                let mut a = Asm::new("idle");
                a.halt();
                padded.push(a.build());
            }
            let mut sys = System::new(SystemConfig::small(n, proto), layout, padded);
            sys.run()
                .unwrap_or_else(|e| panic!("case {case_i} {proto:?}: {e}"));
            for (i, &want) in expected.iter().enumerate() {
                let got = sys.read_word(counters[i]);
                assert_eq!(
                    got, want,
                    "case {case_i} {proto:?} counter {i} (lost update?)"
                );
            }
        }
    }
}

#[test]
fn final_sync_value_is_some_threads_write() {
    let root = DetRng::new(SEED ^ 0x5EA1);
    for case_i in 0..12u64 {
        let mut rng = root.split(case_i);
        let writes: Vec<u64> = (0..rng.range(2, 6)).map(|_| rng.range(1, 100)).collect();
        // Every thread sync-stores its value once; the final value must be
        // one of them (write serialization: no blends, no losses).
        for proto in Protocol::ALL {
            let mut lb = LayoutBuilder::new();
            let sync = lb.region("sync");
            let var = lb.sync_var("var", sync, true);
            let n = 4usize;
            let programs: Vec<Program> = (0..n)
                .map(|tid| {
                    let mut a = Asm::new("prop-ws");
                    if tid < writes.len() {
                        a.movi(Reg(1), var.raw());
                        a.movi(Reg(2), writes[tid]);
                        a.stores(Reg(2), Reg(1), 0);
                    }
                    a.halt();
                    a.build()
                })
                .collect();
            let mut sys = System::new(SystemConfig::small(n, proto), lb.build(), programs);
            sys.run()
                .unwrap_or_else(|e| panic!("case {case_i} {proto:?}: {e}"));
            let got = sys.read_word(var);
            assert!(
                writes.contains(&got),
                "case {case_i} {proto:?}: final {got} not among writes {writes:?}"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// 4. Spin/watch robustness: a waiter always observes a flag write.
// ---------------------------------------------------------------------------

#[test]
fn flag_handoff_never_loses_the_wakeup() {
    let root = DetRng::new(SEED ^ 0xF1A6);
    for case_i in 0..16u64 {
        let delay = root.split(case_i).range(0, 400);
        // One producer sets a flag after a random delay; three consumers
        // spin. Lost-wakeup bugs in the watch mechanism deadlock this.
        for proto in Protocol::ALL {
            let mut lb = LayoutBuilder::new();
            let sync = lb.region("sync");
            let flag = lb.sync_var("flag", sync, true);
            let programs: Vec<Program> = (0..4)
                .map(|tid| {
                    let mut a = Asm::new("prop-flag");
                    a.movi(Reg(1), flag.raw());
                    a.movi(Reg(2), 1);
                    if tid == 0 {
                        a.delay(delay + 1, dvs_stats::TimeComponent::Compute);
                        a.stores(Reg(2), Reg(1), 0);
                    } else {
                        a.spin_until(Reg(3), Reg(1), 0, Cond::Eq, Reg(2));
                        a.assert_cond(Cond::Eq, Reg(3), Reg(2), "spin returned wrong value");
                    }
                    a.halt();
                    a.build()
                })
                .collect();
            let mut sys = System::new(SystemConfig::small(4, proto), lb.build(), programs);
            sys.run()
                .unwrap_or_else(|e| panic!("{proto:?} delay {delay}: {e}"));
            assert_eq!(sys.read_word(flag), 1);
        }
    }
}

#[test]
fn tid_values_flow_through_registers() {
    let root = DetRng::new(SEED ^ 0x71D);
    for case_i in 0..16u64 {
        let seed = root.split(case_i).next_u64();
        // Register writes never bleed across threads.
        let n = 4;
        let programs: Vec<Program> = (0..n)
            .map(|_| {
                let mut a = Asm::new("prop-tid");
                a.tid(Reg(1));
                a.movi(Reg(2), seed % 1000);
                a.add(Reg(3), Reg(1), Reg(2));
                a.halt();
                a.build()
            })
            .collect();
        let mut m = RefMachine::new(programs);
        m.run(1_000).expect("halts");
        for t in 0..n {
            assert_eq!(m.thread(t).reg(Reg(3)), t as u64 + seed % 1000);
        }
    }
}

// ---------------------------------------------------------------------------
// 5. Oracle-mode channel scheduling: a seeded random walk over
//    `oracle_channels` is reproducible from the seed alone.
// ---------------------------------------------------------------------------

/// One random walk over the oracle-mode delivery channels: at every step
/// pick a uniformly random enabled channel (the canonical `ChannelKey`
/// order makes the index → channel mapping deterministic), fire it, and
/// record the pick plus the post-delivery state fingerprint.
fn oracle_walk(proto: Protocol, seed: u64) -> (Vec<(String, u64)>, bool) {
    let lit = denovosync_suite::vm::litmus::tatas();
    let cores = lit.nthreads().max(4);
    let mut programs = lit.programs.clone();
    while programs.len() < cores {
        let mut a = Asm::new("idle");
        a.halt();
        programs.push(a.build());
    }
    let mut cfg = SystemConfig::small(cores, proto);
    cfg.check_invariants = true;
    let mut sys = System::new_oracle(cfg, lit.layout.clone(), programs);
    let mut rng = DetRng::new(seed);
    let mut trace = Vec::new();
    for step in 0.. {
        assert!(step < 100_000, "{proto:?}: walk did not terminate");
        let enabled = sys.oracle_channels();
        if enabled.is_empty() {
            break;
        }
        let pick = enabled[rng.below(enabled.len())];
        assert!(
            sys.oracle_deliver(pick),
            "{proto:?}: enabled channel was empty"
        );
        assert!(
            sys.error().is_none(),
            "{proto:?} step {step}: {:?}",
            sys.error()
        );
        trace.push((pick.to_string(), sys.fingerprint()));
    }
    (trace, sys.all_halted())
}

#[test]
fn oracle_walks_reproduce_from_the_seed_alone_on_all_protocols() {
    let root = DetRng::new(SEED ^ 0x04AC);
    for proto in Protocol::EXTENDED {
        for case_i in 0..3u64 {
            let seed = root.split(case_i).next_u64();
            let (a, a_halted) = oracle_walk(proto, seed);
            let (b, b_halted) = oracle_walk(proto, seed);
            assert!(!a.is_empty(), "{proto:?}: the walk must deliver something");
            assert_eq!(a, b, "{proto:?} seed {seed:#x}: same seed, different walk");
            assert!(a_halted && b_halted, "{proto:?}: walk must end cleanly");
        }
    }
}

/// Different seeds must actually explore different schedules — otherwise
/// the reproducibility test above is vacuous.
#[test]
fn oracle_walks_with_different_seeds_diverge() {
    let (a, _) = oracle_walk(Protocol::Gcs, 1);
    let (b, _) = oracle_walk(Protocol::Gcs, 2);
    let picks = |t: &[(String, u64)]| t.iter().map(|(p, _)| p.clone()).collect::<Vec<_>>();
    assert_ne!(picks(&a), picks(&b), "two seeds picked identical schedules");
}
