//! Cross-cutting invariants of the statistics machinery and determinism
//! guarantees, exercised through full kernel runs.

use denovosync_suite::core::config::{Protocol, SystemConfig};
use dvs_bench::run_kernel;
use dvs_kernels::{BarrierKind, KernelId, KernelParams, LockKind, LockedStruct, NonBlocking};
use dvs_stats::{TimeComponent, TrafficClass};

fn smoke_run(kernel: KernelId, proto: Protocol) -> dvs_stats::RunStats {
    run_kernel(
        kernel,
        SystemConfig::small(4, proto),
        &KernelParams::smoke(4),
    )
    .expect("kernel runs")
}

/// Identical configuration + seed ⇒ identical statistics, for every
/// protocol and a representative kernel from each group.
#[test]
fn repeated_runs_are_bit_identical() {
    let kernels = [
        KernelId::Locked(LockedStruct::SingleQueue, LockKind::Tatas),
        KernelId::Locked(LockedStruct::Counter, LockKind::Array),
        KernelId::NonBlocking(NonBlocking::TreiberStack),
        KernelId::Barrier(BarrierKind::Central, false),
    ];
    for kernel in kernels {
        for proto in Protocol::ALL {
            let a = smoke_run(kernel, proto);
            let b = smoke_run(kernel, proto);
            assert_eq!(a, b, "{} on {proto:?} must be deterministic", kernel.name());
        }
    }
}

/// Different seeds change timing (the dummy-compute randomization is
/// actually live) but never correctness.
#[test]
fn seeds_change_timing_not_results() {
    let kernel = KernelId::Locked(LockedStruct::Stack, LockKind::Tatas);
    let params = KernelParams::smoke(4);
    let mut cycles = Vec::new();
    for seed in [1u64, 2, 3] {
        let mut cfg = SystemConfig::small(4, Protocol::DeNovoSync);
        cfg.seed = seed;
        let stats = run_kernel(kernel, cfg, &params).expect("runs under any seed");
        cycles.push(stats.cycles);
    }
    assert!(
        cycles.windows(2).any(|w| w[0] != w[1]),
        "different seeds should perturb timing: {cycles:?}"
    );
}

/// Per-core time breakdowns must be internally consistent: no component
/// exceeds the run length, and each core's total is within the run length
/// plus scheduling slack.
#[test]
fn time_breakdowns_are_bounded_by_run_length() {
    for proto in Protocol::ALL {
        let stats = smoke_run(
            KernelId::Locked(LockedStruct::Counter, LockKind::Tatas),
            proto,
        );
        for (core, b) in stats.per_core.iter().enumerate() {
            assert!(
                b.total() <= stats.cycles + 16,
                "{proto:?} core {core}: breakdown {} exceeds run {}",
                b.total(),
                stats.cycles
            );
            for comp in TimeComponent::ALL {
                assert!(b.get(comp) <= b.total());
            }
        }
    }
}

/// The non-synch component reflects the dummy compute: with iterations and
/// a known range, it must land within [iters*lo, iters*hi] per core.
#[test]
fn nonsynch_component_matches_dummy_compute() {
    let kernel = KernelId::NonBlocking(NonBlocking::FaiCounter);
    let mut params = KernelParams::smoke(4);
    params.iters = 10;
    params.nonsynch = (100, 200);
    let stats = run_kernel(kernel, SystemConfig::small(4, Protocol::Mesi), &params).unwrap();
    for (core, b) in stats.per_core.iter().enumerate() {
        let ns = b.get(TimeComponent::NonSynch);
        assert!(
            (1000..2000).contains(&ns),
            "core {core}: non-synch {ns} outside [1000, 2000)"
        );
    }
}

/// DeNovoSync (and only DeNovoSync) accrues hardware-backoff time under
/// read-sharing contention.
#[test]
fn hw_backoff_only_appears_on_denovosync() {
    // The TATAS large-CS kernel has long critical sections with many
    // waiters — the paper's worst case for read registration ping-pong.
    let kernel = KernelId::Locked(LockedStruct::LargeCs, LockKind::Tatas);
    let mut params = KernelParams::smoke(4);
    params.iters = 12;
    for proto in Protocol::ALL {
        let stats = run_kernel(kernel, SystemConfig::small(4, proto), &params).unwrap();
        let hw = stats.breakdown().get(TimeComponent::HwBackoff);
        match proto {
            Protocol::DeNovoSync => {
                assert!(hw > 0, "DeNovoSync should back off under contention")
            }
            _ => assert_eq!(hw, 0, "{proto:?} must never accrue hw backoff"),
        }
    }
}

/// MESI never emits SYNCH-class traffic (it does not distinguish
/// synchronization messages — paper footnote 3); DeNovo never emits
/// invalidations.
#[test]
fn traffic_classes_respect_protocol_structure() {
    for kernel in [
        KernelId::Locked(LockedStruct::DoubleQueue, LockKind::Array),
        KernelId::NonBlocking(NonBlocking::MsQueue),
        KernelId::Barrier(BarrierKind::Tree, false),
    ] {
        for proto in Protocol::ALL {
            let stats = smoke_run(kernel, proto);
            if proto.is_denovo() {
                assert_eq!(
                    stats.traffic.get(TrafficClass::Invalidation),
                    0,
                    "{} on {proto:?}",
                    kernel.name()
                );
            } else {
                assert_eq!(
                    stats.traffic.get(TrafficClass::Sync),
                    0,
                    "{} on {proto:?}",
                    kernel.name()
                );
            }
        }
    }
}

/// Sync variables ping-pong at word granularity on DeNovo: its total
/// traffic for a contended-counter kernel must be well below MESI's
/// (which moves whole lines and invalidations).
#[test]
fn denovo_moves_less_data_for_contended_sync() {
    let kernel = KernelId::Locked(LockedStruct::Counter, LockKind::Tatas);
    let mesi = smoke_run(kernel, Protocol::Mesi).traffic.total();
    let ds = smoke_run(kernel, Protocol::DeNovoSync).traffic.total();
    assert!(
        ds < mesi,
        "DeNovoSync traffic {ds} should undercut MESI {mesi} on a TATAS counter"
    );
}

/// The cache statistics see DeNovoSync0's defining behaviour: sync reads
/// miss unless the word is registered, so its sync-read miss count is far
/// higher than MESI's for spin-heavy kernels.
#[test]
fn ds0_sync_reads_register() {
    let kernel = KernelId::Barrier(BarrierKind::Central, false);
    let mut params = KernelParams::smoke(4);
    params.iters = 10;
    let mesi = run_kernel(kernel, SystemConfig::small(4, Protocol::Mesi), &params).unwrap();
    let ds0 = run_kernel(
        kernel,
        SystemConfig::small(4, Protocol::DeNovoSync0),
        &params,
    )
    .unwrap();
    assert!(
        ds0.cache.sync_read_misses > mesi.cache.sync_read_misses,
        "DS0 {} vs MESI {}: read registration must show up as misses",
        ds0.cache.sync_read_misses,
        mesi.cache.sync_read_misses
    );
}
