//! 2D-mesh interconnect model for the DeNovoSync reproduction.
//!
//! The paper's evaluation (Table 1) uses a 2D mesh with 16-bit flits,
//! simulated with Garnet. This crate reproduces the properties the paper
//! measures:
//!
//! * **Traffic** is counted in flit–link crossings ("a flit going over one
//!   network link constitutes one unit of network traffic").
//! * **Latency** follows dimension-ordered (XY) wormhole routing: the head
//!   flit pays a per-hop router+link delay, the tail arrives one cycle per
//!   flit later, and each link serializes at one flit per cycle, so
//!   contending messages queue behind each other.
//!
//! What is simplified relative to Garnet (documented in DESIGN.md): virtual
//! channels and credit flow control are not modelled; a message reserves each
//! link of its route in order at send time. This preserves serialization and
//! queuing-under-contention — the first-order effects for the protocol
//! comparison — without per-flit events.
//!
//! # Examples
//!
//! ```
//! use dvs_noc::{Mesh, Network, NocParams};
//!
//! let mesh = Mesh::new(4, 4);
//! let mut net = Network::new(mesh, NocParams::default());
//! let d = net.send(0, 0, 15, 4); // 4-flit control message corner to corner
//! assert!(d.arrive > 0);
//! assert_eq!(d.crossings, 4 * 6); // 6 hops on a 4x4 mesh diagonal
//! ```

use dvs_engine::{Cycle, DetRng};
use dvs_telemetry::{Component, Event, EventKind, Telemetry};

/// Bits per flit (paper Table 1: 16-bit flits).
pub const FLIT_BITS: u64 = 16;
/// Bytes per flit.
pub const FLIT_BYTES: u64 = FLIT_BITS / 8;

/// Converts a message payload size in bytes to flits (rounding up), adding
/// `header_bytes` of header/address overhead.
pub fn flits_for(header_bytes: u64, payload_bytes: u64) -> u64 {
    (header_bytes + payload_bytes).div_ceil(FLIT_BYTES)
}

/// A tile index on the mesh (`0..cols*rows`). Each tile hosts a core + L1 +
/// L2 bank in the simulated system.
pub type NodeId = usize;

/// An (x, y) mesh coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Coord {
    /// Column, `0..cols`.
    pub x: usize,
    /// Row, `0..rows`.
    pub y: usize,
}

/// A directional link: `(tile, direction)` identifies the link *leaving*
/// that tile in that direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkId(usize);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    East,
    West,
    North,
    South,
}

impl Dir {
    fn index(self) -> usize {
        match self {
            Dir::East => 0,
            Dir::West => 1,
            Dir::North => 2,
            Dir::South => 3,
        }
    }
}

/// A `cols × rows` mesh topology with XY dimension-ordered routing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mesh {
    cols: usize,
    rows: usize,
}

impl Mesh {
    /// Creates a mesh.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(cols: usize, rows: usize) -> Self {
        assert!(cols > 0 && rows > 0, "mesh dimensions must be positive");
        Mesh { cols, rows }
    }

    /// A square mesh for `tiles` tiles.
    ///
    /// # Panics
    ///
    /// Panics if `tiles` is not a perfect square.
    pub fn square(tiles: usize) -> Self {
        let side = (tiles as f64).sqrt() as usize;
        assert_eq!(side * side, tiles, "{tiles} tiles is not a square mesh");
        Mesh::new(side, side)
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of tiles.
    pub fn tiles(&self) -> usize {
        self.cols * self.rows
    }

    /// Number of directional link slots (including unused edge slots).
    pub fn link_slots(&self) -> usize {
        self.tiles() * 4
    }

    /// The coordinate of a tile.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn coord(&self, node: NodeId) -> Coord {
        assert!(node < self.tiles(), "node {node} out of range");
        Coord {
            x: node % self.cols,
            y: node / self.cols,
        }
    }

    /// The tile at a coordinate.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of range.
    pub fn node(&self, c: Coord) -> NodeId {
        assert!(c.x < self.cols && c.y < self.rows, "coord out of range");
        c.y * self.cols + c.x
    }

    /// Manhattan hop count between two tiles under XY routing.
    pub fn hops(&self, a: NodeId, b: NodeId) -> usize {
        let ca = self.coord(a);
        let cb = self.coord(b);
        ca.x.abs_diff(cb.x) + ca.y.abs_diff(cb.y)
    }

    /// The four corner tiles (memory-controller placement: "4 on-chip
    /// controllers", Table 1).
    pub fn corners(&self) -> [NodeId; 4] {
        [
            self.node(Coord { x: 0, y: 0 }),
            self.node(Coord {
                x: self.cols - 1,
                y: 0,
            }),
            self.node(Coord {
                x: 0,
                y: self.rows - 1,
            }),
            self.node(Coord {
                x: self.cols - 1,
                y: self.rows - 1,
            }),
        ]
    }

    /// The corner tile closest to `node` (its memory controller).
    pub fn nearest_corner(&self, node: NodeId) -> NodeId {
        *self
            .corners()
            .iter()
            .min_by_key(|&&c| self.hops(node, c))
            .expect("mesh has corners")
    }

    fn link(&self, from: NodeId, dir: Dir) -> LinkId {
        LinkId(from * 4 + dir.index())
    }

    /// The XY route from `src` to `dst` as a list of directional links
    /// (empty if `src == dst`).
    pub fn route(&self, src: NodeId, dst: NodeId) -> Vec<LinkId> {
        self.route_iter(src, dst).collect()
    }

    /// Iterates the XY route without allocating — the send hot path walks
    /// this directly.
    pub fn route_iter(&self, src: NodeId, dst: NodeId) -> RouteIter {
        RouteIter {
            mesh: *self,
            cur: self.coord(src),
            goal: self.coord(dst),
        }
    }
}

/// Lazily-walked XY route (see [`Mesh::route_iter`]).
#[derive(Debug, Clone)]
pub struct RouteIter {
    mesh: Mesh,
    cur: Coord,
    goal: Coord,
}

impl Iterator for RouteIter {
    type Item = LinkId;

    fn next(&mut self) -> Option<LinkId> {
        // X first, then Y: dimension-ordered routing.
        if self.cur.x != self.goal.x {
            let dir = if self.goal.x > self.cur.x {
                Dir::East
            } else {
                Dir::West
            };
            let link = self.mesh.link(self.mesh.node(self.cur), dir);
            self.cur.x = if self.goal.x > self.cur.x {
                self.cur.x + 1
            } else {
                self.cur.x - 1
            };
            Some(link)
        } else if self.cur.y != self.goal.y {
            let dir = if self.goal.y > self.cur.y {
                Dir::South
            } else {
                Dir::North
            };
            let link = self.mesh.link(self.mesh.node(self.cur), dir);
            self.cur.y = if self.goal.y > self.cur.y {
                self.cur.y + 1
            } else {
                self.cur.y - 1
            };
            Some(link)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let hops = self.cur.x.abs_diff(self.goal.x) + self.cur.y.abs_diff(self.goal.y);
        (hops, Some(hops))
    }
}

impl ExactSizeIterator for RouteIter {}

/// Network timing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NocParams {
    /// Cycles for the head flit to traverse one router + link.
    pub hop_cycles: Cycle,
    /// Fixed injection/ejection overhead at each endpoint.
    pub endpoint_cycles: Cycle,
}

impl Default for NocParams {
    fn default() -> Self {
        // Three-stage router + one link cycle per hop; one cycle each to
        // inject and eject. Calibrated so Table 1's latency ranges emerge
        // (see dvs-core::config tests).
        NocParams {
            hop_cycles: 4,
            endpoint_cycles: 2,
        }
    }
}

/// The result of injecting one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// Cycle at which the full message has arrived at the destination.
    pub arrive: Cycle,
    /// Flit–link crossings generated (flits × hops).
    pub crossings: u64,
}

/// A mesh network with per-link serialization and queuing.
///
/// The network is payload-agnostic: callers pass sizes in flits, get back a
/// [`Delivery`], and schedule their own arrival event.
#[derive(Debug, Clone)]
pub struct Network {
    mesh: Mesh,
    params: NocParams,
    next_free: Vec<Cycle>,
    crossings: u64,
    messages: u64,
    /// Per-link fixed extra hop delay (heterogeneous links); empty when
    /// every link is uniform.
    link_extra: Vec<Cycle>,
    jitter: Option<Jitter>,
    /// Observability only — never feeds back into routing or timing.
    tel: Telemetry,
}

/// Opt-in deterministic link jitter for fault-injection runs: each routed
/// message picks up a bounded random extra delay, clamped so messages
/// between the same node pair still arrive in send order (the FIFO property
/// the protocols rely on).
#[derive(Debug, Clone)]
struct Jitter {
    rng: DetRng,
    max: Cycle,
    /// Dense tiles×tiles matrix of the last clamped arrival per (src, dst)
    /// pair, indexed `src * tiles + dst`; 0 (no prior arrival) clamps
    /// nothing.
    last_arrival: Vec<Cycle>,
    tiles: usize,
}

impl Network {
    /// Creates an idle network.
    pub fn new(mesh: Mesh, params: NocParams) -> Self {
        Network {
            mesh,
            params,
            next_free: vec![0; mesh.link_slots()],
            crossings: 0,
            messages: 0,
            link_extra: Vec::new(),
            jitter: None,
            tel: Telemetry::off(),
        }
    }

    /// Attaches a telemetry handle: every message then emits enqueue,
    /// per-link hop, and dequeue events ([`dvs_telemetry::EventKind`]).
    pub fn set_telemetry(&mut self, tel: Telemetry) {
        self.tel = tel;
    }

    /// Enables deterministic per-message link jitter of up to `max_jitter`
    /// extra cycles (fault-injection runs only). Jittered arrivals are
    /// clamped so each (src, dst) node pair keeps FIFO delivery order.
    /// `max_jitter == 0` turns jitter back off.
    pub fn enable_jitter(&mut self, seed: u64, max_jitter: Cycle) {
        self.jitter = if max_jitter == 0 {
            None
        } else {
            Some(Jitter {
                rng: DetRng::new(seed),
                max: max_jitter,
                last_arrival: vec![0; self.mesh.tiles() * self.mesh.tiles()],
                tiles: self.mesh.tiles(),
            })
        };
    }

    /// Gives each directional link a fixed extra per-hop delay in
    /// `0..=max_extra` cycles, chosen deterministically from `seed` — a
    /// model of chips whose links are not all equally fast (longer wires,
    /// slower voltage domains). Because the extra is a *constant per link*
    /// and XY routes are deterministic, per-pair FIFO delivery and arrival
    /// monotonicity are preserved: consecutive messages of a pair traverse
    /// identical links with identical extras and still serialize on each
    /// one. `max_extra == 0` restores uniform links.
    pub fn enable_hetero_links(&mut self, seed: u64, max_extra: Cycle) {
        if max_extra == 0 {
            self.link_extra = Vec::new();
            return;
        }
        let mut rng = DetRng::new(seed);
        self.link_extra = (0..self.mesh.link_slots())
            .map(|_| rng.range(0, max_extra + 1))
            .collect();
    }

    /// The extra per-hop delay of one link (0 when links are uniform).
    fn extra_for(&self, link: LinkId) -> Cycle {
        self.link_extra.get(link.0).copied().unwrap_or(0)
    }

    /// The topology.
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// Injects a `flits`-flit message at cycle `now` from `src` to `dst`.
    ///
    /// Returns the delivery time and the flit-crossings generated. Crossings
    /// are also accumulated in the network's own totals
    /// ([`Network::total_crossings`]).
    ///
    /// # Panics
    ///
    /// Panics if `flits` is zero or a node is out of range.
    pub fn send(&mut self, now: Cycle, src: NodeId, dst: NodeId, flits: u64) -> Delivery {
        assert!(flits > 0, "messages have at least one flit");
        self.messages += 1;
        if self.tel.enabled() {
            self.tel.emit(|| Event {
                cycle: now,
                node: src as u32,
                component: Component::Noc,
                addr: 0,
                kind: EventKind::NocEnqueue {
                    dst: dst as u32,
                    flits: flits as u32,
                },
            });
        }
        if src == dst {
            // Same tile: no link crossings; a small fixed turnaround.
            let arrive = self.jittered(src, dst, now + self.params.endpoint_cycles);
            self.emit_dequeue(now, src, dst, arrive);
            return Delivery {
                arrive,
                crossings: 0,
            };
        }
        let mut head = now + self.params.endpoint_cycles;
        let mut hops: u64 = 0;
        for link in self.mesh.route_iter(src, dst) {
            let extra = self.extra_for(link);
            let slot = &mut self.next_free[link.0];
            let start = head.max(*slot);
            // The link is busy for the whole message's serialization time.
            *slot = start + flits;
            head = start + self.params.hop_cycles + extra;
            hops += 1;
            if self.tel.enabled() {
                let busy_until = *slot;
                self.tel.emit(|| Event {
                    cycle: start,
                    node: src as u32,
                    component: Component::Noc,
                    addr: 0,
                    kind: EventKind::NocHop {
                        link: link.0 as u32,
                        busy_until,
                    },
                });
            }
        }
        let crossings = flits * hops;
        self.crossings += crossings;
        // Tail flit trails the head by the serialization latency.
        let arrive = self.jittered(src, dst, head + flits + self.params.endpoint_cycles);
        self.emit_dequeue(now, src, dst, arrive);
        Delivery { arrive, crossings }
    }

    /// Records the arrival-side event for a message injected at `now`.
    fn emit_dequeue(&self, now: Cycle, src: NodeId, dst: NodeId, arrive: Cycle) {
        self.tel.emit(|| Event {
            cycle: arrive,
            node: dst as u32,
            component: Component::Noc,
            addr: 0,
            kind: EventKind::NocDequeue {
                src: src as u32,
                latency: arrive.saturating_sub(now),
            },
        });
    }

    /// Applies link jitter (no-op unless enabled): a bounded random delay,
    /// then the per-pair FIFO clamp so a jittered message never overtakes —
    /// nor is overtaken by — another message of the same (src, dst) pair.
    fn jittered(&mut self, src: NodeId, dst: NodeId, arrive: Cycle) -> Cycle {
        let Some(j) = &mut self.jitter else {
            return arrive;
        };
        let mut adjusted = arrive + j.rng.range(0, j.max + 1);
        let last = &mut j.last_arrival[src * j.tiles + dst];
        if adjusted < *last {
            adjusted = *last;
        }
        *last = adjusted;
        adjusted
    }

    /// Total flit–link crossings since construction.
    pub fn total_crossings(&self) -> u64 {
        self.crossings
    }

    /// Total messages injected since construction.
    pub fn total_messages(&self) -> u64 {
        self.messages
    }

    /// Zero-contention latency for a `flits` message over `hops` hops (used
    /// for calibration tests).
    pub fn ideal_latency(&self, hops: usize, flits: u64) -> Cycle {
        if hops == 0 {
            self.params.endpoint_cycles
        } else {
            2 * self.params.endpoint_cycles + self.params.hop_cycles * hops as Cycle + flits
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coord_node_roundtrip() {
        let m = Mesh::new(4, 4);
        for n in 0..16 {
            assert_eq!(m.node(m.coord(n)), n);
        }
        assert_eq!(m.coord(5), Coord { x: 1, y: 1 });
    }

    #[test]
    fn square_constructor() {
        assert_eq!(Mesh::square(64), Mesh::new(8, 8));
    }

    #[test]
    #[should_panic(expected = "not a square")]
    fn non_square_rejected() {
        Mesh::square(12);
    }

    #[test]
    fn hops_is_manhattan_distance() {
        let m = Mesh::new(4, 4);
        assert_eq!(m.hops(0, 0), 0);
        assert_eq!(m.hops(0, 3), 3);
        assert_eq!(m.hops(0, 15), 6);
        assert_eq!(m.hops(5, 10), 2);
    }

    #[test]
    fn route_length_matches_hops_and_is_xy() {
        let m = Mesh::new(8, 8);
        for (src, dst) in [(0, 63), (7, 56), (9, 9), (12, 20)] {
            let r = m.route(src, dst);
            assert_eq!(r.len(), m.hops(src, dst), "route {src}->{dst}");
        }
        // XY: x first. From (0,0) to (1,1), first link must be East of node 0.
        let r = m.route(0, 9);
        assert_eq!(r[0], m.link(0, Dir::East));
        assert_eq!(r[1], m.link(1, Dir::South));
    }

    #[test]
    fn corners_and_nearest() {
        let m = Mesh::new(4, 4);
        assert_eq!(m.corners(), [0, 3, 12, 15]);
        assert_eq!(m.nearest_corner(5), 0);
        assert_eq!(m.nearest_corner(10), 15);
    }

    #[test]
    fn same_tile_message_has_no_crossings() {
        let mut net = Network::new(Mesh::new(4, 4), NocParams::default());
        let d = net.send(100, 6, 6, 36);
        assert_eq!(d.crossings, 0);
        assert!(d.arrive >= 100);
        assert_eq!(net.total_crossings(), 0);
    }

    #[test]
    fn crossings_scale_with_flits_and_hops() {
        let mut net = Network::new(Mesh::new(4, 4), NocParams::default());
        let d = net.send(0, 0, 15, 36);
        assert_eq!(d.crossings, 36 * 6);
        let d2 = net.send(0, 0, 3, 4);
        assert_eq!(d2.crossings, 4 * 3);
        assert_eq!(net.total_crossings(), 36 * 6 + 4 * 3);
        assert_eq!(net.total_messages(), 2);
    }

    #[test]
    fn latency_grows_with_distance_and_size() {
        let mut net = Network::new(Mesh::new(8, 8), NocParams::default());
        let near = net.send(0, 0, 1, 4).arrive;
        let far = net.send(0, 0, 63, 4).arrive;
        let big = net.send(0, 0, 63, 36).arrive;
        assert!(near < far, "distance increases latency");
        assert!(far < big, "size increases latency");
    }

    #[test]
    fn contention_queues_messages_on_shared_links() {
        let params = NocParams::default();
        let mut net = Network::new(Mesh::new(4, 1), params);
        let first = net.send(0, 0, 3, 32);
        let second = net.send(0, 0, 3, 32);
        // Second message must queue behind the first's serialization on the
        // shared links.
        assert!(second.arrive >= first.arrive + 32 - params.hop_cycles);
        // A message on disjoint links is unaffected.
        let mut idle = Network::new(Mesh::new(4, 4), params);
        let solo = idle.send(0, 12, 15, 32);
        let mut busy = Network::new(Mesh::new(4, 4), params);
        busy.send(0, 0, 3, 32);
        let other_row = busy.send(0, 12, 15, 32);
        assert_eq!(solo.arrive, other_row.arrive);
    }

    #[test]
    fn ideal_latency_matches_uncontended_send() {
        let mut net = Network::new(Mesh::new(8, 8), NocParams::default());
        let hops = net.mesh().hops(0, 63);
        let d = net.send(0, 0, 63, 4);
        assert_eq!(d.arrive, net.ideal_latency(hops, 4));
    }

    #[test]
    fn flits_for_rounds_up() {
        assert_eq!(flits_for(8, 0), 4); // control: 8-byte header
        assert_eq!(flits_for(8, 8), 8); // one word of payload
        assert_eq!(flits_for(8, 64), 36); // full line
        assert_eq!(flits_for(8, 1), 5);
    }

    #[test]
    #[should_panic(expected = "at least one flit")]
    fn zero_flit_message_rejected() {
        Network::new(Mesh::new(2, 2), NocParams::default()).send(0, 0, 1, 0);
    }

    #[test]
    fn non_square_mesh_routing_is_xy_and_manhattan() {
        // 2 rows × 8 cols: nodes 0..7 on the top row, 8..15 on the bottom.
        let m = Mesh::new(8, 2);
        assert_eq!(m.tiles(), 16);
        assert_eq!(m.coord(11), Coord { x: 3, y: 1 });
        for (src, dst) in [(0, 15), (7, 8), (3, 11), (12, 4), (0, 7), (8, 15)] {
            let r = m.route(src, dst);
            assert_eq!(r.len(), m.hops(src, dst), "route {src}->{dst}");
        }
        // X before Y: 0 -> 11 goes East three times before turning South.
        let r = m.route(0, 11);
        assert_eq!(r[0], m.link(0, Dir::East));
        assert_eq!(r[1], m.link(1, Dir::East));
        assert_eq!(r[2], m.link(2, Dir::East));
        assert_eq!(r[3], m.link(3, Dir::South));
        assert_eq!(m.corners(), [0, 7, 8, 15]);
    }

    #[test]
    fn large_mesh_routing_and_corners() {
        // 16 rows × 8 cols = 128 tiles (the large-config shape).
        let m = Mesh::new(8, 16);
        assert_eq!(m.tiles(), 128);
        for n in 0..128 {
            assert_eq!(m.node(m.coord(n)), n);
        }
        assert_eq!(m.hops(0, 127), 7 + 15);
        assert_eq!(m.corners(), [0, 7, 120, 127]);
        assert_eq!(m.nearest_corner(9), 0);
        assert_eq!(m.nearest_corner(118), 127);
        let r = m.route(0, 127);
        assert_eq!(r.len(), 22);
        // Every route is loop-free: each hop visits a fresh link.
        let mut seen = std::collections::HashSet::new();
        for l in r {
            assert!(seen.insert(l), "route revisits a link");
        }
    }

    #[test]
    fn hetero_links_are_deterministic_and_only_add_delay() {
        let mesh = Mesh::new(8, 2);
        let mut flat = Network::new(mesh, NocParams::default());
        let mut het = Network::new(mesh, NocParams::default());
        let mut het2 = Network::new(mesh, NocParams::default());
        het.enable_hetero_links(0xBEEF, 3);
        het2.enable_hetero_links(0xBEEF, 3);
        for i in 0..100u64 {
            let src = (i % 16) as usize;
            let dst = ((i * 7 + 3) % 16) as usize;
            let base = flat.send(i * 5, src, dst, 4);
            let a = het.send(i * 5, src, dst, 4);
            let b = het2.send(i * 5, src, dst, 4);
            assert_eq!(a.arrive, b.arrive, "same seed, same schedule");
            assert!(a.arrive >= base.arrive, "hetero links only add delay");
            assert_eq!(a.crossings, base.crossings, "traffic is unchanged");
        }
    }

    #[test]
    fn hetero_links_keep_every_pair_monotone_on_large_meshes() {
        for (cols, rows) in [(8, 2), (8, 16), (16, 16)] {
            let mesh = Mesh::new(cols, rows);
            let mut net = Network::new(mesh, NocParams::default());
            net.enable_hetero_links(0x11EA, 9);
            let tiles = mesh.tiles();
            let mut last = vec![0u64; tiles * tiles];
            let mut rng = DetRng::new(7);
            for step in 0..4000u64 {
                let src = rng.range(0, tiles as u64) as usize;
                let dst = rng.range(0, tiles as u64) as usize;
                let flits = 1 + rng.range(0, 36);
                let arrive = net.send(step, src, dst, flits).arrive;
                let slot = &mut last[src * tiles + dst];
                assert!(
                    arrive >= *slot,
                    "{cols}x{rows}: pair ({src},{dst}) went backwards at step {step}"
                );
                *slot = arrive;
            }
        }
    }

    #[test]
    fn jitter_only_delays_and_keeps_pair_fifo() {
        let mut net = Network::new(Mesh::new(4, 4), NocParams::default());
        let mut jit = net.clone();
        jit.enable_jitter(99, 7);
        let mut last = 0;
        for i in 0..200u64 {
            let base = net.send(i * 3, 2, 13, 4).arrive;
            let pert = jit.send(i * 3, 2, 13, 4).arrive;
            assert!(pert >= base, "jitter may only delay (message {i})");
            assert!(pert >= last, "pair FIFO violated at message {i}");
            last = pert;
        }
        // Deterministic: same seed reproduces the same schedule.
        let mut a = Network::new(Mesh::new(4, 4), NocParams::default());
        let mut b = Network::new(Mesh::new(4, 4), NocParams::default());
        a.enable_jitter(7, 5);
        b.enable_jitter(7, 5);
        for i in 0..100u64 {
            assert_eq!(
                a.send(i * 2, 0, 15, 8).arrive,
                b.send(i * 2, 0, 15, 8).arrive
            );
        }
    }

    #[test]
    fn chaos_jitter_keeps_every_pair_monotone() {
        // Interleave traffic over many (src, dst) pairs — including both
        // directions of each pair and self-sends — under heavy jitter, and
        // pin that each pair's arrivals never go backwards. This exercises
        // the whole dense last-arrival matrix, not just one slot.
        let mesh = Mesh::new(4, 4);
        let mut net = Network::new(mesh, NocParams::default());
        net.enable_jitter(0xC4A05, 23);
        let tiles = mesh.tiles();
        let mut last = vec![0u64; tiles * tiles];
        let mut rng = DetRng::new(42);
        for step in 0..5000u64 {
            let src = rng.range(0, tiles as u64) as usize;
            let dst = rng.range(0, tiles as u64) as usize;
            let flits = 1 + rng.range(0, 36);
            let arrive = net.send(step, src, dst, flits).arrive;
            let slot = &mut last[src * tiles + dst];
            assert!(
                arrive >= *slot,
                "pair ({src},{dst}) went backwards at step {step}: {arrive} < {slot}"
            );
            *slot = arrive;
        }
    }
}
