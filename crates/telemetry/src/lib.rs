//! Zero-cost structured observability for the DeNovoSync reproduction.
//!
//! The simulator's end-of-run aggregates say *what* a run cost; this crate
//! records *why*. It provides three cooperating pieces:
//!
//! * **A typed event stream** ([`Event`] / [`EventKind`]): protocol
//!   transitions, registrations and invalidations, NoC enqueue/hop/dequeue,
//!   MSHR alloc/free, per-core stall begin/end, access outcomes, and
//!   delivered protocol messages, all stamped with the simulated cycle and
//!   the emitting `(node, component)`. Events flow through a [`Telemetry`]
//!   handle into a pluggable [`EventSink`]: a growable [`RecorderSink`], a
//!   bounded per-node [`RingSink`], or a streaming [`JsonlSink`].
//! * **A hierarchical metrics registry** ([`MetricsRegistry`]): counters and
//!   log2 histograms keyed by `node/component/name` paths, stored in ordered
//!   maps so aggregation (and JSON rendering) is deterministic regardless of
//!   worker count or merge order.
//! * **A Chrome trace-event exporter** ([`perfetto`]): renders an event
//!   stream as per-core / per-directory lanes in the JSON trace-event
//!   format, so a whole kernel run opens in `ui.perfetto.dev`.
//!
//! # The zero-cost guarantee
//!
//! A default [`Telemetry`] handle is *off*: it holds no sink, and
//! [`Telemetry::emit`] takes a closure, so when telemetry is disabled the
//! cost at every instrumentation site is one branch on an `Option` — the
//! event value is never even constructed. Nothing in this crate feeds back
//! into simulated state: handles hash as nothing, compare as nothing, and
//! are excluded from every architectural `Hash` in the stack, so simulated
//! results (and campaign digests) are byte-identical with telemetry on or
//! off.
//!
//! # Examples
//!
//! ```
//! use dvs_telemetry::{Component, Event, EventKind, Telemetry};
//!
//! let tel = Telemetry::recorder();
//! tel.emit(|| Event {
//!     cycle: 42,
//!     node: 3,
//!     component: Component::L1,
//!     addr: 0x100,
//!     kind: EventKind::Access { hit: true, sync: false, write: false },
//! });
//! let events = tel.take_events().expect("recorder drains");
//! assert_eq!(events.len(), 1);
//! assert_eq!(events[0].cycle, 42);
//!
//! let off = Telemetry::default();
//! off.emit(|| unreachable!("never constructed when telemetry is off"));
//! ```

pub mod metrics;
pub mod perfetto;
pub mod sink;

pub use metrics::{Log2Histogram, MetricsRegistry};
pub use sink::{EventSink, JsonlSink, RecorderSink, RingSink};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Which simulated component emitted an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Component {
    /// A core / its VM thread.
    Core,
    /// A private L1 controller (MESI or DeNovo).
    L1,
    /// A shared-L2 bank: MESI directory or DeNovo registry.
    Dir,
    /// The mesh interconnect.
    Noc,
    /// A miss-status holding register file.
    Mshr,
    /// The system event loop itself (message deliveries, marks).
    Sys,
}

impl Component {
    /// Every component, in reporting order (the enum's discriminant order).
    pub const ALL: [Component; 6] = [
        Component::Core,
        Component::L1,
        Component::Dir,
        Component::Noc,
        Component::Mshr,
        Component::Sys,
    ];

    /// Stable lowercase label used in JSONL output and metric paths.
    pub fn label(self) -> &'static str {
        match self {
            Component::Core => "core",
            Component::L1 => "l1",
            Component::Dir => "dir",
            Component::Noc => "noc",
            Component::Mshr => "mshr",
            Component::Sys => "sys",
        }
    }
}

/// Why a core is not retiring instructions (the stall taxonomy mirrored by
/// the paper's stacked-bar breakdowns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StallClass {
    /// Blocked on the memory system (a miss outstanding).
    Memory,
    /// Parked in the spin-watch waiting for a sync location to change.
    Spin,
    /// Serving a hardware-backoff penalty before reissuing a sync access.
    Backoff,
    /// Waiting on a fence for outstanding stores to drain.
    Fence,
}

impl StallClass {
    /// Every stall class, in reporting order.
    pub const ALL: [StallClass; 4] = [
        StallClass::Memory,
        StallClass::Spin,
        StallClass::Backoff,
        StallClass::Fence,
    ];

    /// Stable lowercase label used in JSONL output and metric paths.
    pub fn label(self) -> &'static str {
        match self {
            StallClass::Memory => "memory",
            StallClass::Spin => "spin",
            StallClass::Backoff => "backoff",
            StallClass::Fence => "fence",
        }
    }

    /// Dense index into per-class arrays.
    pub fn index(self) -> usize {
        match self {
            StallClass::Memory => 0,
            StallClass::Spin => 1,
            StallClass::Backoff => 2,
            StallClass::Fence => 3,
        }
    }
}

/// What happened. Variants carry only plain numbers and `&'static str`
/// labels so an [`Event`] is `Copy` and ring-buffer pushes never allocate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A core access completed at the L1 with this outcome.
    Access {
        /// Serviced without leaving the L1.
        hit: bool,
        /// The access was a synchronization access.
        sync: bool,
        /// The access may write.
        write: bool,
    },
    /// A synchronization access was penalized by hardware backoff.
    Backoff {
        /// Penalty length in cycles.
        cycles: u64,
    },
    /// A program-inserted phase marker (kernel iteration boundaries).
    Mark(u32),
    /// A protocol controller moved a line/word between states.
    Transition {
        /// State before the message/request was applied.
        from: &'static str,
        /// State after.
        to: &'static str,
        /// What caused the move (message or request name).
        cause: &'static str,
    },
    /// A DeNovo registry (or L1) re-pointed a word's registration.
    Registration {
        /// Core that now owns the word's registered copy.
        owner: u32,
        /// Previous owner, or `u32::MAX` when the word was unregistered.
        prev: u32,
    },
    /// A MESI invalidation was sent to (or acted on by) a sharer.
    Invalidation {
        /// The core whose request triggered the invalidation.
        requester: u32,
        /// Sharers invalidated (fan-out at the directory, 1 at an L1).
        sharers: u32,
    },
    /// A message entered the mesh at its source tile.
    NocEnqueue {
        /// Destination tile.
        dst: u32,
        /// Message size in flits.
        flits: u32,
    },
    /// A message's head flit claimed one link of its route.
    NocHop {
        /// Link id along the XY route.
        link: u32,
        /// Cycle until which the link stays busy serializing the message.
        busy_until: u64,
    },
    /// A message fully arrived at its destination tile.
    NocDequeue {
        /// Source tile.
        src: u32,
        /// End-to-end latency in cycles, including queuing.
        latency: u64,
    },
    /// An MSHR entry was allocated.
    MshrAlloc {
        /// Entries in use after the allocation.
        occupancy: u32,
    },
    /// An MSHR entry was released.
    MshrFree {
        /// Entries in use after the release.
        occupancy: u32,
    },
    /// A core stopped retiring instructions.
    StallBegin {
        /// Why.
        class: StallClass,
    },
    /// A core resumed after a stall.
    StallEnd {
        /// Why it was stalled.
        class: StallClass,
        /// Stall length in cycles.
        cycles: u64,
    },
    /// A GCS directory pushed a targeted update notification to the waiter
    /// set of a sync-classified word.
    Notify {
        /// The core whose update triggered the notification.
        writer: u32,
        /// Waiters notified (fan-out at the directory).
        waiters: u32,
    },
    /// The event loop delivered a protocol message to an endpoint.
    Delivery {
        /// The message's wire name (e.g. `GetM`, `RegReq`).
        msg: &'static str,
        /// Delivery ordinal (1-based count of deliveries so far).
        ordinal: u64,
    },
}

impl EventKind {
    /// Stable lowercase tag for JSONL output.
    pub fn tag(self) -> &'static str {
        match self {
            EventKind::Access { .. } => "access",
            EventKind::Backoff { .. } => "backoff",
            EventKind::Mark(_) => "mark",
            EventKind::Transition { .. } => "transition",
            EventKind::Registration { .. } => "registration",
            EventKind::Invalidation { .. } => "invalidation",
            EventKind::Notify { .. } => "notify",
            EventKind::NocEnqueue { .. } => "noc_enqueue",
            EventKind::NocHop { .. } => "noc_hop",
            EventKind::NocDequeue { .. } => "noc_dequeue",
            EventKind::MshrAlloc { .. } => "mshr_alloc",
            EventKind::MshrFree { .. } => "mshr_free",
            EventKind::StallBegin { .. } => "stall_begin",
            EventKind::StallEnd { .. } => "stall_end",
            EventKind::Delivery { .. } => "delivery",
        }
    }
}

/// One observation: *when*, *where*, *about which address*, *what*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Event {
    /// Simulated cycle the event happened at.
    pub cycle: u64,
    /// Emitting node: core/tile index, or bank index for directories.
    pub node: u32,
    /// Emitting component class.
    pub component: Component,
    /// Byte address the event concerns, or 0 when not address-shaped.
    pub addr: u64,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// Renders the event as one JSON line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        sink::jsonl_line(self)
    }
}

/// Anything that can serve as an event's subject address.
///
/// Implemented here for plain integers; `dvs-mem` implements it for its
/// typed byte/word/line addresses so instrumentation sites can pass whatever
/// they have.
pub trait TelemetryKey {
    /// The subject as a raw byte address (or plain number).
    fn telemetry_key(&self) -> u64;
}

impl TelemetryKey for u64 {
    fn telemetry_key(&self) -> u64 {
        *self
    }
}

impl TelemetryKey for u32 {
    fn telemetry_key(&self) -> u64 {
        u64::from(*self)
    }
}

impl TelemetryKey for usize {
    fn telemetry_key(&self) -> u64 {
        *self as u64
    }
}

/// A cheap, cloneable handle to an event sink — or to nothing.
///
/// `Telemetry::default()` is the *off* handle: no allocation, no lock, and
/// [`Telemetry::emit`]'s closure is never called, so instrumentation sites
/// cost one `Option` branch when observability is disabled. Clones share the
/// underlying sink, which is how one sink collects events from every
/// component of a [`System`](../dvs_core/system/struct.System.html).
///
/// Handles are deliberately invisible to simulated state: they carry no
/// `Hash`/`PartialEq`, and every architectural container that stores one
/// excludes it from its own `Hash`.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Shared>>,
}

/// The state clones of one handle share: the sink, plus a clock the event
/// loop advances so components deep in the stack (MSHRs, controllers) can
/// timestamp events without threading `now` through every call.
#[derive(Debug)]
struct Shared {
    sink: Mutex<Box<dyn EventSink>>,
    clock: AtomicU64,
}

impl Telemetry {
    /// The off handle (same as `Telemetry::default()`).
    pub fn off() -> Self {
        Telemetry::default()
    }

    /// Wraps `sink` in a shareable handle.
    pub fn new(sink: impl EventSink + 'static) -> Self {
        Telemetry {
            inner: Some(Arc::new(Shared {
                sink: Mutex::new(Box::new(sink)),
                clock: AtomicU64::new(0),
            })),
        }
    }

    /// A handle backed by a growable in-memory [`RecorderSink`].
    pub fn recorder() -> Self {
        Telemetry::new(RecorderSink::new())
    }

    /// A handle backed by a bounded per-node [`RingSink`].
    pub fn ring(per_node: usize) -> Self {
        Telemetry::new(RingSink::new(per_node))
    }

    /// Whether a sink is attached. Instrumentation that must loop to build
    /// several events (e.g. per-hop NoC records) guards on this first.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records the event built by `f` — or does nothing, without calling
    /// `f`, when the handle is off.
    #[inline]
    pub fn emit(&self, f: impl FnOnce() -> Event) {
        if let Some(shared) = &self.inner {
            shared
                .sink
                .lock()
                .expect("telemetry sink lock")
                .record(&f());
        }
    }

    /// Publishes the current simulated cycle for [`Telemetry::now`]. The
    /// event loop calls this when a handle is enabled; components that
    /// don't see `now` directly stamp their events from it.
    pub fn set_now(&self, cycle: u64) {
        if let Some(shared) = &self.inner {
            shared.clock.store(cycle, Ordering::Relaxed);
        }
    }

    /// The last cycle published with [`Telemetry::set_now`] (0 when off).
    pub fn now(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |shared| shared.clock.load(Ordering::Relaxed))
    }

    /// Drains recorded events from sinks that keep them in memory
    /// ([`RecorderSink`], [`RingSink`]); `None` for streaming sinks or the
    /// off handle.
    pub fn take_events(&self) -> Option<Vec<Event>> {
        let shared = self.inner.as_ref()?;
        shared
            .sink
            .lock()
            .expect("telemetry sink lock")
            .take_events()
    }

    /// Flushes streaming sinks (no-op otherwise).
    pub fn flush(&self) {
        if let Some(shared) = &self.inner {
            shared.sink.lock().expect("telemetry sink lock").flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64, node: u32) -> Event {
        Event {
            cycle,
            node,
            component: Component::L1,
            addr: 0x40,
            kind: EventKind::Access {
                hit: false,
                sync: true,
                write: false,
            },
        }
    }

    #[test]
    fn off_handle_never_builds_the_event() {
        let off = Telemetry::off();
        assert!(!off.enabled());
        off.emit(|| unreachable!("closure must not run"));
        assert!(off.take_events().is_none());
    }

    #[test]
    fn clones_share_one_sink() {
        let tel = Telemetry::recorder();
        let alias = tel.clone();
        tel.emit(|| ev(1, 0));
        alias.emit(|| ev(2, 1));
        let events = tel.take_events().expect("recorder");
        assert_eq!(events.len(), 2);
        assert_eq!((events[0].cycle, events[1].cycle), (1, 2));
    }

    #[test]
    fn handles_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Telemetry>();
        assert_send::<Event>();
    }
}
