//! Event sinks: where an emitted [`Event`] goes.
//!
//! Three concrete sinks cover the use cases in the stack:
//!
//! * [`RecorderSink`] — growable in-memory recording, for traces that get
//!   post-processed (Figure 2 replay, Perfetto export, golden tests).
//! * [`RingSink`] — a bounded ring per `(component, node)`, for always-on
//!   forensics: deadlock reports show the last few events of every node
//!   without unbounded memory growth.
//! * [`JsonlSink`] — streaming JSON Lines to any `Write`, for campaign runs
//!   that want capture without keeping events resident.

use crate::{Event, EventKind};
use std::collections::VecDeque;
use std::io::Write;

/// A destination for emitted events.
///
/// Sinks are driven behind a mutex by [`Telemetry`](crate::Telemetry)
/// handles, so implementations are plain single-threaded state machines;
/// they only need to be `Send` so a whole system (and its handle) can move
/// across threads.
pub trait EventSink: Send + std::fmt::Debug {
    /// Accepts one event.
    fn record(&mut self, event: &Event);

    /// Drains buffered events, oldest first, if this sink keeps any.
    fn take_events(&mut self) -> Option<Vec<Event>> {
        None
    }

    /// Flushes any underlying writer. Default: nothing to flush.
    fn flush(&mut self) {}
}

/// Records every event into a growable vector.
#[derive(Debug, Clone, Default)]
pub struct RecorderSink {
    events: Vec<Event>,
}

impl RecorderSink {
    /// An empty recorder.
    pub fn new() -> Self {
        RecorderSink::default()
    }

    /// The events recorded so far, in emission order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }
}

impl EventSink for RecorderSink {
    fn record(&mut self, event: &Event) {
        self.events.push(*event);
    }

    fn take_events(&mut self) -> Option<Vec<Event>> {
        Some(std::mem::take(&mut self.events))
    }
}

/// Keeps the last `per_node` events of every `(component, node)` pair.
///
/// This is the forensics sink: bounded, allocation-light after warm-up, and
/// organized so a stall report can show each node's recent history rather
/// than one interleaved tail dominated by the busiest node. It also sits on
/// the simulator's always-hot delivery path, so [`RingSink::push`] is two
/// array indexes — per-node rings live in dense component-indexed tables
/// (grown on first sight of a node), not in a search tree.
#[derive(Debug, Clone)]
pub struct RingSink {
    per_node: usize,
    /// `rings[component as usize][node]`; nodes never seen hold empty rings.
    rings: [Vec<VecDeque<Event>>; 6],
}

impl RingSink {
    /// A ring sink keeping at most `per_node` events per `(component,
    /// node)`; a capacity of zero keeps one.
    pub fn new(per_node: usize) -> Self {
        RingSink {
            per_node: per_node.max(1),
            rings: Default::default(),
        }
    }

    /// Accepts one event (inherent twin of [`EventSink::record`] so the
    /// system can use a ring directly, without a handle or lock).
    pub fn push(&mut self, event: &Event) {
        let nodes = &mut self.rings[event.component as usize];
        let node = event.node as usize;
        if node >= nodes.len() {
            nodes.resize_with(node + 1, VecDeque::new);
        }
        let ring = &mut nodes[node];
        if ring.len() == self.per_node {
            ring.pop_front();
        }
        ring.push_back(*event);
    }

    /// Every non-empty ring, ordered by `(component, node)`, each
    /// oldest-first.
    pub fn per_node(&self) -> impl Iterator<Item = (crate::Component, u32, &VecDeque<Event>)> {
        crate::Component::ALL.into_iter().flat_map(move |c| {
            self.rings[c as usize]
                .iter()
                .enumerate()
                .filter(|(_, ring)| !ring.is_empty())
                .map(move |(n, ring)| (c, n as u32, ring))
        })
    }

    /// All buffered events in one list: per-node rings concatenated in
    /// `(component, node)` order, oldest-first within each ring.
    pub fn snapshot(&self) -> Vec<Event> {
        self.per_node()
            .flat_map(|(_, _, ring)| ring.iter().copied())
            .collect()
    }

    /// Total buffered events across all rings.
    pub fn len(&self) -> usize {
        self.rings
            .iter()
            .flat_map(|nodes| nodes.iter().map(VecDeque::len))
            .sum()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl EventSink for RingSink {
    fn record(&mut self, event: &Event) {
        self.push(event);
    }

    fn take_events(&mut self) -> Option<Vec<Event>> {
        let events = self.snapshot();
        self.rings = Default::default();
        Some(events)
    }
}

/// Streams each event as one JSON line to a writer.
pub struct JsonlSink {
    out: Box<dyn Write + Send>,
    lines: u64,
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink")
            .field("lines", &self.lines)
            .finish_non_exhaustive()
    }
}

impl JsonlSink {
    /// A sink writing to `out`.
    pub fn new(out: impl Write + Send + 'static) -> Self {
        JsonlSink {
            out: Box::new(out),
            lines: 0,
        }
    }

    /// How many lines have been written.
    pub fn lines(&self) -> u64 {
        self.lines
    }
}

impl EventSink for JsonlSink {
    fn record(&mut self, event: &Event) {
        let line = jsonl_line(event);
        // Telemetry must never abort a simulation: I/O errors drop the line.
        let _ = writeln!(self.out, "{line}");
        self.lines += 1;
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

/// Renders one event as a single JSON object line (no trailing newline).
pub fn jsonl_line(event: &Event) -> String {
    let mut s = format!(
        "{{\"cycle\":{},\"node\":{},\"component\":\"{}\",\"addr\":{},\"kind\":\"{}\"",
        event.cycle,
        event.node,
        event.component.label(),
        event.addr,
        event.kind.tag()
    );
    match event.kind {
        EventKind::Access { hit, sync, write } => {
            s.push_str(&format!(",\"hit\":{hit},\"sync\":{sync},\"write\":{write}"));
        }
        EventKind::Backoff { cycles } => s.push_str(&format!(",\"cycles\":{cycles}")),
        EventKind::Mark(m) => s.push_str(&format!(",\"mark\":{m}")),
        EventKind::Transition { from, to, cause } => {
            s.push_str(&format!(
                ",\"from\":\"{from}\",\"to\":\"{to}\",\"cause\":\"{cause}\""
            ));
        }
        EventKind::Registration { owner, prev } => {
            s.push_str(&format!(",\"owner\":{owner},\"prev\":{prev}"));
        }
        EventKind::Invalidation { requester, sharers } => {
            s.push_str(&format!(",\"requester\":{requester},\"sharers\":{sharers}"));
        }
        EventKind::Notify { writer, waiters } => {
            s.push_str(&format!(",\"writer\":{writer},\"waiters\":{waiters}"));
        }
        EventKind::NocEnqueue { dst, flits } => {
            s.push_str(&format!(",\"dst\":{dst},\"flits\":{flits}"));
        }
        EventKind::NocHop { link, busy_until } => {
            s.push_str(&format!(",\"link\":{link},\"busy_until\":{busy_until}"));
        }
        EventKind::NocDequeue { src, latency } => {
            s.push_str(&format!(",\"src\":{src},\"latency\":{latency}"));
        }
        EventKind::MshrAlloc { occupancy } | EventKind::MshrFree { occupancy } => {
            s.push_str(&format!(",\"occupancy\":{occupancy}"));
        }
        EventKind::StallBegin { class } => {
            s.push_str(&format!(",\"class\":\"{}\"", class.label()));
        }
        EventKind::StallEnd { class, cycles } => {
            s.push_str(&format!(
                ",\"class\":\"{}\",\"cycles\":{cycles}",
                class.label()
            ));
        }
        EventKind::Delivery { msg, ordinal } => {
            s.push_str(&format!(",\"msg\":\"{msg}\",\"ordinal\":{ordinal}"));
        }
    }
    s.push('}');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Component, StallClass};
    use std::sync::{Arc, Mutex};

    fn ev(cycle: u64, node: u32, component: Component, kind: EventKind) -> Event {
        Event {
            cycle,
            node,
            component,
            addr: 0x80,
            kind,
        }
    }

    #[test]
    fn ring_keeps_last_n_per_node_in_order() {
        let mut ring = RingSink::new(2);
        for cycle in 0..5 {
            ring.push(&ev(cycle, 0, Component::L1, EventKind::Mark(0)));
        }
        ring.push(&ev(99, 1, Component::Dir, EventKind::Mark(1)));
        assert_eq!(ring.len(), 3);
        let all = ring.snapshot();
        // L1 sorts before Dir in the component order; within the L1 ring
        // the two newest survive, oldest first.
        assert_eq!((all[0].cycle, all[1].cycle), (3, 4));
        assert_eq!(all[2].cycle, 99);
    }

    #[test]
    fn jsonl_streams_one_line_per_event() {
        let buf = Arc::new(Mutex::new(Vec::new()));
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut sink = JsonlSink::new(Shared(buf.clone()));
        sink.record(&ev(
            7,
            2,
            Component::Core,
            EventKind::StallEnd {
                class: StallClass::Spin,
                cycles: 12,
            },
        ));
        sink.flush();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert_eq!(
            text,
            "{\"cycle\":7,\"node\":2,\"component\":\"core\",\"addr\":128,\
             \"kind\":\"stall_end\",\"class\":\"spin\",\"cycles\":12}\n"
        );
    }

    #[test]
    fn recorder_drains() {
        let mut rec = RecorderSink::new();
        rec.record(&ev(1, 0, Component::Sys, EventKind::Mark(3)));
        assert_eq!(rec.events().len(), 1);
        let drained = rec.take_events().unwrap();
        assert_eq!(drained.len(), 1);
        assert!(rec.events().is_empty());
    }
}
