//! Chrome trace-event (Perfetto) export of an event stream.
//!
//! [`export`] renders a recorded event stream as the JSON object format of
//! the Chrome trace-event spec — `{"traceEvents": [...]}` — which
//! `ui.perfetto.dev` (and `chrome://tracing`) open directly. Lanes are
//! organized as processes/threads:
//!
//! * **pid 1 "cores"** — one lane per core: stall and backoff slices
//!   (`ph:"X"`), access/mark/transition instants.
//! * **pid 2 "directories"** — one lane per L2 bank: directory/registry
//!   transitions, registrations, invalidation fan-outs.
//! * **pid 3 "mesh"** — one lane per tile: message enqueue/dequeue instants
//!   plus MSHR occupancy counters (`ph:"C"`).
//!
//! One simulated cycle is rendered as one microsecond of trace time (the
//! trace-event `ts` unit), so Perfetto's time axis reads directly in cycles.
//!
//! [`validate`] is a dependency-free structural checker for the same format
//! (we cannot ship a browser in CI): it parses the JSON with a small
//! recursive-descent parser and verifies the fields the viewer requires.

use crate::{Component, Event, EventKind};
use dvs_stats::report::JsonObject;

/// Process ids used for the three lane groups.
const PID_CORES: u64 = 1;
const PID_DIRS: u64 = 2;
const PID_MESH: u64 = 3;

fn base(name: &str, ph: &str, ts: u64, pid: u64, tid: u64) -> JsonObject {
    let mut obj = JsonObject::new();
    obj.str("name", name)
        .str("ph", ph)
        .u64("ts", ts)
        .u64("pid", pid)
        .u64("tid", tid);
    obj
}

fn instant(name: &str, ts: u64, pid: u64, tid: u64, args: JsonObject) -> JsonObject {
    let mut obj = base(name, "i", ts, pid, tid);
    obj.str("s", "t");
    obj.object("args", args);
    obj
}

fn slice(name: &str, ts: u64, dur: u64, pid: u64, tid: u64) -> JsonObject {
    let mut obj = base(name, "X", ts, pid, tid);
    obj.u64("dur", dur);
    obj
}

fn metadata(name: &str, pid: u64, tid: u64, value: &str) -> JsonObject {
    let mut args = JsonObject::new();
    args.str("name", value);
    let mut obj = base(name, "M", 0, pid, tid);
    obj.object("args", args);
    obj
}

/// Which lane group an event renders into.
fn lane(event: &Event) -> (u64, u64) {
    let node = u64::from(event.node);
    match event.component {
        Component::Core | Component::L1 => (PID_CORES, node),
        Component::Dir => (PID_DIRS, node),
        Component::Noc | Component::Mshr | Component::Sys => (PID_MESH, node),
    }
}

/// Renders `events` as a Chrome trace-event JSON document titled `title`.
pub fn export(title: &str, events: &[Event]) -> String {
    let mut rows: Vec<JsonObject> = Vec::new();
    // Lane naming first: collect the lanes actually used so the metadata
    // stays proportional to the trace.
    let mut lanes: Vec<(u64, u64)> = events.iter().map(lane).collect();
    lanes.sort_unstable();
    lanes.dedup();
    for &(pid, name) in &[
        (PID_CORES, "cores"),
        (PID_DIRS, "directories"),
        (PID_MESH, "mesh"),
    ] {
        if lanes.iter().any(|&(p, _)| p == pid) {
            rows.push(metadata("process_name", pid, 0, name));
        }
    }
    for &(pid, tid) in &lanes {
        let label = match pid {
            PID_CORES => format!("core {tid}"),
            PID_DIRS => format!("dir {tid}"),
            _ => format!("tile {tid}"),
        };
        rows.push(metadata("thread_name", pid, tid, &label));
    }

    for event in events {
        let (pid, tid) = lane(event);
        let ts = event.cycle;
        match event.kind {
            EventKind::Access { hit, sync, write } => {
                let name = match (hit, sync) {
                    (true, true) => "sync hit",
                    (true, false) => "hit",
                    (false, true) => "sync miss",
                    (false, false) => "miss",
                };
                let mut args = JsonObject::new();
                args.u64("addr", event.addr).bool("write", write);
                rows.push(instant(name, ts, pid, tid, args));
            }
            EventKind::Backoff { cycles } => {
                rows.push(slice("hw backoff", ts, cycles.max(1), pid, tid));
            }
            EventKind::Mark(m) => {
                let mut args = JsonObject::new();
                args.u64("mark", u64::from(m));
                rows.push(instant("mark", ts, pid, tid, args));
            }
            EventKind::Transition { from, to, cause } => {
                let mut args = JsonObject::new();
                args.u64("addr", event.addr).str("from", from).str("to", to);
                rows.push(instant(cause, ts, pid, tid, args));
            }
            EventKind::Registration { owner, prev } => {
                let mut args = JsonObject::new();
                args.u64("addr", event.addr).u64("owner", u64::from(owner));
                if prev != u32::MAX {
                    args.u64("prev", u64::from(prev));
                }
                rows.push(instant("registration", ts, pid, tid, args));
            }
            EventKind::Invalidation { requester, sharers } => {
                let mut args = JsonObject::new();
                args.u64("addr", event.addr)
                    .u64("requester", u64::from(requester))
                    .u64("sharers", u64::from(sharers));
                rows.push(instant("invalidation", ts, pid, tid, args));
            }
            EventKind::Notify { writer, waiters } => {
                let mut args = JsonObject::new();
                args.u64("addr", event.addr)
                    .u64("writer", u64::from(writer))
                    .u64("waiters", u64::from(waiters));
                rows.push(instant("notify", ts, pid, tid, args));
            }
            EventKind::NocEnqueue { dst, flits } => {
                let mut args = JsonObject::new();
                args.u64("dst", u64::from(dst))
                    .u64("flits", u64::from(flits));
                rows.push(instant("enqueue", ts, pid, tid, args));
            }
            EventKind::NocHop { link, busy_until } => {
                let mut args = JsonObject::new();
                args.u64("link", u64::from(link))
                    .u64("busy_until", busy_until);
                rows.push(instant("hop", ts, pid, tid, args));
            }
            EventKind::NocDequeue { src: _, latency } => {
                // Render the in-flight window as a slice ending at arrival.
                rows.push(slice(
                    "in flight",
                    ts.saturating_sub(latency),
                    latency.max(1),
                    pid,
                    tid,
                ));
            }
            EventKind::MshrAlloc { occupancy } | EventKind::MshrFree { occupancy } => {
                let mut args = JsonObject::new();
                args.u64("occupancy", u64::from(occupancy));
                let mut obj = base("mshr occupancy", "C", ts, pid, tid);
                obj.object("args", args);
                rows.push(obj);
            }
            EventKind::StallBegin { .. } => {
                // Slices are rendered from the matching StallEnd, which
                // carries the duration.
            }
            EventKind::StallEnd { class, cycles } => {
                rows.push(slice(
                    class.label(),
                    ts.saturating_sub(cycles),
                    cycles.max(1),
                    pid,
                    tid,
                ));
            }
            EventKind::Delivery { msg, ordinal } => {
                let mut args = JsonObject::new();
                args.u64("addr", event.addr).u64("ordinal", ordinal);
                rows.push(instant(msg, ts, pid, tid, args));
            }
        }
    }

    let mut root = JsonObject::new();
    root.str("displayTimeUnit", "ns");
    root.str("otherData", title);
    root.array("traceEvents", rows);
    root.render()
}

/// Structurally validates a trace-event JSON document.
///
/// Checks what `ui.perfetto.dev` needs to load the file: a root object with
/// a `traceEvents` array whose elements each carry a string `name`, a
/// string `ph`, and numeric `ts`/`pid`/`tid`; `"X"` events additionally
/// need a numeric `dur`. Returns the number of trace events.
///
/// # Errors
///
/// A description of the first malformed construct found.
pub fn validate(json: &str) -> Result<u64, String> {
    let value = Parser {
        bytes: json.as_bytes(),
        pos: 0,
    }
    .document()?;
    let Val::Obj(root) = value else {
        return Err("root is not an object".to_owned());
    };
    let events = root
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .map(|(_, v)| v)
        .ok_or("missing traceEvents")?;
    let Val::Arr(events) = events else {
        return Err("traceEvents is not an array".to_owned());
    };
    for (i, event) in events.iter().enumerate() {
        let Val::Obj(fields) = event else {
            return Err(format!("traceEvents[{i}] is not an object"));
        };
        let field = |name: &str| fields.iter().find(|(k, _)| k == name).map(|(_, v)| v);
        match field("name") {
            Some(Val::Str(_)) => {}
            _ => return Err(format!("traceEvents[{i}]: missing string name")),
        }
        let ph = match field("ph") {
            Some(Val::Str(s)) => s.clone(),
            _ => return Err(format!("traceEvents[{i}]: missing string ph")),
        };
        for key in ["ts", "pid", "tid"] {
            match field(key) {
                Some(Val::Num(_)) => {}
                _ => return Err(format!("traceEvents[{i}]: missing numeric {key}")),
            }
        }
        if ph == "X" && !matches!(field("dur"), Some(Val::Num(_))) {
            return Err(format!("traceEvents[{i}]: X event without numeric dur"));
        }
    }
    Ok(events.len() as u64)
}

/// Minimal JSON value for [`validate`].
enum Val {
    Obj(Vec<(String, Val)>),
    Arr(Vec<Val>),
    Str(String),
    Num(#[allow(dead_code)] f64),
    Bool(#[allow(dead_code)] bool),
    Null,
}

/// A no-dependency recursive-descent JSON parser (validation only — numbers
/// are parsed with `str::parse::<f64>`, strings keep escapes unresolved
/// except the basics).
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn document(mut self) -> Result<Val, String> {
        let v = self.value()?;
        self.ws();
        if self.pos != self.bytes.len() {
            return Err(format!("trailing bytes at {}", self.pos));
        }
        Ok(v)
    }

    fn ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_owned())
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Val, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Val::Str(self.string()?)),
            b't' => self.literal("true", Val::Bool(true)),
            b'f' => self.literal("false", Val::Bool(false)),
            b'n' => self.literal("null", Val::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, text: &str, val: Val) -> Result<Val, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(val)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Val, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Val::Obj(members));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.expect(b':')?;
            members.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Val::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Val, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Val::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Val::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self.bytes.get(self.pos).ok_or("unterminated string")?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self.bytes.get(self.pos).ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                other => out.push(other as char),
            }
        }
    }

    fn number(&mut self) -> Result<Val, String> {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Val::Num)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StallClass;

    fn event(cycle: u64, node: u32, component: Component, kind: EventKind) -> Event {
        Event {
            cycle,
            node,
            component,
            addr: 0x1000,
            kind,
        }
    }

    #[test]
    fn export_roundtrips_through_validate() {
        let events = vec![
            event(
                10,
                0,
                Component::L1,
                EventKind::Access {
                    hit: false,
                    sync: true,
                    write: false,
                },
            ),
            event(
                30,
                0,
                Component::Core,
                EventKind::StallEnd {
                    class: StallClass::Memory,
                    cycles: 20,
                },
            ),
            event(
                12,
                1,
                Component::Dir,
                EventKind::Invalidation {
                    requester: 0,
                    sharers: 3,
                },
            ),
            event(
                14,
                2,
                Component::Noc,
                EventKind::NocDequeue { src: 0, latency: 9 },
            ),
            event(
                15,
                0,
                Component::Mshr,
                EventKind::MshrAlloc { occupancy: 2 },
            ),
        ];
        let json = export("unit test", &events);
        let count = validate(&json).expect("structurally valid");
        // 5 events plus lane metadata rows.
        assert!(count > 5, "expected metadata + events, got {count}");
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"sync miss\""));
        assert!(json.contains("\"memory\""));
    }

    #[test]
    fn validate_rejects_malformed_documents() {
        assert!(validate("[]").is_err());
        assert!(validate("{\"traceEvents\": 3}\n").is_err());
        assert!(validate("{\"traceEvents\": [{\"ph\": \"i\"}]}").is_err());
        let missing_dur =
            "{\"traceEvents\": [{\"name\": \"a\", \"ph\": \"X\", \"ts\": 1, \"pid\": 1, \"tid\": 0}]}";
        assert!(validate(missing_dur).unwrap_err().contains("dur"));
        assert!(validate("{\"traceEvents\": []}").unwrap() == 0);
    }
}
