//! The hierarchical metrics registry: counters and log2 histograms keyed by
//! `node / component / name` paths.
//!
//! Registries live entirely outside simulated state: a simulation (or a
//! campaign worker) fills one *after* the run from whatever it observed,
//! then registries are merged in spec order. All storage is ordered
//! (`BTreeMap`), so rendering and merging are deterministic regardless of
//! worker count, and a campaign digest is byte-identical whether metrics
//! were collected or not (they never enter the digest at all).

use dvs_stats::report::JsonObject;
use std::collections::BTreeMap;

/// A power-of-two-bucketed histogram of `u64` samples.
///
/// Bucket `i` counts samples whose bit length is `i` (bucket 0 counts only
/// zeros, bucket 1 counts `1`, bucket 2 counts `2..=3`, …), capped at 63.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Histogram {
    buckets: [u64; 64],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram {
            buckets: [0; 64],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Log2Histogram::default()
    }

    /// Which bucket a sample lands in.
    fn bucket(value: u64) -> usize {
        (64 - value.leading_zeros() as usize).min(63)
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample seen (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Adds every sample of `other` into `self`.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Renders as `{count, sum, max, buckets: {"<lo>..<hi>": n, …}}` with
    /// only the populated buckets listed.
    pub fn to_json(&self) -> JsonObject {
        let mut obj = JsonObject::new();
        obj.u64("count", self.count)
            .u64("sum", self.sum)
            .u64("max", self.max);
        let mut buckets = JsonObject::new();
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let label = if i == 0 {
                "0".to_owned()
            } else {
                let lo = 1u64 << (i - 1);
                let hi = if i == 63 { u64::MAX } else { (1u64 << i) - 1 };
                format!("{lo}..{hi}")
            };
            buckets.u64(&label, n);
        }
        obj.object("buckets", buckets);
        obj
    }
}

/// `(node, component, name)` — the hierarchical key of one metric.
type MetricPath = (String, String, String);

/// Counters and histograms addressed by `node/component/name` paths.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    counters: BTreeMap<MetricPath, u64>,
    histograms: BTreeMap<MetricPath, Log2Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `delta` to the counter at `node/component/name`.
    pub fn add(&mut self, node: &str, component: &str, name: &str, delta: u64) {
        *self
            .counters
            .entry((node.to_owned(), component.to_owned(), name.to_owned()))
            .or_insert(0) += delta;
    }

    /// Increments the counter at `node/component/name` by one — the common
    /// case for event-shaped counters (cache hits, retries, quarantines).
    pub fn incr(&mut self, node: &str, component: &str, name: &str) {
        self.add(node, component, name, 1);
    }

    /// Records one sample into the histogram at `node/component/name`.
    pub fn sample(&mut self, node: &str, component: &str, name: &str, value: u64) {
        self.histograms
            .entry((node.to_owned(), component.to_owned(), name.to_owned()))
            .or_default()
            .record(value);
    }

    /// Merges a whole prebuilt histogram into the one at the path.
    pub fn merge_histogram(&mut self, node: &str, component: &str, name: &str, h: &Log2Histogram) {
        if h.count() == 0 {
            return;
        }
        self.histograms
            .entry((node.to_owned(), component.to_owned(), name.to_owned()))
            .or_default()
            .merge(h);
    }

    /// The counter at a path (0 when absent).
    pub fn counter(&self, node: &str, component: &str, name: &str) -> u64 {
        self.counters
            .get(&(node.to_owned(), component.to_owned(), name.to_owned()))
            .copied()
            .unwrap_or(0)
    }

    /// The histogram at a path, if any samples were recorded.
    pub fn histogram(&self, node: &str, component: &str, name: &str) -> Option<&Log2Histogram> {
        self.histograms
            .get(&(node.to_owned(), component.to_owned(), name.to_owned()))
    }

    /// Every counter as `((node, component, name), value)`, in path order.
    /// Path order is deterministic (`BTreeMap`), so consumers that fold the
    /// counters into artifacts or digests see a stable sequence.
    pub fn counters(&self) -> impl Iterator<Item = ((&str, &str, &str), u64)> {
        self.counters
            .iter()
            .map(|((n, c, m), &v)| ((n.as_str(), c.as_str(), m.as_str()), v))
    }

    /// Sum of one counter name across every node/component.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|((_, _, n), _)| n == name)
            .map(|(_, &v)| v)
            .sum()
    }

    /// Number of distinct metric paths (counters + histograms).
    pub fn len(&self) -> usize {
        self.counters.len() + self.histograms.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Folds `other` into `self`. Merging is commutative and associative on
    /// the stored values, and rendering is path-ordered, so any merge order
    /// produces the same JSON.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (path, &v) in &other.counters {
            *self.counters.entry(path.clone()).or_insert(0) += v;
        }
        for (path, h) in &other.histograms {
            self.histograms.entry(path.clone()).or_default().merge(h);
        }
    }

    /// Renders the registry as a `node → component → name` tree.
    pub fn to_json(&self) -> JsonObject {
        let mut nodes: BTreeMap<&str, BTreeMap<&str, JsonObject>> = BTreeMap::new();
        for ((node, comp, name), &v) in &self.counters {
            nodes
                .entry(node)
                .or_default()
                .entry(comp)
                .or_default()
                .u64(name, v);
        }
        for ((node, comp, name), h) in &self.histograms {
            nodes
                .entry(node)
                .or_default()
                .entry(comp)
                .or_default()
                .object(name, h.to_json());
        }
        let mut root = JsonObject::new();
        for (node, comps) in nodes {
            let mut node_obj = JsonObject::new();
            for (comp, obj) in comps {
                node_obj.object(comp, obj);
            }
            root.object(node, node_obj);
        }
        root
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_buckets_are_bit_lengths() {
        let mut h = Log2Histogram::new();
        for v in [0, 1, 2, 3, 4, 1024, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.max(), u64::MAX);
        let json = h.to_json().render();
        assert!(json.contains("\"0\": 1"));
        assert!(json.contains("\"2..3\": 2"));
        assert!(json.contains("\"1024..2047\": 1"));
    }

    #[test]
    fn incr_and_counters_iterate_in_path_order() {
        let mut m = MetricsRegistry::new();
        m.incr("serve", "cache", "miss");
        m.incr("serve", "cache", "hit");
        m.incr("serve", "cache", "hit");
        m.add("serve", "retry", "transient", 3);
        let listed: Vec<_> = m.counters().collect();
        assert_eq!(
            listed,
            vec![
                (("serve", "cache", "hit"), 2),
                (("serve", "cache", "miss"), 1),
                (("serve", "retry", "transient"), 3),
            ]
        );
    }

    #[test]
    fn merge_is_order_independent() {
        let mut a = MetricsRegistry::new();
        a.add("core0", "l1", "hits", 3);
        a.sample("core0", "core", "stall", 17);
        let mut b = MetricsRegistry::new();
        b.add("core0", "l1", "hits", 2);
        b.add("dir1", "dir", "invals", 5);
        b.sample("core0", "core", "stall", 200);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.to_json().render(), ba.to_json().render());
        assert_eq!(ab.counter("core0", "l1", "hits"), 5);
        assert_eq!(ab.counter_total("hits"), 5);
        assert_eq!(ab.histogram("core0", "core", "stall").unwrap().count(), 2);
    }

    #[test]
    fn json_tree_is_node_component_name() {
        let mut reg = MetricsRegistry::new();
        reg.add("core1", "l1", "misses", 9);
        let text = reg.to_json().render();
        assert!(text.contains("\"core1\""));
        assert!(text.contains("\"l1\""));
        assert!(text.contains("\"misses\": 9"));
    }
}
