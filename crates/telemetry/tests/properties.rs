//! Property tests for the metrics layer the fuzzer and campaign lean on:
//! `MetricsRegistry::merge` must be associative and commutative (worker
//! partials can be folded in any grouping/order), and `Log2Histogram`
//! buckets must actually bound the samples they claim to hold.

use dvs_engine::DetRng;
use dvs_telemetry::{Log2Histogram, MetricsRegistry};

/// A small random registry: counters and histogram samples over a tiny
/// key pool so different registries collide on paths (the interesting
/// merge case).
fn random_registry(rng: &mut DetRng) -> MetricsRegistry {
    const NODES: [&str; 3] = ["core0", "core1", "bank0"];
    const COMPONENTS: [&str; 2] = ["l1", "noc"];
    const NAMES: [&str; 3] = ["hits", "stall", "hops"];
    let mut reg = MetricsRegistry::new();
    for _ in 0..rng.range(1, 30) {
        let node = NODES[rng.below(NODES.len())];
        let comp = COMPONENTS[rng.below(COMPONENTS.len())];
        let name = NAMES[rng.below(NAMES.len())];
        if rng.chance(1, 2) {
            reg.add(node, comp, name, rng.range(0, 1000));
        } else {
            reg.sample(node, comp, name, rng.next_u64() >> rng.range(0, 64) as u32);
        }
    }
    reg
}

fn merged(parts: &[&MetricsRegistry]) -> MetricsRegistry {
    let mut acc = MetricsRegistry::new();
    for p in parts {
        acc.merge(p);
    }
    acc
}

#[test]
fn registry_merge_is_associative_and_commutative() {
    let mut rng = DetRng::new(0x7E1E);
    for round in 0..50 {
        let a = random_registry(&mut rng);
        let b = random_registry(&mut rng);
        let c = random_registry(&mut rng);

        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
        let left = {
            let mut ab = merged(&[&a, &b]);
            ab.merge(&c);
            ab
        };
        let right = {
            let bc = merged(&[&b, &c]);
            let mut acc = a.clone();
            acc.merge(&bc);
            acc
        };
        assert_eq!(left, right, "associativity, round {round}");
        assert_eq!(
            left.to_json().render(),
            right.to_json().render(),
            "associativity (rendered), round {round}"
        );

        // a ⊕ b == b ⊕ a
        assert_eq!(
            merged(&[&a, &b]),
            merged(&[&b, &a]),
            "commutativity, round {round}"
        );

        // The empty registry is the identity.
        assert_eq!(merged(&[&a, &MetricsRegistry::new()]), a);
    }
}

/// Each sample must land in a bucket whose rendered `lo..hi` range
/// contains it, and count/sum/max must track the samples exactly.
#[test]
fn histogram_buckets_bound_their_samples() {
    let mut rng = DetRng::new(0xB0C3);
    for _ in 0..200 {
        // Spread samples across all magnitudes, including 0, 1, u64::MAX.
        let value = match rng.below(8) {
            0 => 0,
            1 => 1,
            2 => u64::MAX,
            _ => rng.next_u64() >> rng.range(0, 64) as u32,
        };
        let mut h = Log2Histogram::new();
        h.record(value);
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), value);
        assert_eq!(h.max(), value);

        // Exactly one populated bucket, and its bounds contain the sample.
        let json = h.to_json().render();
        let (lo, hi) = single_bucket_bounds(&json);
        assert!(
            lo <= value && value <= hi,
            "sample {value} outside bucket {lo}..{hi} ({json})"
        );
    }

    // Bulk invariants: count/sum aggregate, max is the maximum.
    let mut h = Log2Histogram::new();
    let mut values = Vec::new();
    for _ in 0..500 {
        let v = rng.next_u64() >> rng.range(0, 64) as u32;
        h.record(v);
        values.push(v);
    }
    assert_eq!(h.count(), values.len() as u64);
    assert_eq!(
        h.sum(),
        values.iter().fold(0u64, |s, &v| s.saturating_add(v))
    );
    assert_eq!(h.max(), *values.iter().max().unwrap());

    // Merging two histograms is sample-union: same as recording everything
    // into one.
    let mut left = Log2Histogram::new();
    let mut right = Log2Histogram::new();
    let mut both = Log2Histogram::new();
    for (i, &v) in values.iter().enumerate() {
        if i % 2 == 0 { &mut left } else { &mut right }.record(v);
        both.record(v);
    }
    left.merge(&right);
    assert_eq!(left.to_json().render(), both.to_json().render());
}

/// Parses the single populated bucket's `"lo..hi"` (or `"0"`) label out of
/// a one-sample histogram rendering.
fn single_bucket_bounds(json: &str) -> (u64, u64) {
    let buckets = json
        .split("\"buckets\":")
        .nth(1)
        .expect("buckets object present");
    let inner = buckets
        .trim_start()
        .trim_start_matches('{')
        .split('}')
        .next()
        .expect("bucket body");
    let label = inner.split('"').nth(1).expect("exactly one bucket label");
    if let Some((lo, hi)) = label.split_once("..") {
        (lo.parse().expect("lo"), hi.parse().expect("hi"))
    } else {
        let v: u64 = label.parse().expect("degenerate bucket");
        (v, v)
    }
}
