//! Differential property test: the calendar-queue [`Scheduler`] against the
//! retired binary-heap implementation ([`reference::HeapScheduler`]).
//!
//! The determinism contract the whole simulator rests on is that the pop
//! sequence is a pure function of the schedule sequence: events come out in
//! `(cycle, scheduling-order)` order. The heap implementation satisfied it
//! by construction; the calendar queue must reproduce it exactly, including
//! across the ring/overflow boundary. These tests drive both schedulers
//! through identical randomized schedule/pop interleavings and assert the
//! `(cycle, event)` streams never diverge.

use dvs_engine::reference::HeapScheduler;
use dvs_engine::{Cycle, DetRng, Scheduler};

/// Drives both schedulers through one seeded random interleaving of
/// schedules and pops, checking every pop and counter along the way.
fn differential_run(seed: u64, ops: usize, max_delay: Cycle, burst: u64) {
    let mut rng = DetRng::new(seed);
    let mut new: Scheduler<u64> = Scheduler::new();
    let mut old: HeapScheduler<u64> = HeapScheduler::new();
    let mut next_tag: u64 = 0;

    for op in 0..ops {
        // Weighted coin: schedule bursts build the queue up; pops drain it.
        if rng.range(0, 100) < 55 || old.is_empty() {
            for _ in 0..rng.range(1, burst + 1) {
                let delay = rng.range(0, max_delay + 1);
                new.schedule_in(delay, next_tag);
                old.schedule_in(delay, next_tag);
                next_tag += 1;
            }
        } else {
            let a = new.pop();
            let b = old.pop();
            assert_eq!(a, b, "seed {seed}: pop diverged at op {op}");
        }
        assert_eq!(new.len(), old.len(), "seed {seed}: len diverged at op {op}");
        assert_eq!(new.now(), old.now(), "seed {seed}: now diverged at op {op}");
        assert_eq!(
            new.peek_cycle(),
            old.peek_cycle(),
            "seed {seed}: peek diverged at op {op}"
        );
        assert_eq!(new.scheduled_events(), old.scheduled_events());
    }

    // Drain both to the end: the tails must match too.
    loop {
        let a = new.pop();
        let b = old.pop();
        assert_eq!(a, b, "seed {seed}: drain diverged");
        if a.is_none() {
            break;
        }
    }
}

#[test]
fn near_future_delays_match_heap() {
    // Delays within the calendar ring: the pure ring path.
    for seed in 0..8 {
        differential_run(seed, 4000, 200, 4);
    }
}

#[test]
fn far_future_delays_match_heap() {
    // Delays far beyond the ring: the pure overflow path.
    for seed in 8..16 {
        differential_run(seed, 2000, 20_000, 4);
    }
}

#[test]
fn mixed_delays_cross_the_ring_boundary() {
    // Delays straddling the ring width, including the exact boundary, so
    // overflow events land on cycles that also hold ring events and the
    // overflow-first tie-break is exercised.
    for seed in 16..32 {
        differential_run(seed, 4000, 600, 6);
    }
}

#[test]
fn same_cycle_bursts_keep_fifo_across_tiers() {
    // Tiny delay range: huge same-cycle bursts, maximal FIFO pressure.
    for seed in 32..40 {
        differential_run(seed, 3000, 2, 16);
    }
}

#[test]
fn zero_delay_self_scheduling_matches() {
    // A core that keeps rescheduling itself at the current cycle (the
    // spin-retry pattern) must interleave identically.
    let mut new: Scheduler<u32> = Scheduler::new();
    let mut old: HeapScheduler<u32> = HeapScheduler::new();
    for i in 0..4 {
        new.schedule_at(5, i);
        old.schedule_at(5, i);
    }
    for round in 0..100u32 {
        let a = new.pop();
        let b = old.pop();
        assert_eq!(a, b, "round {round}");
        let (cycle, tag) = a.expect("queue never drains in this loop");
        assert_eq!(cycle, 5);
        new.schedule_at(5, tag + 100);
        old.schedule_at(5, tag + 100);
    }
}

#[test]
fn overflow_events_precede_ring_events_on_the_same_cycle() {
    // Construct the tie directly: one event scheduled while its cycle was
    // out of window (overflow, smaller seq), one scheduled after `now`
    // advanced enough to bring the same cycle in window (ring, larger seq).
    let mut new: Scheduler<&str> = Scheduler::new();
    let mut old: HeapScheduler<&str> = HeapScheduler::new();
    for s in [&mut new as &mut dyn FnSched, &mut old as &mut dyn FnSched] {
        s.sched(1000, "early-scheduled");
        s.sched(900, "stepping-stone");
    }
    assert_eq!(new.pop(), old.pop()); // now = 900; 1000 is in window now.
    new.schedule_at(1000, "late-scheduled");
    old.schedule_at(1000, "late-scheduled");
    assert_eq!(new.pop(), Some((1000, "early-scheduled")));
    assert_eq!(old.pop(), Some((1000, "early-scheduled")));
    assert_eq!(new.pop(), Some((1000, "late-scheduled")));
    assert_eq!(old.pop(), Some((1000, "late-scheduled")));
}

/// Object-safe shim so the tie-break test can drive both schedulers through
/// one loop despite their distinct types.
trait FnSched {
    fn sched(&mut self, at: Cycle, tag: &'static str);
}
impl FnSched for Scheduler<&'static str> {
    fn sched(&mut self, at: Cycle, tag: &'static str) {
        self.schedule_at(at, tag);
    }
}
impl FnSched for HeapScheduler<&'static str> {
    fn sched(&mut self, at: Cycle, tag: &'static str) {
        self.schedule_at(at, tag);
    }
}
