//! Discrete-event simulation kernel for the DeNovoSync reproduction.
//!
//! This crate is the lowest layer of the simulator stack. It knows nothing
//! about caches, protocols, or networks; it provides exactly three things:
//!
//! * [`Cycle`] — the simulated time base (one cycle of the 2 GHz clock in the
//!   paper's Table 1),
//! * [`Scheduler`] — a deterministic event queue: events scheduled for the
//!   same cycle are delivered in the order they were scheduled, so a run is a
//!   pure function of its inputs and seed,
//! * [`DetRng`] — a small, dependency-free, splittable pseudo-random number
//!   generator used for workload randomization (dummy-compute lengths,
//!   software backoff, application models).
//!
//! # Examples
//!
//! ```
//! use dvs_engine::Scheduler;
//!
//! let mut sched = Scheduler::new();
//! sched.schedule_in(5, "world");
//! sched.schedule_in(1, "hello");
//! assert_eq!(sched.pop(), Some((1, "hello")));
//! assert_eq!(sched.pop(), Some((5, "world")));
//! assert_eq!(sched.now(), 5);
//! ```

pub mod reference;
pub mod rng;

pub use rng::DetRng;

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Simulated time, in core clock cycles.
pub type Cycle = u64;

/// Width of the calendar ring: events within this many cycles of `now` live
/// in O(1) per-cycle buckets; everything further out sits in the overflow
/// heap. 256 covers every single-hop latency in the simulated machine
/// (DRAM at 150 cycles is the largest — see `dvs-core`'s `LatencyConfig`),
/// so the heap only sees pathological far-future events.
const RING: usize = 256;

/// A deterministic discrete-event scheduler.
///
/// Events are ordered by `(cycle, sequence)`: ties on the cycle are broken by
/// scheduling order, which makes simulations exactly reproducible. The
/// scheduler tracks the current simulated time ([`Scheduler::now`]), which
/// advances monotonically as events are popped.
///
/// # Implementation
///
/// A two-tier calendar queue. Near-future events (within [`RING`] cycles of
/// `now`) go into a ring of per-cycle FIFO buckets — scheduling and popping
/// are O(1) plus a scan over empty cycles, with no comparisons and no
/// per-event reordering. Far-future events go into a conventional
/// `(cycle, seq)` binary heap and are popped from there directly. The pop
/// order is identical to a single global `(cycle, seq)` priority queue
/// (property-tested against [`reference::HeapScheduler`]): within a cycle,
/// overflow events always precede ring events because an event can only
/// have entered the overflow tier at a strictly earlier scheduling time —
/// `now` is monotone, so its sequence number is strictly smaller.
///
/// # Examples
///
/// ```
/// use dvs_engine::Scheduler;
///
/// let mut sched: Scheduler<u32> = Scheduler::new();
/// sched.schedule_at(10, 1);
/// sched.schedule_at(10, 2); // same cycle: FIFO order preserved
/// assert_eq!(sched.pop(), Some((10, 1)));
/// assert_eq!(sched.pop(), Some((10, 2)));
/// ```
#[derive(Debug, Clone)]
pub struct Scheduler<E> {
    /// `ring[c % RING]` is the FIFO bucket for absolute cycle `c`, valid for
    /// `c` in `[now, now + RING)`. Buckets below `now` are always empty (a
    /// cycle is fully drained before `now` moves past it), so each slot is
    /// unambiguous.
    ring: Vec<VecDeque<E>>,
    /// Number of events currently in the ring (so pops skip the scan
    /// entirely when only the overflow tier is populated).
    ring_len: usize,
    /// Far-future events, ordered by `(cycle, seq)`.
    overflow: BinaryHeap<Entry<E>>,
    now: Cycle,
    seq: u64,
    scheduled: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    key: Reverse<(Cycle, u64)>,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// Creates an empty scheduler at cycle 0.
    pub fn new() -> Self {
        Scheduler {
            ring: (0..RING).map(|_| VecDeque::new()).collect(),
            ring_len: 0,
            overflow: BinaryHeap::new(),
            now: 0,
            seq: 0,
            scheduled: 0,
        }
    }

    /// The current simulated cycle (the cycle of the most recently popped
    /// event, or 0 if none has been popped yet).
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Total number of events scheduled over the lifetime of this scheduler.
    pub fn scheduled_events(&self) -> u64 {
        self.scheduled
    }

    /// Schedules `event` at absolute cycle `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (`at < self.now()`); simulated time only
    /// moves forward.
    pub fn schedule_at(&mut self, at: Cycle, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={} now={}",
            at,
            self.now
        );
        self.seq += 1;
        self.scheduled += 1;
        if at - self.now < RING as Cycle {
            self.ring[(at % RING as Cycle) as usize].push_back(event);
            self.ring_len += 1;
        } else {
            self.overflow.push(Entry {
                key: Reverse((at, self.seq)),
                event,
            });
        }
    }

    /// Schedules `event` `delay` cycles from now.
    pub fn schedule_in(&mut self, delay: Cycle, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Removes and returns the next event, advancing [`Scheduler::now`] to
    /// its cycle. Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        if self.ring_len > 0 {
            // The overflow tier can undercut the ring (its events may have
            // fallen inside the window as `now` advanced), and at an equal
            // cycle it wins: overflow entries always carry smaller seqs.
            let horizon = match self.overflow.peek() {
                Some(e) => e.key.0 .0,
                None => Cycle::MAX,
            };
            let mut c = self.now;
            loop {
                if c >= horizon {
                    break; // overflow event is due first (or ties).
                }
                let slot = &mut self.ring[(c % RING as Cycle) as usize];
                if let Some(event) = slot.pop_front() {
                    self.ring_len -= 1;
                    self.now = c;
                    return Some((c, event));
                }
                c += 1;
                // The ring is non-empty, so this terminates within RING
                // steps; horizon only cuts the scan short.
                debug_assert!(c < self.now + RING as Cycle + 1);
            }
        }
        let entry = self.overflow.pop()?;
        let Reverse((cycle, _)) = entry.key;
        debug_assert!(cycle >= self.now);
        self.now = cycle;
        Some((cycle, entry.event))
    }

    /// The cycle of the next pending event, if any.
    pub fn peek_cycle(&self) -> Option<Cycle> {
        let horizon = self.overflow.peek().map(|e| e.key.0 .0);
        if self.ring_len > 0 {
            let limit = horizon.unwrap_or(Cycle::MAX);
            let mut c = self.now;
            while c < limit {
                if !self.ring[(c % RING as Cycle) as usize].is_empty() {
                    return Some(c);
                }
                c += 1;
            }
        }
        horizon
    }

    /// The cycle of the next pending event — the lookahead hook for
    /// mesh-partitioned parallel stepping (the parti-gem5 playbook): a
    /// partition may safely advance to
    /// `min(next_event_cycle(), neighbour horizons + link latency)` without
    /// coordinating. Today it is synonymous with [`Scheduler::peek_cycle`];
    /// it exists as a named seam so partitioned drivers don't couple to the
    /// peek API.
    pub fn next_event_cycle(&self) -> Option<Cycle> {
        self.peek_cycle()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.ring_len + self.overflow.len()
    }

    /// Whether there are no pending events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut s = Scheduler::new();
        s.schedule_at(30, 'c');
        s.schedule_at(10, 'a');
        s.schedule_at(20, 'b');
        assert_eq!(s.pop(), Some((10, 'a')));
        assert_eq!(s.pop(), Some((20, 'b')));
        assert_eq!(s.pop(), Some((30, 'c')));
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn same_cycle_is_fifo() {
        let mut s = Scheduler::new();
        for i in 0..100u32 {
            s.schedule_at(7, i);
        }
        for i in 0..100u32 {
            assert_eq!(s.pop(), Some((7, i)));
        }
    }

    #[test]
    fn now_advances_with_pops() {
        let mut s = Scheduler::new();
        assert_eq!(s.now(), 0);
        s.schedule_at(5, ());
        s.pop();
        assert_eq!(s.now(), 5);
        s.schedule_in(3, ());
        assert_eq!(s.peek_cycle(), Some(8));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut s = Scheduler::new();
        s.schedule_at(10, ());
        s.pop();
        s.schedule_at(9, ());
    }

    #[test]
    fn len_and_counters() {
        let mut s = Scheduler::new();
        assert!(s.is_empty());
        s.schedule_at(1, ());
        s.schedule_at(2, ());
        assert_eq!(s.len(), 2);
        assert_eq!(s.scheduled_events(), 2);
        s.pop();
        assert_eq!(s.len(), 1);
        assert_eq!(s.scheduled_events(), 2);
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut s = Scheduler::new();
        s.schedule_at(1, 1u32);
        s.schedule_at(4, 4u32);
        assert_eq!(s.pop(), Some((1, 1)));
        s.schedule_at(2, 2u32);
        s.schedule_at(3, 3u32);
        assert_eq!(s.pop(), Some((2, 2)));
        assert_eq!(s.pop(), Some((3, 3)));
        assert_eq!(s.pop(), Some((4, 4)));
    }
}
