//! A small deterministic pseudo-random number generator.
//!
//! The simulator needs randomness only for workload shaping (dummy-compute
//! lengths between kernel iterations, software exponential backoff, synthetic
//! application models). Runs must be exactly reproducible, and per-thread
//! streams must be independent, so we use a tiny splittable generator
//! (SplitMix64, Steele et al. 2014) instead of pulling in an external crate.

/// Deterministic SplitMix64 pseudo-random number generator.
///
/// Not cryptographically secure; statistical quality is more than sufficient
/// for workload randomization. Use [`DetRng::split`] to derive independent
/// per-thread streams from one seed.
///
/// # Examples
///
/// ```
/// use dvs_engine::DetRng;
///
/// let mut a = DetRng::new(42);
/// let mut b = DetRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // reproducible
///
/// let mut t0 = a.split(0);
/// let mut t1 = a.split(1);
/// assert_ne!(t0.next_u64(), t1.next_u64()); // independent streams
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DetRng {
    state: u64,
}

const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        DetRng {
            state: mix64(seed ^ GOLDEN_GAMMA),
        }
    }

    /// Returns the next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        mix64(self.state)
    }

    /// Derives an independent generator for stream `index` without disturbing
    /// this generator's own stream.
    pub fn split(&self, index: u64) -> DetRng {
        DetRng::new(mix64(self.state ^ mix64(index.wrapping_add(1))))
    }

    /// Returns a value uniformly distributed in `[lo, hi)`.
    ///
    /// Uses the widening-multiply technique, which has negligible modulo bias
    /// for the range sizes used here (all far below 2^32).
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = hi - lo;
        let x = self.next_u64();
        lo + (((x as u128 * span as u128) >> 64) as u64)
    }

    /// Returns a `usize` uniformly distributed in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        self.range(0, n as u64) as usize
    }

    /// Returns `true` with probability `num / denom`.
    ///
    /// # Panics
    ///
    /// Panics if `denom == 0`.
    pub fn chance(&mut self, num: u64, denom: u64) -> bool {
        assert!(denom > 0, "zero denominator");
        self.range(0, denom) < num
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i + 1);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn split_streams_are_stable_and_distinct() {
        let root = DetRng::new(99);
        let mut s0a = root.split(0);
        let mut s0b = root.split(0);
        let mut s1 = root.split(1);
        assert_eq!(s0a.next_u64(), s0b.next_u64());
        assert_ne!(s0a.next_u64(), s1.next_u64());
    }

    #[test]
    fn range_stays_in_bounds() {
        let mut r = DetRng::new(3);
        for _ in 0..10_000 {
            let v = r.range(1400, 1800);
            assert!((1400..1800).contains(&v));
        }
    }

    #[test]
    fn range_covers_extremes() {
        let mut r = DetRng::new(4);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            match r.range(0, 4) {
                0 => seen_lo = true,
                3 => seen_hi = true,
                _ => {}
            }
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut r = DetRng::new(5);
        let mut buckets = [0u32; 8];
        let n = 80_000;
        for _ in 0..n {
            buckets[r.below(8)] += 1;
        }
        for &b in &buckets {
            // Expected 10_000 per bucket; allow 10% slack.
            assert!((9_000..11_000).contains(&b), "bucket count {b}");
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::new(6);
        assert!(!r.chance(0, 10));
        assert!(r.chance(10, 10));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = DetRng::new(8);
        let mut v: Vec<u32> = (0..64).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<u32>>());
        assert_ne!(v, (0..64).collect::<Vec<u32>>());
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        DetRng::new(0).range(5, 5);
    }
}
