//! The original binary-heap scheduler, kept as a differential oracle.
//!
//! [`HeapScheduler`] is the `Scheduler` implementation this crate shipped
//! before the calendar-queue rewrite: one global `BinaryHeap` ordered by
//! `(cycle, seq)`. It is retained verbatim — same API, same panic contract —
//! so the permanent regression test in `tests/differential.rs` can replay
//! arbitrary schedule/pop interleavings against both implementations and
//! assert identical `(cycle, event)` pop sequences. It is not used by the
//! simulator itself.

use crate::Cycle;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The pre-calendar-queue scheduler: a single `(cycle, seq)` binary heap.
///
/// Semantically identical to [`crate::Scheduler`]; kept only as the oracle
/// for differential testing.
#[derive(Debug, Clone)]
pub struct HeapScheduler<E> {
    heap: BinaryHeap<Entry<E>>,
    now: Cycle,
    seq: u64,
    scheduled: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    key: Reverse<(Cycle, u64)>,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

impl<E> Default for HeapScheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapScheduler<E> {
    /// Creates an empty scheduler at cycle 0.
    pub fn new() -> Self {
        HeapScheduler {
            heap: BinaryHeap::new(),
            now: 0,
            seq: 0,
            scheduled: 0,
        }
    }

    /// The current simulated cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Total number of events scheduled over the lifetime of this scheduler.
    pub fn scheduled_events(&self) -> u64 {
        self.scheduled
    }

    /// Schedules `event` at absolute cycle `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (`at < self.now()`).
    pub fn schedule_at(&mut self, at: Cycle, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={} now={}",
            at,
            self.now
        );
        self.seq += 1;
        self.scheduled += 1;
        self.heap.push(Entry {
            key: Reverse((at, self.seq)),
            event,
        });
    }

    /// Schedules `event` `delay` cycles from now.
    pub fn schedule_in(&mut self, delay: Cycle, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Removes and returns the next event, advancing `now` to its cycle.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        let entry = self.heap.pop()?;
        let Reverse((cycle, _)) = entry.key;
        debug_assert!(cycle >= self.now);
        self.now = cycle;
        Some((cycle, entry.event))
    }

    /// The cycle of the next pending event, if any.
    pub fn peek_cycle(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.key.0 .0)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether there are no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}
