//! Litmus tests: tiny multi-threaded programs with a sequential-consistency
//! verdict over their final memory state.
//!
//! Each [`Litmus`] bundles a memory layout, one program per thread, a list
//! of observable result words, and a predicate that holds iff the final
//! state is one sequential consistency allows. The programs record what
//! their loads observed into per-thread result words so the verdict needs
//! only the final memory image — no instruction-level trace.
//!
//! The suite is deliberately small (2 threads, 1–2 contended lines): these
//! programs are the workload of the `dvs-check` model checker, which
//! explores *every* message-delivery interleaving, so state-space size is
//! the budget. The timed simulator also runs them (see `tests/litmus.rs`)
//! as a cheap SC smoke test under all three protocols.
//!
//! All programs are written to be SC under every protocol's contract:
//! synchronization accesses (`loads`/`stores`/RMWs) order everything, and
//! cross-thread *data* communication is fenced on the producer side and
//! self-invalidated on the consumer side, as DeNovo's static-region model
//! requires. MESI treats the self-invalidation as a no-op, so one program
//! text serves all three protocols.

use crate::asm::Asm;
use crate::isa::{Cond, Program, Reg};
use dvs_mem::{Addr, LayoutBuilder, MemoryLayout};

/// The SC verdict over the observable values, in `observables` order.
type VerdictFn = Box<dyn Fn(&[u64]) -> bool + Send + Sync>;

/// A litmus test: programs, layout, observables, and the SC verdict.
pub struct Litmus {
    /// Short lowercase name (`"sb"`, `"mp"`, …), stable across releases —
    /// used in CI stage names and bench JSON keys.
    pub name: &'static str,
    /// What the verdict asserts, for failure messages.
    pub property: &'static str,
    /// The memory layout the programs were assembled against.
    pub layout: MemoryLayout,
    /// One program per thread.
    pub programs: Vec<Program>,
    /// Named result words to read from final memory, in predicate order.
    pub observables: Vec<(&'static str, Addr)>,
    verdict: VerdictFn,
}

impl Litmus {
    /// Number of threads.
    pub fn nthreads(&self) -> usize {
        self.programs.len()
    }

    /// Applies the SC verdict to a final memory state, reading each
    /// observable through `read` (e.g. `|a| sys.read_word(a)`).
    ///
    /// Returns the observed values on failure so the caller can print them
    /// alongside [`Litmus::property`].
    pub fn check(&self, read: impl Fn(Addr) -> u64) -> Result<(), Vec<(&'static str, u64)>> {
        let vals: Vec<u64> = self.observables.iter().map(|&(_, a)| read(a)).collect();
        if (self.verdict)(&vals) {
            Ok(())
        } else {
            Err(self.observables.iter().map(|&(n, _)| n).zip(vals).collect())
        }
    }

    /// The full suite, smallest state space first.
    pub fn all() -> Vec<Litmus> {
        vec![corr(), fai(), sb(), mp(), tatas()]
    }

    /// The extended shapes — wider than the checker budget allows
    /// ([`Litmus::all`] stays 2-thread), but cheap on the timed simulator
    /// and the differential fuzzer: IRIW and the n-thread message-passing
    /// chains.
    pub fn extended() -> Vec<Litmus> {
        vec![iriw(), mp_chain(3), mp_chain(4)]
    }

    /// Looks a test up by [`Litmus::name`] across [`Litmus::all`],
    /// [`Litmus::extended`], and the `tatasN` scaling family
    /// (`tatas3`..`tatas16`).
    pub fn by_name(name: &str) -> Option<Litmus> {
        if let Some(n) = name.strip_prefix("tatas").and_then(|s| s.parse().ok()) {
            if (3..=16).contains(&n) {
                return Some(tatas_n(n));
            }
        }
        Self::all()
            .into_iter()
            .chain(Self::extended())
            .find(|l| l.name == name)
    }
}

impl std::fmt::Debug for Litmus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Litmus")
            .field("name", &self.name)
            .field("threads", &self.programs.len())
            .field("property", &self.property)
            .finish_non_exhaustive()
    }
}

/// Store buffering (SB): each thread sync-stores its own flag, then
/// sync-loads the other's. SC forbids both threads reading the initial
/// zero — some store must be ordered first.
pub fn sb() -> Litmus {
    let mut lb = LayoutBuilder::new();
    let sync = lb.region("sync");
    let data = lb.region("results");
    let x = lb.sync_var("x", sync, true);
    let y = lb.sync_var("y", sync, true);
    let res0 = lb.sync_var("res0", data, true);
    let res1 = lb.sync_var("res1", data, true);

    let thread = |mine: Addr, other: Addr, res: Addr| {
        let mut a = Asm::new("sb");
        let (v, p, r) = (Reg(1), Reg(2), Reg(3));
        a.movi(v, 1);
        a.movi(p, mine.raw());
        a.stores(v, p, 0); // my flag := 1 (sync)
        a.fence();
        a.movi(p, other.raw());
        a.loads(r, p, 0); // observe the other flag (sync)
        a.movi(p, res.raw());
        a.store(r, p, 0);
        a.fence(); // result globally visible before halt
        a.halt();
        a.build()
    };

    Litmus {
        name: "sb",
        property: "SC forbids both threads observing 0 (res0 == 0 && res1 == 0)",
        layout: lb.build(),
        programs: vec![thread(x, y, res0), thread(y, x, res1)],
        observables: vec![("res0", res0), ("res1", res1)],
        verdict: Box::new(|v| !(v[0] == 0 && v[1] == 0)),
    }
}

/// Message passing (MP): the producer writes data (plain store), fences,
/// then sync-stores a flag; the consumer spins on the flag, self-invalidates
/// the data region, and loads the data. SC + the self-invalidation contract
/// require the consumer to observe the payload.
pub fn mp() -> Litmus {
    let mut lb = LayoutBuilder::new();
    let sync = lb.region("sync");
    let payload = lb.region("payload");
    let results = lb.region("results");
    let datum = lb.sync_var("datum", payload, true);
    let flag = lb.sync_var("flag", sync, true);
    let res = lb.sync_var("res", results, true);

    let producer = {
        let mut a = Asm::new("mp-producer");
        let (v, p) = (Reg(1), Reg(2));
        a.movi(v, 42);
        a.movi(p, datum.raw());
        a.store(v, p, 0); // payload (plain data store)
        a.fence(); // payload complete before the flag is raised
        a.movi(v, 1);
        a.movi(p, flag.raw());
        a.stores(v, p, 0); // flag := 1 (sync release)
        a.halt();
        a.build()
    };
    let consumer = {
        let mut a = Asm::new("mp-consumer");
        let (one, p, r) = (Reg(1), Reg(2), Reg(3));
        a.movi(one, 1);
        a.movi(p, flag.raw());
        a.spin_until(r, p, 0, Cond::Eq, one); // acquire: wait for flag == 1
        a.self_inv(payload); // discard possibly-stale payload copies
        a.movi(p, datum.raw());
        a.load(r, p, 0);
        a.movi(p, res.raw());
        a.store(r, p, 0);
        a.fence();
        a.halt();
        a.build()
    };

    Litmus {
        name: "mp",
        property: "consumer must observe the payload published before the flag (res == 42)",
        layout: lb.build(),
        programs: vec![producer, consumer],
        observables: vec![("res", res)],
        verdict: Box::new(|v| v[0] == 42),
    }
}

/// Coherent read-read (CoRR): one thread sync-stores `x := 1`; the other
/// sync-loads `x` twice. Coherence forbids the second load travelling
/// backwards (observing 1 then 0).
pub fn corr() -> Litmus {
    let mut lb = LayoutBuilder::new();
    let sync = lb.region("sync");
    let results = lb.region("results");
    let x = lb.sync_var("x", sync, true);
    let res0 = lb.sync_var("res0", results, true);
    let res1 = lb.sync_var("res1", results, true);

    let writer = {
        let mut a = Asm::new("corr-writer");
        let (v, p) = (Reg(1), Reg(2));
        a.movi(v, 1);
        a.movi(p, x.raw());
        a.stores(v, p, 0);
        a.halt();
        a.build()
    };
    let reader = {
        let mut a = Asm::new("corr-reader");
        let (p, r0, r1, q) = (Reg(1), Reg(2), Reg(3), Reg(4));
        a.movi(p, x.raw());
        a.loads(r0, p, 0);
        a.loads(r1, p, 0);
        a.movi(q, res0.raw());
        a.store(r0, q, 0);
        a.movi(q, res1.raw());
        a.store(r1, q, 0);
        a.fence();
        a.halt();
        a.build()
    };

    Litmus {
        name: "corr",
        property: "reads of one location must not go backwards (res0 == 1 => res1 == 1)",
        layout: lb.build(),
        programs: vec![writer, reader],
        observables: vec![("res0", res0), ("res1", res1)],
        verdict: Box::new(|v| !(v[0] == 1 && v[1] == 0)),
    }
}

/// Atomic fetch-and-increment: both threads `fai` one shared sync counter
/// and record the old value they observed. Atomicity requires the two old
/// values to be distinct — 0 and 1 in some order — and the counter to reach
/// the thread count. Unlike [`tatas`], the RMW results are the observables
/// themselves, so a lost sync update (e.g. a directory that executes an RMW
/// without applying its write) fails the verdict directly rather than only
/// breaking mutual exclusion.
pub fn fai() -> Litmus {
    let mut lb = LayoutBuilder::new();
    let sync = lb.region("sync");
    let results = lb.region("results");
    let counter = lb.sync_var("counter", sync, true);
    let res0 = lb.sync_var("res0", results, true);
    let res1 = lb.sync_var("res1", results, true);

    let thread = |res: Addr| {
        let mut a = Asm::new("fai");
        let (one, p, r, q) = (Reg(1), Reg(2), Reg(3), Reg(4));
        a.movi(one, 1);
        a.movi(p, counter.raw());
        a.fai(r, p, 0, one); // r := old counter; counter += 1 (one atom)
        a.movi(q, res.raw());
        a.store(r, q, 0);
        a.fence(); // result globally visible before halt
        a.halt();
        a.build()
    };

    Litmus {
        name: "fai",
        property: "atomic increments: counter == 2 and the old values are {0, 1}",
        layout: lb.build(),
        programs: vec![thread(res0), thread(res1)],
        observables: vec![("counter", counter), ("res0", res0), ("res1", res1)],
        verdict: Box::new(|v| v[0] == 2 && v[1] + v[2] == 1),
    }
}

/// Test-and-test-and-set lock: two threads each acquire the lock (TAS,
/// spinning on a sync read while held), increment a shared counter inside
/// the critical section (data accesses, guarded by self-invalidation on
/// entry and a fence before release), and sync-store 0 to release. Mutual
/// exclusion requires the counter to equal the thread count at the end.
pub fn tatas() -> Litmus {
    tatas_n(2)
}

/// [`tatas`] generalized to `nthreads` contenders — the model checker's
/// scaling workload (state space grows steeply with each extra contender).
/// Not part of [`Litmus::all`]; only `nthreads == 2` is suite-sized. The
/// 8–16-contender shapes are the deep-exploration targets (millions of
/// states; see dvs-check's bitstate/swarm/deepening modes).
///
/// # Panics
///
/// Panics unless `2 <= nthreads <= 16` (named variants keep
/// [`Litmus::name`] a static string).
pub fn tatas_n(nthreads: usize) -> Litmus {
    let mut lb = LayoutBuilder::new();
    let sync = lb.region("sync");
    let cs = lb.region("cs");
    let lock = lb.sync_var("lock", sync, true);
    let counter = lb.sync_var("counter", cs, true);

    let thread = || {
        let mut a = Asm::new("tatas");
        let (zero, one, lk, r, c, v) = (Reg(1), Reg(2), Reg(3), Reg(4), Reg(5), Reg(6));
        a.movi(zero, 0);
        a.movi(one, 1);
        a.movi(lk, lock.raw());
        let acquire = a.here();
        a.tas(r, lk, 0);
        let entered = a.label();
        a.beq(r, zero, entered); // old value 0 => we hold the lock
        a.spin_until(r, lk, 0, Cond::Eq, zero); // test: wait until free
        a.jmp(acquire); // then test-and-set again
        a.bind(entered);
        a.self_inv(cs); // acquire: discard stale critical-section data
        a.movi(c, counter.raw());
        a.load(v, c, 0);
        a.add(v, v, one);
        a.store(v, c, 0);
        a.fence(); // counter update complete before the lock is released
        a.stores(zero, lk, 0); // release
        a.halt();
        a.build()
    };

    let name = match nthreads {
        2 => "tatas",
        3 => "tatas3",
        4 => "tatas4",
        5 => "tatas5",
        6 => "tatas6",
        7 => "tatas7",
        8 => "tatas8",
        9 => "tatas9",
        10 => "tatas10",
        11 => "tatas11",
        12 => "tatas12",
        13 => "tatas13",
        14 => "tatas14",
        15 => "tatas15",
        16 => "tatas16",
        n => panic!("unsupported tatas contender count {n}"),
    };
    Litmus {
        name,
        property: "mutual exclusion: counter == nthreads and lock released (== 0)",
        layout: lb.build(),
        programs: (0..nthreads).map(|_| thread()).collect(),
        observables: vec![("counter", counter), ("lock", lock)],
        verdict: Box::new(move |v| v[0] == nthreads as u64 && v[1] == 0),
    }
}

/// Independent reads of independent writes (IRIW): two writers sync-store
/// two different flags; two readers sync-load both flags in opposite
/// orders. SC requires the writes to appear in *one* global order, so the
/// readers must not observe them in contradictory orders (each seeing the
/// "first" write but not the "second" one it read later).
pub fn iriw() -> Litmus {
    let mut lb = LayoutBuilder::new();
    let sync = lb.region("sync");
    let results = lb.region("results");
    let x = lb.sync_var("x", sync, true);
    let y = lb.sync_var("y", sync, true);
    let r0x = lb.sync_var("r0x", results, true);
    let r0y = lb.sync_var("r0y", results, true);
    let r1y = lb.sync_var("r1y", results, true);
    let r1x = lb.sync_var("r1x", results, true);

    let writer = |target: Addr| {
        let mut a = Asm::new("iriw-writer");
        let (v, p) = (Reg(1), Reg(2));
        a.movi(v, 1);
        a.movi(p, target.raw());
        a.stores(v, p, 0);
        a.halt();
        a.build()
    };
    let reader = |first: Addr, second: Addr, res_first: Addr, res_second: Addr| {
        let mut a = Asm::new("iriw-reader");
        let (p, ra, rb, q) = (Reg(1), Reg(2), Reg(3), Reg(4));
        a.movi(p, first.raw());
        a.loads(ra, p, 0);
        a.movi(p, second.raw());
        a.loads(rb, p, 0);
        a.movi(q, res_first.raw());
        a.store(ra, q, 0);
        a.movi(q, res_second.raw());
        a.store(rb, q, 0);
        a.fence();
        a.halt();
        a.build()
    };

    Litmus {
        name: "iriw",
        property: "readers must agree on one write order \
                   (forbid r0x==1,r0y==0 with r1y==1,r1x==0)",
        layout: lb.build(),
        programs: vec![
            writer(x),
            writer(y),
            reader(x, y, r0x, r0y),
            reader(y, x, r1y, r1x),
        ],
        observables: vec![("r0x", r0x), ("r0y", r0y), ("r1y", r1y), ("r1x", r1x)],
        verdict: Box::new(|v| !(v[0] == 1 && v[1] == 0 && v[2] == 1 && v[3] == 0)),
    }
}

/// An `n`-thread message-passing chain: thread 0 plain-stores a payload,
/// fences, and raises flag 0; each relay thread spins on the previous flag,
/// self-invalidates the payload region, increments the payload it received,
/// and passes it on behind the next flag; the last thread publishes what it
/// observed. SC plus the self-invalidation contract force the final value
/// to be the payload after `n - 2` relay increments.
///
/// # Panics
///
/// Panics unless `3 <= n <= 4` (named variants keep [`Litmus::name`] a
/// static string).
pub fn mp_chain(n: usize) -> Litmus {
    let name = match n {
        3 => "mp_chain3",
        4 => "mp_chain4",
        other => panic!("unsupported mp chain length {other}"),
    };
    let mut lb = LayoutBuilder::new();
    let sync = lb.region("sync");
    let payload = lb.region("payload");
    let results = lb.region("results");
    let data: Vec<Addr> = (0..n - 1)
        .map(|i| lb.sync_var(&format!("d{i}"), payload, true))
        .collect();
    let flags: Vec<Addr> = (0..n - 1)
        .map(|i| lb.sync_var(&format!("f{i}"), sync, true))
        .collect();
    let res = lb.sync_var("res", results, true);

    let producer = {
        let mut a = Asm::new("chain-producer");
        let (v, p) = (Reg(1), Reg(2));
        a.movi(v, 7);
        a.movi(p, data[0].raw());
        a.store(v, p, 0); // payload (plain data store)
        a.fence(); // payload complete before the flag is raised
        a.movi(v, 1);
        a.movi(p, flags[0].raw());
        a.stores(v, p, 0);
        a.halt();
        a.build()
    };
    let relay = |i: usize| {
        let mut a = Asm::new("chain-relay");
        let (one, p, r) = (Reg(1), Reg(2), Reg(3));
        a.movi(one, 1);
        a.movi(p, flags[i - 1].raw());
        a.spin_until(r, p, 0, Cond::Eq, one); // acquire the previous link
        a.self_inv(payload); // discard possibly-stale payload copies
        a.movi(p, data[i - 1].raw());
        a.load(r, p, 0);
        a.addi(r, r, 1); // relay work: payload + 1
        a.movi(p, data[i].raw());
        a.store(r, p, 0);
        a.fence();
        a.movi(p, flags[i].raw());
        a.stores(one, p, 0);
        a.halt();
        a.build()
    };
    let consumer = {
        let mut a = Asm::new("chain-consumer");
        let (one, p, r) = (Reg(1), Reg(2), Reg(3));
        a.movi(one, 1);
        a.movi(p, flags[n - 2].raw());
        a.spin_until(r, p, 0, Cond::Eq, one);
        a.self_inv(payload);
        a.movi(p, data[n - 2].raw());
        a.load(r, p, 0);
        a.movi(p, res.raw());
        a.store(r, p, 0);
        a.fence();
        a.halt();
        a.build()
    };

    let mut programs = vec![producer];
    programs.extend((1..n - 1).map(relay));
    programs.push(consumer);
    let expected = 7 + (n as u64 - 2);
    Litmus {
        name,
        property: "the chained payload must arrive intact (res == 7 + relays)",
        layout: lb.build(),
        programs,
        observables: vec![("res", res)],
        verdict: Box::new(move |v| v[0] == expected),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::RefMachine;

    /// Every litmus program must satisfy its own verdict under the untimed
    /// sequentially-consistent reference executor (which runs threads in a
    /// deterministic round-robin — one SC interleaving).
    #[test]
    fn reference_executor_satisfies_all_verdicts() {
        for lit in Litmus::all().into_iter().chain(Litmus::extended()) {
            let mut m = RefMachine::new(lit.programs.clone());
            m.run(100_000)
                .unwrap_or_else(|e| panic!("{}: reference run failed: {e}", lit.name));
            let mem = m.memory();
            lit.check(|a| mem.read_word(a.word()))
                .unwrap_or_else(|vals| panic!("{}: {} violated: {vals:?}", lit.name, lit.property));
        }
    }

    #[test]
    fn suite_is_well_formed() {
        let all = Litmus::all();
        assert_eq!(all.len(), 5);
        for lit in &all {
            assert_eq!(lit.nthreads(), 2, "{}", lit.name);
            assert!(!lit.observables.is_empty(), "{}", lit.name);
        }
        assert!(Litmus::by_name("sb").is_some());
        assert!(Litmus::by_name("nope").is_none());
    }

    #[test]
    fn extended_suite_is_well_formed() {
        let ext = Litmus::extended();
        assert_eq!(ext.len(), 3);
        assert_eq!(ext[0].name, "iriw");
        assert_eq!(ext[0].nthreads(), 4);
        assert_eq!(ext[1].nthreads(), 3);
        assert_eq!(ext[2].nthreads(), 4);
        for lit in &ext {
            assert!(!lit.observables.is_empty(), "{}", lit.name);
        }
        assert!(Litmus::by_name("iriw").is_some());
        assert!(Litmus::by_name("mp_chain3").is_some());
    }
}
