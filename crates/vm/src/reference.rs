//! An untimed, sequentially consistent reference executor.
//!
//! [`RefMachine`] runs a set of thread programs by round-robin interleaving,
//! applying each memory operation atomically against a flat memory image.
//! The resulting execution is sequentially consistent by construction, which
//! makes the machine useful two ways:
//!
//! * as a **functional testbed** for the synchronization kernels (does the
//!   Michael–Scott queue preserve FIFO order? does the barrier hold threads
//!   back?) independent of protocol timing, and
//! * as the **oracle** in differential tests: the timed simulator's final
//!   memory image for a data-race-free program must match the reference's
//!   for at least the single-threaded and deterministic cases.

use crate::isa::Program;
use crate::thread::{Effect, MemRequest, Thread};
use dvs_engine::DetRng;
use dvs_mem::{AccessKind, Addr, MainMemory};
use std::sync::Arc;

/// An error terminating a reference run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RefError {
    /// A thread's `Assert` failed.
    AssertFailed {
        /// The failing thread.
        thread: usize,
        /// Program counter of the assertion.
        pc: usize,
        /// Assertion message.
        msg: &'static str,
    },
    /// The step budget ran out before all threads halted (livelock/deadlock
    /// or simply too small a budget).
    StepBudgetExhausted,
}

impl std::fmt::Display for RefError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RefError::AssertFailed { thread, pc, msg } => {
                write!(f, "thread {thread} assertion failed at pc {pc}: {msg}")
            }
            RefError::StepBudgetExhausted => f.write_str("step budget exhausted"),
        }
    }
}

impl std::error::Error for RefError {}

/// Per-thread bump-allocator pool size used by [`RefMachine::new`], in bytes.
pub const DEFAULT_POOL_BYTES: u64 = 1 << 20;

/// Base address of the first thread-private pool. Pools live far above any
/// layout the workloads build.
pub const POOL_BASE: u64 = 1 << 40;

/// Computes the base address of thread `id`'s private allocation pool.
pub fn pool_base(id: usize) -> Addr {
    Addr::new(POOL_BASE + id as u64 * DEFAULT_POOL_BYTES)
}

/// The untimed SC executor. See the [module docs](self).
#[derive(Debug)]
pub struct RefMachine {
    threads: Vec<Thread>,
    blocked: Vec<Option<MemRequest>>, // spinning requests waiting to succeed
    memory: MainMemory,
    marks: Vec<Vec<u32>>,
}

impl RefMachine {
    /// Creates a machine with one thread per program, seeded deterministically.
    ///
    /// Accepts plain [`Program`]s or shared `Arc<Program>`s (workloads store
    /// the latter so simulators can be materialized without deep clones).
    pub fn new(programs: impl IntoIterator<Item = impl Into<Arc<Program>>>) -> Self {
        Self::with_seed(programs, 0xD15C)
    }

    /// Creates a machine with an explicit seed for the threads' random
    /// streams.
    pub fn with_seed(
        programs: impl IntoIterator<Item = impl Into<Arc<Program>>>,
        seed: u64,
    ) -> Self {
        let programs: Vec<Arc<Program>> = programs.into_iter().map(Into::into).collect();
        let n = programs.len();
        let root = DetRng::new(seed);
        let threads: Vec<Thread> = programs
            .into_iter()
            .enumerate()
            .map(|(i, p)| {
                let mut t = Thread::new(i, n, p, root.split(i as u64));
                t.set_alloc_pool(pool_base(i), DEFAULT_POOL_BYTES);
                t
            })
            .collect();
        RefMachine {
            blocked: vec![None; threads.len()],
            marks: vec![Vec::new(); threads.len()],
            threads,
            memory: MainMemory::new(),
        }
    }

    /// The memory image (writable, e.g. to pre-initialize workload data).
    pub fn memory_mut(&mut self) -> &mut MainMemory {
        &mut self.memory
    }

    /// The memory image.
    pub fn memory(&self) -> &MainMemory {
        &self.memory
    }

    /// The trace markers each thread emitted, in program order.
    pub fn marks(&self, thread: usize) -> &[u32] {
        &self.marks[thread]
    }

    /// A thread's architectural state (for assertions in tests).
    pub fn thread(&self, i: usize) -> &Thread {
        &self.threads[i]
    }

    /// Overrides a thread's private bump-allocation pool.
    pub fn set_thread_pool(&mut self, i: usize, base: Addr, bytes: u64) {
        self.threads[i].set_alloc_pool(base, bytes);
    }

    fn apply(&mut self, thread: usize, req: MemRequest) {
        let w = req.addr.word();
        match req.kind {
            AccessKind::DataLoad | AccessKind::SyncLoad => {
                let v = self.memory.read_word(w);
                self.threads[thread].complete_load(req.dst, v);
            }
            AccessKind::DataStore { value } | AccessKind::SyncStore { value } => {
                self.memory.write_word(w, value);
            }
            AccessKind::SyncRmw(op) => {
                let old = self.memory.read_word(w);
                self.memory.write_word(w, op.apply(old));
                self.threads[thread].complete_load(req.dst, old);
            }
        }
    }

    /// Runs until every thread halts or `max_steps` instructions have
    /// executed in total.
    ///
    /// # Errors
    ///
    /// [`RefError::AssertFailed`] if a kernel assertion fails;
    /// [`RefError::StepBudgetExhausted`] if the budget runs out first.
    pub fn run(&mut self, max_steps: u64) -> Result<(), RefError> {
        let mut steps = 0u64;
        loop {
            let mut all_halted = true;
            let mut progressed = false;
            for i in 0..self.threads.len() {
                // A thread blocked in a spin re-checks memory this round.
                if let Some(req) = self.blocked[i] {
                    let v = self.memory.read_word(req.addr.word());
                    let spin = req.spin.expect("blocked thread must be spinning");
                    if spin.satisfied(v) {
                        self.threads[i].complete_load(req.dst, v);
                        self.blocked[i] = None;
                        progressed = true;
                    } else {
                        all_halted = false;
                        continue;
                    }
                }
                if self.threads[i].is_halted() {
                    continue;
                }
                all_halted = false;
                progressed = true;
                steps += 1;
                match self.threads[i].step() {
                    Effect::Retired | Effect::Delay { .. } | Effect::Fence => {}
                    Effect::SelfInvalidate(_) => {}
                    Effect::Mark(m) => self.marks[i].push(m),
                    Effect::Halted => {}
                    Effect::Failed { pc, msg } => {
                        return Err(RefError::AssertFailed { thread: i, pc, msg })
                    }
                    Effect::Mem(req) => {
                        if let Some(spin) = req.spin {
                            let v = self.memory.read_word(req.addr.word());
                            if spin.satisfied(v) {
                                self.threads[i].complete_load(req.dst, v);
                            } else {
                                self.blocked[i] = Some(req);
                            }
                        } else {
                            self.apply(i, req);
                        }
                    }
                }
                if steps >= max_steps {
                    return Err(RefError::StepBudgetExhausted);
                }
            }
            if all_halted {
                return Ok(());
            }
            if !progressed {
                // Every live thread is spinning on a condition nothing can
                // change any more.
                return Err(RefError::StepBudgetExhausted);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::isa::{Cond, Reg};

    #[test]
    fn single_thread_computes_and_stores() {
        let mut a = Asm::new("calc");
        a.movi(Reg(1), 21)
            .movi(Reg(2), 2)
            .mul(Reg(3), Reg(1), Reg(2))
            .movi(Reg(4), 0x800)
            .store(Reg(3), Reg(4), 0)
            .halt();
        let mut m = RefMachine::new(vec![a.build()]);
        m.run(100).unwrap();
        assert_eq!(m.memory().read_word(Addr::new(0x800).word()), 42);
    }

    #[test]
    fn two_threads_increment_atomically() {
        let make = |_: usize| {
            let mut a = Asm::new("fai");
            a.movi(Reg(1), 0x100).movi(Reg(2), 1);
            for _ in 0..50 {
                a.fai(Reg(3), Reg(1), 0, Reg(2));
            }
            a.halt();
            a.build()
        };
        let mut m = RefMachine::new(vec![make(0), make(1)]);
        m.run(10_000).unwrap();
        assert_eq!(m.memory().read_word(Addr::new(0x100).word()), 100);
    }

    #[test]
    fn producer_consumer_via_spin() {
        // Thread 0 writes data then sets a flag; thread 1 spins on the flag
        // and must observe the data.
        let mut p0 = Asm::new("producer");
        p0.movi(Reg(1), 0x100) // data
            .movi(Reg(2), 0x140) // flag
            .movi(Reg(3), 777)
            .store(Reg(3), Reg(1), 0)
            .movi(Reg(4), 1)
            .stores(Reg(4), Reg(2), 0)
            .halt();
        let mut p1 = Asm::new("consumer");
        p1.movi(Reg(2), 0x140)
            .movi(Reg(4), 1)
            .spin_until(Reg(5), Reg(2), 0, Cond::Eq, Reg(4))
            .movi(Reg(1), 0x100)
            .load(Reg(6), Reg(1), 0)
            .movi(Reg(7), 777)
            .assert_cond(Cond::Eq, Reg(6), Reg(7), "consumer saw stale data")
            .halt();
        let mut m = RefMachine::new(vec![p0.build(), p1.build()]);
        m.run(10_000).unwrap();
        assert_eq!(m.thread(1).reg(Reg(6)), 777);
    }

    #[test]
    fn failed_assert_is_reported() {
        let mut a = Asm::new("bad");
        a.movi(Reg(1), 1)
            .movi(Reg(2), 2)
            .assert_cond(Cond::Eq, Reg(1), Reg(2), "nope")
            .halt();
        let mut m = RefMachine::new(vec![a.build()]);
        match m.run(100) {
            Err(RefError::AssertFailed {
                thread: 0,
                msg: "nope",
                ..
            }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn livelock_hits_budget() {
        let mut a = Asm::new("spin-forever");
        a.movi(Reg(1), 0x100)
            .movi(Reg(2), 1)
            .spin_until(Reg(3), Reg(1), 0, Cond::Eq, Reg(2))
            .halt();
        let mut m = RefMachine::new(vec![a.build()]);
        assert_eq!(m.run(1_000), Err(RefError::StepBudgetExhausted));
    }

    #[test]
    fn marks_are_recorded_per_thread() {
        let mut a = Asm::new("marks");
        a.mark(1).mark(2).halt();
        let mut b = Asm::new("marks2");
        b.mark(9).halt();
        let mut m = RefMachine::new(vec![a.build(), b.build()]);
        m.run(100).unwrap();
        assert_eq!(m.marks(0), &[1, 2]);
        assert_eq!(m.marks(1), &[9]);
    }

    #[test]
    fn alloc_pools_do_not_collide() {
        let make = || {
            let mut a = Asm::new("alloc");
            a.alloc(Reg(1), 4)
                .movi(Reg(2), 5)
                .store(Reg(2), Reg(1), 0)
                .halt();
            a.build()
        };
        let mut m = RefMachine::new(vec![make(), make()]);
        m.run(100).unwrap();
        let a0 = m.thread(0).reg(Reg(1));
        let a1 = m.thread(1).reg(Reg(1));
        assert_ne!(a0, a1);
        assert_eq!(m.memory().read_word(Addr::new(a0).word()), 5);
        assert_eq!(m.memory().read_word(Addr::new(a1).word()), 5);
    }
}
