//! A small label-resolving assembler for [`Program`]s.
//!
//! The 24 synchronization kernels and the application models are written
//! against this builder. Labels are forward-referenceable: create with
//! [`Asm::label`], bind with [`Asm::bind`] (or use [`Asm::here`] for a label
//! bound at the current position), and [`Asm::build`] resolves everything.
//!
//! # Examples
//!
//! A test-and-set acquire loop:
//!
//! ```
//! use dvs_vm::asm::Asm;
//! use dvs_vm::isa::{Cond, Reg};
//!
//! let (old, lock) = (Reg(1), Reg(2));
//! let mut a = Asm::new("tas-acquire");
//! a.movi(lock, 0x1000);
//! let retry = a.here();
//! a.tas(old, lock, 0);
//! let zero = Reg(0);
//! a.movi(zero, 0);
//! a.bne(old, zero, retry); // loop until we stored the first 1
//! a.halt();
//! let prog = a.build();
//! assert_eq!(prog.name(), "tas-acquire");
//! ```

use crate::isa::{Cond, DelayLen, Instr, PhaseChange, Program, Reg};
use dvs_mem::layout::Region;
use dvs_stats::TimeComponent;

/// A forward-referenceable jump target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(usize);

/// Program builder. See the [module docs](self) for an example.
#[derive(Debug)]
pub struct Asm {
    name: String,
    instrs: Vec<Instr>,
    labels: Vec<Option<usize>>,
    patches: Vec<(usize, Label)>,
}

impl Asm {
    /// Starts a program named `name`.
    pub fn new(name: &str) -> Self {
        Asm {
            name: name.to_owned(),
            instrs: Vec::new(),
            labels: Vec::new(),
            patches: Vec::new(),
        }
    }

    /// Creates an unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the next instruction's position.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound.
    pub fn bind(&mut self, label: Label) {
        let slot = &mut self.labels[label.0];
        assert!(slot.is_none(), "label bound twice");
        *slot = Some(self.instrs.len());
    }

    /// Creates a label bound at the current position.
    pub fn here(&mut self) -> Label {
        let l = self.label();
        self.bind(l);
        l
    }

    /// Current instruction count (the pc the next pushed instruction gets).
    pub fn pc(&self) -> usize {
        self.instrs.len()
    }

    fn push(&mut self, i: Instr) -> &mut Self {
        self.instrs.push(i);
        self
    }

    fn push_branch(&mut self, cond: Cond, a: Reg, b: Reg, target: Label) -> &mut Self {
        self.patches.push((self.instrs.len(), target));
        self.push(Instr::Branch(cond, a, b, usize::MAX))
    }

    /// Finishes assembly, resolving all label references.
    ///
    /// # Panics
    ///
    /// Panics if any referenced label was never bound.
    pub fn build(mut self) -> Program {
        for (pc, label) in &self.patches {
            let target = self.labels[label.0]
                .unwrap_or_else(|| panic!("{}: unbound label used at pc {pc}", self.name));
            match &mut self.instrs[*pc] {
                Instr::Branch(_, _, _, t) | Instr::Jmp(t) => *t = target,
                other => unreachable!("patched non-branch {other:?}"),
            }
        }
        Program::new(&self.name, self.instrs)
    }

    // --- ALU -------------------------------------------------------------

    /// `dst = imm`
    pub fn movi(&mut self, dst: Reg, imm: u64) -> &mut Self {
        self.push(Instr::Movi(dst, imm))
    }

    /// `dst = src`
    pub fn mov(&mut self, dst: Reg, src: Reg) -> &mut Self {
        self.push(Instr::Mov(dst, src))
    }

    /// `dst = a + b`
    pub fn add(&mut self, dst: Reg, a: Reg, b: Reg) -> &mut Self {
        self.push(Instr::Add(dst, a, b))
    }

    /// `dst = a + imm`
    pub fn addi(&mut self, dst: Reg, a: Reg, imm: i64) -> &mut Self {
        self.push(Instr::Addi(dst, a, imm))
    }

    /// `dst = a - b`
    pub fn sub(&mut self, dst: Reg, a: Reg, b: Reg) -> &mut Self {
        self.push(Instr::Sub(dst, a, b))
    }

    /// `dst = a * b`
    pub fn mul(&mut self, dst: Reg, a: Reg, b: Reg) -> &mut Self {
        self.push(Instr::Mul(dst, a, b))
    }

    /// `dst = a / b`
    pub fn div(&mut self, dst: Reg, a: Reg, b: Reg) -> &mut Self {
        self.push(Instr::Div(dst, a, b))
    }

    /// `dst = a % b`
    pub fn rem(&mut self, dst: Reg, a: Reg, b: Reg) -> &mut Self {
        self.push(Instr::Rem(dst, a, b))
    }

    /// `dst = a & b`
    pub fn and(&mut self, dst: Reg, a: Reg, b: Reg) -> &mut Self {
        self.push(Instr::And(dst, a, b))
    }

    /// `dst = a | b`
    pub fn or(&mut self, dst: Reg, a: Reg, b: Reg) -> &mut Self {
        self.push(Instr::Or(dst, a, b))
    }

    /// `dst = a ^ b`
    pub fn xor(&mut self, dst: Reg, a: Reg, b: Reg) -> &mut Self {
        self.push(Instr::Xor(dst, a, b))
    }

    /// `dst = a << sh`
    pub fn shl(&mut self, dst: Reg, a: Reg, sh: u8) -> &mut Self {
        self.push(Instr::Shl(dst, a, sh))
    }

    /// `dst = a >> sh`
    pub fn shr(&mut self, dst: Reg, a: Reg, sh: u8) -> &mut Self {
        self.push(Instr::Shr(dst, a, sh))
    }

    /// `dst = cond(a, b) as u64`
    pub fn set(&mut self, cond: Cond, dst: Reg, a: Reg, b: Reg) -> &mut Self {
        self.push(Instr::Set(cond, dst, a, b))
    }

    // --- control flow ----------------------------------------------------

    /// Branch to `target` if `a == b`.
    pub fn beq(&mut self, a: Reg, b: Reg, target: Label) -> &mut Self {
        self.push_branch(Cond::Eq, a, b, target)
    }

    /// Branch to `target` if `a != b`.
    pub fn bne(&mut self, a: Reg, b: Reg, target: Label) -> &mut Self {
        self.push_branch(Cond::Ne, a, b, target)
    }

    /// Branch to `target` if `a < b` (unsigned).
    pub fn blt(&mut self, a: Reg, b: Reg, target: Label) -> &mut Self {
        self.push_branch(Cond::Lt, a, b, target)
    }

    /// Branch to `target` if `a >= b` (unsigned).
    pub fn bge(&mut self, a: Reg, b: Reg, target: Label) -> &mut Self {
        self.push_branch(Cond::Ge, a, b, target)
    }

    /// Unconditional jump to `target`.
    pub fn jmp(&mut self, target: Label) -> &mut Self {
        self.patches.push((self.instrs.len(), target));
        self.push(Instr::Jmp(usize::MAX))
    }

    // --- memory ----------------------------------------------------------

    /// Data load: `dst = mem[base + off]`.
    pub fn load(&mut self, dst: Reg, base: Reg, off: i64) -> &mut Self {
        self.push(Instr::Load {
            dst,
            base,
            off,
            sync: false,
        })
    }

    /// Synchronization load.
    pub fn loads(&mut self, dst: Reg, base: Reg, off: i64) -> &mut Self {
        self.push(Instr::Load {
            dst,
            base,
            off,
            sync: true,
        })
    }

    /// Data store: `mem[base + off] = src`.
    pub fn store(&mut self, src: Reg, base: Reg, off: i64) -> &mut Self {
        self.push(Instr::Store {
            src,
            base,
            off,
            sync: false,
        })
    }

    /// Synchronization (release) store.
    pub fn stores(&mut self, src: Reg, base: Reg, off: i64) -> &mut Self {
        self.push(Instr::Store {
            src,
            base,
            off,
            sync: true,
        })
    }

    /// Atomic compare-and-swap.
    pub fn cas(&mut self, dst: Reg, base: Reg, off: i64, expected: Reg, new: Reg) -> &mut Self {
        self.push(Instr::Cas {
            dst,
            base,
            off,
            expected,
            new,
        })
    }

    /// Atomic fetch-and-add.
    pub fn fai(&mut self, dst: Reg, base: Reg, off: i64, delta: Reg) -> &mut Self {
        self.push(Instr::Fai {
            dst,
            base,
            off,
            delta,
        })
    }

    /// Atomic exchange.
    pub fn swap(&mut self, dst: Reg, base: Reg, off: i64, new: Reg) -> &mut Self {
        self.push(Instr::Swap {
            dst,
            base,
            off,
            new,
        })
    }

    /// Atomic test-and-set.
    pub fn tas(&mut self, dst: Reg, base: Reg, off: i64) -> &mut Self {
        self.push(Instr::Tas { dst, base, off })
    }

    /// Spin (as a synchronization read) until `cond(mem[base+off], rhs)`.
    pub fn spin_until(&mut self, dst: Reg, base: Reg, off: i64, cond: Cond, rhs: Reg) -> &mut Self {
        self.push(Instr::SpinLoad {
            dst,
            base,
            off,
            cond,
            rhs,
            sync: true,
        })
    }

    // --- ordering and misc -------------------------------------------------

    /// Fence: drain outstanding stores.
    pub fn fence(&mut self) -> &mut Self {
        self.push(Instr::Fence)
    }

    /// DeNovo self-invalidation of `region`.
    pub fn self_inv(&mut self, region: Region) -> &mut Self {
        self.push(Instr::SelfInv(region))
    }

    /// Fixed-length delay attributed to `comp`.
    pub fn delay(&mut self, cycles: u64, comp: TimeComponent) -> &mut Self {
        self.push(Instr::Delay(DelayLen::Fixed(cycles), comp))
    }

    /// Register-length delay attributed to `comp`.
    pub fn delay_reg(&mut self, cycles: Reg, comp: TimeComponent) -> &mut Self {
        self.push(Instr::Delay(DelayLen::FromReg(cycles), comp))
    }

    /// Uniform random delay in `[lo, hi)` attributed to `comp`.
    pub fn rand_delay(&mut self, lo: u64, hi: u64, comp: TimeComponent) -> &mut Self {
        self.push(Instr::Delay(DelayLen::Uniform(lo, hi), comp))
    }

    /// Sets the execution-phase attribution override.
    pub fn phase(&mut self, phase: PhaseChange) -> &mut Self {
        self.push(Instr::Phase(phase))
    }

    /// `dst = thread id`
    pub fn tid(&mut self, dst: Reg) -> &mut Self {
        self.push(Instr::Tid(dst))
    }

    /// `dst = thread count`
    pub fn nthreads(&mut self, dst: Reg) -> &mut Self {
        self.push(Instr::NThreads(dst))
    }

    /// Bump-allocate `words` words from the thread-private pool.
    pub fn alloc(&mut self, dst: Reg, words: u32) -> &mut Self {
        self.push(Instr::Alloc { dst, words })
    }

    /// Emit trace marker `id`.
    pub fn mark(&mut self, id: u32) -> &mut Self {
        self.push(Instr::Mark(id))
    }

    /// Abort the thread with `msg` unless `cond(a, b)`.
    pub fn assert_cond(&mut self, cond: Cond, a: Reg, b: Reg, msg: &'static str) -> &mut Self {
        self.push(Instr::Assert(cond, a, b, msg))
    }

    /// Stop the thread.
    pub fn halt(&mut self) -> &mut Self {
        self.push(Instr::Halt)
    }

    /// One idle cycle.
    pub fn nop(&mut self) -> &mut Self {
        self.push(Instr::Nop)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_labels_resolve() {
        let mut a = Asm::new("fwd");
        let end = a.label();
        a.jmp(end);
        a.nop();
        a.bind(end);
        a.halt();
        let p = a.build();
        assert_eq!(p.fetch(0), Some(&Instr::Jmp(2)));
    }

    #[test]
    fn backward_labels_resolve() {
        let mut a = Asm::new("bwd");
        let top = a.here();
        a.nop();
        a.beq(Reg(1), Reg(1), top);
        a.halt();
        let p = a.build();
        assert_eq!(
            p.fetch(1),
            Some(&Instr::Branch(Cond::Eq, Reg(1), Reg(1), 0))
        );
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics_at_build() {
        let mut a = Asm::new("bad");
        let l = a.label();
        a.jmp(l);
        a.build();
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut a = Asm::new("bad");
        let l = a.label();
        a.bind(l);
        a.bind(l);
    }

    #[test]
    fn pc_tracks_instruction_count() {
        let mut a = Asm::new("pc");
        assert_eq!(a.pc(), 0);
        a.nop().nop();
        assert_eq!(a.pc(), 2);
    }

    #[test]
    fn chained_building_produces_expected_sequence() {
        let mut a = Asm::new("chain");
        a.movi(Reg(1), 5).addi(Reg(1), Reg(1), -1).halt();
        let p = a.build();
        assert_eq!(
            p.instrs(),
            &[
                Instr::Movi(Reg(1), 5),
                Instr::Addi(Reg(1), Reg(1), -1),
                Instr::Halt
            ]
        );
    }
}
