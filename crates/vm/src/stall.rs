//! Per-core stall accounting driven by the system's status transitions.
//!
//! The event loop already knows exactly when a core stops retiring (a miss
//! goes outstanding, a spin parks in the watch, a backoff penalty starts, a
//! fence drains) and when it resumes. This tracker turns those transitions
//! into:
//!
//! * paired [`EventKind::StallBegin`]/[`EventKind::StallEnd`] telemetry
//!   events — Perfetto renders them as per-core stall slices, and
//! * always-on per-core [`Log2Histogram`]s of stall durations by
//!   [`StallClass`], exported into a [`MetricsRegistry`] after the run.
//!
//! The tracker is pure observability: it lives outside every architectural
//! `Hash`, and the histograms cost two array updates per *stall* (not per
//! cycle), which is noise next to the event-loop work that accompanies any
//! stall.

use dvs_telemetry::{
    Component, Event, EventKind, Log2Histogram, MetricsRegistry, StallClass, Telemetry,
};

/// One core's open stall, if any.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct OpenStall {
    class: StallClass,
    since: u64,
}

/// Tracks stall intervals for every core of a system.
#[derive(Debug, Clone)]
pub struct StallTracker {
    tel: Telemetry,
    open: Vec<Option<OpenStall>>,
    /// `[core][StallClass::index()]` duration histograms.
    durations: Vec<[Log2Histogram; 4]>,
    counts: Vec<[u64; 4]>,
}

impl StallTracker {
    /// A tracker for `cores` cores with telemetry off.
    pub fn new(cores: usize) -> Self {
        StallTracker {
            tel: Telemetry::off(),
            open: vec![None; cores],
            durations: vec![
                [
                    Log2Histogram::new(),
                    Log2Histogram::new(),
                    Log2Histogram::new(),
                    Log2Histogram::new(),
                ];
                cores
            ],
            counts: vec![[0; 4]; cores],
        }
    }

    /// Attaches a telemetry handle for begin/end events.
    pub fn set_telemetry(&mut self, tel: Telemetry) {
        self.tel = tel;
    }

    /// Opens a stall of `class` for `core` at `cycle`. If a stall is
    /// already open it is closed first (status transitions can chain, e.g.
    /// a spin wake that immediately re-misses).
    pub fn begin(&mut self, core: usize, class: StallClass, cycle: u64) {
        if self.open[core].is_some() {
            self.end(core, cycle);
        }
        self.open[core] = Some(OpenStall {
            class,
            since: cycle,
        });
        self.tel.emit(|| Event {
            cycle,
            node: core as u32,
            component: Component::Core,
            addr: 0,
            kind: EventKind::StallBegin { class },
        });
    }

    /// Closes `core`'s open stall at `cycle` (no-op when none is open) and
    /// records its duration.
    pub fn end(&mut self, core: usize, cycle: u64) {
        let Some(OpenStall { class, since }) = self.open[core].take() else {
            return;
        };
        let cycles = cycle.saturating_sub(since);
        self.durations[core][class.index()].record(cycles);
        self.counts[core][class.index()] += 1;
        self.tel.emit(|| Event {
            cycle,
            node: core as u32,
            component: Component::Core,
            addr: 0,
            kind: EventKind::StallEnd { class, cycles },
        });
    }

    /// Records a stall whose whole extent is known up front (hardware
    /// backoff penalties are scheduled, not discovered).
    pub fn span(&mut self, core: usize, class: StallClass, begin: u64, cycles: u64) {
        self.durations[core][class.index()].record(cycles);
        self.counts[core][class.index()] += 1;
        self.tel.emit(|| Event {
            cycle: begin,
            node: core as u32,
            component: Component::Core,
            addr: 0,
            kind: EventKind::StallBegin { class },
        });
        self.tel.emit(|| Event {
            cycle: begin + cycles,
            node: core as u32,
            component: Component::Core,
            addr: 0,
            kind: EventKind::StallEnd { class, cycles },
        });
    }

    /// Closes every still-open stall at `cycle` (end of run).
    pub fn finish(&mut self, cycle: u64) {
        for core in 0..self.open.len() {
            self.end(core, cycle);
        }
    }

    /// How many stalls of `class` core `core` has completed.
    pub fn count(&self, core: usize, class: StallClass) -> u64 {
        self.counts[core][class.index()]
    }

    /// Exports per-core stall counts and duration histograms into `reg`
    /// under `core<i>/core/stall_*` paths.
    pub fn export(&self, reg: &mut MetricsRegistry) {
        for (core, (hists, counts)) in self.durations.iter().zip(&self.counts).enumerate() {
            let node = format!("core{core}");
            for class in StallClass::ALL {
                let i = class.index();
                if counts[i] == 0 {
                    continue;
                }
                reg.add(
                    &node,
                    "core",
                    &format!("stall_{}_count", class.label()),
                    counts[i],
                );
                reg.merge_histogram(
                    &node,
                    "core",
                    &format!("stall_{}_cycles", class.label()),
                    &hists[i],
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begin_end_records_duration_and_events() {
        let tel = Telemetry::recorder();
        let mut t = StallTracker::new(2);
        t.set_telemetry(tel.clone());
        t.begin(0, StallClass::Memory, 100);
        t.end(0, 140);
        t.span(1, StallClass::Backoff, 50, 8);
        assert_eq!(t.count(0, StallClass::Memory), 1);
        assert_eq!(t.count(1, StallClass::Backoff), 1);

        let events = tel.take_events().expect("recorder");
        assert_eq!(events.len(), 4);
        assert!(matches!(
            events[1].kind,
            EventKind::StallEnd {
                class: StallClass::Memory,
                cycles: 40
            }
        ));

        let mut reg = MetricsRegistry::new();
        t.export(&mut reg);
        assert_eq!(reg.counter("core0", "core", "stall_memory_count"), 1);
        assert_eq!(
            reg.histogram("core1", "core", "stall_backoff_cycles")
                .expect("histogram")
                .sum(),
            8
        );
    }

    #[test]
    fn reentrant_begin_closes_previous_stall() {
        let mut t = StallTracker::new(1);
        t.begin(0, StallClass::Spin, 10);
        t.begin(0, StallClass::Memory, 30);
        t.finish(50);
        assert_eq!(t.count(0, StallClass::Spin), 1);
        assert_eq!(t.count(0, StallClass::Memory), 1);
        // finish() on an idle tracker is a no-op.
        t.finish(60);
        assert_eq!(t.count(0, StallClass::Memory), 1);
    }
}
