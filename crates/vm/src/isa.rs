//! The instruction set of the thread VM.
//!
//! Registers hold 64-bit unsigned values (pointers and integers). All memory
//! operands are word-aligned effective addresses computed as
//! `register + byte-offset`. Synchronization accesses are distinct
//! instructions (the paper's software requirement that programs convey the
//! data/synchronization distinction to hardware).

use dvs_mem::layout::Region;
use dvs_stats::TimeComponent;
use std::fmt;

/// A register name, `Reg(0)..Reg(31)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u8);

/// Number of architectural registers.
pub const NUM_REGS: usize = 32;

impl Reg {
    /// The register index, checked against [`NUM_REGS`].
    ///
    /// # Panics
    ///
    /// Panics if the register is out of range.
    pub fn index(self) -> usize {
        assert!((self.0 as usize) < NUM_REGS, "register {self} out of range");
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A branch / spin condition over two unsigned 64-bit values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// `lhs == rhs`
    Eq,
    /// `lhs != rhs`
    Ne,
    /// `lhs < rhs` (unsigned)
    Lt,
    /// `lhs >= rhs` (unsigned)
    Ge,
}

impl Cond {
    /// Evaluates the condition.
    pub fn eval(self, lhs: u64, rhs: u64) -> bool {
        match self {
            Cond::Eq => lhs == rhs,
            Cond::Ne => lhs != rhs,
            Cond::Lt => lhs < rhs,
            Cond::Ge => lhs >= rhs,
        }
    }

    /// The negated condition.
    pub fn negate(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Ge => Cond::Lt,
        }
    }
}

/// How long a [`Instr::Delay`] lasts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DelayLen {
    /// A fixed number of cycles.
    Fixed(u64),
    /// The current value of a register.
    FromReg(Reg),
    /// Uniformly random in `[lo, hi)`, drawn from the thread's private
    /// deterministic stream (the paper's "randomly chosen in the range ...").
    Uniform(u64, u64),
}

/// One VM instruction.
///
/// Every instruction retires in 1 cycle (the paper's core model); memory
/// instructions additionally block per the protocol, and `Delay` adds its
/// duration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// `dst = imm`
    Movi(Reg, u64),
    /// `dst = src`
    Mov(Reg, Reg),
    /// `dst = a + b` (wrapping)
    Add(Reg, Reg, Reg),
    /// `dst = a + imm` (wrapping; `imm` may be negative)
    Addi(Reg, Reg, i64),
    /// `dst = a - b` (wrapping)
    Sub(Reg, Reg, Reg),
    /// `dst = a * b` (wrapping)
    Mul(Reg, Reg, Reg),
    /// `dst = a / b` (0 if `b == 0`)
    Div(Reg, Reg, Reg),
    /// `dst = a % b` (0 if `b == 0`)
    Rem(Reg, Reg, Reg),
    /// `dst = a & b`
    And(Reg, Reg, Reg),
    /// `dst = a | b`
    Or(Reg, Reg, Reg),
    /// `dst = a ^ b`
    Xor(Reg, Reg, Reg),
    /// `dst = a << sh` (masked shift)
    Shl(Reg, Reg, u8),
    /// `dst = a >> sh` (masked shift)
    Shr(Reg, Reg, u8),
    /// `dst = 1` if `cond(a, b)` else `0`
    Set(Cond, Reg, Reg, Reg),
    /// Branch to `target` if `cond(a, b)`.
    Branch(Cond, Reg, Reg, usize),
    /// Unconditional jump.
    Jmp(usize),
    /// Load the word at `base + off`; `sync` marks a synchronization read.
    Load {
        /// Destination register.
        dst: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        off: i64,
        /// Synchronization (volatile/atomic) access.
        sync: bool,
    },
    /// Store `src` to the word at `base + off`; `sync` marks a release write.
    Store {
        /// Source register.
        src: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        off: i64,
        /// Synchronization (volatile/atomic) access.
        sync: bool,
    },
    /// Atomic compare-and-swap; `dst` receives the old value.
    Cas {
        /// Receives the old value.
        dst: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        off: i64,
        /// Expected old value.
        expected: Reg,
        /// New value stored on match.
        new: Reg,
    },
    /// Atomic fetch-and-add; `dst` receives the old value.
    Fai {
        /// Receives the old value.
        dst: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        off: i64,
        /// Added amount.
        delta: Reg,
    },
    /// Atomic exchange; `dst` receives the old value.
    Swap {
        /// Receives the old value.
        dst: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        off: i64,
        /// New value.
        new: Reg,
    },
    /// Atomic test-and-set (stores 1); `dst` receives the old value.
    Tas {
        /// Receives the old value.
        dst: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        off: i64,
    },
    /// Blocking spin: repeatedly load `base + off` until `cond(value, rhs)`
    /// holds; `dst` receives the satisfying value. Models a spin-wait loop
    /// (Test of TATAS, flag/sense waits) without simulating each iteration.
    SpinLoad {
        /// Receives the satisfying value.
        dst: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        off: i64,
        /// Exit condition.
        cond: Cond,
        /// Right-hand side of the condition.
        rhs: Reg,
        /// Synchronization access (spin loads almost always are).
        sync: bool,
    },
    /// Drain outstanding stores (MESI release/acquire ordering).
    Fence,
    /// DeNovo self-invalidation of every non-registered cached word of a
    /// region (no-op on MESI).
    SelfInv(Region),
    /// Stall for a duration, attributing the cycles to a time component
    /// (modelled computation, software backoff, ...).
    Delay(DelayLen, TimeComponent),
    /// Set the thread's execution-phase attribution override.
    Phase(PhaseChange),
    /// `dst = thread id`
    Tid(Reg),
    /// `dst = number of threads`
    NThreads(Reg),
    /// Bump-allocate `words` words from the thread-private pool; `dst`
    /// receives the byte address.
    Alloc {
        /// Receives the allocated byte address.
        dst: Reg,
        /// Number of words to allocate.
        words: u32,
    },
    /// Emit a trace marker (used by the Figure-2 walkthrough and tests).
    Mark(u32),
    /// Check `cond(a, b)`; a failure aborts the thread with `msg`.
    Assert(Cond, Reg, Reg, &'static str),
    /// Stop the thread.
    Halt,
    /// Do nothing for a cycle.
    Nop,
}

/// Execution-phase attribution override (see `dvs-stats::TimeComponent`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhaseChange {
    /// Normal kernel execution: retires count as compute, stalls as memory
    /// stall.
    Normal,
    /// Inter-iteration dummy computation: everything counts as non-synch.
    NonSynch,
    /// Waiting in the end-of-kernel barrier: everything counts as barrier
    /// stall.
    BarrierWait,
}

/// An assembled program: a named, immutable instruction sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    name: String,
    instrs: Vec<Instr>,
}

impl Program {
    /// Creates a program from raw instructions.
    ///
    /// # Panics
    ///
    /// Panics if any branch target is out of range or the program is empty.
    pub fn new(name: &str, instrs: Vec<Instr>) -> Self {
        assert!(!instrs.is_empty(), "empty program {name}");
        for (pc, i) in instrs.iter().enumerate() {
            let target = match i {
                Instr::Branch(_, _, _, t) | Instr::Jmp(t) => Some(*t),
                _ => None,
            };
            if let Some(t) = target {
                assert!(
                    t < instrs.len(),
                    "{name}: pc {pc} branches to {t}, beyond program end {}",
                    instrs.len()
                );
            }
        }
        Program {
            name: name.to_owned(),
            instrs,
        }
    }

    /// The program's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The instruction at `pc`, if any.
    pub fn fetch(&self, pc: usize) -> Option<&Instr> {
        self.instrs.get(pc)
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program has no instructions (never true: construction
    /// rejects empty programs).
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// All instructions.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cond_eval_and_negate() {
        assert!(Cond::Eq.eval(3, 3));
        assert!(Cond::Ne.eval(3, 4));
        assert!(Cond::Lt.eval(3, 4));
        assert!(Cond::Ge.eval(4, 4));
        for c in [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge] {
            for (a, b) in [(0u64, 0u64), (1, 2), (2, 1), (u64::MAX, 0)] {
                assert_ne!(c.eval(a, b), c.negate().eval(a, b));
            }
        }
    }

    #[test]
    fn reg_index_checked() {
        assert_eq!(Reg(31).index(), 31);
        assert_eq!(Reg(0).to_string(), "r0");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reg_out_of_range_panics() {
        Reg(32).index();
    }

    #[test]
    fn program_validates_branch_targets() {
        let p = Program::new("ok", vec![Instr::Jmp(1), Instr::Halt]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.fetch(0), Some(&Instr::Jmp(1)));
        assert_eq!(p.fetch(2), None);
        assert_eq!(p.name(), "ok");
    }

    #[test]
    #[should_panic(expected = "beyond program end")]
    fn out_of_range_branch_rejected() {
        Program::new("bad", vec![Instr::Jmp(5)]);
    }

    #[test]
    #[should_panic(expected = "empty program")]
    fn empty_program_rejected() {
        Program::new("empty", vec![]);
    }
}
