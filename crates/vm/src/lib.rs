//! The thread VM: the simulated cores' instruction set and interpreter.
//!
//! The paper drives its protocols with real programs running on a simple
//! core model ("single-issue, in-order core model with blocking loads and 1
//! CPI for all non-memory instructions"). This crate reproduces that core
//! model as a small register VM:
//!
//! * [`isa`] — the instruction set: ALU ops, branches, data and
//!   synchronization memory accesses, atomic RMWs (CAS / fetch-and-add /
//!   swap / test-and-set), fences, DeNovo region self-invalidation, delay
//!   (modelled computation and software backoff), and a blocking
//!   *spin-load* used to model spin-wait loops without simulating every
//!   spin iteration.
//! * [`asm`] — a label-resolving assembler with one ergonomic method per
//!   instruction; the 24 synchronization kernels are written against it.
//! * [`thread`] — per-thread architectural state and the stepping
//!   interpreter. Each step retires one instruction (1 cycle) and yields an
//!   [`thread::Effect`] that the system simulator acts on.
//! * [`mod@reference`] — an untimed, sequentially-consistent multi-threaded
//!   reference executor used to validate kernel logic independently of the
//!   timing simulator, and as the oracle in differential tests.
//!
//! # Examples
//!
//! ```
//! use dvs_vm::asm::Asm;
//! use dvs_vm::isa::Reg;
//! use dvs_vm::reference::RefMachine;
//!
//! // A tiny program: r1 = 6 * 7, stored to address 0x100.
//! let mut a = Asm::new("six-by-seven");
//! let (r1, r2) = (Reg(1), Reg(2));
//! a.movi(r1, 6);
//! a.movi(r2, 7);
//! a.mul(r1, r1, r2);
//! a.movi(r2, 0x100);
//! a.store(r1, r2, 0);
//! a.halt();
//! let prog = a.build();
//!
//! let mut m = RefMachine::new(vec![prog]);
//! m.run(1_000).unwrap();
//! assert_eq!(m.memory().read_word(dvs_mem::Addr::new(0x100).word()), 42);
//! ```

pub mod asm;
pub mod isa;
pub mod litmus;
pub mod reference;
pub mod stall;
pub mod thread;

pub use asm::Asm;
pub use isa::{Cond, DelayLen, Instr, Program, Reg};
pub use litmus::Litmus;
pub use stall::StallTracker;
pub use thread::{Effect, ExecPhase, MemRequest, SpinCond, Thread};
