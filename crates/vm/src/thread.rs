//! Per-thread architectural state and the stepping interpreter.
//!
//! A [`Thread`] executes one instruction per [`Thread::step`] call (the
//! paper's 1-CPI in-order core). Each step yields an [`Effect`] describing
//! what the surrounding system must do: nothing (ALU/branch retired), issue
//! a memory request, stall for a delay, fence, self-invalidate, or stop.
//! Timing is entirely the system's concern; the thread only sequences
//! architectural state.

use crate::isa::{Cond, DelayLen, Instr, PhaseChange, Program, Reg, NUM_REGS};
use dvs_engine::DetRng;
use dvs_mem::{AccessKind, Addr, RmwOp};
use dvs_stats::TimeComponent;
use std::sync::Arc;

/// Execution-phase attribution override (alias of the ISA-level
/// [`PhaseChange`]).
pub type ExecPhase = PhaseChange;

/// The exit condition of a spinning load.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpinCond {
    /// Condition on `(loaded value, rhs)`.
    pub cond: Cond,
    /// Right-hand side, captured at issue time.
    pub rhs: u64,
}

impl SpinCond {
    /// Whether `value` satisfies the spin's exit condition.
    pub fn satisfied(&self, value: u64) -> bool {
        self.cond.eval(value, self.rhs)
    }
}

/// A memory request issued by a thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRequest {
    /// Word-aligned effective address.
    pub addr: Addr,
    /// What to do there.
    pub kind: AccessKind,
    /// Register to receive the result (loads and RMWs).
    pub dst: Option<Reg>,
    /// If set, the request is a spin: it must be re-issued until the loaded
    /// value satisfies the condition.
    pub spin: Option<SpinCond>,
}

/// What the system must do after one instruction step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effect {
    /// The instruction retired; charge one cycle and continue.
    Retired,
    /// Issue a memory request. The thread blocks if
    /// [`AccessKind::blocks_core`]; completion is reported via
    /// [`Thread::complete_load`] for value-returning requests.
    Mem(MemRequest),
    /// Stall for `cycles`, attributed to `comp` (plus the 1-cycle retire).
    Delay {
        /// Stall length in cycles.
        cycles: u64,
        /// Time component the stall is attributed to.
        comp: TimeComponent,
    },
    /// Drain outstanding stores before continuing.
    Fence,
    /// Self-invalidate all non-registered cached words of the region.
    SelfInvalidate(dvs_mem::layout::Region),
    /// A trace marker was executed.
    Mark(u32),
    /// The thread halted (idempotent: further steps return this).
    Halted,
    /// An assertion failed; the thread is dead.
    Failed {
        /// Program counter of the failed assertion.
        pc: usize,
        /// The assertion's message.
        msg: &'static str,
    },
}

/// One hardware thread: registers, program counter, private allocation pool
/// and private random stream.
#[derive(Debug, Clone)]
pub struct Thread {
    id: usize,
    nthreads: usize,
    program: Arc<Program>,
    regs: [u64; NUM_REGS],
    pc: usize,
    rng: DetRng,
    alloc_cursor: u64,
    alloc_limit: u64,
    phase: ExecPhase,
    halted: bool,
    failed: Option<(usize, &'static str)>,
}

impl Thread {
    /// Creates a thread with all registers zero and no allocation pool.
    pub fn new(id: usize, nthreads: usize, program: Arc<Program>, rng: DetRng) -> Self {
        assert!(id < nthreads, "thread id {id} out of {nthreads}");
        Thread {
            id,
            nthreads,
            program,
            regs: [0; NUM_REGS],
            pc: 0,
            rng,
            alloc_cursor: 0,
            alloc_limit: 0,
            phase: ExecPhase::Normal,
            halted: false,
            failed: None,
        }
    }

    /// Assigns the thread's private bump-allocation pool.
    pub fn set_alloc_pool(&mut self, base: Addr, bytes: u64) {
        self.alloc_cursor = base.raw();
        self.alloc_limit = base.raw() + bytes;
    }

    /// The thread's id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Current program counter.
    pub fn pc(&self) -> usize {
        self.pc
    }

    /// Reads a register (for tests and diagnostics).
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// Writes a register (for test setup).
    pub fn set_reg(&mut self, r: Reg, value: u64) {
        self.regs[r.index()] = value;
    }

    /// The current attribution phase.
    pub fn phase(&self) -> ExecPhase {
        self.phase
    }

    /// Whether the thread halted normally.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// The failure, if an assertion failed.
    pub fn failure(&self) -> Option<(usize, &'static str)> {
        self.failed
    }

    /// The program this thread runs.
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// Delivers the result of a value-returning memory request.
    pub fn complete_load(&mut self, dst: Option<Reg>, value: u64) {
        if let Some(r) = dst {
            self.regs[r.index()] = value;
        }
    }

    fn ea(&self, base: Reg, off: i64) -> Addr {
        let a = Addr::new(self.regs[base.index()].wrapping_add(off as u64));
        assert!(
            a.is_word_aligned(),
            "{}: thread {} unaligned access {a} at pc {}",
            self.program.name(),
            self.id,
            self.pc
        );
        a
    }

    /// Executes the instruction at the current pc.
    ///
    /// The pc advances *before* the effect is returned (branches set it to
    /// their target), so a blocking memory request resumes at the right
    /// place once [`Thread::complete_load`] is called.
    pub fn step(&mut self) -> Effect {
        if self.halted {
            return Effect::Halted;
        }
        if let Some((pc, msg)) = self.failed {
            return Effect::Failed { pc, msg };
        }
        let instr = *self.program.fetch(self.pc).unwrap_or_else(|| {
            panic!(
                "{}: pc {} fell off program end",
                self.program.name(),
                self.pc
            )
        });
        let at = self.pc;
        self.pc += 1;
        match instr {
            Instr::Movi(d, imm) => {
                self.regs[d.index()] = imm;
                Effect::Retired
            }
            Instr::Mov(d, s) => {
                self.regs[d.index()] = self.regs[s.index()];
                Effect::Retired
            }
            Instr::Add(d, a, b) => self.alu(d, a, b, u64::wrapping_add),
            Instr::Sub(d, a, b) => self.alu(d, a, b, u64::wrapping_sub),
            Instr::Mul(d, a, b) => self.alu(d, a, b, u64::wrapping_mul),
            Instr::Div(d, a, b) => self.alu(d, a, b, |x, y| x.checked_div(y).unwrap_or(0)),
            Instr::Rem(d, a, b) => self.alu(d, a, b, |x, y| x.checked_rem(y).unwrap_or(0)),
            Instr::And(d, a, b) => self.alu(d, a, b, |x, y| x & y),
            Instr::Or(d, a, b) => self.alu(d, a, b, |x, y| x | y),
            Instr::Xor(d, a, b) => self.alu(d, a, b, |x, y| x ^ y),
            Instr::Addi(d, a, imm) => {
                self.regs[d.index()] = self.regs[a.index()].wrapping_add(imm as u64);
                Effect::Retired
            }
            Instr::Shl(d, a, sh) => {
                self.regs[d.index()] = self.regs[a.index()] << (sh & 63);
                Effect::Retired
            }
            Instr::Shr(d, a, sh) => {
                self.regs[d.index()] = self.regs[a.index()] >> (sh & 63);
                Effect::Retired
            }
            Instr::Set(c, d, a, b) => {
                self.regs[d.index()] = c.eval(self.regs[a.index()], self.regs[b.index()]) as u64;
                Effect::Retired
            }
            Instr::Branch(c, a, b, target) => {
                if c.eval(self.regs[a.index()], self.regs[b.index()]) {
                    self.pc = target;
                }
                Effect::Retired
            }
            Instr::Jmp(target) => {
                self.pc = target;
                Effect::Retired
            }
            Instr::Load {
                dst,
                base,
                off,
                sync,
            } => Effect::Mem(MemRequest {
                addr: self.ea(base, off),
                kind: if sync {
                    AccessKind::SyncLoad
                } else {
                    AccessKind::DataLoad
                },
                dst: Some(dst),
                spin: None,
            }),
            Instr::Store {
                src,
                base,
                off,
                sync,
            } => {
                let value = self.regs[src.index()];
                Effect::Mem(MemRequest {
                    addr: self.ea(base, off),
                    kind: if sync {
                        AccessKind::SyncStore { value }
                    } else {
                        AccessKind::DataStore { value }
                    },
                    dst: None,
                    spin: None,
                })
            }
            Instr::Cas {
                dst,
                base,
                off,
                expected,
                new,
            } => Effect::Mem(MemRequest {
                addr: self.ea(base, off),
                kind: AccessKind::SyncRmw(RmwOp::Cas {
                    expected: self.regs[expected.index()],
                    new: self.regs[new.index()],
                }),
                dst: Some(dst),
                spin: None,
            }),
            Instr::Fai {
                dst,
                base,
                off,
                delta,
            } => Effect::Mem(MemRequest {
                addr: self.ea(base, off),
                kind: AccessKind::SyncRmw(RmwOp::Fai {
                    delta: self.regs[delta.index()],
                }),
                dst: Some(dst),
                spin: None,
            }),
            Instr::Swap {
                dst,
                base,
                off,
                new,
            } => Effect::Mem(MemRequest {
                addr: self.ea(base, off),
                kind: AccessKind::SyncRmw(RmwOp::Swap {
                    new: self.regs[new.index()],
                }),
                dst: Some(dst),
                spin: None,
            }),
            Instr::Tas { dst, base, off } => Effect::Mem(MemRequest {
                addr: self.ea(base, off),
                kind: AccessKind::SyncRmw(RmwOp::Tas),
                dst: Some(dst),
                spin: None,
            }),
            Instr::SpinLoad {
                dst,
                base,
                off,
                cond,
                rhs,
                sync,
            } => Effect::Mem(MemRequest {
                addr: self.ea(base, off),
                kind: if sync {
                    AccessKind::SyncLoad
                } else {
                    AccessKind::DataLoad
                },
                dst: Some(dst),
                spin: Some(SpinCond {
                    cond,
                    rhs: self.regs[rhs.index()],
                }),
            }),
            Instr::Fence => Effect::Fence,
            Instr::SelfInv(region) => Effect::SelfInvalidate(region),
            Instr::Delay(len, comp) => {
                let cycles = match len {
                    DelayLen::Fixed(c) => c,
                    DelayLen::FromReg(r) => self.regs[r.index()],
                    DelayLen::Uniform(lo, hi) => self.rng.range(lo, hi),
                };
                Effect::Delay { cycles, comp }
            }
            Instr::Phase(p) => {
                self.phase = p;
                Effect::Retired
            }
            Instr::Tid(d) => {
                self.regs[d.index()] = self.id as u64;
                Effect::Retired
            }
            Instr::NThreads(d) => {
                self.regs[d.index()] = self.nthreads as u64;
                Effect::Retired
            }
            Instr::Alloc { dst, words } => {
                // Allocations are padded to whole cache lines (as concurrent
                // allocators do), so no two allocations share a line: a line
                // fill of one object can never cache a neighbour's
                // not-yet-written words.
                let bytes = (words as u64 * dvs_mem::WORD_BYTES).div_ceil(dvs_mem::LINE_BYTES)
                    * dvs_mem::LINE_BYTES;
                if self.alloc_cursor + bytes > self.alloc_limit {
                    self.failed = Some((at, "allocation pool exhausted"));
                    return Effect::Failed {
                        pc: at,
                        msg: "allocation pool exhausted",
                    };
                }
                self.regs[dst.index()] = self.alloc_cursor;
                self.alloc_cursor += bytes;
                Effect::Retired
            }
            Instr::Mark(id) => Effect::Mark(id),
            Instr::Assert(c, a, b, msg) => {
                if c.eval(self.regs[a.index()], self.regs[b.index()]) {
                    Effect::Retired
                } else {
                    self.failed = Some((at, msg));
                    Effect::Failed { pc: at, msg }
                }
            }
            Instr::Halt => {
                self.halted = true;
                Effect::Halted
            }
            Instr::Nop => Effect::Retired,
        }
    }

    fn alu(&mut self, d: Reg, a: Reg, b: Reg, f: impl Fn(u64, u64) -> u64) -> Effect {
        self.regs[d.index()] = f(self.regs[a.index()], self.regs[b.index()]);
        Effect::Retired
    }
}

/// Canonical hash of the architectural state. The program is excluded: it is
/// immutable for the lifetime of the thread, so two snapshots of the same
/// run always share it.
impl std::hash::Hash for Thread {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.id.hash(state);
        self.nthreads.hash(state);
        self.regs.hash(state);
        self.pc.hash(state);
        self.rng.hash(state);
        self.alloc_cursor.hash(state);
        self.alloc_limit.hash(state);
        self.phase.hash(state);
        self.halted.hash(state);
        self.failed.hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;

    fn thread_for(a: Asm) -> Thread {
        Thread::new(0, 1, Arc::new(a.build()), DetRng::new(1))
    }

    #[test]
    fn alu_semantics() {
        let mut a = Asm::new("alu");
        let (r1, r2, r3) = (Reg(1), Reg(2), Reg(3));
        a.movi(r1, 10)
            .movi(r2, 3)
            .add(r3, r1, r2) // 13
            .sub(r3, r3, r2) // 10
            .mul(r3, r3, r2) // 30
            .div(r3, r3, r2) // 10
            .rem(r3, r3, r2) // 1
            .halt();
        let mut t = thread_for(a);
        for _ in 0..8 {
            t.step();
        }
        assert_eq!(t.reg(Reg(3)), 1);
        assert!(t.is_halted());
    }

    #[test]
    fn division_by_zero_yields_zero() {
        let mut a = Asm::new("div0");
        a.movi(Reg(1), 5)
            .movi(Reg(2), 0)
            .div(Reg(3), Reg(1), Reg(2))
            .rem(Reg(4), Reg(1), Reg(2))
            .halt();
        let mut t = thread_for(a);
        for _ in 0..5 {
            t.step();
        }
        assert_eq!(t.reg(Reg(3)), 0);
        assert_eq!(t.reg(Reg(4)), 0);
    }

    #[test]
    fn branch_taken_and_not_taken() {
        let mut a = Asm::new("br");
        let skip = a.label();
        a.movi(Reg(1), 1)
            .movi(Reg(2), 1)
            .beq(Reg(1), Reg(2), skip)
            .movi(Reg(3), 99); // skipped
        a.bind(skip);
        a.movi(Reg(4), 7).halt();
        let mut t = thread_for(a);
        while !t.is_halted() {
            t.step();
        }
        assert_eq!(t.reg(Reg(3)), 0);
        assert_eq!(t.reg(Reg(4)), 7);
    }

    #[test]
    fn load_issues_request_and_completion_writes_reg() {
        let mut a = Asm::new("ld");
        a.movi(Reg(1), 0x200).load(Reg(2), Reg(1), 8).halt();
        let mut t = thread_for(a);
        t.step();
        match t.step() {
            Effect::Mem(req) => {
                assert_eq!(req.addr, Addr::new(0x208));
                assert_eq!(req.kind, AccessKind::DataLoad);
                assert_eq!(req.dst, Some(Reg(2)));
                t.complete_load(req.dst, 1234);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(t.reg(Reg(2)), 1234);
    }

    #[test]
    fn store_carries_value() {
        let mut a = Asm::new("st");
        a.movi(Reg(1), 0x100)
            .movi(Reg(2), 55)
            .stores(Reg(2), Reg(1), 0)
            .halt();
        let mut t = thread_for(a);
        t.step();
        t.step();
        match t.step() {
            Effect::Mem(req) => {
                assert_eq!(req.kind, AccessKind::SyncStore { value: 55 });
                assert!(req.kind.is_sync());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn cas_captures_operands_at_issue() {
        let mut a = Asm::new("cas");
        a.movi(Reg(1), 0x300)
            .movi(Reg(2), 7)
            .movi(Reg(3), 9)
            .cas(Reg(4), Reg(1), 0, Reg(2), Reg(3))
            .halt();
        let mut t = thread_for(a);
        for _ in 0..3 {
            t.step();
        }
        match t.step() {
            Effect::Mem(req) => {
                assert_eq!(
                    req.kind,
                    AccessKind::SyncRmw(RmwOp::Cas {
                        expected: 7,
                        new: 9
                    })
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn spin_load_captures_rhs() {
        let mut a = Asm::new("spin");
        a.movi(Reg(1), 0x400)
            .movi(Reg(2), 1)
            .spin_until(Reg(3), Reg(1), 0, Cond::Eq, Reg(2))
            .halt();
        let mut t = thread_for(a);
        t.step();
        t.step();
        match t.step() {
            Effect::Mem(req) => {
                let spin = req.spin.expect("spin condition");
                assert!(!spin.satisfied(0));
                assert!(spin.satisfied(1));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn delay_uniform_is_in_range_and_deterministic() {
        let mk = || {
            let mut a = Asm::new("delay");
            a.rand_delay(128, 2048, TimeComponent::SwBackoff).halt();
            thread_for(a)
        };
        let (mut t1, mut t2) = (mk(), mk());
        match (t1.step(), t2.step()) {
            (Effect::Delay { cycles: c1, comp }, Effect::Delay { cycles: c2, .. }) => {
                assert!((128..2048).contains(&c1));
                assert_eq!(c1, c2);
                assert_eq!(comp, TimeComponent::SwBackoff);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn alloc_bumps_and_exhausts() {
        let mut a = Asm::new("alloc");
        a.alloc(Reg(1), 2).alloc(Reg(2), 2).alloc(Reg(3), 2).halt();
        let mut t = thread_for(a);
        t.set_alloc_pool(Addr::new(0x1000), 128);
        t.step();
        t.step();
        assert_eq!(t.reg(Reg(1)), 0x1000);
        assert_eq!(t.reg(Reg(2)), 0x1040, "allocations are line-padded");
        match t.step() {
            Effect::Failed { msg, .. } => assert_eq!(msg, "allocation pool exhausted"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn assert_failure_sticks() {
        let mut a = Asm::new("assert");
        a.movi(Reg(1), 1)
            .movi(Reg(2), 2)
            .assert_cond(Cond::Eq, Reg(1), Reg(2), "boom")
            .halt();
        let mut t = thread_for(a);
        t.step();
        t.step();
        assert!(matches!(t.step(), Effect::Failed { msg: "boom", .. }));
        assert!(matches!(t.step(), Effect::Failed { msg: "boom", .. }));
        assert_eq!(t.failure(), Some((2, "boom")));
    }

    #[test]
    fn halt_is_idempotent() {
        let mut a = Asm::new("halt");
        a.halt();
        let mut t = thread_for(a);
        assert_eq!(t.step(), Effect::Halted);
        assert_eq!(t.step(), Effect::Halted);
        assert!(t.is_halted());
    }

    #[test]
    fn tid_and_nthreads() {
        let mut a = Asm::new("ids");
        a.tid(Reg(1)).nthreads(Reg(2)).halt();
        let mut t = Thread::new(3, 8, Arc::new(a.build()), DetRng::new(0));
        t.step();
        t.step();
        assert_eq!(t.reg(Reg(1)), 3);
        assert_eq!(t.reg(Reg(2)), 8);
    }

    #[test]
    #[should_panic(expected = "unaligned access")]
    fn unaligned_access_panics() {
        let mut a = Asm::new("unaligned");
        a.movi(Reg(1), 0x101).load(Reg(2), Reg(1), 0).halt();
        let mut t = thread_for(a);
        t.step();
        t.step();
    }

    #[test]
    fn set_instruction_materializes_conditions() {
        let mut a = Asm::new("set");
        a.movi(Reg(1), 5)
            .movi(Reg(2), 9)
            .set(Cond::Lt, Reg(3), Reg(1), Reg(2))
            .set(Cond::Eq, Reg(4), Reg(1), Reg(2))
            .halt();
        let mut t = thread_for(a);
        for _ in 0..5 {
            t.step();
        }
        assert_eq!(t.reg(Reg(3)), 1);
        assert_eq!(t.reg(Reg(4)), 0);
    }

    #[test]
    fn swap_issues_exchange_rmw() {
        let mut a = Asm::new("swap");
        a.movi(Reg(1), 0x100)
            .movi(Reg(2), 77)
            .swap(Reg(3), Reg(1), 0, Reg(2))
            .halt();
        let mut t = thread_for(a);
        t.step();
        t.step();
        match t.step() {
            Effect::Mem(req) => {
                assert_eq!(req.kind, AccessKind::SyncRmw(RmwOp::Swap { new: 77 }));
                t.complete_load(req.dst, 11);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(t.reg(Reg(3)), 11);
    }

    #[test]
    fn phase_changes_are_tracked() {
        let mut a = Asm::new("phase");
        a.phase(PhaseChange::BarrierWait)
            .phase(PhaseChange::Normal)
            .halt();
        let mut t = thread_for(a);
        assert_eq!(t.phase(), ExecPhase::Normal);
        t.step();
        assert_eq!(t.phase(), ExecPhase::BarrierWait);
        t.step();
        assert_eq!(t.phase(), ExecPhase::Normal);
    }
}
