//! Synthetic application models standing in for the paper's 13 SPLASH-2 /
//! PARSEC benchmarks (§5.3.2, Table 2).
//!
//! The real benchmarks cannot run on this simulator (no full-system x86
//! front end), so each is modelled by a synthetic workload that reproduces
//! its *synchronization pattern mix* and data-access/synchronization ratio —
//! the properties §7.2 attributes the results to. The substitution is
//! documented in DESIGN.md. The four classes:
//!
//! * **barrier-only** (FFT, LU, blackscholes, swaptions, radix): tree-barrier
//!   phases over partitioned shared data with neighbour reads. The LU model
//!   additionally writes a word-interleaved shared border array — the false
//!   sharing that hurts line-granularity MESI but not word-granularity
//!   DeNovo.
//! * **barriers + locks** (bodytrack, barnes, water, ocean, fluidanimate):
//!   barrier phases plus TATAS-protected updates of shared accumulators.
//!   The fluidanimate model takes many fine-grained locks whose acquires
//!   self-invalidate a large region that is then partially re-read — the
//!   conservative-invalidation cost the paper measures (DS ~7% worse).
//! * **non-blocking** (canneal): an aggressive CAS-retry loop swapping
//!   shared elements; synchronization forms a large fraction of accesses.
//!   Invariant: swaps conserve the element-array sum.
//! * **pipeline** (ferret, x264): stage queues between thread groups,
//!   single-lock handoff, evaluated at 16 cores (the paper's configuration
//!   for these two).

pub mod model;

pub use model::{build_app, AppClass, AppSpec};

/// The paper's Table 2: benchmark names, suites, inputs, and core counts.
pub fn all_apps() -> Vec<AppSpec> {
    use AppClass::*;
    vec![
        AppSpec {
            name: "FFT",
            suite: "SPLASH-2",
            input: "m16",
            cores: 64,
            class: BarrierOnly {
                phases: 10,
                partition_words: 128,
                neighbour_reads: 48,
                compute: (400, 900),
                false_sharing: false,
            },
        },
        AppSpec {
            name: "LU",
            suite: "SPLASH-2",
            input: "n256",
            cores: 64,
            class: BarrierOnly {
                phases: 12,
                partition_words: 96,
                neighbour_reads: 32,
                compute: (500, 1000),
                false_sharing: true,
            },
        },
        AppSpec {
            name: "blackscholes",
            suite: "PARSEC",
            input: "sim medium",
            cores: 64,
            class: BarrierOnly {
                phases: 6,
                partition_words: 160,
                neighbour_reads: 8,
                compute: (1500, 2500),
                false_sharing: false,
            },
        },
        AppSpec {
            name: "swaptions",
            suite: "PARSEC",
            input: "sim small",
            cores: 64,
            class: BarrierOnly {
                phases: 5,
                partition_words: 96,
                neighbour_reads: 4,
                compute: (2000, 3000),
                false_sharing: false,
            },
        },
        AppSpec {
            name: "radix",
            suite: "SPLASH-2",
            input: "524288",
            cores: 64,
            class: BarrierOnly {
                phases: 8,
                partition_words: 192,
                neighbour_reads: 64,
                compute: (300, 700),
                false_sharing: false,
            },
        },
        AppSpec {
            name: "bodytrack",
            suite: "PARSEC",
            input: "sim medium",
            cores: 64,
            class: BarrierLock {
                phases: 8,
                locks: 8,
                cs_per_phase: 4,
                cs_words: 4,
                region_words: 64,
                reread_words: 4,
                compute: (800, 1400),
            },
        },
        AppSpec {
            name: "barnes",
            suite: "SPLASH-2",
            input: "8192",
            cores: 64,
            class: BarrierLock {
                phases: 6,
                locks: 16,
                cs_per_phase: 6,
                cs_words: 6,
                region_words: 128,
                reread_words: 8,
                compute: (700, 1300),
            },
        },
        AppSpec {
            name: "water",
            suite: "SPLASH-2",
            input: "512",
            cores: 64,
            class: BarrierLock {
                phases: 8,
                locks: 4,
                cs_per_phase: 3,
                cs_words: 4,
                region_words: 64,
                reread_words: 4,
                compute: (900, 1500),
            },
        },
        AppSpec {
            name: "ocean",
            suite: "SPLASH-2",
            input: "258",
            cores: 64,
            class: BarrierLock {
                phases: 12,
                locks: 2,
                cs_per_phase: 1,
                cs_words: 2,
                region_words: 96,
                reread_words: 6,
                compute: (600, 1200),
            },
        },
        AppSpec {
            name: "fluidanimate",
            suite: "PARSEC",
            input: "sim small",
            cores: 64,
            class: BarrierLock {
                phases: 6,
                locks: 32,
                cs_per_phase: 10,
                cs_words: 3,
                // Large protected region + substantial re-reads after each
                // acquire: conservative self-invalidation hurts DeNovo here.
                region_words: 512,
                reread_words: 24,
                compute: (400, 800),
            },
        },
        AppSpec {
            name: "canneal",
            suite: "PARSEC",
            input: "sim small",
            cores: 64,
            class: NonBlockingSwap {
                elements: 256,
                swaps: 40,
                compute: (60, 160),
            },
        },
        AppSpec {
            name: "ferret",
            suite: "PARSEC",
            input: "sim small",
            cores: 16,
            class: Pipeline {
                stages: 4,
                tokens: 64,
                stage_compute: (300, 700),
            },
        },
        AppSpec {
            name: "x264",
            suite: "PARSEC",
            input: "sim medium",
            cores: 16,
            class: Pipeline {
                stages: 2,
                tokens: 96,
                stage_compute: (500, 1100),
            },
        },
    ]
}

/// Looks up an app model by its Table 2 name (`"FFT"`, `"canneal"`, ...),
/// so experiment specs can address apps as serializable data.
pub fn app_by_name(name: &str) -> Option<AppSpec> {
    all_apps().into_iter().find(|a| a.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn app_names_round_trip() {
        for app in all_apps() {
            let found = app_by_name(app.name).expect("lookup by name");
            assert_eq!(found.name, app.name);
            assert_eq!(found.cores, app.cores);
        }
        assert!(app_by_name("doom").is_none());
    }

    #[test]
    fn thirteen_apps_match_table2() {
        let apps = all_apps();
        assert_eq!(apps.len(), 13);
        let on16: Vec<&str> = apps
            .iter()
            .filter(|a| a.cores == 16)
            .map(|a| a.name)
            .collect();
        assert_eq!(
            on16,
            vec!["ferret", "x264"],
            "paper: ferret and x264 at 16 cores"
        );
        assert!(apps.iter().filter(|a| a.cores == 64).count() == 11);
        let mut names: Vec<&str> = apps.iter().map(|a| a.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 13);
    }
}
