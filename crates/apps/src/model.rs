//! The four application-model builders.
//!
//! Every model produces a `dvs_kernels::Workload`, so applications run
//! through exactly the same harness as the synchronization kernels and carry
//! equally strong semantic post-conditions (deterministic checksums for the
//! barrier phases, exact lock-protected totals, sum conservation for the
//! canneal swaps, token conservation for the pipelines).

use dvs_kernels::sync::{
    emit_prologue, emit_sw_backoff, emit_sw_backoff_reset, TatasLock, TreeBarrier, EPOCH, ITER,
    ITERS, ONE, TID, ZERO,
};
use dvs_kernels::Workload;
use dvs_mem::{Addr, LayoutBuilder, LINE_BYTES, WORD_BYTES};
use dvs_stats::TimeComponent;
use dvs_vm::isa::Reg;
use dvs_vm::Asm;

const SUM: Reg = Reg(16);
const CNT: Reg = Reg(17);
const LCG: Reg = Reg(20);
const T3: Reg = Reg(3);
const T4: Reg = Reg(4);
const T5: Reg = Reg(5);
const T6: Reg = Reg(6);
const T7: Reg = Reg(7);
const T8: Reg = Reg(8);
const P10: Reg = Reg(10);
const P11: Reg = Reg(11);

/// One benchmark's model parameters.
#[derive(Debug, Clone, Copy)]
pub struct AppSpec {
    /// Benchmark name (Table 2).
    pub name: &'static str,
    /// Suite (SPLASH-2 or PARSEC).
    pub suite: &'static str,
    /// The paper's input set (Table 2), recorded for the table harness.
    pub input: &'static str,
    /// The paper's core count for this benchmark (64, or 16 for the
    /// pipeline apps).
    pub cores: usize,
    /// The synchronization-pattern class and its parameters.
    pub class: AppClass,
}

/// The four synchronization-pattern classes of §7.2.
#[derive(Debug, Clone, Copy)]
pub enum AppClass {
    /// Tree-barrier phases over partitioned shared data.
    BarrierOnly {
        /// Number of compute phases.
        phases: u64,
        /// Words each thread owns and rewrites per phase.
        partition_words: u64,
        /// Words read from the neighbour's partition per phase.
        neighbour_reads: u64,
        /// Per-phase compute range, cycles.
        compute: (u64, u64),
        /// Also write a word-interleaved shared border array (line-level
        /// false sharing; hurts MESI, not word-granular DeNovo).
        false_sharing: bool,
    },
    /// Barrier phases plus TATAS-protected shared updates.
    BarrierLock {
        /// Number of phases.
        phases: u64,
        /// Number of locks (each protecting a slice of the region).
        locks: u64,
        /// Critical sections entered per phase per thread.
        cs_per_phase: u64,
        /// Accumulator increments per critical section.
        cs_words: u64,
        /// Size of the lock-protected shared region (self-invalidated on
        /// every acquire — the conservative-invalidation knob).
        region_words: u64,
        /// Words of the protected slice re-read after each acquire.
        reread_words: u64,
        /// Per-phase compute range, cycles.
        compute: (u64, u64),
    },
    /// Aggressive lock-free CAS/fetch-and-add loop over shared elements
    /// (canneal); every swap conserves the array sum.
    NonBlockingSwap {
        /// Number of shared elements.
        elements: u64,
        /// Swaps per thread.
        swaps: u64,
        /// Between-swap compute range, cycles.
        compute: (u64, u64),
    },
    /// Stage queues between thread groups (ferret, x264).
    Pipeline {
        /// Number of pipeline stages (must divide the thread count).
        stages: u64,
        /// Tokens produced per first-stage thread.
        tokens: u64,
        /// Per-token compute range, cycles.
        stage_compute: (u64, u64),
    },
}

/// Builds the workload for `spec` at `threads` cores (pass `spec.cores` for
/// the paper's configuration; smaller powers for tests).
///
/// # Panics
///
/// Panics if `threads` is zero, or (pipelines) not divisible by the stage
/// count.
pub fn build_app(spec: &AppSpec, threads: usize) -> Workload {
    assert!(threads > 0, "need at least one thread");
    match spec.class {
        AppClass::BarrierOnly {
            phases,
            partition_words,
            neighbour_reads,
            compute,
            false_sharing,
        } => build_barrier_only(
            threads,
            phases,
            partition_words,
            neighbour_reads.min(partition_words),
            compute,
            false_sharing,
        ),
        AppClass::BarrierLock {
            phases,
            locks,
            cs_per_phase,
            cs_words,
            region_words,
            reread_words,
            compute,
        } => build_barrier_lock(
            threads,
            phases,
            locks,
            cs_per_phase,
            cs_words,
            region_words,
            reread_words,
            compute,
        ),
        AppClass::NonBlockingSwap {
            elements,
            swaps,
            compute,
        } => build_swap(threads, elements, swaps, compute),
        AppClass::Pipeline {
            stages,
            tokens,
            stage_compute,
        } => build_pipeline(threads, stages, tokens, stage_compute),
    }
}

fn build_barrier_only(
    threads: usize,
    phases: u64,
    partition_words: u64,
    neighbour_reads: u64,
    compute: (u64, u64),
    false_sharing: bool,
) -> Workload {
    let mut lb = LayoutBuilder::new();
    let sync = lb.region("sync");
    let data = lb.region("data");
    let results = lb.segment("results", threads as u64 * LINE_BYTES, data);
    let parts = lb.segment(
        "partitions",
        threads as u64 * partition_words * WORD_BYTES,
        data,
    );
    // Word-interleaved border: thread i's word shares lines with its
    // neighbours' (the LU false-sharing pattern).
    let border = lb.segment("border", threads as u64 * WORD_BYTES, data);
    let barrier = TreeBarrier {
        arrive: lb.segment("arrive", threads as u64 * LINE_BYTES, sync),
        go: lb.segment("go", threads as u64 * LINE_BYTES, sync),
        fan_in: 2,
        fan_out: 2,
        n: threads,
        data_region: Some(data),
    };

    let programs = (0..threads)
        .map(|tid| {
            let ntid = (tid + 1) % threads;
            let my_base = parts.raw() + tid as u64 * partition_words * WORD_BYTES;
            let nb_base = parts.raw() + ntid as u64 * partition_words * WORD_BYTES;
            let mut a = Asm::new("barrier-app");
            emit_prologue(&mut a, phases);
            let top = a.here();
            // Write my partition: word j := phase*1000 + tid + 7*j.
            a.movi(T4, 1000);
            a.mul(T4, ITER, T4);
            a.addi(T4, T4, tid as i64); // base value
            a.movi(T5, 0); // j
            a.movi(T6, partition_words);
            let wloop = a.here();
            let wdone = a.label();
            a.bge(T5, T6, wdone);
            a.shl(P10, T5, 3);
            a.addi(P10, P10, my_base as i64);
            a.movi(T7, 7);
            a.mul(T7, T5, T7);
            a.add(T7, T7, T4);
            a.store(T7, P10, 0);
            a.addi(T5, T5, 1);
            a.jmp(wloop);
            a.bind(wdone);
            if false_sharing {
                a.movi(P10, border.raw() + tid as u64 * WORD_BYTES);
                a.store(T4, P10, 0);
            }
            a.fence();
            barrier.emit(&mut a, tid);
            // Read the neighbour's fresh partition and accumulate.
            a.movi(T5, 0);
            a.movi(T6, neighbour_reads);
            let rloop = a.here();
            let rdone = a.label();
            a.bge(T5, T6, rdone);
            a.shl(P10, T5, 3);
            a.addi(P10, P10, nb_base as i64);
            a.load(T7, P10, 0);
            a.add(SUM, SUM, T7);
            a.addi(T5, T5, 1);
            a.jmp(rloop);
            a.bind(rdone);
            if false_sharing {
                a.movi(P10, border.raw() + ntid as u64 * WORD_BYTES);
                a.load(T7, P10, 0);
                a.add(SUM, SUM, T7);
            }
            a.rand_delay(compute.0, compute.1, TimeComponent::Compute);
            barrier.emit(&mut a, tid);
            a.addi(ITER, ITER, 1);
            a.blt(ITER, ITERS, top);
            // Publish the checksum.
            a.movi(P10, results.raw() + tid as u64 * LINE_BYTES);
            a.store(SUM, P10, 0);
            a.fence();
            barrier.emit(&mut a, tid);
            a.halt();
            a.build()
        })
        .collect();

    // The checksum each thread must have computed is fully deterministic.
    let expected: Vec<u64> = (0..threads)
        .map(|tid| {
            let ntid = ((tid + 1) % threads) as u64;
            let mut sum = 0u64;
            for phase in 0..phases {
                let base = phase * 1000 + ntid;
                for j in 0..neighbour_reads {
                    sum = sum.wrapping_add(base + 7 * j);
                }
                if false_sharing {
                    sum = sum.wrapping_add(base);
                }
            }
            sum
        })
        .collect();
    Workload::new(
        lb.build(),
        programs,
        Vec::new(),
        Vec::new(),
        Box::new(move |read| {
            for (tid, &want) in expected.iter().enumerate() {
                let got = read(Addr::new(results.raw() + tid as u64 * LINE_BYTES));
                if got != want {
                    return Err(format!(
                        "thread {tid} checksum {got}, expected {want} (stale neighbour reads?)"
                    ));
                }
            }
            Ok(())
        }),
    )
}

#[allow(clippy::too_many_arguments)]
fn build_barrier_lock(
    threads: usize,
    phases: u64,
    locks: u64,
    cs_per_phase: u64,
    cs_words: u64,
    region_words: u64,
    reread_words: u64,
    compute: (u64, u64),
) -> Workload {
    let mut lb = LayoutBuilder::new();
    let sync = lb.region("sync");
    let data = lb.region("data");
    let region = lb.segment("region", region_words * WORD_BYTES, data);
    let accs = lb.segment("accumulators", locks * LINE_BYTES, data);
    let lock_objs: Vec<TatasLock> = (0..locks)
        .map(|l| TatasLock {
            lock: lb.sync_var(&format!("lock{l}"), sync, true),
            data_region: Some(data),
            sw_backoff: false,
        })
        .collect();
    let barrier = TreeBarrier {
        arrive: lb.segment("arrive", threads as u64 * LINE_BYTES, sync),
        go: lb.segment("go", threads as u64 * LINE_BYTES, sync),
        fan_in: 2,
        fan_out: 2,
        n: threads,
        data_region: Some(data),
    };
    let slice = region_words / locks.max(1);

    let programs = (0..threads)
        .map(|tid| {
            let mut a = Asm::new("barrier-lock-app");
            emit_prologue(&mut a, phases);
            let top = a.here();
            for i in 0..cs_per_phase {
                let l = ((tid as u64) + i * 7 + 1) % locks;
                let lock = &lock_objs[l as usize];
                lock.emit_acquire(&mut a);
                // Re-read part of the protected slice (cost of the acquire's
                // conservative self-invalidation on DeNovo).
                let base = region.raw() + l * slice * WORD_BYTES;
                for k in 0..reread_words.min(slice) {
                    a.movi(P10, base + (k % slice) * WORD_BYTES);
                    a.load(T7, P10, 0);
                    a.add(SUM, SUM, T7);
                }
                // Update the slice and the accumulator.
                a.movi(P10, base + ((tid as u64 + i) % slice) * WORD_BYTES);
                a.load(T7, P10, 0);
                a.addi(T7, T7, 1);
                a.store(T7, P10, 0);
                let acc = accs.raw() + l * LINE_BYTES;
                for _ in 0..cs_words {
                    a.movi(P11, acc);
                    a.load(T8, P11, 0);
                    a.addi(T8, T8, 1);
                    a.store(T8, P11, 0);
                }
                lock.emit_release(&mut a);
            }
            a.rand_delay(compute.0, compute.1, TimeComponent::Compute);
            barrier.emit(&mut a, tid);
            a.addi(ITER, ITER, 1);
            a.blt(ITER, ITERS, top);
            a.halt();
            a.build()
        })
        .collect();

    let expected_total = threads as u64 * phases * cs_per_phase * cs_words;
    Workload::new(
        lb.build(),
        programs,
        Vec::new(),
        Vec::new(),
        Box::new(move |read| {
            let total: u64 = (0..locks)
                .map(|l| read(Addr::new(accs.raw() + l * LINE_BYTES)))
                .sum();
            if total != expected_total {
                return Err(format!(
                    "lock-protected total {total}, expected {expected_total}"
                ));
            }
            Ok(())
        }),
    )
}

fn build_swap(threads: usize, elements: u64, swaps: u64, compute: (u64, u64)) -> Workload {
    let mut lb = LayoutBuilder::new();
    let sync = lb.region("sync");
    let _data = lb.region("data");
    // Elements are CAS targets: synchronization data, unpadded (the real
    // canneal's elements are spread through memory; line sharing stresses
    // MESI, word-granular DeNovo is indifferent).
    let elems = lb.segment("elements", elements * WORD_BYTES, sync);
    let init: Vec<(Addr, u64)> = (0..elements)
        .map(|i| (Addr::new(elems.raw() + i * WORD_BYTES), 1000 + i))
        .collect();
    let initial_sum: u64 = init.iter().map(|(_, v)| *v).sum();

    let programs = (0..threads)
        .map(|tid| {
            let mut a = Asm::new("canneal-app");
            emit_prologue(&mut a, swaps);
            // Per-thread LCG for index selection.
            a.movi(LCG, 0x9E37_79B9u64 + tid as u64 * 0x85EB_CA6B);
            let top = a.here();
            // i = lcg() % elements, j = lcg() % elements
            let lcg_next = |a: &mut Asm, dst: Reg| {
                a.movi(T4, 6364136223846793005);
                a.mul(LCG, LCG, T4);
                a.addi(LCG, LCG, 1442695040888963407u64 as i64);
                a.shr(dst, LCG, 33);
                a.movi(T4, elements);
                a.rem(dst, dst, T4);
            };
            lcg_next(&mut a, T5); // i
            lcg_next(&mut a, T6); // j
                                  // addr_i, addr_j
            a.shl(P10, T5, 3);
            a.addi(P10, P10, elems.raw() as i64);
            a.shl(P11, T6, 3);
            a.addi(P11, P11, elems.raw() as i64);
            // CAS-increment element i (retry loop with software backoff) ...
            let retry = a.here();
            let got = a.label();
            a.loads(T7, P10, 0);
            a.addi(T8, T7, 1);
            a.cas(T3, P10, 0, T7, T8);
            a.beq(T3, T7, got);
            emit_sw_backoff(&mut a);
            a.jmp(retry);
            a.bind(got);
            emit_sw_backoff_reset(&mut a);
            // ... and balance by decrementing element j (atomic).
            a.movi(T4, u64::MAX); // -1
            a.fai(T3, P11, 0, T4);
            a.addi(CNT, CNT, 1);
            a.rand_delay(compute.0, compute.1, TimeComponent::Compute);
            a.addi(ITER, ITER, 1);
            a.blt(ITER, ITERS, top);
            a.halt();
            a.build()
        })
        .collect();

    Workload::new(
        lb.build(),
        programs,
        init,
        Vec::new(),
        Box::new(move |read| {
            let total: u64 = (0..elements)
                .map(|i| read(Addr::new(elems.raw() + i * WORD_BYTES)))
                .fold(0u64, |a, b| a.wrapping_add(b));
            if total != initial_sum {
                return Err(format!(
                    "element sum {total} drifted from initial {initial_sum}"
                ));
            }
            Ok(())
        }),
    )
}

fn build_pipeline(threads: usize, stages: u64, tokens: u64, compute: (u64, u64)) -> Workload {
    assert!(
        (threads as u64).is_multiple_of(stages),
        "{threads} threads must divide into {stages} stages"
    );
    let per_stage = threads as u64 / stages;
    let mut lb = LayoutBuilder::new();
    let sync = lb.region("sync");
    let data = lb.region("data");
    let results = lb.segment("results", threads as u64 * LINE_BYTES, data);
    // One single-lock linked queue between consecutive stages.
    let nq = (stages - 1) as usize;
    let mut queues = Vec::with_capacity(nq);
    let mut init = Vec::new();
    for q in 0..nq {
        let lock = TatasLock {
            lock: lb.sync_var(&format!("qlock{q}"), sync, true),
            data_region: Some(data),
            sw_backoff: false,
        };
        let head = lb.segment(&format!("qhead{q}"), 8, data);
        let tail = lb.segment(&format!("qtail{q}"), 8, data);
        let dummy = lb.segment(&format!("qdummy{q}"), 16, data);
        init.push((head, dummy.raw()));
        init.push((tail, dummy.raw()));
        queues.push((lock, head, tail));
    }
    // Per-stage completion counters.
    let done: Vec<Addr> = (0..stages)
        .map(|g| lb.sync_var(&format!("done{g}"), sync, true))
        .collect();
    // Token nodes: stage-g threads re-enqueue into queue g, so every
    // non-final stage needs a pool.
    let pool_bytes = (tokens * per_stage.max(1) + 8) * LINE_BYTES;
    let pools: Vec<(Addr, u64)> = (0..threads)
        .map(|t| {
            (
                lb.segment(&format!("pool{t}"), pool_bytes, data),
                pool_bytes,
            )
        })
        .collect();

    let emit_enqueue = |a: &mut Asm, lock: &TatasLock, tail: Addr, val: Reg| {
        // node = alloc; node.value = val; node.next = 0
        a.alloc(P11, 2);
        a.store(val, P11, 0);
        a.store(ZERO, P11, 8);
        lock.emit_acquire(a);
        a.movi(P10, tail.raw());
        a.load(T7, P10, 0);
        a.store(P11, T7, 8);
        a.store(P11, P10, 0);
        lock.emit_release(a);
    };
    // Dequeue into T8 (0 if empty).
    let emit_try_dequeue = |a: &mut Asm, lock: &TatasLock, head: Addr| {
        lock.emit_acquire(a);
        a.movi(T8, 0);
        a.movi(P10, head.raw());
        a.load(T6, P10, 0);
        a.load(T7, T6, 8);
        let empty = a.label();
        a.beq(T7, ZERO, empty);
        a.load(T8, T7, 0);
        a.store(T7, P10, 0);
        a.bind(empty);
        lock.emit_release(a);
    };

    let programs = (0..threads)
        .map(|tid| {
            let stage = tid as u64 / per_stage;
            let first = stage == 0;
            let last = stage == stages - 1;
            let mut a = Asm::new("pipeline-app");
            emit_prologue(&mut a, tokens);
            if first {
                let (lock, _, tail) = &queues[0];
                let top = a.here();
                // value = tid*tokens + iter + 1 (globally unique, nonzero)
                a.movi(T4, tokens);
                a.mul(T4, TID, T4);
                a.add(T4, T4, ITER);
                a.addi(T4, T4, 1);
                a.rand_delay(compute.0, compute.1, TimeComponent::Compute);
                emit_enqueue(&mut a, lock, *tail, T4);
                a.add(SUM, SUM, T4);
                a.addi(CNT, CNT, 1);
                a.addi(ITER, ITER, 1);
                a.blt(ITER, ITERS, top);
            } else {
                let upstream_done = done[(stage - 1) as usize];
                let expected_up = per_stage;
                let (in_lock, in_head, _) = &queues[(stage - 1) as usize];
                let top = a.here();
                let drained = a.label();
                let got_token = a.label();
                emit_try_dequeue(&mut a, in_lock, *in_head);
                a.bne(T8, ZERO, got_token);
                // Empty: if the upstream stage has finished, drain once more
                // and exit; else poll again shortly.
                a.movi(P10, upstream_done.raw());
                a.loads(T5, P10, 0);
                a.movi(T6, expected_up);
                let poll = a.label();
                a.blt(T5, T6, poll);
                emit_try_dequeue(&mut a, in_lock, *in_head);
                a.bne(T8, ZERO, got_token);
                a.jmp(drained);
                a.bind(poll);
                a.delay(200, TimeComponent::Compute);
                a.jmp(top);
                a.bind(got_token);
                a.rand_delay(compute.0, compute.1, TimeComponent::Compute);
                if last {
                    a.add(SUM, SUM, T8);
                    a.addi(CNT, CNT, 1);
                } else {
                    let (out_lock, _, out_tail) = &queues[stage as usize];
                    emit_enqueue(&mut a, out_lock, *out_tail, T8);
                    a.add(SUM, SUM, T8);
                    a.addi(CNT, CNT, 1);
                }
                a.jmp(top);
                a.bind(drained);
            }
            // Publish results, then signal stage completion.
            a.movi(P10, results.raw() + tid as u64 * LINE_BYTES);
            a.store(SUM, P10, 0);
            a.store(CNT, P10, 8);
            a.fence();
            a.movi(P10, done[stage as usize].raw());
            a.fai(T4, P10, 0, ONE);
            a.halt();
            a.movi(EPOCH, 0); // (unused; keeps register conventions uniform)
            a.build()
        })
        .collect();

    let total_tokens = per_stage * tokens;
    let expected_sum: u64 = (0..per_stage)
        .flat_map(|p| (0..tokens).map(move |t| p * tokens + t + 1))
        .sum();
    let last_base = (threads as u64 - per_stage) as usize;
    Workload::new(
        lb.build(),
        programs,
        init,
        pools,
        Box::new(move |read| {
            let threads = last_base + per_stage as usize;
            let consumed_cnt: u64 = (last_base..threads)
                .map(|t| read(Addr::new(results.raw() + t as u64 * LINE_BYTES + 8)))
                .sum();
            let consumed_sum: u64 = (last_base..threads)
                .map(|t| read(Addr::new(results.raw() + t as u64 * LINE_BYTES)))
                .fold(0u64, |a, b| a.wrapping_add(b));
            if consumed_cnt != total_tokens {
                return Err(format!(
                    "pipeline consumed {consumed_cnt} tokens, expected {total_tokens}"
                ));
            }
            if consumed_sum != expected_sum {
                return Err(format!(
                    "pipeline token sum {consumed_sum}, expected {expected_sum}"
                ));
            }
            Ok(())
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvs_vm::reference::RefMachine;

    fn run_reference(w: &Workload) {
        let mut m = RefMachine::new(w.programs.clone());
        for &(addr, v) in &w.init {
            m.memory_mut().write_word(addr.word(), v);
        }
        for (i, &(base, bytes)) in w.pools.iter().enumerate() {
            m.set_thread_pool(i, base, bytes);
        }
        m.run(80_000_000).expect("reference run completes");
        let read = |a: Addr| m.memory().read_word(a.word());
        (w.check)(&read).expect("semantic check");
    }

    fn spec_by_name(name: &str) -> AppSpec {
        crate::all_apps()
            .into_iter()
            .find(|a| a.name == name)
            .expect("known app")
    }

    #[test]
    fn barrier_only_checksums_on_reference() {
        for name in ["FFT", "LU"] {
            let w = build_app(&spec_by_name(name), 4);
            run_reference(&w);
        }
    }

    #[test]
    fn barrier_lock_totals_on_reference() {
        for name in ["water", "fluidanimate"] {
            let w = build_app(&spec_by_name(name), 4);
            run_reference(&w);
        }
    }

    #[test]
    fn canneal_conserves_sum_on_reference() {
        let w = build_app(&spec_by_name("canneal"), 4);
        run_reference(&w);
    }

    #[test]
    fn pipelines_conserve_tokens_on_reference() {
        for name in ["ferret", "x264"] {
            let w = build_app(&spec_by_name(name), 4);
            run_reference(&w);
        }
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn pipeline_rejects_indivisible_threads() {
        build_app(&spec_by_name("ferret"), 5);
    }
}
