//! Campaign determinism and fault-isolation guarantees (the tentpole's
//! acceptance tests).
//!
//! * A mixed kernel/app campaign serializes to byte-identical results at 1,
//!   2, and 4 workers.
//! * A spec that hits the cycle limit, one whose semantic check fails, and
//!   one that panics in the builder are each reported as a per-run
//!   `CampaignError` without poisoning their siblings.

use dvs_campaign::{Campaign, CampaignError, ExperimentSpec};
use dvs_core::config::{Protocol, ProtocolMutation};
use dvs_core::system::SimError;
use dvs_kernels::{BarrierKind, KernelId, KernelParams, LockKind, LockedStruct, NonBlocking};

fn kernel_spec(kernel: KernelId, threads: usize, proto: Protocol) -> ExperimentSpec {
    ExperimentSpec::kernel(kernel, KernelParams::smoke(threads), proto)
}

/// ~12 mixed kernel/app specs spanning every workload family and protocol.
fn mixed_specs() -> Vec<ExperimentSpec> {
    let counter = KernelId::Locked(LockedStruct::Counter, LockKind::Tatas);
    let queue = KernelId::NonBlocking(NonBlocking::MsQueue);
    let barrier = KernelId::Barrier(BarrierKind::Central, false);
    let mut specs = Vec::new();
    for proto in Protocol::ALL {
        specs.push(kernel_spec(counter, 4, proto));
        specs.push(kernel_spec(queue, 4, proto));
    }
    specs.push(kernel_spec(barrier, 4, Protocol::Mesi));
    specs.push(kernel_spec(barrier, 4, Protocol::DeNovoSync));
    for app in ["FFT", "canneal"] {
        specs.push(ExperimentSpec::app(app, 4, Protocol::Mesi));
        specs.push(ExperimentSpec::app(app, 4, Protocol::DeNovoSync));
    }
    specs
}

#[test]
fn results_are_byte_identical_across_worker_counts() {
    let specs = mixed_specs();
    assert_eq!(specs.len(), 12, "the grid should stay ~12 specs");
    let mut renderings = Vec::new();
    let mut digests = Vec::new();
    for workers in [1usize, 2, 4] {
        let report = Campaign::from_specs(specs.clone()).run(workers);
        assert_eq!(report.records.len(), specs.len());
        report.expect_all_ok("mixed grid");
        let bytes: String = report
            .results_json()
            .into_iter()
            .map(|o| o.render())
            .collect();
        renderings.push(bytes);
        digests.push(report.results_digest());
    }
    assert_eq!(renderings[0], renderings[1], "1 vs 2 workers");
    assert_eq!(renderings[0], renderings[2], "1 vs 4 workers");
    assert_eq!(digests[0], digests[1]);
    assert_eq!(digests[0], digests[2]);
}

#[test]
fn failing_specs_do_not_poison_siblings() {
    let counter = KernelId::Locked(LockedStruct::Counter, LockKind::Tatas);

    // Spec 1 (healthy), spec 2 hits the cycle limit, spec 3 fails its
    // post-run check (a seeded MESI bug leaves stale S copies behind; the
    // M-S queue completes anyway, so coherence verification catches it),
    // spec 4 panics before the simulation even starts (3 cores is not a
    // square mesh), spec 5 (healthy).
    let mut cycle_limited = kernel_spec(counter, 4, Protocol::DeNovoSync);
    cycle_limited.overrides.max_cycles = Some(1_000);
    let mut check_failing = kernel_spec(
        KernelId::NonBlocking(NonBlocking::MsQueue),
        4,
        Protocol::Mesi,
    );
    check_failing.overrides.mutation = Some(ProtocolMutation::MesiSkipInvalidate);
    let panicking = kernel_spec(counter, 3, Protocol::Mesi);

    let specs = vec![
        kernel_spec(counter, 4, Protocol::Mesi),
        cycle_limited,
        check_failing,
        panicking,
        kernel_spec(counter, 4, Protocol::DeNovoSync),
    ];
    let report = Campaign::from_specs(specs).run(4);
    assert_eq!(report.records.len(), 5);
    assert_eq!(report.ok_count(), 2);

    assert!(report.records[0].outcome.is_ok(), "sibling before failures");
    assert!(
        matches!(
            report.records[1].outcome,
            Err(CampaignError::Sim(SimError::CycleLimit { .. }))
        ),
        "cycle-limited spec: {:?}",
        report.records[1].outcome
    );
    assert!(
        matches!(report.records[2].outcome, Err(CampaignError::Check(_))),
        "check-failing spec: {:?}",
        report.records[2].outcome
    );
    assert!(
        matches!(report.records[3].outcome, Err(CampaignError::Panic(_))),
        "panicking spec: {:?}",
        report.records[3].outcome
    );
    assert!(report.records[4].outcome.is_ok(), "sibling after failures");

    // The report (failures included) still serializes deterministically.
    let again = Campaign::from_specs(vec![
        kernel_spec(counter, 4, Protocol::Mesi),
        {
            let mut s = kernel_spec(counter, 4, Protocol::DeNovoSync);
            s.overrides.max_cycles = Some(1_000);
            s
        },
        {
            let mut s = kernel_spec(
                KernelId::NonBlocking(NonBlocking::MsQueue),
                4,
                Protocol::Mesi,
            );
            s.overrides.mutation = Some(ProtocolMutation::MesiSkipInvalidate);
            s
        },
        kernel_spec(counter, 3, Protocol::Mesi),
        kernel_spec(counter, 4, Protocol::DeNovoSync),
    ])
    .run(1);
    assert_eq!(report.results_digest(), again.results_digest());
}

#[test]
fn unknown_app_is_an_isolated_build_error() {
    let specs = vec![
        ExperimentSpec::app("no-such-app", 4, Protocol::Mesi),
        kernel_spec(
            KernelId::Locked(LockedStruct::Counter, LockKind::Tatas),
            4,
            Protocol::Mesi,
        ),
    ];
    let report = Campaign::from_specs(specs).run(2);
    assert!(matches!(
        report.records[0].outcome,
        Err(CampaignError::Build(_))
    ));
    assert!(report.records[1].outcome.is_ok());
}
