//! Property tests for the campaign's determinism machinery: the shared
//! FNV-1a digest helpers and the `parallel_indexed` worker pool the
//! differential fuzzer rides.

use dvs_campaign::{fnv1a, fnv1a_str, parallel_indexed, Campaign, ExperimentSpec, FNV_OFFSET};
use dvs_core::config::Protocol;
use dvs_engine::DetRng;
use dvs_kernels::{KernelId, KernelParams, LockKind, LockedStruct};

/// Known-answer vectors for 64-bit FNV-1a (from the reference
/// specification): the empty string hashes to the offset basis, and "a" /
/// "foobar" to their published values.
#[test]
fn fnv1a_known_answers() {
    assert_eq!(fnv1a_str(FNV_OFFSET, ""), 0xcbf2_9ce4_8422_2325);
    assert_eq!(fnv1a_str(FNV_OFFSET, "a"), 0xaf63_dc4c_8601_ec8c);
    assert_eq!(fnv1a_str(FNV_OFFSET, "foobar"), 0x85944171f73967e8);
}

/// Folding a string byte-by-byte and via `fnv1a_str` must agree, and the
/// hash must compose: `H(xy) = fold(H(x), y)`.
#[test]
fn fnv1a_composes() {
    let mut rng = DetRng::new(0xF02B);
    for _ in 0..200 {
        let len = rng.below(24);
        let bytes: Vec<u8> = (0..len).map(|_| rng.below(256) as u8).collect();
        let split = rng.below(len + 1);
        let whole = bytes.iter().fold(FNV_OFFSET, |h, &b| fnv1a(h, b));
        let prefix = bytes[..split].iter().fold(FNV_OFFSET, |h, &b| fnv1a(h, b));
        let resumed = bytes[split..].iter().fold(prefix, |h, &b| fnv1a(h, b));
        assert_eq!(whole, resumed);
    }
}

/// `parallel_indexed` must return results in index order for any worker
/// count — including workers > jobs and the empty batch.
#[test]
fn parallel_indexed_is_worker_count_independent() {
    let job = |i: usize| {
        // Uneven, deterministic per-index work so fast workers overtake
        // slow ones and slots are written out of order.
        let mut rng = DetRng::new(i as u64);
        let spin = rng.below(2000);
        let mut acc = i as u64;
        for _ in 0..spin {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
        }
        (i, acc)
    };
    let baseline: Vec<(usize, u64)> = (0..37).map(job).collect();
    for workers in [1, 2, 3, 8, 64] {
        let got = parallel_indexed(37, workers, job);
        assert_eq!(got, baseline, "workers={workers}");
    }
    assert!(parallel_indexed(0, 4, job).is_empty());
}

/// The campaign digest must be byte-identical across worker counts even
/// when the grid contains failing runs (the fuzzer relies on this: a
/// divergent program is a *result*, not a scheduling accident).
#[test]
fn digest_is_stable_across_workers_with_failures() {
    let counter = KernelId::Locked(LockedStruct::Counter, LockKind::Tatas);
    let specs: Vec<ExperimentSpec> = (0..6)
        .map(|i| {
            let proto = Protocol::ALL[i % 3];
            let mut spec = ExperimentSpec::kernel(counter, KernelParams::smoke(4), proto);
            if i % 2 == 1 {
                // Every other spec hits the cycle limit — a per-run failure.
                spec.overrides.max_cycles = Some(1_000);
            }
            spec
        })
        .collect();
    let digests: Vec<String> = [1usize, 2, 4, 8]
        .iter()
        .map(|&w| Campaign::from_specs(specs.clone()).run(w).results_digest())
        .collect();
    for d in &digests[1..] {
        assert_eq!(d, &digests[0]);
    }
}
