//! Property test: `ExperimentSpec::token()` / `from_token()` are inverses
//! over the full spec space — every workload variant (kernels, apps,
//! traces), every protocol, and randomized override combinations.

use dvs_campaign::{ConfigOverrides, ExperimentSpec, TelemetryPolicy, WorkloadSpec};
use dvs_core::config::{DataInvalidation, MeshShape, Protocol, ProtocolMutation};
use dvs_engine::DetRng;
use dvs_kernels::{KernelId, KernelParams};
use dvs_trace::MixSpec;

fn random_kernel(rng: &mut DetRng) -> WorkloadSpec {
    let all = KernelId::all();
    let kernel = all[rng.below(all.len())];
    let lo = rng.range(0, 100);
    let params = KernelParams {
        threads: [1, 4, 16, 64][rng.below(4)],
        iters: rng.range(1, 1000),
        nonsynch: (lo, lo + rng.range(1, 100)),
        sw_backoff: rng.chance(1, 2),
        padded_locks: rng.chance(1, 2),
        reduced_checks: rng.chance(1, 2),
    };
    WorkloadSpec::Kernel { kernel, params }
}

fn random_app(rng: &mut DetRng) -> WorkloadSpec {
    let apps = dvs_apps::all_apps();
    let app = &apps[rng.below(apps.len())];
    WorkloadSpec::App {
        name: app.name,
        threads: [4, 16, 64][rng.below(3)],
    }
}

fn random_trace(rng: &mut DetRng) -> WorkloadSpec {
    WorkloadSpec::Trace {
        mix: MixSpec {
            seed: rng.next_u64(),
            phases: rng.range(1, 9) as u8,
            threads: [4, 16, 64][rng.below(3)],
        },
    }
}

fn random_overrides(rng: &mut DetRng) -> ConfigOverrides {
    ConfigOverrides {
        data_inv: match rng.below(3) {
            0 => None,
            1 => Some(DataInvalidation::StaticRegions),
            _ => Some(DataInvalidation::Signatures),
        },
        backoff_bits: rng.chance(1, 2).then(|| rng.range(1, 16) as u32),
        backoff_increment: rng.chance(1, 2).then(|| rng.range(1, 4096)),
        check_invariants: rng.chance(1, 2),
        fault_seed: rng.chance(1, 2).then(|| rng.next_u64()),
        mutation: match rng.below(7) {
            0 => Some(ProtocolMutation::DnvSkipRepoint),
            1 => Some(ProtocolMutation::DnvDropXfer),
            2 => Some(ProtocolMutation::MesiSkipInvalidate),
            3 => Some(ProtocolMutation::MesiDropAck),
            4 => Some(ProtocolMutation::GcsDropNotify),
            5 => Some(ProtocolMutation::GcsSkipUpdate),
            _ => None,
        },
        max_cycles: rng.chance(1, 2).then(|| rng.range(1, 1 << 40)),
        mesh: rng.chance(1, 3).then(|| MeshShape {
            rows: rng.range(1, 16) as u32,
            cols: rng.range(1, 16) as u32,
        }),
        telemetry: match rng.below(3) {
            0 => TelemetryPolicy::Off,
            1 => TelemetryPolicy::Ring,
            _ => TelemetryPolicy::Jsonl,
        },
    }
}

fn random_spec(rng: &mut DetRng) -> ExperimentSpec {
    let workload = match rng.below(3) {
        0 => random_kernel(rng),
        1 => random_app(rng),
        _ => random_trace(rng),
    };
    ExperimentSpec {
        workload,
        protocol: Protocol::EXTENDED[rng.below(Protocol::EXTENDED.len())],
        overrides: random_overrides(rng),
    }
}

#[test]
fn tokens_round_trip_over_randomized_specs() {
    let mut rng = DetRng::new(0x70CE_57EC);
    let mut saw = [false; 3];
    for i in 0..2000 {
        let spec = random_spec(&mut rng);
        saw[match spec.workload {
            WorkloadSpec::Kernel { .. } => 0,
            WorkloadSpec::App { .. } => 1,
            WorkloadSpec::Trace { .. } => 2,
        }] = true;
        let token = spec.token();
        let parsed = ExperimentSpec::from_token(&token)
            .unwrap_or_else(|e| panic!("case {i}: token {token:?} failed to parse: {e}"));
        assert_eq!(
            parsed, spec,
            "case {i}: token {token:?} round-tripped wrong"
        );
        // The token is the caching identity: re-rendering must be stable.
        assert_eq!(parsed.token(), token, "case {i}");
    }
    assert!(
        saw.iter().all(|&s| s),
        "generator must cover kernels, apps, and traces"
    );
}

#[test]
fn equal_tokens_imply_equal_specs() {
    let mut rng = DetRng::new(0xD157_1AC7);
    let mut seen = std::collections::HashMap::new();
    for _ in 0..500 {
        let spec = random_spec(&mut rng);
        if let Some(prev) = seen.insert(spec.token(), spec) {
            assert_eq!(prev, spec, "token collision between distinct specs");
        }
    }
}

#[test]
fn trace_specs_run_through_the_campaign_runner() {
    use dvs_campaign::Campaign;
    let specs: Vec<ExperimentSpec> = Protocol::ALL
        .into_iter()
        .map(|protocol| ExperimentSpec {
            workload: WorkloadSpec::Trace {
                mix: MixSpec {
                    seed: 3,
                    phases: 2,
                    threads: 4,
                },
            },
            protocol,
            overrides: ConfigOverrides::default(),
        })
        .collect();
    let a = Campaign::from_specs(specs.clone()).run(1);
    assert_eq!(a.ok_count(), 3, "all trace cells must replay cleanly");
    // Same digest at a different worker count: replay is deterministic.
    let b = Campaign::from_specs(specs).run(3);
    assert_eq!(a.results_digest(), b.results_digest());
}

#[test]
fn trace_tokens_look_right_and_keep_seed_fields_apart() {
    let mut spec = ExperimentSpec {
        workload: WorkloadSpec::Trace {
            mix: MixSpec {
                seed: 7,
                phases: 3,
                threads: 16,
            },
        },
        protocol: Protocol::DeNovoSync,
        overrides: ConfigOverrides::default(),
    };
    assert_eq!(spec.token(), "trace=mix:7:3;threads=16;proto=DS");
    // A fault-seed override must not be confused with the mix seed.
    spec.overrides.fault_seed = Some(99);
    assert_eq!(spec.token(), "trace=mix:7:3;threads=16;proto=DS;seed=99");
    assert_eq!(ExperimentSpec::from_token(&spec.token()), Ok(spec));
}
