//! Telemetry determinism guarantees (the observability subsystem's
//! acceptance tests).
//!
//! * The recorded event stream of a run is a pure function of the spec:
//!   re-running the same workload reproduces the stream event-for-event, on
//!   every protocol.
//! * Attaching a sink never perturbs simulated results: statistics and the
//!   metrics tree are identical with telemetry off and on.
//! * A campaign's results digest is byte-identical under every
//!   [`TelemetryPolicy`] at every worker count, and per-run metrics are kept
//!   exactly when the policy attaches a sink.
//! * The Perfetto export of a real run's stream validates structurally.

use dvs_campaign::{run_workload_with, Campaign, ExperimentSpec, TelemetryPolicy};
use dvs_core::config::{Protocol, SystemConfig};
use dvs_kernels::{KernelId, KernelParams, LockKind, LockedStruct, Workload};
use dvs_telemetry::{perfetto, Event, Telemetry};

const THREADS: usize = 4;

fn counter_workload() -> Workload {
    let kernel = KernelId::Locked(LockedStruct::Counter, LockKind::Tatas);
    dvs_kernels::build(kernel, &KernelParams::smoke(THREADS))
}

fn record(proto: Protocol, workload: &Workload) -> Vec<Event> {
    let tel = Telemetry::recorder();
    run_workload_with(SystemConfig::small(THREADS, proto), workload, tel.clone())
        .expect("recorded run succeeds");
    tel.take_events().expect("recorder drains")
}

#[test]
fn event_stream_is_deterministic_on_every_protocol() {
    let workload = counter_workload();
    for proto in Protocol::ALL {
        let first = record(proto, &workload);
        let second = record(proto, &workload);
        assert!(!first.is_empty(), "{proto}: run emits events");
        assert_eq!(
            first.len(),
            second.len(),
            "{proto}: event counts must match across runs"
        );
        assert_eq!(first, second, "{proto}: event streams must be identical");
    }
}

#[test]
fn attaching_a_sink_never_perturbs_results() {
    let workload = counter_workload();
    for proto in Protocol::ALL {
        let cfg = SystemConfig::small(THREADS, proto);
        let (off_stats, off_metrics) =
            run_workload_with(cfg, &workload, Telemetry::off()).expect("off run");
        let (rec_stats, rec_metrics) =
            run_workload_with(cfg, &workload, Telemetry::recorder()).expect("recorded run");
        assert_eq!(off_stats, rec_stats, "{proto}: stats must be sink-blind");
        assert_eq!(
            off_metrics.to_json().render(),
            rec_metrics.to_json().render(),
            "{proto}: metrics tree must be sink-blind"
        );
    }
}

#[test]
fn perfetto_export_of_a_real_run_validates() {
    let workload = counter_workload();
    let events = record(Protocol::DeNovoSync, &workload);
    let json = perfetto::export("tatas counter — DS", &events);
    let exported = perfetto::validate(&json).expect("exported trace is well-formed");
    assert!(exported > 0, "trace contains events");
}

#[test]
fn campaign_digest_is_policy_and_worker_invariant() {
    let counter = KernelId::Locked(LockedStruct::Counter, LockKind::Tatas);
    let base: Vec<ExperimentSpec> = Protocol::ALL
        .iter()
        .map(|&p| ExperimentSpec::kernel(counter, KernelParams::smoke(THREADS), p))
        .collect();

    let mut digests = Vec::new();
    for policy in [
        TelemetryPolicy::Off,
        TelemetryPolicy::Ring,
        TelemetryPolicy::Jsonl,
    ] {
        let mut specs = base.clone();
        for spec in &mut specs {
            spec.overrides.telemetry = policy;
        }
        for workers in [1usize, 2, 4] {
            let report = Campaign::from_specs(specs.clone()).run(workers);
            report.expect_all_ok("telemetry policy grid");
            for record in &report.records {
                assert_eq!(
                    record.metrics.is_some(),
                    policy.enabled(),
                    "metrics kept iff the policy attaches a sink ({policy:?})"
                );
            }
            digests.push((policy, workers, report.results_digest()));
        }
    }
    let reference = &digests[0].2;
    for (policy, workers, digest) in &digests {
        assert_eq!(
            digest, reference,
            "digest must not depend on telemetry policy ({policy:?}) or workers ({workers})"
        );
    }
}
