//! The parallel campaign runner.
//!
//! Work distribution follows `dvs-check`'s explorer: a shared atomic cursor
//! over the spec list, self-scheduling worker threads, results written into
//! per-spec slots. Workers never exchange results, so the report is
//! independent of scheduling; a worker that hits a panic records it in its
//! slot and moves on to the next spec.

use crate::spec::ExperimentSpec;
use crate::RunError;
use dvs_core::system::SimError;
use dvs_stats::report::JsonObject;
use dvs_stats::{RunStats, TimeComponent, TrafficClass};
use dvs_telemetry::MetricsRegistry;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Why one campaign run failed. Failures are per-run records, never
/// campaign-fatal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignError {
    /// The workload id did not resolve to a buildable workload.
    Build(String),
    /// The simulator reported an error (deadlock, assertion, cycle limit).
    Sim(SimError),
    /// Post-run verification failed (coherence or the semantic check).
    Check(String),
    /// The run panicked (e.g. a builder rejected the configuration); the
    /// payload is the panic message.
    Panic(String),
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Build(e) => write!(f, "build failed: {e}"),
            CampaignError::Sim(e) => write!(f, "simulation failed: {e}"),
            CampaignError::Check(e) => write!(f, "check failed: {e}"),
            CampaignError::Panic(e) => write!(f, "run panicked: {e}"),
        }
    }
}

impl std::error::Error for CampaignError {}

/// The outcome of one spec: its identity, result, and how long the run took
/// on the host. `wall_nanos` and `metrics` are observability only — neither
/// ever enters [`CampaignReport::results_json`] or the digest.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Position in the campaign's spec list.
    pub index: usize,
    /// The spec that ran.
    pub spec: ExperimentSpec,
    /// Simulation statistics, or why the run failed.
    pub outcome: Result<RunStats, CampaignError>,
    /// Host wall-clock time of this run, in nanoseconds.
    pub wall_nanos: u64,
    /// The run's hierarchical metrics tree, kept when the spec's
    /// [`TelemetryPolicy`](crate::TelemetryPolicy) attached a sink. Excluded
    /// from the results digest.
    pub metrics: Option<MetricsRegistry>,
}

impl RunRecord {
    /// The run's host wall-clock time as a [`Duration`](std::time::Duration)
    /// — the typed view of [`RunRecord::wall_nanos`]. Digest-excluded, like
    /// the raw field.
    pub fn wall(&self) -> std::time::Duration {
        std::time::Duration::from_nanos(self.wall_nanos)
    }
}

/// Everything a [`Campaign::run`] produced, ordered by spec index.
#[derive(Debug)]
pub struct CampaignReport {
    /// One record per spec, in spec order regardless of execution order.
    pub records: Vec<RunRecord>,
    /// How many worker threads executed the campaign.
    pub workers: usize,
    /// Total host wall-clock for the whole campaign, in nanoseconds.
    pub wall_nanos: u64,
}

/// An ordered list of [`ExperimentSpec`]s to execute.
#[derive(Debug, Clone, Default)]
pub struct Campaign {
    specs: Vec<ExperimentSpec>,
}

impl Campaign {
    /// An empty campaign.
    pub fn new() -> Self {
        Campaign::default()
    }

    /// Wraps an existing run list.
    pub fn from_specs(specs: Vec<ExperimentSpec>) -> Self {
        Campaign { specs }
    }

    /// Appends one spec.
    pub fn push(&mut self, spec: ExperimentSpec) {
        self.specs.push(spec);
    }

    /// The run list, in execution-index order.
    pub fn specs(&self) -> &[ExperimentSpec] {
        &self.specs
    }

    /// Runs every spec on `workers` self-scheduling threads (clamped to at
    /// least 1) and returns the per-spec records in spec order.
    ///
    /// Each worker claims the next unclaimed spec, materializes its workload
    /// locally, runs the simulation, and stores the outcome in that spec's
    /// slot. Panics inside a run are caught and recorded as
    /// [`CampaignError::Panic`]; the worker then continues with the next
    /// spec. Progress lines go to stderr.
    pub fn run(&self, workers: usize) -> CampaignReport {
        let n = self.specs.len();
        let workers = workers.max(1).min(n.max(1));
        let started = Instant::now();
        let done = AtomicUsize::new(0);

        let records = parallel_indexed(n, workers, |index| {
            let record = run_recorded(&self.specs[index], index);
            let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
            let status = match &record.outcome {
                Ok(stats) => format!("ok, {} cycles", stats.cycles),
                Err(e) => format!("FAILED: {e}"),
            };
            eprintln!(
                "[{finished}/{n}] {} — {status} ({:.1} ms)",
                record.spec.label(),
                record.wall_nanos as f64 / 1e6
            );
            record
        });
        CampaignReport {
            records,
            workers,
            wall_nanos: started.elapsed().as_nanos() as u64,
        }
    }

    /// Runs only the specs at `indices` (a resumable cursor: callers that
    /// already hold results for some specs — a journal, a cache — pass the
    /// remainder) and returns their records in the order of `indices`.
    /// Each record's `index` is the spec's position in the full campaign,
    /// so results can be merged back into a complete report.
    pub fn run_subset(&self, workers: usize, indices: &[usize]) -> Vec<RunRecord> {
        parallel_indexed(indices.len(), workers, |i| {
            let index = indices[i];
            run_recorded(&self.specs[index], index)
        })
    }
}

/// Runs one spec with fault isolation and wall-clock accounting — the
/// single timing source shared by [`Campaign::run`], the resumable
/// [`Campaign::run_subset`] cursor, and the `dvs-serve` job service, so
/// retry/deadline policies and BENCH artifacts all see the same numbers.
pub fn run_recorded(spec: &ExperimentSpec, index: usize) -> RunRecord {
    let t0 = Instant::now();
    let (outcome, metrics) = run_isolated(spec);
    RunRecord {
        index,
        spec: *spec,
        outcome,
        wall_nanos: t0.elapsed().as_nanos() as u64,
        metrics,
    }
}

/// Runs `job(0..n)` on `workers` self-scheduling threads (clamped to at
/// least 1 and at most `n`) and returns the results in index order.
///
/// This is the campaign's work-distribution core, factored out so other
/// batch engines (the differential fuzzer's `dvs-fuzz` batches) inherit its
/// determinism property: workers claim indices from a shared atomic cursor
/// and write each result into that index's slot, so the returned vector is
/// independent of worker count and OS scheduling. The job itself must not
/// unwind — callers wanting fault isolation wrap their job body in
/// `catch_unwind` and return the panic as a value (as [`Campaign::run`]
/// does).
pub fn parallel_indexed<T, F>(n: usize, workers: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.max(1).min(n.max(1));
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                if index >= n {
                    break;
                }
                let result = job(index);
                *slots[index].lock().expect("slot lock") = Some(result);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot lock")
                .expect("every slot is filled before the scope ends")
        })
        .collect()
}

/// Runs one spec with panic isolation. The metrics tree comes back next to
/// the outcome (kept only when the spec's telemetry policy attached a sink)
/// so it can never contaminate the digest-bearing result.
fn run_isolated(
    spec: &ExperimentSpec,
) -> (Result<RunStats, CampaignError>, Option<MetricsRegistry>) {
    let attempt = catch_unwind(AssertUnwindSafe(|| {
        if let crate::spec::WorkloadSpec::Trace { mix } = spec.workload {
            let trace =
                dvs_trace::build_mix(mix).map_err(|e| CampaignError::Build(e.to_string()))?;
            let stats =
                dvs_trace::replay_timed(&trace, spec.config(), dvs_trace::ReplayMode::Faithful)
                    .map_err(|e| match crate::spec::trace_run_error(e) {
                        RunError::Sim(e) => CampaignError::Sim(e),
                        RunError::Check(msg) => CampaignError::Check(msg),
                    })?;
            return Ok((stats, None));
        }
        let workload = spec.build().map_err(CampaignError::Build)?;
        let policy = spec.overrides.telemetry;
        let (stats, metrics) =
            crate::run_workload_with(spec.config(), &workload, policy.telemetry()).map_err(
                |e| match e {
                    RunError::Sim(e) => CampaignError::Sim(e),
                    RunError::Check(msg) => CampaignError::Check(msg),
                },
            )?;
        Ok((stats, policy.enabled().then_some(metrics)))
    }));
    match attempt {
        Ok(Ok((stats, metrics))) => (Ok(stats), metrics),
        Ok(Err(e)) => (Err(e), None),
        Err(payload) => (Err(CampaignError::Panic(panic_message(payload))), None),
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

impl CampaignReport {
    /// Number of successful runs.
    pub fn ok_count(&self) -> usize {
        self.records.iter().filter(|r| r.outcome.is_ok()).count()
    }

    /// The failed runs, in spec order.
    pub fn failures(&self) -> Vec<&RunRecord> {
        self.records.iter().filter(|r| r.outcome.is_err()).collect()
    }

    /// Panics with a list of every failure unless all runs succeeded — the
    /// figure drivers treat any failed cell as fatal.
    pub fn expect_all_ok(&self, what: &str) {
        let failures = self.failures();
        if failures.is_empty() {
            return;
        }
        let mut msg = format!(
            "{what}: {} of {} runs failed:",
            failures.len(),
            self.records.len()
        );
        for r in failures {
            let err = r.outcome.as_ref().expect_err("failure record");
            msg.push_str(&format!("\n  {} — {err}", r.spec.label()));
        }
        panic!("{msg}");
    }

    /// The per-run results as JSON objects, in spec order. Contains only
    /// spec identities and simulated quantities — no wall-times, worker
    /// counts, thread ids, or host properties — so the rendering is
    /// byte-identical for any worker count.
    pub fn results_json(&self) -> Vec<JsonObject> {
        self.records.iter().map(record_json).collect()
    }

    /// FNV-1a hash (hex) of the rendered [`CampaignReport::results_json`] —
    /// the campaign's determinism fingerprint.
    pub fn results_digest(&self) -> String {
        let mut hash = FNV_OFFSET;
        for obj in self.results_json() {
            for byte in obj.render().bytes() {
                hash = fnv1a(hash, byte);
            }
        }
        format!("{hash:016x}")
    }

    /// Total host wall-clock in seconds.
    pub fn wall_seconds(&self) -> f64 {
        self.wall_nanos as f64 / 1e9
    }

    /// Sum of the per-run wall-clocks ([`RunRecord::wall_nanos`]) — the
    /// aggregate compute time, as opposed to the campaign's elapsed
    /// [`CampaignReport::wall_nanos`] which divides it by parallelism.
    pub fn run_wall_nanos(&self) -> u64 {
        self.records.iter().map(|r| r.wall_nanos).sum()
    }

    /// The slowest single run's wall-clock in nanoseconds (0 when empty).
    /// Deadline policies size per-job budgets from this.
    pub fn max_run_wall_nanos(&self) -> u64 {
        self.records.iter().map(|r| r.wall_nanos).max().unwrap_or(0)
    }
}

/// The FNV-1a 64-bit offset basis — the starting value for [`fnv1a`].
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// One FNV-1a step: folds `byte` into `hash`. Shared by every
/// determinism digest in the workspace (campaign reports, fuzz batches) so
/// their fingerprints stay comparable across tools.
pub fn fnv1a(hash: u64, byte: u8) -> u64 {
    (hash ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3)
}

/// Folds every byte of `s` into `hash` with [`fnv1a`].
pub fn fnv1a_str(hash: u64, s: &str) -> u64 {
    s.bytes().fold(hash, fnv1a)
}

fn record_json(record: &RunRecord) -> JsonObject {
    let mut obj = JsonObject::new();
    obj.u64("index", record.index as u64)
        .str("spec", &record.spec.label())
        .str("protocol", record.spec.protocol.label())
        .u64("cores", record.spec.workload.cores() as u64);
    match &record.outcome {
        Ok(stats) => {
            obj.bool("ok", true);
            obj.u64("cycles", stats.cycles).u64("events", stats.events);
            let mut time = JsonObject::new();
            let breakdown = stats.breakdown();
            for &c in &TimeComponent::ALL {
                time.u64(c.label(), breakdown.get(c));
            }
            obj.object("time", time);
            let mut traffic = JsonObject::new();
            for &c in &TrafficClass::ALL {
                traffic.u64(c.label(), stats.traffic.get(c));
            }
            traffic.u64("messages", stats.traffic.messages());
            obj.object("traffic", traffic);
            let mut cache = JsonObject::new();
            cache
                .u64("hits", stats.cache.hits())
                .u64("misses", stats.cache.misses());
            obj.object("cache", cache);
            // Per-core breakdowns folded to a hash: enough to detect any
            // cross-worker nondeterminism without bloating the artifact.
            obj.str("per_core_fnv", &per_core_fnv(stats));
        }
        Err(e) => {
            obj.bool("ok", false);
            obj.str("error", &e.to_string());
        }
    }
    obj
}

fn per_core_fnv(stats: &RunStats) -> String {
    let mut hash = FNV_OFFSET;
    for core in &stats.per_core {
        for (_, cycles) in core.iter() {
            for byte in cycles.to_le_bytes() {
                hash = fnv1a(hash, byte);
            }
        }
    }
    format!("{hash:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvs_core::config::Protocol;
    use dvs_kernels::{KernelId, KernelParams, LockKind, LockedStruct};

    fn smoke_spec(threads: usize, protocol: Protocol) -> ExperimentSpec {
        ExperimentSpec::kernel(
            KernelId::Locked(LockedStruct::Counter, LockKind::Tatas),
            KernelParams::smoke(threads),
            protocol,
        )
    }

    #[test]
    fn empty_campaign_runs() {
        let report = Campaign::new().run(4);
        assert!(report.records.is_empty());
        assert_eq!(report.ok_count(), 0);
        report.expect_all_ok("empty");
    }

    #[test]
    fn records_come_back_in_spec_order() {
        let campaign = Campaign::from_specs(vec![
            smoke_spec(4, Protocol::Mesi),
            smoke_spec(4, Protocol::DeNovoSync0),
            smoke_spec(4, Protocol::DeNovoSync),
        ]);
        let report = campaign.run(2);
        assert_eq!(report.records.len(), 3);
        for (i, r) in report.records.iter().enumerate() {
            assert_eq!(r.index, i);
            assert_eq!(r.spec, campaign.specs()[i]);
            assert!(r.outcome.is_ok(), "{}: {:?}", r.spec.label(), r.outcome);
        }
    }

    #[test]
    fn digest_ignores_wall_times() {
        let campaign = Campaign::from_specs(vec![smoke_spec(4, Protocol::Mesi)]);
        let mut report = campaign.run(1);
        let digest = report.results_digest();
        report.records[0].wall_nanos = 123_456_789;
        report.wall_nanos = 1;
        assert_eq!(report.results_digest(), digest);
    }

    #[test]
    fn run_subset_resumes_with_original_indices() {
        let campaign = Campaign::from_specs(vec![
            smoke_spec(4, Protocol::Mesi),
            smoke_spec(4, Protocol::DeNovoSync0),
            smoke_spec(4, Protocol::DeNovoSync),
        ]);
        // Simulate a crash after spec 0 completed: resume the remainder.
        let records = campaign.run_subset(2, &[2, 1]);
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].index, 2);
        assert_eq!(records[1].index, 1);
        for r in &records {
            assert_eq!(r.spec, campaign.specs()[r.index]);
            assert!(r.outcome.is_ok(), "{}: {:?}", r.spec.label(), r.outcome);
        }
    }

    #[test]
    fn wall_accessors_agree_with_raw_nanos() {
        let campaign = Campaign::from_specs(vec![smoke_spec(4, Protocol::Mesi)]);
        let mut report = campaign.run(1);
        report.records[0].wall_nanos = 1_500_000;
        assert_eq!(report.records[0].wall().as_micros(), 1_500);
        assert_eq!(report.run_wall_nanos(), 1_500_000);
        assert_eq!(report.max_run_wall_nanos(), 1_500_000);
    }

    #[test]
    #[should_panic(expected = "of 1 runs failed")]
    fn expect_all_ok_reports_failures() {
        let mut spec = smoke_spec(4, Protocol::Mesi);
        spec.overrides.max_cycles = Some(10);
        Campaign::from_specs(vec![spec])
            .run(1)
            .expect_all_ok("smoke");
    }
}
