//! The campaign engine: data-driven, parallel, fault-isolated orchestration
//! of full-system simulations.
//!
//! The paper's evaluation is a large grid — 24 synchronization kernels plus
//! 13 application models × 3 protocols × {16, 64} cores plus five ablations.
//! This crate turns that grid into *data*: an [`ExperimentSpec`] names one
//! run (workload id × parameters × protocol × configuration overrides), a
//! [`Campaign`] is an ordered list of specs, and [`Campaign::run`] executes
//! them on a self-scheduling worker pool of `std` threads, one full
//! [`System`](dvs_core::System) simulation per run.
//!
//! Three properties the bench drivers rely on:
//!
//! * **Determinism.** Results are stored by spec index and contain only
//!   simulated quantities, so [`CampaignReport::results_digest`] is
//!   byte-identical no matter how many workers ran the campaign or how the
//!   OS scheduled them. Host wall-times are kept *next to* the results
//!   ([`RunRecord::wall_nanos`]) and never enter the digest.
//! * **Fault isolation.** A run that panics, deadlocks, fails its semantic
//!   check, or hits the cycle limit becomes a per-run [`CampaignError`];
//!   sibling runs proceed and the campaign completes.
//! * **Observability.** Each run records its wall-time, workers emit live
//!   progress lines to stderr, and the `campaign` bench target writes
//!   `BENCH_campaign.json` with total wall-clock and multi-worker speedups.
//!
//! The experiment entry points [`run_workload`] and [`run_kernel`] live here
//! (moved from `dvs-bench`, which re-exports them): a workload's layout and
//! programs are `Arc`-shared, so materializing a [`System`] on any worker
//! costs reference-count bumps, not deep clones.

pub mod grids;
pub mod runner;
pub mod spec;

pub use grids::{figure_core_counts, kernel_grid, quick_mode, workers_from_env};
pub use runner::{
    fnv1a, fnv1a_str, parallel_indexed, run_recorded, Campaign, CampaignError, CampaignReport,
    RunRecord, FNV_OFFSET,
};
pub use spec::{
    mutation_token, parse_mutation_token, parse_protocol, ConfigOverrides, ExperimentSpec,
    TelemetryPolicy, WorkloadSpec,
};

use dvs_core::config::SystemConfig;
use dvs_core::system::SimError;
use dvs_core::System;
use dvs_kernels::{KernelId, KernelParams, Workload};
use dvs_stats::RunStats;
use dvs_telemetry::{MetricsRegistry, Telemetry};

/// A failed experiment run.
#[derive(Debug)]
pub enum RunError {
    /// The simulator reported an error (deadlock, assertion, cycle limit).
    Sim(SimError),
    /// The workload's semantic post-condition failed.
    Check(String),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Sim(e) => write!(f, "simulation failed: {e}"),
            RunError::Check(e) => write!(f, "semantic check failed: {e}"),
        }
    }
}

impl std::error::Error for RunError {}

/// Instantiates `workload` on a system, runs it to completion, verifies its
/// semantic post-condition, and returns the run statistics.
///
/// The workload's layout and programs are shared into the system by
/// reference count, so calling this many times (or from many threads) does
/// not re-clone the program text.
///
/// # Errors
///
/// [`RunError::Sim`] if the simulation fails; [`RunError::Check`] if the
/// final memory image violates the workload's post-condition.
pub fn run_workload(cfg: SystemConfig, workload: &Workload) -> Result<RunStats, RunError> {
    run_workload_with(cfg, workload, Telemetry::off()).map(|(stats, _)| stats)
}

/// [`run_workload`] with an explicit telemetry handle: the handle's sink
/// observes the whole run, and the system's hierarchical metrics tree is
/// returned alongside the statistics. Passing [`Telemetry::off`] makes this
/// identical to [`run_workload`] (the metrics tree — stall accounting, cache
/// and traffic counters — is collected either way; it is built from
/// simulated quantities, not from the event stream).
///
/// # Errors
///
/// Same contract as [`run_workload`].
pub fn run_workload_with(
    cfg: SystemConfig,
    workload: &Workload,
    tel: Telemetry,
) -> Result<(RunStats, MetricsRegistry), RunError> {
    let mut sys = System::new(cfg, workload.layout.clone(), workload.programs.clone());
    for &(addr, value) in &workload.init {
        sys.preload(addr, value);
    }
    for (i, &(base, bytes)) in workload.pools.iter().enumerate() {
        sys.set_thread_pool(i, base, bytes);
    }
    sys.set_telemetry(tel);
    let stats = sys.run().map_err(RunError::Sim)?;
    sys.verify_coherence().map_err(RunError::Check)?;
    let read = |a| sys.read_word(a);
    (workload.check)(&read).map_err(RunError::Check)?;
    Ok((stats, sys.metrics()))
}

/// Builds and runs one kernel.
///
/// # Errors
///
/// Propagates [`run_workload`] failures.
pub fn run_kernel(
    kernel: KernelId,
    cfg: SystemConfig,
    params: &KernelParams,
) -> Result<RunStats, RunError> {
    let workload = dvs_kernels::build(kernel, params);
    run_workload(cfg, &workload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvs_core::config::Protocol;
    use dvs_kernels::{LockKind, LockedStruct};

    #[test]
    fn run_kernel_returns_stats_and_checks() {
        let kernel = KernelId::Locked(LockedStruct::Counter, LockKind::Tatas);
        let params = KernelParams::smoke(4);
        let stats = run_kernel(
            kernel,
            SystemConfig::small(4, Protocol::DeNovoSync),
            &params,
        )
        .expect("kernel runs");
        assert!(stats.cycles > 0);
        assert!(stats.traffic.total() > 0);
    }
}
