//! Experiment specifications: one run described entirely as data.
//!
//! A spec carries no closures and no pre-built workload — just identifiers
//! and plain-old-data parameters — so a campaign is a serializable value
//! that any worker thread can materialize independently.

use crate::{run_workload, RunError};
use dvs_core::chaos::FaultPlan;
use dvs_core::config::{DataInvalidation, MeshShape, Protocol, ProtocolMutation, SystemConfig};
use dvs_kernels::{KernelId, KernelParams, Workload};
use dvs_stats::RunStats;
use dvs_telemetry::{JsonlSink, Telemetry};
use dvs_trace::{build_mix, replay_timed, MixSpec, ReplayMode, TraceError};

/// Which workload a spec runs, addressed by serializable id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadSpec {
    /// A synchronization kernel (Figures 3–6) with explicit parameters.
    Kernel {
        /// Which kernel; `KernelId::token()` is its serialized form.
        kernel: KernelId,
        /// Iteration/thread parameters (`params.threads` = core count).
        params: KernelParams,
    },
    /// An application model (Figure 7), addressed by its Table 2 name.
    App {
        /// The app's name as listed by `dvs_apps::all_apps()`.
        name: &'static str,
        /// Thread count (= core count) to build the model at.
        threads: usize,
    },
    /// A recorded workload mix, replayed through the timed stack. The
    /// [`MixSpec`] is pure data; the worker materializes the trace
    /// (deterministic record + compose) and replays it faithfully.
    Trace {
        /// The mix to build and replay.
        mix: MixSpec,
    },
}

impl WorkloadSpec {
    /// The workload's display name (kernel token or app name).
    pub fn name(&self) -> String {
        match self {
            WorkloadSpec::Kernel { kernel, .. } => kernel.token(),
            WorkloadSpec::App { name, .. } => (*name).to_owned(),
            WorkloadSpec::Trace { mix } => mix.name(),
        }
    }

    /// The core count this workload wants (one core per thread).
    pub fn cores(&self) -> usize {
        match self {
            WorkloadSpec::Kernel { params, .. } => params.threads,
            WorkloadSpec::App { threads, .. } => *threads,
            WorkloadSpec::Trace { mix } => mix.threads,
        }
    }
}

/// How much telemetry a campaign run captures. The policy only chooses the
/// event sink — telemetry feeds nothing back into simulated state, so run
/// results (and the campaign digest) are byte-identical under every policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TelemetryPolicy {
    /// No sink attached: every instrumentation site is one no-op branch.
    #[default]
    Off,
    /// A bounded per-node ring buffer (cheap always-on capture; the run's
    /// metrics tree is kept on the [`RunRecord`](crate::RunRecord)).
    Ring,
    /// Stream every event as a JSON line into a null writer. Exercises the
    /// full serialization path; drivers that want the lines on disk call
    /// [`run_workload_with`](crate::run_workload_with) with their own sink.
    Jsonl,
}

impl TelemetryPolicy {
    /// Ring capacity (events per `(component, node)`) used by
    /// [`TelemetryPolicy::Ring`].
    pub const RING_PER_NODE: usize = 64;

    /// Builds the telemetry handle this policy prescribes.
    pub fn telemetry(self) -> Telemetry {
        match self {
            TelemetryPolicy::Off => Telemetry::off(),
            TelemetryPolicy::Ring => Telemetry::ring(Self::RING_PER_NODE),
            TelemetryPolicy::Jsonl => Telemetry::new(JsonlSink::new(std::io::sink())),
        }
    }

    /// Whether this policy attaches a sink at all.
    pub fn enabled(self) -> bool {
        self != TelemetryPolicy::Off
    }
}

/// Pure-data overrides applied on top of the base [`SystemConfig`] for a
/// spec. `Default` leaves the base configuration untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ConfigOverrides {
    /// Data self-invalidation mechanism (ablation: signatures).
    pub data_inv: Option<DataInvalidation>,
    /// Hardware-backoff counter width (ablation: backoff parameters).
    pub backoff_bits: Option<u32>,
    /// Hardware-backoff default increment (ablation: backoff parameters).
    pub backoff_increment: Option<u64>,
    /// Run the runtime coherence-invariant checkers (chaos matrix).
    pub check_invariants: bool,
    /// Deterministic fault injection seed (chaos matrix).
    pub fault_seed: Option<u64>,
    /// A seeded protocol bug for negative testing.
    pub mutation: Option<ProtocolMutation>,
    /// Cycle-limit safety valve override.
    pub max_cycles: Option<u64>,
    /// Mesh topology override (`rows x cols`; tiles must equal the core
    /// count). `None` keeps the default square mesh.
    pub mesh: Option<MeshShape>,
    /// Telemetry capture policy (observability only; never changes results).
    pub telemetry: TelemetryPolicy,
}

impl ConfigOverrides {
    /// Applies the overrides to `cfg` in place.
    pub fn apply(&self, cfg: &mut SystemConfig) {
        if let Some(di) = self.data_inv {
            cfg.data_inv = di;
        }
        if let Some(bits) = self.backoff_bits {
            cfg.backoff.counter_bits = bits;
        }
        if let Some(inc) = self.backoff_increment {
            cfg.backoff.default_increment = inc;
        }
        if self.check_invariants {
            cfg.check_invariants = true;
        }
        if let Some(seed) = self.fault_seed {
            cfg.fault_plan = Some(FaultPlan::from_seed(seed));
        }
        if let Some(m) = self.mutation {
            cfg.mutation = Some(m);
        }
        if let Some(mc) = self.max_cycles {
            cfg.max_cycles = mc;
        }
        if let Some(shape) = self.mesh {
            cfg.mesh = Some(shape);
        }
    }
}

/// One cell of an evaluation grid: workload × protocol × config overrides.
///
/// Specs are `Copy` values; the expensive parts (program text, layouts) are
/// built on the worker that executes the spec, then dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExperimentSpec {
    /// What to run.
    pub workload: WorkloadSpec,
    /// Which protocol to run it on.
    pub protocol: Protocol,
    /// Configuration adjustments over the base (paper/small) config.
    pub overrides: ConfigOverrides,
}

impl ExperimentSpec {
    /// A kernel spec with no overrides.
    pub fn kernel(kernel: KernelId, params: KernelParams, protocol: Protocol) -> Self {
        ExperimentSpec {
            workload: WorkloadSpec::Kernel { kernel, params },
            protocol,
            overrides: ConfigOverrides::default(),
        }
    }

    /// An app spec with no overrides.
    pub fn app(name: &'static str, threads: usize, protocol: Protocol) -> Self {
        ExperimentSpec {
            workload: WorkloadSpec::App { name, threads },
            protocol,
            overrides: ConfigOverrides::default(),
        }
    }

    /// Human-readable one-line identity, e.g. `tatas:counter DS @16`.
    pub fn label(&self) -> String {
        format!(
            "{} {} @{}",
            self.workload.name(),
            self.protocol.label(),
            self.workload.cores()
        )
    }

    /// The full system configuration for this spec: the paper's Table 1
    /// config at 16/64 cores, the small test config elsewhere, plus
    /// [`ConfigOverrides`].
    pub fn config(&self) -> SystemConfig {
        let cores = self.workload.cores();
        let mut cfg = match cores {
            16 | 64 => SystemConfig::paper(cores, self.protocol),
            other => SystemConfig::small(other, self.protocol),
        };
        self.overrides.apply(&mut cfg);
        cfg
    }

    /// Materializes the workload this spec names.
    ///
    /// # Errors
    ///
    /// An explanation when the workload id does not resolve (unknown app
    /// name). Builder panics (e.g. invalid thread counts) are *not* caught
    /// here — the campaign runner isolates them per run.
    pub fn build(&self) -> Result<Workload, String> {
        match self.workload {
            WorkloadSpec::Kernel { kernel, ref params } => Ok(dvs_kernels::build(kernel, params)),
            WorkloadSpec::App { name, threads } => {
                let app =
                    dvs_apps::app_by_name(name).ok_or_else(|| format!("unknown app {name:?}"))?;
                Ok(dvs_apps::build_app(&app, threads))
            }
            WorkloadSpec::Trace { mix } => Err(format!(
                "trace spec {} is replayed, not built as a VM workload",
                mix.name()
            )),
        }
    }

    /// Builds and runs this spec to completion on the current thread.
    /// Kernel and app specs run VM-driven; trace specs materialize the mix
    /// (deterministic record + compose) and replay it faithfully, so the
    /// reported cycles are comparable across protocols.
    ///
    /// # Errors
    ///
    /// [`RunError::Check`] for an unresolvable workload id or a replay
    /// validation failure, otherwise whatever [`run_workload`] reports.
    pub fn run(&self) -> Result<RunStats, RunError> {
        if let WorkloadSpec::Trace { mix } = self.workload {
            let trace = build_mix(mix).map_err(trace_run_error)?;
            return replay_timed(&trace, self.config(), ReplayMode::Faithful)
                .map_err(trace_run_error);
        }
        let workload = self.build().map_err(RunError::Check)?;
        run_workload(self.config(), &workload)
    }

    /// A canonical, serializable identity for this spec: `;`-separated
    /// `key=value` fields in a fixed order, with override fields appended
    /// only when they differ from the default. Two specs are equal iff their
    /// tokens are equal, which makes the token the right input for
    /// content-addressed result caching (`dvs-serve` keys its store on it).
    /// [`ExperimentSpec::from_token`] inverts it.
    pub fn token(&self) -> String {
        let mut out = match self.workload {
            WorkloadSpec::Kernel { kernel, params } => format!(
                "kernel={};threads={};iters={};ns={}-{};swb={};pad={};rc={}",
                kernel.token(),
                params.threads,
                params.iters,
                params.nonsynch.0,
                params.nonsynch.1,
                u8::from(params.sw_backoff),
                u8::from(params.padded_locks),
                u8::from(params.reduced_checks),
            ),
            WorkloadSpec::App { name, threads } => format!("app={name};threads={threads}"),
            // `seed=` is taken by the fault-seed override, so the mix
            // parameters ride inside the trace value itself.
            WorkloadSpec::Trace { mix } => format!(
                "trace=mix:{}:{};threads={}",
                mix.seed, mix.phases, mix.threads
            ),
        };
        out.push_str(&format!(";proto={}", self.protocol.label()));
        let o = &self.overrides;
        if let Some(di) = o.data_inv {
            out.push_str(match di {
                DataInvalidation::StaticRegions => ";di=static",
                DataInvalidation::Signatures => ";di=sig",
            });
        }
        if let Some(bits) = o.backoff_bits {
            out.push_str(&format!(";bb={bits}"));
        }
        if let Some(inc) = o.backoff_increment {
            out.push_str(&format!(";bi={inc}"));
        }
        if o.check_invariants {
            out.push_str(";inv=1");
        }
        if let Some(seed) = o.fault_seed {
            out.push_str(&format!(";seed={seed}"));
        }
        if let Some(m) = o.mutation {
            out.push_str(&format!(";mut={}", mutation_token(m)));
        }
        if let Some(mc) = o.max_cycles {
            out.push_str(&format!(";maxc={mc}"));
        }
        if let Some(shape) = o.mesh {
            out.push_str(&format!(";mesh={}", shape.token()));
        }
        match o.telemetry {
            TelemetryPolicy::Off => {}
            TelemetryPolicy::Ring => out.push_str(";tel=ring"),
            TelemetryPolicy::Jsonl => out.push_str(";tel=jsonl"),
        }
        out
    }

    /// Parses a token produced by [`ExperimentSpec::token`].
    ///
    /// # Errors
    ///
    /// Explains which field is missing, malformed, or unknown.
    pub fn from_token(token: &str) -> Result<ExperimentSpec, String> {
        let mut fields = Vec::new();
        for part in token.split(';') {
            let (k, v) = part
                .split_once('=')
                .ok_or_else(|| format!("field {part:?} is not key=value"))?;
            fields.push((k, v));
        }
        let get = |key: &str| fields.iter().find(|&&(k, _)| k == key).map(|&(_, v)| v);
        let parse_u64 = |key: &str| -> Result<Option<u64>, String> {
            get(key)
                .map(|v| {
                    v.parse()
                        .map_err(|_| format!("{key}={v:?} is not a number"))
                })
                .transpose()
        };
        let parse_bool = |key: &str| -> Result<bool, String> {
            match get(key) {
                Some("0") | None => Ok(false),
                Some("1") => Ok(true),
                Some(v) => Err(format!("{key}={v:?} is not 0/1")),
            }
        };

        let workload = match (get("kernel"), get("app"), get("trace")) {
            (Some(ktok), None, None) => {
                let kernel = KernelId::from_token(ktok)
                    .ok_or_else(|| format!("unknown kernel token {ktok:?}"))?;
                let ns = get("ns").ok_or("missing ns=lo-hi")?;
                let (lo, hi) = ns.split_once('-').ok_or_else(|| format!("ns={ns:?}"))?;
                let params = KernelParams {
                    threads: parse_u64("threads")?.ok_or("missing threads")? as usize,
                    iters: parse_u64("iters")?.ok_or("missing iters")?,
                    nonsynch: (
                        lo.parse().map_err(|_| format!("ns lo {lo:?}"))?,
                        hi.parse().map_err(|_| format!("ns hi {hi:?}"))?,
                    ),
                    sw_backoff: parse_bool("swb")?,
                    padded_locks: parse_bool("pad")?,
                    reduced_checks: parse_bool("rc")?,
                };
                WorkloadSpec::Kernel { kernel, params }
            }
            (None, Some(name), None) => {
                // Resolve through the app table to recover the 'static name.
                let app =
                    dvs_apps::app_by_name(name).ok_or_else(|| format!("unknown app {name:?}"))?;
                WorkloadSpec::App {
                    name: app.name,
                    threads: parse_u64("threads")?.ok_or("missing threads")? as usize,
                }
            }
            (None, None, Some(val)) => {
                let mut it = val.split(':');
                if it.next() != Some("mix") {
                    return Err(format!(
                        "unknown trace kind {val:?} (want mix:<seed>:<phases>)"
                    ));
                }
                let seed: u64 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| format!("trace={val:?}: bad mix seed"))?;
                let phases: u8 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| format!("trace={val:?}: bad mix phase count"))?;
                if it.next().is_some() {
                    return Err(format!("trace={val:?}: trailing fields"));
                }
                WorkloadSpec::Trace {
                    mix: MixSpec {
                        seed,
                        phases,
                        threads: parse_u64("threads")?.ok_or("missing threads")? as usize,
                    },
                }
            }
            _ => return Err("token must name exactly one of kernel=, app=, or trace=".to_owned()),
        };

        let proto = get("proto").ok_or("missing proto")?;
        let protocol = parse_protocol(proto)?;
        let overrides = ConfigOverrides {
            data_inv: match get("di") {
                None => None,
                Some("static") => Some(DataInvalidation::StaticRegions),
                Some("sig") => Some(DataInvalidation::Signatures),
                Some(v) => return Err(format!("di={v:?} is not static/sig")),
            },
            backoff_bits: parse_u64("bb")?.map(|v| v as u32),
            backoff_increment: parse_u64("bi")?,
            check_invariants: parse_bool("inv")?,
            fault_seed: parse_u64("seed")?,
            mutation: get("mut").map(parse_mutation_token).transpose()?,
            max_cycles: parse_u64("maxc")?,
            mesh: get("mesh").map(MeshShape::from_token).transpose()?,
            telemetry: match get("tel") {
                None => TelemetryPolicy::Off,
                Some("ring") => TelemetryPolicy::Ring,
                Some("jsonl") => TelemetryPolicy::Jsonl,
                Some(v) => return Err(format!("tel={v:?} is not ring/jsonl")),
            },
        };
        Ok(ExperimentSpec {
            workload,
            protocol,
            overrides,
        })
    }
}

/// Folds a [`TraceError`] into the campaign's run-error taxonomy: simulator
/// failures stay simulator failures, everything else (workload checks,
/// replay validation, bad mix specs) is a check failure.
pub fn trace_run_error(e: TraceError) -> RunError {
    match e {
        TraceError::Sim(e) => RunError::Sim(e),
        TraceError::Check(m) => RunError::Check(m),
        TraceError::Validate(m) => RunError::Check(format!("replay validation: {m}")),
    }
}

/// Parses a protocol by its bar label (`"M"`, `"DS0"`, `"DS"`, `"GCS"`).
///
/// # Errors
///
/// Lists the known labels when `label` is not one of them.
pub fn parse_protocol(label: &str) -> Result<Protocol, String> {
    Protocol::EXTENDED
        .into_iter()
        .find(|p| p.label() == label)
        .ok_or_else(|| format!("unknown protocol {label:?} (want M, DS0, DS, or GCS)"))
}

/// The serialized form of a [`ProtocolMutation`] — the same tokens the
/// `dvsf` CLI accepts, so spec tokens and fuzz commands agree.
pub fn mutation_token(m: ProtocolMutation) -> &'static str {
    match m {
        ProtocolMutation::DnvSkipRepoint => "dnv-skip-repoint",
        ProtocolMutation::DnvDropXfer => "dnv-drop-xfer",
        ProtocolMutation::MesiSkipInvalidate => "mesi-skip-invalidate",
        ProtocolMutation::MesiDropAck => "mesi-drop-ack",
        ProtocolMutation::GcsDropNotify => "gcs-drop-notify",
        ProtocolMutation::GcsSkipUpdate => "gcs-skip-update",
    }
}

/// Parses a token produced by [`mutation_token`].
///
/// # Errors
///
/// Lists the known tokens when `tok` is not one of them.
pub fn parse_mutation_token(tok: &str) -> Result<ProtocolMutation, String> {
    match tok {
        "dnv-skip-repoint" => Ok(ProtocolMutation::DnvSkipRepoint),
        "dnv-drop-xfer" => Ok(ProtocolMutation::DnvDropXfer),
        "mesi-skip-invalidate" => Ok(ProtocolMutation::MesiSkipInvalidate),
        "mesi-drop-ack" => Ok(ProtocolMutation::MesiDropAck),
        "gcs-drop-notify" => Ok(ProtocolMutation::GcsDropNotify),
        "gcs-skip-update" => Ok(ProtocolMutation::GcsSkipUpdate),
        _ => Err(format!(
            "unknown mutation {tok:?} (want dnv-skip-repoint, dnv-drop-xfer, \
             mesi-skip-invalidate, mesi-drop-ack, gcs-drop-notify, or \
             gcs-skip-update)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvs_kernels::{LockKind, LockedStruct};

    fn counter_spec(threads: usize) -> ExperimentSpec {
        ExperimentSpec::kernel(
            KernelId::Locked(LockedStruct::Counter, LockKind::Tatas),
            KernelParams::smoke(threads),
            Protocol::DeNovoSync,
        )
    }

    #[test]
    fn labels_identify_workload_protocol_cores() {
        assert_eq!(counter_spec(4).label(), "tatas:counter DS @4");
        assert_eq!(
            ExperimentSpec::app("FFT", 16, Protocol::Mesi).label(),
            "FFT M @16"
        );
    }

    #[test]
    fn config_uses_paper_presets_only_at_16_and_64() {
        assert_eq!(counter_spec(16).config().max_cycles, 2_000_000_000);
        assert_eq!(counter_spec(4).config().max_cycles, 500_000_000);
    }

    #[test]
    fn overrides_apply_on_top_of_base() {
        let mut spec = counter_spec(16);
        spec.overrides.backoff_bits = Some(6);
        spec.overrides.backoff_increment = Some(256);
        spec.overrides.max_cycles = Some(1_000);
        spec.overrides.check_invariants = true;
        let cfg = spec.config();
        assert_eq!(cfg.backoff.counter_bits, 6);
        assert_eq!(cfg.backoff.default_increment, 256);
        assert_eq!(cfg.max_cycles, 1_000);
        assert!(cfg.check_invariants);
    }

    #[test]
    fn unknown_app_is_a_build_error() {
        let spec = ExperimentSpec::app("doom", 4, Protocol::Mesi);
        assert!(spec.build().is_err());
    }

    #[test]
    fn tokens_round_trip_for_kernels_apps_and_overrides() {
        let mut spec = counter_spec(16);
        assert_eq!(
            spec.token(),
            "kernel=tatas:counter;threads=16;iters=6;ns=40-80;swb=1;pad=1;rc=0;proto=DS"
        );
        assert_eq!(ExperimentSpec::from_token(&spec.token()), Ok(spec));

        spec.overrides = ConfigOverrides {
            data_inv: Some(DataInvalidation::Signatures),
            backoff_bits: Some(6),
            backoff_increment: Some(256),
            check_invariants: true,
            fault_seed: Some(0xC0FFEE),
            mutation: Some(ProtocolMutation::DnvDropXfer),
            max_cycles: Some(1_000),
            mesh: None,
            telemetry: TelemetryPolicy::Ring,
        };
        assert_eq!(ExperimentSpec::from_token(&spec.token()), Ok(spec));

        for app in dvs_apps::all_apps() {
            let spec = ExperimentSpec::app(app.name, 16, Protocol::Mesi);
            assert_eq!(ExperimentSpec::from_token(&spec.token()), Ok(spec));
        }
    }

    #[test]
    fn gcs_and_mesh_tokens_round_trip() {
        let mut spec = counter_spec(16);
        spec.protocol = Protocol::Gcs;
        spec.overrides.mesh = Some(MeshShape { rows: 2, cols: 8 });
        spec.overrides.mutation = Some(ProtocolMutation::GcsDropNotify);
        let tok = spec.token();
        assert!(tok.contains(";proto=GCS"), "{tok}");
        assert!(tok.contains(";mesh=2x8"), "{tok}");
        assert!(tok.contains(";mut=gcs-drop-notify"), "{tok}");
        assert_eq!(ExperimentSpec::from_token(&tok), Ok(spec));

        spec.overrides.mutation = Some(ProtocolMutation::GcsSkipUpdate);
        assert_eq!(ExperimentSpec::from_token(&spec.token()), Ok(spec));

        // The mesh override lands in the materialized system config.
        assert_eq!(spec.config().mesh, Some(MeshShape { rows: 2, cols: 8 }));
        assert_eq!(parse_protocol("GCS"), Ok(Protocol::Gcs));
    }

    #[test]
    fn token_parsing_rejects_garbage_with_reasons() {
        for (bad, needle) in [
            ("", "key=value"),
            ("kernel=tatas:counter", "missing"),
            ("app=doom;threads=4;proto=M", "unknown app"),
            (
                "kernel=bogus;threads=4;iters=6;ns=1-2;proto=M",
                "kernel token",
            ),
            (
                "kernel=tatas:counter;threads=x;iters=6;ns=1-2;proto=M",
                "not a number",
            ),
            (
                "kernel=tatas:counter;threads=4;iters=6;ns=1-2;proto=Z",
                "unknown protocol",
            ),
            (
                "kernel=tatas:counter;threads=4;iters=6;ns=1-2;proto=M;mut=nope",
                "unknown mutation",
            ),
            (
                "kernel=tatas:counter;threads=4;iters=6;ns=1-2;proto=M;mesh=0x8",
                "zero",
            ),
            (
                "kernel=tatas:counter;threads=4;iters=6;ns=1-2;proto=M;mesh=8",
                "<rows>x<cols>",
            ),
        ] {
            let err = ExperimentSpec::from_token(bad).expect_err(bad);
            assert!(err.contains(needle), "{bad:?} -> {err:?}");
        }
    }

    #[test]
    fn equal_specs_have_equal_tokens_and_distinct_specs_do_not() {
        let a = counter_spec(4);
        let mut b = a;
        assert_eq!(a.token(), b.token());
        b.protocol = Protocol::Mesi;
        assert_ne!(a.token(), b.token());
        b = a;
        b.overrides.max_cycles = Some(10);
        assert_ne!(a.token(), b.token());
    }
}
