//! Experiment specifications: one run described entirely as data.
//!
//! A spec carries no closures and no pre-built workload — just identifiers
//! and plain-old-data parameters — so a campaign is a serializable value
//! that any worker thread can materialize independently.

use crate::{run_workload, RunError};
use dvs_core::chaos::FaultPlan;
use dvs_core::config::{DataInvalidation, Protocol, ProtocolMutation, SystemConfig};
use dvs_kernels::{KernelId, KernelParams, Workload};
use dvs_stats::RunStats;
use dvs_telemetry::{JsonlSink, Telemetry};

/// Which workload a spec runs, addressed by serializable id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadSpec {
    /// A synchronization kernel (Figures 3–6) with explicit parameters.
    Kernel {
        /// Which kernel; `KernelId::token()` is its serialized form.
        kernel: KernelId,
        /// Iteration/thread parameters (`params.threads` = core count).
        params: KernelParams,
    },
    /// An application model (Figure 7), addressed by its Table 2 name.
    App {
        /// The app's name as listed by `dvs_apps::all_apps()`.
        name: &'static str,
        /// Thread count (= core count) to build the model at.
        threads: usize,
    },
}

impl WorkloadSpec {
    /// The workload's display name (kernel token or app name).
    pub fn name(&self) -> String {
        match self {
            WorkloadSpec::Kernel { kernel, .. } => kernel.token(),
            WorkloadSpec::App { name, .. } => (*name).to_owned(),
        }
    }

    /// The core count this workload wants (one core per thread).
    pub fn cores(&self) -> usize {
        match self {
            WorkloadSpec::Kernel { params, .. } => params.threads,
            WorkloadSpec::App { threads, .. } => *threads,
        }
    }
}

/// How much telemetry a campaign run captures. The policy only chooses the
/// event sink — telemetry feeds nothing back into simulated state, so run
/// results (and the campaign digest) are byte-identical under every policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TelemetryPolicy {
    /// No sink attached: every instrumentation site is one no-op branch.
    #[default]
    Off,
    /// A bounded per-node ring buffer (cheap always-on capture; the run's
    /// metrics tree is kept on the [`RunRecord`](crate::RunRecord)).
    Ring,
    /// Stream every event as a JSON line into a null writer. Exercises the
    /// full serialization path; drivers that want the lines on disk call
    /// [`run_workload_with`](crate::run_workload_with) with their own sink.
    Jsonl,
}

impl TelemetryPolicy {
    /// Ring capacity (events per `(component, node)`) used by
    /// [`TelemetryPolicy::Ring`].
    pub const RING_PER_NODE: usize = 64;

    /// Builds the telemetry handle this policy prescribes.
    pub fn telemetry(self) -> Telemetry {
        match self {
            TelemetryPolicy::Off => Telemetry::off(),
            TelemetryPolicy::Ring => Telemetry::ring(Self::RING_PER_NODE),
            TelemetryPolicy::Jsonl => Telemetry::new(JsonlSink::new(std::io::sink())),
        }
    }

    /// Whether this policy attaches a sink at all.
    pub fn enabled(self) -> bool {
        self != TelemetryPolicy::Off
    }
}

/// Pure-data overrides applied on top of the base [`SystemConfig`] for a
/// spec. `Default` leaves the base configuration untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ConfigOverrides {
    /// Data self-invalidation mechanism (ablation: signatures).
    pub data_inv: Option<DataInvalidation>,
    /// Hardware-backoff counter width (ablation: backoff parameters).
    pub backoff_bits: Option<u32>,
    /// Hardware-backoff default increment (ablation: backoff parameters).
    pub backoff_increment: Option<u64>,
    /// Run the runtime coherence-invariant checkers (chaos matrix).
    pub check_invariants: bool,
    /// Deterministic fault injection seed (chaos matrix).
    pub fault_seed: Option<u64>,
    /// A seeded protocol bug for negative testing.
    pub mutation: Option<ProtocolMutation>,
    /// Cycle-limit safety valve override.
    pub max_cycles: Option<u64>,
    /// Telemetry capture policy (observability only; never changes results).
    pub telemetry: TelemetryPolicy,
}

impl ConfigOverrides {
    /// Applies the overrides to `cfg` in place.
    pub fn apply(&self, cfg: &mut SystemConfig) {
        if let Some(di) = self.data_inv {
            cfg.data_inv = di;
        }
        if let Some(bits) = self.backoff_bits {
            cfg.backoff.counter_bits = bits;
        }
        if let Some(inc) = self.backoff_increment {
            cfg.backoff.default_increment = inc;
        }
        if self.check_invariants {
            cfg.check_invariants = true;
        }
        if let Some(seed) = self.fault_seed {
            cfg.fault_plan = Some(FaultPlan::from_seed(seed));
        }
        if let Some(m) = self.mutation {
            cfg.mutation = Some(m);
        }
        if let Some(mc) = self.max_cycles {
            cfg.max_cycles = mc;
        }
    }
}

/// One cell of an evaluation grid: workload × protocol × config overrides.
///
/// Specs are `Copy` values; the expensive parts (program text, layouts) are
/// built on the worker that executes the spec, then dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExperimentSpec {
    /// What to run.
    pub workload: WorkloadSpec,
    /// Which protocol to run it on.
    pub protocol: Protocol,
    /// Configuration adjustments over the base (paper/small) config.
    pub overrides: ConfigOverrides,
}

impl ExperimentSpec {
    /// A kernel spec with no overrides.
    pub fn kernel(kernel: KernelId, params: KernelParams, protocol: Protocol) -> Self {
        ExperimentSpec {
            workload: WorkloadSpec::Kernel { kernel, params },
            protocol,
            overrides: ConfigOverrides::default(),
        }
    }

    /// An app spec with no overrides.
    pub fn app(name: &'static str, threads: usize, protocol: Protocol) -> Self {
        ExperimentSpec {
            workload: WorkloadSpec::App { name, threads },
            protocol,
            overrides: ConfigOverrides::default(),
        }
    }

    /// Human-readable one-line identity, e.g. `tatas:counter DS @16`.
    pub fn label(&self) -> String {
        format!(
            "{} {} @{}",
            self.workload.name(),
            self.protocol.label(),
            self.workload.cores()
        )
    }

    /// The full system configuration for this spec: the paper's Table 1
    /// config at 16/64 cores, the small test config elsewhere, plus
    /// [`ConfigOverrides`].
    pub fn config(&self) -> SystemConfig {
        let cores = self.workload.cores();
        let mut cfg = match cores {
            16 | 64 => SystemConfig::paper(cores, self.protocol),
            other => SystemConfig::small(other, self.protocol),
        };
        self.overrides.apply(&mut cfg);
        cfg
    }

    /// Materializes the workload this spec names.
    ///
    /// # Errors
    ///
    /// An explanation when the workload id does not resolve (unknown app
    /// name). Builder panics (e.g. invalid thread counts) are *not* caught
    /// here — the campaign runner isolates them per run.
    pub fn build(&self) -> Result<Workload, String> {
        match self.workload {
            WorkloadSpec::Kernel { kernel, ref params } => Ok(dvs_kernels::build(kernel, params)),
            WorkloadSpec::App { name, threads } => {
                let app =
                    dvs_apps::app_by_name(name).ok_or_else(|| format!("unknown app {name:?}"))?;
                Ok(dvs_apps::build_app(&app, threads))
            }
        }
    }

    /// Builds and runs this spec to completion on the current thread.
    ///
    /// # Errors
    ///
    /// [`RunError::Check`] for an unresolvable workload id, otherwise
    /// whatever [`run_workload`] reports.
    pub fn run(&self) -> Result<RunStats, RunError> {
        let workload = self.build().map_err(RunError::Check)?;
        run_workload(self.config(), &workload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvs_kernels::{LockKind, LockedStruct};

    fn counter_spec(threads: usize) -> ExperimentSpec {
        ExperimentSpec::kernel(
            KernelId::Locked(LockedStruct::Counter, LockKind::Tatas),
            KernelParams::smoke(threads),
            Protocol::DeNovoSync,
        )
    }

    #[test]
    fn labels_identify_workload_protocol_cores() {
        assert_eq!(counter_spec(4).label(), "tatas:counter DS @4");
        assert_eq!(
            ExperimentSpec::app("FFT", 16, Protocol::Mesi).label(),
            "FFT M @16"
        );
    }

    #[test]
    fn config_uses_paper_presets_only_at_16_and_64() {
        assert_eq!(counter_spec(16).config().max_cycles, 2_000_000_000);
        assert_eq!(counter_spec(4).config().max_cycles, 500_000_000);
    }

    #[test]
    fn overrides_apply_on_top_of_base() {
        let mut spec = counter_spec(16);
        spec.overrides.backoff_bits = Some(6);
        spec.overrides.backoff_increment = Some(256);
        spec.overrides.max_cycles = Some(1_000);
        spec.overrides.check_invariants = true;
        let cfg = spec.config();
        assert_eq!(cfg.backoff.counter_bits, 6);
        assert_eq!(cfg.backoff.default_increment, 256);
        assert_eq!(cfg.max_cycles, 1_000);
        assert!(cfg.check_invariants);
    }

    #[test]
    fn unknown_app_is_a_build_error() {
        let spec = ExperimentSpec::app("doom", 4, Protocol::Mesi);
        assert!(spec.build().is_err());
    }
}
