//! Grid builders: expand figure-shaped evaluation grids into spec lists,
//! plus the environment knobs shared by every bench driver.
//!
//! * `DVS_QUICK=1` — reduced grids (fewer iterations, 16 cores only) for
//!   smoke runs; read once and cached.
//! * `DVS_WORKERS=N` — campaign worker count; defaults to the host's
//!   available parallelism.

use crate::spec::ExperimentSpec;
use dvs_apps::AppSpec;
use dvs_core::config::Protocol;
use dvs_kernels::{KernelId, KernelParams};
use dvs_stats::report::host_parallelism;
use std::sync::OnceLock;

/// The raw value of an environment variable, treating a non-unicode value
/// as malformed (warned, then ignored) rather than panicking mid-grid.
fn env_raw(name: &str) -> Option<String> {
    match std::env::var(name) {
        Ok(v) => Some(v),
        Err(std::env::VarError::NotPresent) => None,
        Err(std::env::VarError::NotUnicode(_)) => {
            eprintln!("warning: {name} is not valid UTF-8; using the default");
            None
        }
    }
}

/// Interprets a `DVS_QUICK` value. Unset, empty, `0`, `false`, and `off`
/// disable quick mode; `1`, `true`, and `on` enable it; anything else is
/// malformed and falls back to the default (off) with a warning.
fn parse_quick(raw: Option<&str>) -> (bool, Option<String>) {
    match raw {
        None | Some("" | "0" | "false" | "off") => (false, None),
        Some("1" | "true" | "on") => (true, None),
        Some(other) => (
            false,
            Some(format!(
                "warning: DVS_QUICK={other:?} is not recognized (want 0/1); running full grids"
            )),
        ),
    }
}

/// Interprets a `DVS_WORKERS` value. `None` means "use the default" (the
/// host's available parallelism); a non-numeric or zero value is malformed
/// and also falls back, with a warning.
fn parse_workers(raw: Option<&str>) -> (Option<usize>, Option<String>) {
    match raw {
        None | Some("") => (None, None),
        Some(v) => match v.parse::<usize>() {
            Ok(w) if w > 0 => (Some(w), None),
            _ => (
                None,
                Some(format!(
                    "warning: DVS_WORKERS={v:?} is not a positive integer; \
                     using host parallelism"
                )),
            ),
        },
    }
}

/// Whether quick mode is enabled (reduced iterations and core counts).
/// The `DVS_QUICK` lookup happens once per process, not per call; a
/// malformed value warns once and falls back to full grids.
pub fn quick_mode() -> bool {
    static QUICK: OnceLock<bool> = OnceLock::new();
    *QUICK.get_or_init(|| {
        let (quick, warning) = parse_quick(env_raw("DVS_QUICK").as_deref());
        if let Some(w) = warning {
            eprintln!("{w}");
        }
        quick
    })
}

/// Campaign worker count: `DVS_WORKERS` if set and positive, otherwise the
/// host's available parallelism. A malformed value warns once and falls
/// back to the default instead of failing mid-grid.
pub fn workers_from_env() -> usize {
    static WORKERS: OnceLock<usize> = OnceLock::new();
    *WORKERS.get_or_init(|| {
        let (workers, warning) = parse_workers(env_raw("DVS_WORKERS").as_deref());
        if let Some(w) = warning {
            eprintln!("{w}");
        }
        workers.unwrap_or_else(host_parallelism)
    })
}

/// The core counts a figure should sweep (paper: 16 and 64; quick: 16).
pub fn figure_core_counts() -> Vec<usize> {
    if quick_mode() {
        vec![16]
    } else {
        vec![16, 64]
    }
}

/// Paper parameters for `kernel` at `cores`, reduced in quick mode.
pub fn figure_params(kernel: KernelId, cores: usize) -> KernelParams {
    let mut params = KernelParams::paper(kernel, cores);
    if quick_mode() {
        params.iters = params.iters.min(20);
    }
    params
}

/// The kernel-figure grid (Figures 3–6): `kernels × protocols` at one core
/// count, paper parameters adjusted by `tweak` (identity for the main
/// figures, parameter flips for the ablations).
pub fn kernel_grid(
    kernels: &[KernelId],
    cores: usize,
    protocols: &[Protocol],
    tweak: impl Fn(&mut KernelParams),
) -> Vec<ExperimentSpec> {
    let mut specs = Vec::with_capacity(kernels.len() * protocols.len());
    for &kernel in kernels {
        for &protocol in protocols {
            let mut params = figure_params(kernel, cores);
            tweak(&mut params);
            specs.push(ExperimentSpec::kernel(kernel, params, protocol));
        }
    }
    specs
}

/// The app thread count a figure uses (paper: the app's Table 2 core count;
/// quick: 16).
pub fn app_threads(app: &AppSpec) -> usize {
    if quick_mode() {
        16
    } else {
        app.cores
    }
}

/// The app-figure grid (Figure 7): `apps × protocols` at each app's own core
/// count.
pub fn app_grid(apps: &[AppSpec], protocols: &[Protocol]) -> Vec<ExperimentSpec> {
    let mut specs = Vec::with_capacity(apps.len() * protocols.len());
    for app in apps {
        for &protocol in protocols {
            specs.push(ExperimentSpec::app(app.name, app_threads(app), protocol));
        }
    }
    specs
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvs_kernels::{LockKind, LockedStruct};

    #[test]
    fn quick_values_parse_with_warnings_for_garbage() {
        for off in [None, Some(""), Some("0"), Some("false"), Some("off")] {
            assert_eq!(parse_quick(off), (false, None), "{off:?}");
        }
        for on in [Some("1"), Some("true"), Some("on")] {
            assert_eq!(parse_quick(on), (true, None), "{on:?}");
        }
        let (quick, warning) = parse_quick(Some("banana"));
        assert!(!quick, "malformed DVS_QUICK must fall back to off");
        assert!(warning.expect("warns").contains("banana"));
    }

    #[test]
    fn worker_values_parse_with_warnings_for_garbage() {
        assert_eq!(parse_workers(None), (None, None));
        assert_eq!(parse_workers(Some("")), (None, None));
        assert_eq!(parse_workers(Some("4")), (Some(4), None));
        for bad in ["0", "-3", "four", "4x", "1e3"] {
            let (workers, warning) = parse_workers(Some(bad));
            assert_eq!(workers, None, "malformed DVS_WORKERS={bad:?} falls back");
            assert!(warning.expect("warns").contains(bad));
        }
    }

    #[test]
    fn kernel_grid_is_kernel_major_protocol_minor() {
        let kernels = [
            KernelId::Locked(LockedStruct::Counter, LockKind::Tatas),
            KernelId::Locked(LockedStruct::Stack, LockKind::Array),
        ];
        let specs = kernel_grid(&kernels, 16, &Protocol::ALL, |_| {});
        assert_eq!(specs.len(), 6);
        assert_eq!(specs[0].label(), "tatas:counter M @16");
        assert_eq!(specs[1].label(), "tatas:counter DS0 @16");
        assert_eq!(specs[2].label(), "tatas:counter DS @16");
        assert_eq!(specs[3].label(), "array:stack M @16");
    }

    #[test]
    fn kernel_grid_applies_tweaks() {
        let kernels = [KernelId::Locked(LockedStruct::Counter, LockKind::Tatas)];
        let specs = kernel_grid(&kernels, 16, &[Protocol::DeNovoSync], |p| {
            p.sw_backoff = true;
        });
        match specs[0].workload {
            crate::spec::WorkloadSpec::Kernel { params, .. } => assert!(params.sw_backoff),
            _ => panic!("kernel spec expected"),
        }
    }

    #[test]
    fn app_grid_covers_all_pairs() {
        let apps = dvs_apps::all_apps();
        let specs = app_grid(&apps, &[Protocol::Mesi, Protocol::DeNovoSync]);
        assert_eq!(specs.len(), apps.len() * 2);
    }
}
