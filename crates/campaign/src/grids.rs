//! Grid builders: expand figure-shaped evaluation grids into spec lists,
//! plus the environment knobs shared by every bench driver.
//!
//! * `DVS_QUICK=1` — reduced grids (fewer iterations, 16 cores only) for
//!   smoke runs; read once and cached.
//! * `DVS_WORKERS=N` — campaign worker count; defaults to the host's
//!   available parallelism.

use crate::spec::ExperimentSpec;
use dvs_apps::AppSpec;
use dvs_core::config::Protocol;
use dvs_kernels::{KernelId, KernelParams};
use dvs_stats::report::host_parallelism;
use std::sync::OnceLock;

/// Whether quick mode is enabled (reduced iterations and core counts).
/// The `DVS_QUICK` lookup happens once per process, not per call.
pub fn quick_mode() -> bool {
    static QUICK: OnceLock<bool> = OnceLock::new();
    *QUICK.get_or_init(|| std::env::var("DVS_QUICK").is_ok_and(|v| !v.is_empty() && v != "0"))
}

/// Campaign worker count: `DVS_WORKERS` if set and positive, otherwise the
/// host's available parallelism.
pub fn workers_from_env() -> usize {
    static WORKERS: OnceLock<usize> = OnceLock::new();
    *WORKERS.get_or_init(|| {
        std::env::var("DVS_WORKERS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&w| w > 0)
            .unwrap_or_else(host_parallelism)
    })
}

/// The core counts a figure should sweep (paper: 16 and 64; quick: 16).
pub fn figure_core_counts() -> Vec<usize> {
    if quick_mode() {
        vec![16]
    } else {
        vec![16, 64]
    }
}

/// Paper parameters for `kernel` at `cores`, reduced in quick mode.
pub fn figure_params(kernel: KernelId, cores: usize) -> KernelParams {
    let mut params = KernelParams::paper(kernel, cores);
    if quick_mode() {
        params.iters = params.iters.min(20);
    }
    params
}

/// The kernel-figure grid (Figures 3–6): `kernels × protocols` at one core
/// count, paper parameters adjusted by `tweak` (identity for the main
/// figures, parameter flips for the ablations).
pub fn kernel_grid(
    kernels: &[KernelId],
    cores: usize,
    protocols: &[Protocol],
    tweak: impl Fn(&mut KernelParams),
) -> Vec<ExperimentSpec> {
    let mut specs = Vec::with_capacity(kernels.len() * protocols.len());
    for &kernel in kernels {
        for &protocol in protocols {
            let mut params = figure_params(kernel, cores);
            tweak(&mut params);
            specs.push(ExperimentSpec::kernel(kernel, params, protocol));
        }
    }
    specs
}

/// The app thread count a figure uses (paper: the app's Table 2 core count;
/// quick: 16).
pub fn app_threads(app: &AppSpec) -> usize {
    if quick_mode() {
        16
    } else {
        app.cores
    }
}

/// The app-figure grid (Figure 7): `apps × protocols` at each app's own core
/// count.
pub fn app_grid(apps: &[AppSpec], protocols: &[Protocol]) -> Vec<ExperimentSpec> {
    let mut specs = Vec::with_capacity(apps.len() * protocols.len());
    for app in apps {
        for &protocol in protocols {
            specs.push(ExperimentSpec::app(app.name, app_threads(app), protocol));
        }
    }
    specs
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvs_kernels::{LockKind, LockedStruct};

    #[test]
    fn kernel_grid_is_kernel_major_protocol_minor() {
        let kernels = [
            KernelId::Locked(LockedStruct::Counter, LockKind::Tatas),
            KernelId::Locked(LockedStruct::Stack, LockKind::Array),
        ];
        let specs = kernel_grid(&kernels, 16, &Protocol::ALL, |_| {});
        assert_eq!(specs.len(), 6);
        assert_eq!(specs[0].label(), "tatas:counter M @16");
        assert_eq!(specs[1].label(), "tatas:counter DS0 @16");
        assert_eq!(specs[2].label(), "tatas:counter DS @16");
        assert_eq!(specs[3].label(), "array:stack M @16");
    }

    #[test]
    fn kernel_grid_applies_tweaks() {
        let kernels = [KernelId::Locked(LockedStruct::Counter, LockKind::Tatas)];
        let specs = kernel_grid(&kernels, 16, &[Protocol::DeNovoSync], |p| {
            p.sw_backoff = true;
        });
        match specs[0].workload {
            crate::spec::WorkloadSpec::Kernel { params, .. } => assert!(params.sw_backoff),
            _ => panic!("kernel spec expected"),
        }
    }

    #[test]
    fn app_grid_covers_all_pairs() {
        let apps = dvs_apps::all_apps();
        let specs = app_grid(&apps, &[Protocol::Mesi, Protocol::DeNovoSync]);
        assert_eq!(specs.len(), apps.len() * 2);
    }
}
