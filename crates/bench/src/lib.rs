//! The experiment harness: glue between workloads and the simulator, plus
//! the table/figure drivers under `benches/` (run with `cargo bench`).

pub mod figures;

use dvs_core::config::SystemConfig;
use dvs_core::system::SimError;
use dvs_core::System;
use dvs_kernels::{KernelId, KernelParams, Workload};
use dvs_stats::RunStats;

/// A failed experiment run.
#[derive(Debug)]
pub enum RunError {
    /// The simulator reported an error (deadlock, assertion, cycle limit).
    Sim(SimError),
    /// The workload's semantic post-condition failed.
    Check(String),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Sim(e) => write!(f, "simulation failed: {e}"),
            RunError::Check(e) => write!(f, "semantic check failed: {e}"),
        }
    }
}

impl std::error::Error for RunError {}

/// Instantiates `workload` on a system, runs it to completion, verifies its
/// semantic post-condition, and returns the run statistics.
///
/// # Errors
///
/// [`RunError::Sim`] if the simulation fails; [`RunError::Check`] if the
/// final memory image violates the workload's post-condition.
pub fn run_workload(cfg: SystemConfig, workload: &Workload) -> Result<RunStats, RunError> {
    let mut sys = System::new(cfg, workload.layout.clone(), workload.programs.clone());
    for &(addr, value) in &workload.init {
        sys.preload(addr, value);
    }
    for (i, &(base, bytes)) in workload.pools.iter().enumerate() {
        sys.set_thread_pool(i, base, bytes);
    }
    let stats = sys.run().map_err(RunError::Sim)?;
    sys.verify_coherence().map_err(RunError::Check)?;
    let read = |a| sys.read_word(a);
    (workload.check)(&read).map_err(RunError::Check)?;
    Ok(stats)
}

/// Builds and runs one kernel.
///
/// # Errors
///
/// Propagates [`run_workload`] failures.
pub fn run_kernel(
    kernel: KernelId,
    cfg: SystemConfig,
    params: &KernelParams,
) -> Result<RunStats, RunError> {
    let workload = dvs_kernels::build(kernel, params);
    run_workload(cfg, &workload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvs_core::config::Protocol;
    use dvs_kernels::{LockKind, LockedStruct};

    #[test]
    fn run_kernel_returns_stats_and_checks() {
        let kernel = KernelId::Locked(LockedStruct::Counter, LockKind::Tatas);
        let params = KernelParams::smoke(4);
        let stats = run_kernel(
            kernel,
            SystemConfig::small(4, Protocol::DeNovoSync),
            &params,
        )
        .expect("kernel runs");
        assert!(stats.cycles > 0);
        assert!(stats.traffic.total() > 0);
    }
}
