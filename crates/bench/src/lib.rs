//! The experiment harness: campaign-driven figure drivers plus the
//! table/figure targets under `benches/` (run with `cargo bench`).
//!
//! Every evaluation grid is expanded into [`dvs_campaign::ExperimentSpec`]
//! lists and executed by the parallel [`dvs_campaign::Campaign`] runner;
//! this crate contributes only the paper-shaped grid definitions and the
//! table rendering ([`figures`]). The single-run entry points
//! ([`run_workload`], [`run_kernel`]) live in `dvs-campaign` and are
//! re-exported here for the tests and examples that predate the campaign
//! layer.

pub mod figures;
pub mod trace;

pub use dvs_campaign::{run_kernel, run_workload, RunError};

use dvs_apps::AppSpec;
use dvs_campaign::grids::{app_grid, kernel_grid};
use dvs_campaign::{figure_core_counts, workers_from_env, Campaign};
use dvs_core::config::Protocol;
use dvs_kernels::{KernelId, KernelParams};

/// Runs one kernel grid (the shape of Figures 3–6) through the campaign
/// runner and prints the normalized tables per core count. `tweak` adjusts
/// the paper parameters (ablations).
///
/// # Panics
///
/// Panics if any cell fails — a figure with holes is a regression.
pub fn kernel_figure(figure: &str, kernels: &[KernelId], tweak: impl Fn(&mut KernelParams)) {
    for &cores in &figure_core_counts() {
        let specs = kernel_grid(kernels, cores, &Protocol::ALL, &tweak);
        let report = Campaign::from_specs(specs).run(workers_from_env());
        report.expect_all_ok(figure);
        figures::render_report_tables(
            &format!("{figure}: execution time, {cores} cores (normalized to MESI)"),
            &format!("{figure}: network traffic, {cores} cores (normalized to MESI)"),
            &report,
        );
        println!();
    }
}

/// Runs the application grid (Figure 7: MESI vs DeNovoSync) through the
/// campaign runner and prints the normalized tables.
///
/// # Panics
///
/// Panics if any cell fails.
pub fn app_figure(figure: &str, apps: &[AppSpec]) {
    let specs = app_grid(apps, &[Protocol::Mesi, Protocol::DeNovoSync]);
    let report = Campaign::from_specs(specs).run(workers_from_env());
    report.expect_all_ok(figure);
    figures::render_report_tables(
        &format!("{figure}: execution time (normalized to MESI)"),
        &format!("{figure}: network traffic (normalized to MESI)"),
        &report,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvs_core::config::SystemConfig;
    use dvs_kernels::{LockKind, LockedStruct};

    #[test]
    fn run_kernel_returns_stats_and_checks() {
        let kernel = KernelId::Locked(LockedStruct::Counter, LockKind::Tatas);
        let params = KernelParams::smoke(4);
        let stats = run_kernel(
            kernel,
            SystemConfig::small(4, Protocol::DeNovoSync),
            &params,
        )
        .expect("kernel runs");
        assert!(stats.cycles > 0);
        assert!(stats.traffic.total() > 0);
    }
}
