//! Figure 2: single-run trace replay of the Michael–Scott enqueue.
//!
//! This is not an evaluation grid — it replays one short run per protocol
//! and prints the per-access outcomes — so it drives the simulator directly
//! instead of going through the campaign runner.

use dvs_core::config::{Protocol, SystemConfig};
use dvs_core::trace::TraceKind;
use dvs_core::System;
use dvs_kernels::{KernelId, KernelParams, NonBlocking};

/// Prints example interleavings of the M-S enqueue on MESI, DeNovoSync0, and
/// DeNovoSync, showing per-access hits/misses (and hardware-backoff stalls).
///
/// # Panics
///
/// Panics if the traced run fails.
pub fn fig2_trace() {
    let mut params = KernelParams::smoke(4);
    params.iters = 2;
    params.nonsynch = (1, 2);
    params.sw_backoff = false;
    let w = dvs_kernels::build(KernelId::NonBlocking(NonBlocking::MsQueue), &params);
    let head = w.layout.segment("head").expect("head").base;
    let tail = w.layout.segment("tail").expect("tail").base;
    for proto in Protocol::ALL {
        println!("== Figure 2 ({proto}): M-S queue, accesses to head/tail/links ==");
        let mut sys = System::new(
            SystemConfig::small(4, proto),
            w.layout.clone(),
            w.programs.clone(),
        );
        for &(a, v) in &w.init {
            sys.preload(a, v);
        }
        for (i, &(b, n)) in w.pools.iter().enumerate() {
            sys.set_thread_pool(i, b, n);
        }
        sys.enable_trace();
        sys.run().expect("figure-2 run");
        let trace = sys.take_trace().expect("trace enabled");
        let mut shown = 0;
        for e in trace.events() {
            let name = if e.addr == head {
                "head"
            } else if e.addr == tail {
                "tail"
            } else if e.sync {
                "node.next"
            } else {
                continue; // node values and bookkeeping
            };
            let outcome = match e.kind {
                TraceKind::Hit => "HIT ".to_owned(),
                TraceKind::Miss => "MISS".to_owned(),
                TraceKind::Backoff { cycles } => format!("BACKOFF {cycles}"),
                TraceKind::Mark(_) => continue,
            };
            println!(
                "  core {} @{:>6}  {:9} {:5} {}",
                e.core,
                e.cycle,
                name,
                if e.write { "write" } else { "read" },
                outcome
            );
            shown += 1;
            if shown >= 40 {
                println!("  ... (truncated)");
                break;
            }
        }
        println!();
    }
}
