//! Figure 2: single-run trace replay of the Michael–Scott enqueue.
//!
//! This is not an evaluation grid — it replays one short run per protocol
//! and prints the per-access outcomes — so it drives the simulator directly
//! instead of going through the campaign runner. The per-access stream comes
//! from the telemetry recorder: the core's [`EventKind::Access`] and
//! [`EventKind::Backoff`] events carry exactly the fields this walkthrough
//! needs.

use dvs_core::config::{Protocol, SystemConfig};
use dvs_core::System;
use dvs_kernels::{KernelId, KernelParams, NonBlocking};
use dvs_telemetry::{Component, EventKind, Telemetry};

/// Prints example interleavings of the M-S enqueue on MESI, DeNovoSync0, and
/// DeNovoSync, showing per-access hits/misses (and hardware-backoff stalls).
///
/// # Panics
///
/// Panics if the traced run fails.
pub fn fig2_trace() {
    let mut params = KernelParams::smoke(4);
    params.iters = 2;
    params.nonsynch = (1, 2);
    params.sw_backoff = false;
    let w = dvs_kernels::build(KernelId::NonBlocking(NonBlocking::MsQueue), &params);
    let head = w.layout.segment("head").expect("head").base;
    let tail = w.layout.segment("tail").expect("tail").base;
    for proto in Protocol::ALL {
        println!("== Figure 2 ({proto}): M-S queue, accesses to head/tail/links ==");
        let mut sys = System::new(
            SystemConfig::small(4, proto),
            w.layout.clone(),
            w.programs.clone(),
        );
        for &(a, v) in &w.init {
            sys.preload(a, v);
        }
        for (i, &(b, n)) in w.pools.iter().enumerate() {
            sys.set_thread_pool(i, b, n);
        }
        let tel = Telemetry::recorder();
        sys.set_telemetry(tel.clone());
        sys.run().expect("figure-2 run");
        let events = tel.take_events().expect("recorder drains");
        let mut shown = 0;
        for e in &events {
            if e.component != Component::Core {
                continue;
            }
            let (sync, write, outcome) = match e.kind {
                EventKind::Access { hit, sync, write } => {
                    let outcome = if hit { "HIT " } else { "MISS" };
                    (sync, write, outcome.to_owned())
                }
                // Backoff penalties only ever hit synchronization reads.
                EventKind::Backoff { cycles } => (true, false, format!("BACKOFF {cycles}")),
                _ => continue, // marks, stalls: not per-access outcomes
            };
            let name = if e.addr == head.raw() {
                "head"
            } else if e.addr == tail.raw() {
                "tail"
            } else if sync {
                "node.next"
            } else {
                continue; // node values and bookkeeping
            };
            println!(
                "  core {} @{:>6}  {:9} {:5} {}",
                e.node,
                e.cycle,
                name,
                if write { "write" } else { "read" },
                outcome
            );
            shown += 1;
            if shown >= 40 {
                println!("  ... (truncated)");
                break;
            }
        }
        println!();
    }
}
