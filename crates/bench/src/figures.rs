//! Drivers that regenerate the paper's figures as normalized tables.
//!
//! Each figure runs a grid of (workload × protocol × core count), verifies
//! every run's semantic post-condition, and prints two paper-style stacked
//! tables per core count: execution time (normalized to MESI, decomposed
//! into the Figure 3–7 components) and network traffic (normalized to MESI,
//! decomposed by message class).
//!
//! Set `DVS_QUICK=1` to run a reduced grid (fewer iterations, 16 cores
//! only) — used for smoke-testing the harnesses.

use crate::{run_kernel, run_workload};
use dvs_apps::{build_app, AppSpec};
use dvs_core::config::{Protocol, SystemConfig};
use dvs_kernels::{KernelId, KernelParams};
use dvs_stats::report::StackedTable;
use dvs_stats::{RunStats, TimeComponent, TrafficClass};

/// Whether quick mode is enabled (reduced iterations and core counts).
pub fn quick_mode() -> bool {
    std::env::var("DVS_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// The core counts a figure should sweep (paper: 16 and 64; quick: 16).
pub fn figure_core_counts() -> Vec<usize> {
    if quick_mode() {
        vec![16]
    } else {
        vec![16, 64]
    }
}

fn scale_params(params: &mut KernelParams) {
    if quick_mode() {
        params.iters = params.iters.min(20);
    }
}

/// Builds the execution-time table rows for one run.
pub fn time_row(stats: &RunStats) -> Vec<f64> {
    let b = stats.breakdown();
    TimeComponent::ALL
        .iter()
        .map(|&c| b.get(c) as f64)
        .collect()
}

/// Builds the traffic table rows for one run.
pub fn traffic_row(stats: &RunStats) -> Vec<f64> {
    TrafficClass::ALL
        .iter()
        .map(|&c| stats.traffic.get(c) as f64)
        .collect()
}

/// Component labels for the time tables.
pub fn time_components() -> Vec<&'static str> {
    TimeComponent::ALL.iter().map(|c| c.label()).collect()
}

/// Class labels for the traffic tables.
pub fn traffic_components() -> Vec<&'static str> {
    TrafficClass::ALL.iter().map(|c| c.label()).collect()
}

/// Runs one kernel grid (the shape of Figures 3–6) and prints the
/// normalized tables. `tweak` adjusts the paper parameters (ablations).
pub fn kernel_figure(figure: &str, kernels: &[KernelId], tweak: impl Fn(&mut KernelParams)) {
    for &cores in &figure_core_counts() {
        let tc = time_components();
        let cc = traffic_components();
        let mut time = StackedTable::new(
            &format!("{figure}: execution time, {cores} cores (normalized to MESI)"),
            &tc,
        );
        let mut traffic = StackedTable::new(
            &format!("{figure}: network traffic, {cores} cores (normalized to MESI)"),
            &cc,
        );
        for &kernel in kernels {
            for proto in Protocol::ALL {
                let mut params = KernelParams::paper(kernel, cores);
                scale_params(&mut params);
                tweak(&mut params);
                let cfg = SystemConfig::paper(cores, proto);
                let stats = run_kernel(kernel, cfg, &params)
                    .unwrap_or_else(|e| panic!("{} on {proto} @{cores}: {e}", kernel.name()));
                time.bar(&kernel.name(), proto.label(), &time_row(&stats));
                traffic.bar(&kernel.name(), proto.label(), &traffic_row(&stats));
            }
        }
        print!("{}", time.render());
        summarize(&time, "execution time");
        print!("{}", traffic.render());
        summarize(&traffic, "network traffic");
        println!();
    }
}

/// Runs the application grid (Figure 7: MESI vs DeNovoSync) and prints the
/// normalized tables.
pub fn app_figure(figure: &str, apps: &[AppSpec]) {
    let tc = time_components();
    let cc = traffic_components();
    let mut time = StackedTable::new(
        &format!("{figure}: execution time (normalized to MESI)"),
        &tc,
    );
    let mut traffic = StackedTable::new(
        &format!("{figure}: network traffic (normalized to MESI)"),
        &cc,
    );
    for spec in apps {
        let threads = if quick_mode() { 16 } else { spec.cores };
        let workload = build_app(spec, threads);
        for proto in [Protocol::Mesi, Protocol::DeNovoSync] {
            let cfg = SystemConfig::paper(threads, proto);
            let stats = run_workload(cfg, &workload)
                .unwrap_or_else(|e| panic!("{} on {proto}: {e}", spec.name));
            let label = format!("{} @{}", spec.name, threads);
            time.bar(&label, proto.label(), &time_row(&stats));
            traffic.bar(&label, proto.label(), &traffic_row(&stats));
        }
    }
    print!("{}", time.render());
    summarize(&time, "execution time");
    print!("{}", traffic.render());
    summarize(&traffic, "network traffic");
}

/// Replays the paper's Figure 2 scenario: two threads race through the
/// Michael–Scott `enqueue` while a third keeps dequeueing, on each protocol;
/// prints every access to `tail`, `head` and node links with its hit/miss
/// outcome (and hardware-backoff stalls under DeNovoSync).
pub fn fig2_trace() {
    use dvs_core::trace::TraceKind;
    use dvs_core::System;
    use dvs_kernels::{KernelParams, NonBlocking};

    let mut params = KernelParams::smoke(4);
    params.iters = 2;
    params.nonsynch = (1, 2);
    params.sw_backoff = false;
    let w = dvs_kernels::build(KernelId::NonBlocking(NonBlocking::MsQueue), &params);
    let head = w.layout.segment("head").expect("head").base;
    let tail = w.layout.segment("tail").expect("tail").base;
    for proto in Protocol::ALL {
        println!("== Figure 2 ({proto}): M-S queue, accesses to head/tail/links ==");
        let mut sys = System::new(
            SystemConfig::small(4, proto),
            w.layout.clone(),
            w.programs.clone(),
        );
        for &(a, v) in &w.init {
            sys.preload(a, v);
        }
        for (i, &(b, n)) in w.pools.iter().enumerate() {
            sys.set_thread_pool(i, b, n);
        }
        sys.enable_trace();
        sys.run().expect("figure-2 run");
        let trace = sys.take_trace().expect("trace enabled");
        let mut shown = 0;
        for e in trace.events() {
            let name = if e.addr == head {
                "head"
            } else if e.addr == tail {
                "tail"
            } else if e.sync {
                "node.next"
            } else {
                continue; // node values and bookkeeping
            };
            let outcome = match e.kind {
                TraceKind::Hit => "HIT ".to_owned(),
                TraceKind::Miss => "MISS".to_owned(),
                TraceKind::Backoff { cycles } => format!("BACKOFF {cycles}"),
                TraceKind::Mark(_) => continue,
            };
            println!(
                "  core {} @{:>6}  {:9} {:5} {}",
                e.core,
                e.cycle,
                name,
                if e.write { "write" } else { "read" },
                outcome
            );
            shown += 1;
            if shown >= 40 {
                println!("  ... (truncated)");
                break;
            }
        }
        println!();
    }
}

fn summarize(table: &StackedTable, what: &str) {
    for bar in ["DS0", "DS"] {
        if let Some(g) = table.geomean_total(bar) {
            println!("  geomean {what} {bar} vs MESI: {g:.1}%");
        }
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_align_with_component_lists() {
        let stats = RunStats::new(2);
        assert_eq!(time_row(&stats).len(), time_components().len());
        assert_eq!(traffic_row(&stats).len(), traffic_components().len());
    }
}
