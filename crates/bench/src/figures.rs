//! Table rendering for the paper's figures.
//!
//! The grids themselves are expanded and executed by `dvs-campaign`; this
//! module only turns a finished [`CampaignReport`] into the paper-style
//! stacked tables: execution time (normalized to MESI, decomposed into the
//! Figure 3–7 components) and network traffic (normalized to MESI,
//! decomposed by message class).
//!
//! Set `DVS_QUICK=1` to run reduced grids and `DVS_WORKERS=N` to control the
//! campaign worker pool (see [`dvs_campaign::grids`]).

pub use dvs_campaign::{figure_core_counts, quick_mode};

use dvs_campaign::spec::WorkloadSpec;
use dvs_campaign::CampaignReport;
use dvs_stats::report::StackedTable;
use dvs_stats::{RunStats, TimeComponent, TrafficClass};

/// Builds the execution-time table rows for one run.
pub fn time_row(stats: &RunStats) -> Vec<f64> {
    let b = stats.breakdown();
    TimeComponent::ALL
        .iter()
        .map(|&c| b.get(c) as f64)
        .collect()
}

/// Builds the traffic table rows for one run.
pub fn traffic_row(stats: &RunStats) -> Vec<f64> {
    TrafficClass::ALL
        .iter()
        .map(|&c| stats.traffic.get(c) as f64)
        .collect()
}

/// Component labels for the time tables.
pub fn time_components() -> Vec<&'static str> {
    TimeComponent::ALL.iter().map(|c| c.label()).collect()
}

/// Class labels for the traffic tables.
pub fn traffic_components() -> Vec<&'static str> {
    TrafficClass::ALL.iter().map(|c| c.label()).collect()
}

/// The table group a spec's bars belong to (one group per workload).
fn group_name(workload: &WorkloadSpec) -> String {
    match workload {
        WorkloadSpec::Kernel { kernel, .. } => kernel.name(),
        WorkloadSpec::App { name, threads } => format!("{name} @{threads}"),
        WorkloadSpec::Trace { mix } => mix.name(),
    }
}

/// Renders a campaign report as the two paper-style tables (execution time
/// and network traffic) plus the geomean summary lines. Records must all be
/// successful (the figure drivers call `expect_all_ok` first).
///
/// # Panics
///
/// Panics if a record carries an error instead of stats.
pub fn render_report_tables(title_time: &str, title_traffic: &str, report: &CampaignReport) {
    let tc = time_components();
    let cc = traffic_components();
    let mut time = StackedTable::new(title_time, &tc);
    let mut traffic = StackedTable::new(title_traffic, &cc);
    for record in &report.records {
        let stats = record
            .outcome
            .as_ref()
            .unwrap_or_else(|e| panic!("{}: {e}", record.spec.label()));
        let group = group_name(&record.spec.workload);
        let bar = record.spec.protocol.label();
        time.bar(&group, bar, &time_row(stats));
        traffic.bar(&group, bar, &traffic_row(stats));
    }
    print!("{}", time.render());
    summarize(&time, "execution time");
    print!("{}", traffic.render());
    summarize(&traffic, "network traffic");
}

/// Prints the paper's quoted geomean summary lines for a rendered table.
pub fn summarize(table: &StackedTable, what: &str) {
    for bar in ["DS0", "DS"] {
        if let Some(g) = table.geomean_total(bar) {
            println!("  geomean {what} {bar} vs MESI: {g:.1}%");
        }
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_align_with_component_lists() {
        let stats = RunStats::new(2);
        assert_eq!(time_row(&stats).len(), time_components().len());
        assert_eq!(traffic_row(&stats).len(), traffic_components().len());
    }
}
