//! Chaos matrix artifact: every kernel on every protocol under the fixed
//! fault seeds with runtime invariant checking enabled, plus a measurement of
//! the wall-clock cost of the checkers (which must be pay-for-use: a run with
//! `check_invariants = false` executes none of the checking code and its
//! simulated timing is bit-identical either way).
//!
//! Writes `BENCH_chaos.json` (machine-readable) and prints a summary table.
//! The seeds here match `tests/chaos.rs` and `scripts/ci.sh`.

use std::time::Instant;

use dvs_bench::run_kernel;
use dvs_core::chaos::FaultPlan;
use dvs_core::config::{Protocol, SystemConfig};
use dvs_kernels::{KernelId, KernelParams, LockKind, LockedStruct};
use dvs_stats::report::{JsonObject, ParamTable};

const SEEDS: [u64; 4] = [1, 42, 0xDEAD_BEEF, 0x5EED_CAFE];
const THREADS: usize = 4;
const OVERHEAD_REPS: u32 = 20;

fn chaos_cfg(proto: Protocol, seed: u64, check: bool) -> SystemConfig {
    let mut cfg = SystemConfig::small(THREADS, proto);
    cfg.check_invariants = check;
    cfg.fault_plan = Some(FaultPlan::from_seed(seed));
    cfg
}

/// Runs the full kernel matrix for one (protocol, seed) cell with invariant
/// checking on; panics on any failure so CI treats a regression as fatal.
fn run_cell(proto: Protocol, seed: u64) -> JsonObject {
    let params = KernelParams::smoke(THREADS);
    let mut total_cycles = 0u64;
    let mut total_msgs = 0u64;
    let mut runs = 0u64;
    for kernel in KernelId::all() {
        let stats = run_kernel(kernel, chaos_cfg(proto, seed, true), &params).unwrap_or_else(|e| {
            panic!(
                "{} on {proto:?} with fault seed {seed:#x}: {e}",
                kernel.name()
            )
        });
        total_cycles += stats.cycles;
        total_msgs += stats.traffic.total();
        runs += 1;
    }
    let mut cell = JsonObject::new();
    cell.str("protocol", proto.label())
        .str("seed", &format!("{seed:#x}"))
        .u64("runs", runs)
        .u64("total_cycles", total_cycles)
        .u64("total_messages", total_msgs);
    cell
}

/// Times `OVERHEAD_REPS` runs of one kernel with checking off/on and verifies
/// the simulated timing is unchanged — the checkers observe, never perturb.
fn measure_overhead() -> JsonObject {
    let kernel = KernelId::Locked(LockedStruct::Counter, LockKind::Tatas);
    let params = KernelParams::smoke(THREADS);
    let mut times = [0u128; 2];
    let mut cycles = [0u64; 2];
    for (i, check) in [false, true].into_iter().enumerate() {
        let start = Instant::now();
        for _ in 0..OVERHEAD_REPS {
            let stats = run_kernel(
                kernel,
                chaos_cfg(Protocol::DeNovoSync, SEEDS[0], check),
                &params,
            )
            .expect("overhead run");
            cycles[i] = stats.cycles;
        }
        times[i] = start.elapsed().as_nanos();
    }
    assert_eq!(
        cycles[0], cycles[1],
        "invariant checking must not change simulated timing"
    );
    let mut obj = JsonObject::new();
    obj.str("kernel", &kernel.name())
        .u64("reps", u64::from(OVERHEAD_REPS))
        .u64("simulated_cycles", cycles[0])
        .u64("wall_ns_checks_off", times[0] as u64)
        .u64("wall_ns_checks_on", times[1] as u64)
        .f64("on_off_ratio", times[1] as f64 / times[0] as f64);
    obj
}

fn main() {
    let mut matrix = Vec::new();
    for proto in Protocol::ALL {
        for seed in SEEDS {
            matrix.push(run_cell(proto, seed));
        }
    }
    let overhead = measure_overhead();

    let mut summary = ParamTable::new("Chaos matrix");
    summary
        .row("kernels", KernelId::all().len())
        .row("protocols", Protocol::ALL.len())
        .row("fault seeds", SEEDS.len())
        .row("invariant checking", "enabled for every matrix run");
    print!("{}", summary.render());

    let mut root = JsonObject::new();
    root.str("bench", "chaos_matrix")
        .u64("threads", THREADS as u64)
        .array("matrix", matrix)
        .object("invariant_check_overhead", overhead);
    let json = root.render();
    // Anchor to the workspace root regardless of the bench binary's cwd.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_chaos.json");
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("wrote {path}");
}
