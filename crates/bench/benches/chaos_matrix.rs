//! Chaos matrix artifact: every kernel on every protocol under the fixed
//! fault seeds with runtime invariant checking enabled, plus a measurement of
//! the wall-clock cost of the checkers (which must be pay-for-use: a run with
//! `check_invariants = false` executes none of the checking code and its
//! simulated timing is bit-identical either way).
//!
//! Writes `BENCH_chaos.json` (machine-readable) and prints a summary table.
//! The seeds here match `tests/chaos.rs` and `scripts/ci.sh`. The matrix is
//! one campaign (chaos cells are just specs with fault-seed overrides); the
//! overhead measurement stays sequential because it times the host.

use std::time::Instant;

use dvs_bench::run_kernel;
use dvs_campaign::{workers_from_env, Campaign, CampaignReport, ExperimentSpec};
use dvs_core::chaos::FaultPlan;
use dvs_core::config::{Protocol, SystemConfig};
use dvs_kernels::{KernelId, KernelParams, LockKind, LockedStruct};
use dvs_stats::report::{BenchArtifact, JsonObject, ParamTable};

const SEEDS: [u64; 4] = [1, 42, 0xDEAD_BEEF, 0x5EED_CAFE];
const THREADS: usize = 4;
const OVERHEAD_REPS: u32 = 20;

/// The full matrix as one spec list: (protocol × seed) cells, each cell
/// covering every kernel, in cell-major order.
fn matrix_specs() -> Vec<ExperimentSpec> {
    let params = KernelParams::smoke(THREADS);
    let mut specs = Vec::new();
    for proto in Protocol::ALL {
        for seed in SEEDS {
            for kernel in KernelId::all() {
                let mut spec = ExperimentSpec::kernel(kernel, params, proto);
                spec.overrides.check_invariants = true;
                spec.overrides.fault_seed = Some(seed);
                specs.push(spec);
            }
        }
    }
    specs
}

/// Aggregates the per-kernel records back into (protocol, seed) cells.
fn cell_json(report: &CampaignReport) -> Vec<JsonObject> {
    let kernels = KernelId::all().len();
    let mut cells = Vec::new();
    let mut chunk = report.records.chunks(kernels);
    for proto in Protocol::ALL {
        for seed in SEEDS {
            let records = chunk.next().expect("cell records");
            let mut total_cycles = 0u64;
            let mut total_msgs = 0u64;
            for r in records {
                let stats = r.outcome.as_ref().expect("matrix run succeeded");
                total_cycles += stats.cycles;
                total_msgs += stats.traffic.total();
            }
            let mut cell = JsonObject::new();
            cell.str("protocol", proto.label())
                .str("seed", &format!("{seed:#x}"))
                .u64("runs", records.len() as u64)
                .u64("total_cycles", total_cycles)
                .u64("total_messages", total_msgs);
            cells.push(cell);
        }
    }
    cells
}

/// Times `OVERHEAD_REPS` runs of one kernel with checking off/on and verifies
/// the simulated timing is unchanged — the checkers observe, never perturb.
fn measure_overhead() -> JsonObject {
    let kernel = KernelId::Locked(LockedStruct::Counter, LockKind::Tatas);
    let params = KernelParams::smoke(THREADS);
    let mut times = [0u128; 2];
    let mut cycles = [0u64; 2];
    for (i, check) in [false, true].into_iter().enumerate() {
        let start = Instant::now();
        for _ in 0..OVERHEAD_REPS {
            let mut cfg = SystemConfig::small(THREADS, Protocol::DeNovoSync);
            cfg.check_invariants = check;
            cfg.fault_plan = Some(FaultPlan::from_seed(SEEDS[0]));
            let stats = run_kernel(kernel, cfg, &params).expect("overhead run");
            cycles[i] = stats.cycles;
        }
        times[i] = start.elapsed().as_nanos();
    }
    assert_eq!(
        cycles[0], cycles[1],
        "invariant checking must not change simulated timing"
    );
    let mut obj = JsonObject::new();
    obj.str("kernel", &kernel.name())
        .u64("reps", u64::from(OVERHEAD_REPS))
        .u64("simulated_cycles", cycles[0])
        .u64("wall_ns_checks_off", times[0] as u64)
        .u64("wall_ns_checks_on", times[1] as u64)
        .f64_opt("on_off_ratio", times[1] as f64 / times[0] as f64);
    obj
}

fn main() {
    let report = Campaign::from_specs(matrix_specs()).run(workers_from_env());
    report.expect_all_ok("chaos matrix");
    let matrix = cell_json(&report);
    let overhead = measure_overhead();

    let mut summary = ParamTable::new("Chaos matrix");
    summary
        .row("kernels", KernelId::all().len())
        .row("protocols", Protocol::ALL.len())
        .row("fault seeds", SEEDS.len())
        .row("invariant checking", "enabled for every matrix run")
        .row("campaign wall", format!("{:.1}s", report.wall_seconds()));
    print!("{}", summary.render());

    let mut artifact = BenchArtifact::new("chaos_matrix", "");
    artifact
        .body()
        .u64("threads", THREADS as u64)
        .array("matrix", matrix)
        .object("invariant_check_overhead", overhead);
    // Anchor to the workspace root regardless of the bench binary's cwd.
    artifact.write(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_chaos.json"
    ));
}
