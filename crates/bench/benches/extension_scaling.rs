//! Extension: core-count scaling curves (4 → 64 cores) for one kernel per
//! synchronization class. The paper evaluates 16 and 64 cores; this sweep
//! fills in the curve and shows where each protocol's costs start growing
//! (MESI's invalidation fan-out and blocking-directory queues vs DeNovo's
//! registration chains and backoff). One campaign covers every kernel,
//! core count, and protocol; a spec's config is the paper preset at 16/64
//! cores and the small-system preset elsewhere.
use dvs_campaign::spec::WorkloadSpec;
use dvs_campaign::{quick_mode, workers_from_env, Campaign, ExperimentSpec};
use dvs_core::config::Protocol;
use dvs_kernels::{BarrierKind, KernelId, KernelParams, LockKind, LockedStruct, NonBlocking};

fn main() {
    let cores_list: &[usize] = if quick_mode() {
        &[4, 16]
    } else {
        &[4, 16, 36, 64]
    };
    let kernels = [
        KernelId::Locked(LockedStruct::Counter, LockKind::Tatas),
        KernelId::Locked(LockedStruct::Counter, LockKind::Array),
        KernelId::NonBlocking(NonBlocking::MsQueue),
        KernelId::Barrier(BarrierKind::Central, false),
    ];

    let mut specs = Vec::new();
    for kernel in kernels {
        for &cores in cores_list {
            for proto in Protocol::ALL {
                let mut params = KernelParams::paper(kernel, cores.max(16));
                params.threads = cores;
                if quick_mode() {
                    params.iters = params.iters.min(20);
                }
                specs.push(ExperimentSpec::kernel(kernel, params, proto));
            }
        }
    }
    let report = Campaign::from_specs(specs).run(workers_from_env());
    report.expect_all_ok("scaling sweep");

    let per_kernel = cores_list.len() * Protocol::ALL.len();
    for (k, kernel) in kernels.iter().enumerate() {
        println!("== Scaling: {} ==", kernel.name());
        println!(
            "{:>6} {:>10} {:>12} {:>12} {:>14} {:>14}",
            "cores", "proto", "cycles", "per-op", "crossings", "sync-misses"
        );
        for record in &report.records[k * per_kernel..(k + 1) * per_kernel] {
            let stats = record.outcome.as_ref().expect("run succeeded");
            let WorkloadSpec::Kernel { params, .. } = record.spec.workload else {
                panic!("kernel spec expected");
            };
            let cores = params.threads;
            let ops = params.iters * cores as u64;
            println!(
                "{:>6} {:>10} {:>12} {:>12} {:>14} {:>14}",
                cores,
                record.spec.protocol.label(),
                stats.cycles,
                stats.cycles / ops.max(1),
                stats.traffic.total(),
                stats.cache.sync_read_misses
            );
        }
        println!();
    }
}
