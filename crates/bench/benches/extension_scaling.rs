//! Extension: core-count scaling curves (4 → 64 cores) for one kernel per
//! synchronization class. The paper evaluates 16 and 64 cores; this sweep
//! fills in the curve and shows where each protocol's costs start growing
//! (MESI's invalidation fan-out and blocking-directory queues vs DeNovo's
//! registration chains and backoff).
use dvs_bench::figures::quick_mode;
use dvs_bench::run_kernel;
use dvs_core::config::{Protocol, SystemConfig};
use dvs_kernels::{BarrierKind, KernelId, KernelParams, LockKind, LockedStruct, NonBlocking};

fn main() {
    let cores_list: &[usize] = if quick_mode() {
        &[4, 16]
    } else {
        &[4, 16, 36, 64]
    };
    let kernels = [
        KernelId::Locked(LockedStruct::Counter, LockKind::Tatas),
        KernelId::Locked(LockedStruct::Counter, LockKind::Array),
        KernelId::NonBlocking(NonBlocking::MsQueue),
        KernelId::Barrier(BarrierKind::Central, false),
    ];
    for kernel in kernels {
        println!("== Scaling: {} ==", kernel.name());
        println!(
            "{:>6} {:>10} {:>12} {:>12} {:>14} {:>14}",
            "cores", "proto", "cycles", "per-op", "crossings", "sync-misses"
        );
        for &cores in cores_list {
            for proto in Protocol::ALL {
                let mut params = KernelParams::paper(kernel, cores.max(16));
                params.threads = cores;
                if quick_mode() {
                    params.iters = params.iters.min(20);
                }
                let mut cfg = SystemConfig::small(cores, proto);
                // Keep the paper's latency/backoff structure at paper sizes.
                if cores == 16 || cores == 64 {
                    cfg = SystemConfig::paper(cores, proto);
                }
                let stats = run_kernel(kernel, cfg, &params)
                    .unwrap_or_else(|e| panic!("{} @{cores} {proto}: {e}", kernel.name()));
                let ops = params.iters * cores as u64;
                println!(
                    "{:>6} {:>10} {:>12} {:>12} {:>14} {:>14}",
                    cores,
                    proto.label(),
                    stats.cycles,
                    stats.cycles / ops.max(1),
                    stats.traffic.total(),
                    stats.cache.sync_read_misses
                );
            }
        }
        println!();
    }
}
