//! Figure 6: barrier synchronization (balanced and unbalanced).
use dvs_bench::kernel_figure;
use dvs_kernels::{BarrierKind, KernelId};

fn main() {
    let kernels: Vec<KernelId> = [false, true]
        .iter()
        .flat_map(|&ub| {
            [BarrierKind::Tree, BarrierKind::Nary, BarrierKind::Central]
                .into_iter()
                .map(move |k| KernelId::Barrier(k, ub))
        })
        .collect();
    kernel_figure("Figure 6 (barriers)", &kernels, |_| {});
}
