//! §7.1.1 sensitivity: lock padding. Without padding, MESI suffers false
//! sharing on lock lines, but DeNovo's advantage also shrinks (it issues
//! separate word requests for locks and data in the same line).
use dvs_bench::kernel_figure;
use dvs_kernels::{KernelId, LockKind, LockedStruct};

fn main() {
    let kernels: Vec<KernelId> = LockedStruct::ALL
        .iter()
        .map(|&s| KernelId::Locked(s, LockKind::Tatas))
        .collect();
    println!("################ padded locks (paper default) ################");
    kernel_figure("Ablation S2 (padded)", &kernels, |p| p.padded_locks = true);
    println!("################ unpadded locks ################");
    kernel_figure("Ablation S2 (unpadded)", &kernels, |p| {
        p.padded_locks = false
    });
}
