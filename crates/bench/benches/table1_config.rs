//! Table 1: simulated system parameters (16 and 64 cores).
use dvs_core::config::{Protocol, SystemConfig};

fn main() {
    for cores in [16, 64] {
        print!(
            "{}",
            SystemConfig::paper(cores, Protocol::DeNovoSync)
                .table1()
                .render()
        );
        println!();
    }
}
