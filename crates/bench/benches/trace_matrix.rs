//! Record-once/replay-many artifact.
//!
//! Prices the trace subsystem end to end: record a compute-dense composite
//! app once, then (a) replay it compressed and compare host wall-clock
//! against VM-driven execution — the replay front-end skips instruction
//! decode, so it must be substantially faster; (b) replay it faithfully on
//! all three protocols and report the simulated cycles (the cross-protocol
//! comparison recording exists for); (c) replay a seeded workload mix
//! through the campaign runner at two worker counts and demand identical
//! digests. Writes `BENCH_trace.json`.
//!
//! `DVS_QUICK=1` shrinks the workload and relaxes the speedup gate from
//! 5x to 2x (debug/loaded-host runs pay fixed overheads the full-size
//! workload amortizes).

use dvs_campaign::{quick_mode, Campaign, ConfigOverrides, ExperimentSpec, WorkloadSpec};
use dvs_core::{Protocol, SystemConfig};
use dvs_kernels::Workload;
use dvs_stats::report::{host_parallelism, BenchArtifact, ParamTable};
use dvs_stats::RunStats;
use dvs_trace::{composite, record, replay_timed, MixSpec, ReplayMode, Trace};
use std::time::Instant;

/// Medians host wall-clock over `reps` runs of `f` (odd `reps`).
fn median_nanos<T>(reps: usize, mut f: impl FnMut() -> T) -> u64 {
    let mut samples: Vec<u64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            let _ = f();
            start.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn run_vm(workload: &Workload, cfg: SystemConfig) -> RunStats {
    dvs_campaign::run_workload(cfg, workload).expect("VM run")
}

fn main() {
    let quick = quick_mode();
    let threads = 16;
    let (items, work, reps) = if quick { (4, 200, 3) } else { (8, 600, 5) };
    let gate = if quick { 2.0 } else { 5.0 };
    println!(
        "trace bench: composite {items}x{work} @{threads}{}",
        if quick { " (quick)" } else { "" }
    );

    // Record once, on the paper's protocol.
    let workload = composite(threads, items, work);
    let cfg = SystemConfig::small(threads, Protocol::DeNovoSync);
    let record_start = Instant::now();
    let (trace, recorded_stats) = record("composite", &workload, cfg).expect("record");
    let record_nanos = record_start.elapsed().as_nanos() as u64;

    // Baseline: the plain (recorder-free) VM run of the same workload.
    let vm_nanos = median_nanos(reps, || run_vm(&workload, cfg));
    let record_overhead = record_nanos as f64 / vm_nanos as f64;

    // Replay-vs-VM throughput: compressed replay of the same trace.
    let replay_nanos = median_nanos(reps, || {
        replay_timed(&trace, cfg, ReplayMode::Compressed).expect("compressed replay")
    });
    let speedup = vm_nanos as f64 / replay_nanos as f64;
    println!(
        "  VM {:.2} ms, replay {:.2} ms -> {speedup:.1}x (gate {gate}x)",
        vm_nanos as f64 / 1e6,
        replay_nanos as f64 / 1e6
    );
    assert!(
        speedup >= gate,
        "replay speedup {speedup:.2}x below the {gate}x gate"
    );

    // Faithful per-protocol cycles: the comparison recording exists for.
    let fingerprint = trace.fingerprint();
    let per_proto: Vec<(Protocol, RunStats)> = Protocol::ALL
        .into_iter()
        .map(|p| {
            let stats = replay_timed(
                &trace,
                SystemConfig::small(threads, p),
                ReplayMode::Faithful,
            )
            .unwrap_or_else(|e| panic!("faithful replay on {p}: {e}"));
            (p, stats)
        })
        .collect();

    // Mix determinism through the campaign runner at two worker counts.
    let mix_specs: Vec<ExperimentSpec> = Protocol::ALL
        .into_iter()
        .map(|protocol| ExperimentSpec {
            workload: WorkloadSpec::Trace {
                mix: MixSpec {
                    seed: 7,
                    phases: if quick { 2 } else { 3 },
                    threads: 4,
                },
            },
            protocol,
            overrides: ConfigOverrides::default(),
        })
        .collect();
    let serial = Campaign::from_specs(mix_specs.clone()).run(1);
    assert_eq!(serial.ok_count(), mix_specs.len(), "mix cells must replay");
    let parallel = Campaign::from_specs(mix_specs).run(4);
    let digest = serial.results_digest();
    assert_eq!(
        digest,
        parallel.results_digest(),
        "digests must be identical across worker counts"
    );

    let mut summary = ParamTable::new("Record/replay");
    summary
        .row("trace ops", trace.total_ops())
        .row("fingerprint", format!("{fingerprint:016x}"))
        .row("record overhead", format!("{record_overhead:.2}x VM run"))
        .row("replay speedup", format!("{speedup:.1}x (gate {gate}x)"))
        .row("mix digest", digest.clone())
        .row("host CPUs", host_parallelism());
    for (p, stats) in &per_proto {
        summary.row(
            &format!("{p} faithful cycles"),
            format!("{} (recorded {})", stats.cycles, recorded_stats.cycles),
        );
    }
    print!("{}", summary.render());

    let mut artifact = BenchArtifact::new("trace", "");
    artifact
        .body()
        .bool("quick", quick)
        .u64("threads", threads as u64)
        .u64("trace_ops", trace.total_ops() as u64)
        .str("fingerprint", &format!("{fingerprint:016x}"))
        .u64("record_wall_nanos", record_nanos)
        .u64("vm_wall_nanos", vm_nanos)
        .u64("replay_wall_nanos", replay_nanos)
        .f64("record_overhead", record_overhead)
        .f64("replay_speedup", speedup)
        .f64("speedup_gate", gate)
        .str("mix_digest", &digest)
        .bool("mix_digest_worker_independent", true);
    for (p, stats) in &per_proto {
        artifact
            .body()
            .u64(&format!("cycles_{}", p.label()), stats.cycles);
    }
    artifact.write(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_trace.json"
    ));

    // Keep the compiler from discarding the parsed trace round trip: the
    // artifact's fingerprint must survive render/parse.
    let reparsed = Trace::parse(&trace.render()).expect("round trip");
    assert_eq!(reparsed.fingerprint(), fingerprint);
}
