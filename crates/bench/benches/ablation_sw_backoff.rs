//! §7.1.1 sensitivity: the impact of software exponential backoff on the
//! TATAS-lock kernels. The paper found the DeNovo–MESI gap grows with
//! software backoff (it spaces out DeNovo's read registrations but does not
//! shorten MESI's invalidation latency).
use dvs_bench::kernel_figure;
use dvs_kernels::{KernelId, LockKind, LockedStruct};

fn main() {
    let kernels: Vec<KernelId> = LockedStruct::ALL
        .iter()
        .map(|&s| KernelId::Locked(s, LockKind::Tatas))
        .collect();
    println!("################ without software backoff (paper default) ################");
    kernel_figure("Ablation S1 (no sw backoff)", &kernels, |p| {
        p.sw_backoff = false
    });
    println!("################ with software backoff [128, 2048) ################");
    kernel_figure("Ablation S1 (sw backoff)", &kernels, |p| {
        p.sw_backoff = true
    });
}
