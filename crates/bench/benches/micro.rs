//! Micro-benchmarks of the simulator's hot paths.
//!
//! Self-contained timing harness (no external bench framework, so the
//! workspace builds offline): each workload is warmed up, then run for a
//! fixed number of iterations, and the per-iteration wall time is printed.
use dvs_core::config::{Protocol, SystemConfig};
use dvs_engine::{DetRng, Scheduler};
use dvs_kernels::{KernelId, KernelParams, LockKind, LockedStruct};
use dvs_mem::{CacheArray, CacheGeometry, LineAddr};
use dvs_noc::{Mesh, Network, NocParams};
use std::hint::black_box;
use std::time::Instant;

fn bench<F: FnMut() -> u64>(name: &str, iters: u32, mut f: F) {
    for _ in 0..iters / 10 + 1 {
        black_box(f()); // warm-up
    }
    let start = Instant::now();
    let mut acc = 0u64;
    for _ in 0..iters {
        acc = acc.wrapping_add(f());
    }
    let elapsed = start.elapsed();
    black_box(acc);
    println!(
        "{name:<32} {:>10.3} us/iter  ({iters} iters)",
        elapsed.as_secs_f64() * 1e6 / iters as f64
    );
}

fn bench_scheduler() {
    bench("scheduler_push_pop_1k", 2000, || {
        let mut s = Scheduler::new();
        for i in 0..1000u64 {
            s.schedule_at(i * 3 % 997, i);
        }
        let mut acc = 0u64;
        while let Some((_, v)) = s.pop() {
            acc = acc.wrapping_add(v);
        }
        acc
    });
}

fn bench_rng() {
    let mut r = DetRng::new(7);
    bench("detrng_range_1k", 5000, || {
        let mut acc = 0u64;
        for _ in 0..1000 {
            acc = acc.wrapping_add(r.range(1400, 1800));
        }
        acc
    });
}

fn bench_cache() {
    let mut arr: CacheArray<u64> = CacheArray::new(CacheGeometry::new(32 * 1024, 4));
    for i in 0..512u64 {
        arr.insert_filtered(LineAddr::new(i), i, |_, _| true);
    }
    bench("cache_array_probe_1k", 5000, || {
        let mut acc = 0u64;
        for i in 0..1000u64 {
            if let Some(v) = arr.get(LineAddr::new(i % 700)) {
                acc = acc.wrapping_add(*v);
            }
        }
        acc
    });
}

fn bench_noc() {
    bench("mesh_send_1k", 2000, || {
        let mut net = Network::new(Mesh::square(64), NocParams::default());
        let mut t = 0;
        for i in 0..1000usize {
            let d = net.send(t, i % 64, (i * 31) % 64, 4 + (i % 32) as u64);
            t = d.arrive.min(t + 5);
        }
        net.total_crossings()
    });
}

fn bench_end_to_end() {
    let kernel = KernelId::Locked(LockedStruct::Counter, LockKind::Tatas);
    let params = KernelParams::smoke(4);
    bench("tatas_counter_4c_denovosync", 20, || {
        let stats = dvs_bench::run_kernel(
            kernel,
            SystemConfig::small(4, Protocol::DeNovoSync),
            &params,
        )
        .expect("runs");
        stats.cycles
    });
}

fn main() {
    bench_scheduler();
    bench_rng();
    bench_cache();
    bench_noc();
    bench_end_to_end();
}
