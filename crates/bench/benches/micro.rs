//! Criterion micro-benchmarks of the simulator's hot paths.
use criterion::{criterion_group, criterion_main, Criterion};
use dvs_core::config::{Protocol, SystemConfig};
use dvs_engine::{DetRng, Scheduler};
use dvs_kernels::{KernelId, KernelParams, LockKind, LockedStruct};
use dvs_mem::{CacheArray, CacheGeometry, LineAddr};
use dvs_noc::{Mesh, Network, NocParams};
use std::hint::black_box;

fn bench_scheduler(c: &mut Criterion) {
    c.bench_function("scheduler_push_pop_1k", |b| {
        b.iter(|| {
            let mut s = Scheduler::new();
            for i in 0..1000u64 {
                s.schedule_at(i * 3 % 997, i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = s.pop() {
                acc = acc.wrapping_add(v);
            }
            black_box(acc)
        })
    });
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("detrng_range_1k", |b| {
        let mut r = DetRng::new(7);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1000 {
                acc = acc.wrapping_add(r.range(1400, 1800));
            }
            black_box(acc)
        })
    });
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("cache_array_probe_1k", |b| {
        let mut arr: CacheArray<u64> = CacheArray::new(CacheGeometry::new(32 * 1024, 4));
        for i in 0..512u64 {
            arr.insert_filtered(LineAddr::new(i), i, |_, _| true);
        }
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..1000u64 {
                if let Some(v) = arr.get(LineAddr::new(i % 700)) {
                    acc = acc.wrapping_add(*v);
                }
            }
            black_box(acc)
        })
    });
}

fn bench_noc(c: &mut Criterion) {
    c.bench_function("mesh_send_1k", |b| {
        b.iter(|| {
            let mut net = Network::new(Mesh::square(64), NocParams::default());
            let mut t = 0;
            for i in 0..1000usize {
                let d = net.send(t, i % 64, (i * 31) % 64, 4 + (i % 32) as u64);
                t = d.arrive.min(t + 5);
            }
            black_box(net.total_crossings())
        })
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    g.bench_function("tatas_counter_4c_denovosync", |b| {
        let kernel = KernelId::Locked(LockedStruct::Counter, LockKind::Tatas);
        let params = KernelParams::smoke(4);
        b.iter(|| {
            let stats = dvs_bench::run_kernel(
                kernel,
                SystemConfig::small(4, Protocol::DeNovoSync),
                &params,
            )
            .expect("runs");
            black_box(stats.cycles)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_scheduler,
    bench_rng,
    bench_cache,
    bench_noc,
    bench_end_to_end
);
criterion_main!(benches);
