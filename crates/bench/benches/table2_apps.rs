//! Table 2: benchmark inputs.
use dvs_apps::all_apps;
use dvs_stats::report::ParamTable;

fn main() {
    let mut t = ParamTable::new("Table 2: Benchmark inputs");
    for a in all_apps() {
        t.row(
            &format!("{} ({})", a.name, a.suite),
            format!("{} — {} cores", a.input, a.cores),
        );
    }
    print!("{}", t.render());
}
