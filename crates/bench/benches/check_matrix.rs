//! Model-checker matrix artifact: every litmus test, on every protocol,
//! exhaustively explored by `dvs-check`, plus the parallel-scaling curve.
//!
//! Writes `BENCH_check.json` (machine-readable) and prints a summary table.
//! Reported per cell: states explored, dedup hit rate, and the sleep-set
//! partial-order-reduction factor (transitions a reduction-free exploration
//! of the same space fires, divided by what the reduced exploration fires —
//! both verdicts must agree). The scaling section runs the largest suite
//! workload (4-contender TATAS) at 1, 2, and 4 workers and reports
//! states/second; the acceptance bar is ≥ 2× at 4 workers *on a host with
//! at least 4 CPUs* — the artifact records `host_parallelism` so a
//! single-core CI box (where extra workers can only add overhead) is
//! distinguishable from a genuine scaling regression.

use std::time::Instant;

use dvs_check::{check_litmus, CheckConfig, CheckReport, Verdict};
use dvs_core::config::Protocol;
use dvs_stats::report::{host_parallelism, BenchArtifact, JsonObject, ParamTable};
use dvs_vm::litmus::{self, Litmus};

fn run(lit: &Litmus, proto: Protocol, workers: usize, por: bool) -> (CheckReport, f64) {
    let cfg = CheckConfig {
        workers,
        por,
        ..CheckConfig::default()
    };
    let start = Instant::now();
    let report = check_litmus(lit, proto, None, &cfg);
    let wall = start.elapsed().as_secs_f64();
    if let Verdict::Violated(ce) = &report.verdict {
        panic!("{} on {proto:?}: violation found: {}", lit.name, ce.failure);
    }
    assert!(
        report.stats.complete,
        "{} on {proto:?}: exploration truncated",
        lit.name
    );
    (report, wall)
}

fn matrix_cell(lit: &Litmus, proto: Protocol) -> JsonObject {
    let (with_por, wall_por) = run(lit, proto, 1, true);
    let (without, wall_full) = run(lit, proto, 1, false);
    assert_eq!(
        with_por.stats.unique_states, without.stats.unique_states,
        "{} on {proto:?}: POR changed the reachable state set",
        lit.name
    );
    let s = with_por.stats;
    let mut cell = JsonObject::new();
    cell.str("litmus", lit.name)
        .str("protocol", proto.label())
        .u64("unique_states", s.unique_states)
        .u64("expansions", s.expansions)
        .u64("transitions_fired", s.transitions_fired)
        .u64("sleep_skips", s.sleep_skips)
        .u64("dedup_hits", s.dedup_hits)
        .f64(
            "dedup_hit_rate",
            s.dedup_hits as f64 / (s.expansions + s.dedup_hits).max(1) as f64,
        )
        .f64(
            "por_reduction_factor",
            without.stats.transitions_fired as f64 / s.transitions_fired.max(1) as f64,
        )
        .u64("max_depth", s.max_depth_seen as u64)
        .f64("wall_s_por", wall_por)
        .f64("wall_s_full", wall_full);
    cell
}

fn scaling() -> (Vec<JsonObject>, f64) {
    let lit = litmus::tatas_n(4);
    let proto = Protocol::Mesi;
    let mut rows = Vec::new();
    let mut rate1 = 0.0;
    let mut speedup4 = 0.0;
    for workers in [1usize, 2, 4] {
        let (report, wall) = run(&lit, proto, workers, true);
        let rate = report.stats.unique_states as f64 / wall;
        if workers == 1 {
            rate1 = rate;
        }
        if workers == 4 {
            speedup4 = rate / rate1;
        }
        let mut row = JsonObject::new();
        row.str("litmus", lit.name)
            .str("protocol", proto.label())
            .u64("workers", workers as u64)
            .u64("unique_states", report.stats.unique_states)
            .f64("wall_s", wall)
            .f64_opt("states_per_sec", rate)
            .f64_opt("speedup_vs_1", rate / rate1);
        rows.push(row);
    }
    (rows, speedup4)
}

fn main() {
    let mut matrix = Vec::new();
    for lit in Litmus::all() {
        for proto in Protocol::ALL {
            matrix.push(matrix_cell(&lit, proto));
        }
    }
    let (scaling_rows, speedup4) = scaling();
    let host_cpus = host_parallelism();

    let mut summary = ParamTable::new("Model-checker matrix");
    summary
        .row("litmus tests", Litmus::all().len())
        .row("protocols", Protocol::ALL.len())
        .row("verdicts", "all verified, complete")
        .row("scaling workload", "tatas4 on MESI, workers 1/2/4")
        .row("host CPUs", host_cpus)
        .row(
            "4-worker speedup",
            if host_cpus >= 4 {
                format!("{speedup4:.2}x")
            } else {
                format!("{speedup4:.2}x (host has {host_cpus} CPU(s); not meaningful)")
            },
        );
    print!("{}", summary.render());

    let mut artifact = BenchArtifact::new("check_matrix", "");
    artifact
        .body()
        .array("matrix", matrix)
        .array("scaling", scaling_rows)
        .f64_opt("speedup_4_workers", speedup4);
    // Anchor to the workspace root regardless of the bench binary's cwd.
    artifact.write(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_check.json"
    ));
}
