//! Model-checker matrix artifact: every litmus test, on every protocol,
//! exhaustively explored by `dvs-check`, plus the parallel-scaling curve
//! and the deep-exploration section.
//!
//! Writes `BENCH_check.json` (machine-readable) and prints a summary table.
//! Reported per cell: states explored, throughput (`states_per_s`), peak
//! RSS, which budget (if any) ended the run, dedup hit rate, and the
//! sleep-set partial-order-reduction factor (transitions a reduction-free
//! exploration of the same space fires, divided by what the reduced
//! exploration fires — both verdicts must agree). `peak_rss_bytes` is the
//! process high-water mark (`VmHWM`) sampled when the cell finishes; it is
//! monotone across cells, so the deep section — the memory-dominant work —
//! runs last and owns the final figure.
//!
//! The scaling section runs the largest exhaustive workload (4-contender
//! TATAS) at 1, 2, and 4 workers and reports states/second; the acceptance
//! bar is ≥ 2× at 4 workers *on a host with at least 4 CPUs* — the artifact
//! records `host_parallelism` so a single-core CI box (where extra workers
//! can only add overhead) is distinguishable from a genuine scaling
//! regression.
//!
//! The deep section drives `tatas_n(8)` past 10⁶ unique states: once with
//! the exact visited tier under a spill budget (the trusted verdict, cold
//! shards paged to disk), once with the lossy bitstate tier (POR off —
//! bitstate composes unsoundly with sleep sets). Both verdicts must agree;
//! the artifact records the agreement, each cell's fill-ratio/collision
//! estimates, and spill counters. `DVS_QUICK=1` shrinks the deep budgets
//! for CI smoke and waives the 10⁶-state bar.

use std::time::Instant;

use dvs_campaign::quick_mode;
use dvs_check::{check_litmus, CheckConfig, CheckReport, Verdict, VisitedMode};
use dvs_core::config::Protocol;
use dvs_stats::report::{host_parallelism, peak_rss_bytes, BenchArtifact, JsonObject, ParamTable};
use dvs_vm::litmus::{self, Litmus};

/// Which budget, if any, ended the run — same spelling as the `dvs-check`
/// CLI's `budget=` token.
fn budget_label(report: &CheckReport) -> &'static str {
    match (report.stats.depth_truncated, report.stats.state_truncated) {
        (false, false) => "none",
        (true, false) => "depth",
        (false, true) => "states",
        (true, true) => "depth+states",
    }
}

fn run(lit: &Litmus, proto: Protocol, workers: usize, por: bool) -> (CheckReport, f64) {
    let cfg = CheckConfig {
        workers,
        por,
        ..CheckConfig::default()
    };
    let start = Instant::now();
    let report = check_litmus(lit, proto, None, &cfg);
    let wall = start.elapsed().as_secs_f64();
    if let Verdict::Violated(ce) = &report.verdict {
        panic!("{} on {proto:?}: violation found: {}", lit.name, ce.failure);
    }
    assert!(
        report.stats.complete(),
        "{} on {proto:?}: exploration truncated",
        lit.name
    );
    (report, wall)
}

fn matrix_cell(lit: &Litmus, proto: Protocol) -> JsonObject {
    let (with_por, wall_por) = run(lit, proto, 1, true);
    let (without, wall_full) = run(lit, proto, 1, false);
    assert_eq!(
        with_por.stats.unique_states, without.stats.unique_states,
        "{} on {proto:?}: POR changed the reachable state set",
        lit.name
    );
    let s = with_por.stats;
    let mut cell = JsonObject::new();
    cell.str("litmus", lit.name)
        .str("protocol", proto.label())
        .u64("unique_states", s.unique_states)
        .u64("expansions", s.expansions)
        .u64("transitions_fired", s.transitions_fired)
        .u64("sleep_skips", s.sleep_skips)
        .u64("dedup_hits", s.dedup_hits)
        .f64(
            "dedup_hit_rate",
            s.dedup_hits as f64 / (s.expansions + s.dedup_hits).max(1) as f64,
        )
        .f64(
            "por_reduction_factor",
            without.stats.transitions_fired as f64 / s.transitions_fired.max(1) as f64,
        )
        .u64("max_depth", s.max_depth_seen as u64)
        .str("budget", budget_label(&with_por))
        .f64_opt("states_per_s", s.unique_states as f64 / wall_por.max(1e-9))
        .u64("peak_rss_bytes", peak_rss_bytes().unwrap_or(0))
        .f64("wall_s_por", wall_por)
        .f64("wall_s_full", wall_full);
    cell
}

fn scaling() -> (Vec<JsonObject>, f64) {
    let lit = litmus::tatas_n(4);
    let proto = Protocol::Mesi;
    let mut rows = Vec::new();
    let mut rate1 = 0.0;
    let mut speedup4 = 0.0;
    for workers in [1usize, 2, 4] {
        let (report, wall) = run(&lit, proto, workers, true);
        let rate = report.stats.unique_states as f64 / wall;
        if workers == 1 {
            rate1 = rate;
        }
        if workers == 4 {
            speedup4 = rate / rate1;
        }
        let mut row = JsonObject::new();
        row.str("litmus", lit.name)
            .str("protocol", proto.label())
            .u64("workers", workers as u64)
            .u64("unique_states", report.stats.unique_states)
            .f64("wall_s", wall)
            .f64_opt("states_per_sec", rate)
            .f64_opt("speedup_vs_1", rate / rate1);
        rows.push(row);
    }
    (rows, speedup4)
}

/// One deep cell: `tatas_n(8)` explored to a state budget under the given
/// visited tier. Returns the row and the report (for the agreement check).
fn deep_cell(mode: &str, cfg: &CheckConfig) -> (JsonObject, CheckReport) {
    let lit = litmus::tatas_n(8);
    let proto = Protocol::Mesi;
    let start = Instant::now();
    let report = check_litmus(&lit, proto, None, cfg);
    let wall = start.elapsed().as_secs_f64();
    if let Verdict::Violated(ce) = &report.verdict {
        panic!(
            "deep {mode}: {} on {proto:?} violated: {}",
            lit.name, ce.failure
        );
    }
    let s = &report.stats;
    let mut row = JsonObject::new();
    row.str("litmus", lit.name)
        .str("protocol", proto.label())
        .str("mode", mode)
        .bool("por", cfg.por)
        .u64("max_states", cfg.max_states)
        .u64("unique_states", s.unique_states)
        .u64("expansions", s.expansions)
        .u64("max_depth", s.max_depth_seen as u64)
        .str("budget", budget_label(&report))
        .f64_opt("states_per_s", s.unique_states as f64 / wall.max(1e-9))
        .u64("spilled_runs", s.spilled_runs)
        .u64("spilled_entries", s.spilled_entries)
        .u64("visited_peak_bytes", s.visited_peak_bytes)
        .f64("fill_ratio", s.filter_fill_ratio())
        .f64("collision_probability", s.filter_collision_probability())
        .u64("peak_rss_bytes", peak_rss_bytes().unwrap_or(0))
        .f64("wall_s", wall);
    (row, report)
}

fn deep() -> (Vec<JsonObject>, bool, u64) {
    let quick = quick_mode();
    // Budgets calibrated so the exact cell clears 10⁶ unique states (the
    // unique/expansion ratio on tatas8 is ~0.31); quick mode shrinks both
    // cells to CI-smoke scale.
    let (exact_states, bitstate_states) = if quick {
        (40_000, 20_000)
    } else {
        (3_400_000, 600_000)
    };
    let exact_cfg = CheckConfig {
        workers: 1,
        max_depth: 100_000,
        max_states: exact_states,
        por: true,
        visited: VisitedMode::Exact,
        // Bound the hot map well below the full set's footprint so the
        // spill tier demonstrably pages cold shards out.
        spill_budget_bytes: Some(if quick { 256 << 10 } else { 24 << 20 }),
        ..CheckConfig::default()
    };
    let bitstate_cfg = CheckConfig {
        workers: 1,
        max_depth: 100_000,
        max_states: bitstate_states,
        // Bitstate composes unsoundly with sleep-set POR: a filter
        // collision can mark a state visited that POR then never revisits.
        por: false,
        visited: VisitedMode::Bitstate {
            bits: if quick { 1 << 22 } else { 1 << 27 },
        },
        ..CheckConfig::default()
    };
    let (exact_row, exact_report) = deep_cell("exact-spill", &exact_cfg);
    let (bitstate_row, bitstate_report) = deep_cell("bitstate", &bitstate_cfg);
    let agree = matches!(exact_report.verdict, Verdict::Verified)
        == matches!(bitstate_report.verdict, Verdict::Verified);
    assert!(agree, "exact and bitstate verdicts diverged on tatas8");
    assert!(
        exact_report.stats.spilled_entries > 0,
        "spill budget never fired; deep cell no longer exercises the tier"
    );
    let deep_unique = exact_report.stats.unique_states;
    if !quick {
        assert!(
            deep_unique >= 1_000_000,
            "deep exact cell fell short of 10^6 unique states: {deep_unique}"
        );
    }
    (vec![exact_row, bitstate_row], agree, deep_unique)
}

fn main() {
    let mut matrix = Vec::new();
    for lit in Litmus::all() {
        for proto in Protocol::ALL {
            matrix.push(matrix_cell(&lit, proto));
        }
    }
    let (scaling_rows, speedup4) = scaling();
    let (deep_rows, deep_agree, deep_unique) = deep();
    let host_cpus = host_parallelism();

    let mut summary = ParamTable::new("Model-checker matrix");
    summary
        .row("litmus tests", Litmus::all().len())
        .row("protocols", Protocol::ALL.len())
        .row("verdicts", "all verified, complete")
        .row("scaling workload", "tatas4 on MESI, workers 1/2/4")
        .row("host CPUs", host_cpus)
        .row(
            "4-worker speedup",
            if host_cpus >= 4 {
                format!("{speedup4:.2}x")
            } else {
                format!("{speedup4:.2}x (host has {host_cpus} CPU(s); not meaningful)")
            },
        )
        .row("deep workload", "tatas8 on MESI, exact+spill vs bitstate")
        .row("deep unique states", deep_unique)
        .row("deep verdicts agree", deep_agree);
    print!("{}", summary.render());

    let mut artifact = BenchArtifact::new("check_matrix", "");
    artifact
        .body()
        .array("matrix", matrix)
        .array("scaling", scaling_rows)
        .f64_opt("speedup_4_workers", speedup4)
        .array("deep", deep_rows)
        .bool("deep_verdicts_agree", deep_agree)
        .u64("deep_unique_states", deep_unique);
    // Anchor to the workspace root regardless of the bench binary's cwd.
    artifact.write(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_check.json"
    ));
}
