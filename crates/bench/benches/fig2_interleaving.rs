//! Figure 2: example interleavings of the Michael–Scott enqueue on MESI,
//! DeNovoSync0, and DeNovoSync, showing per-access hits/misses (and
//! hardware-backoff stalls).
//!
//! This is a single-run trace replay, not an evaluation grid, so it stays
//! off the campaign runner (see `dvs_bench::trace`).

use dvs_bench::trace::fig2_trace;

fn main() {
    fig2_trace();
}
