//! Figure 2: example interleavings of the Michael–Scott enqueue on MESI,
//! DeNovoSync0, and DeNovoSync, showing per-access hits/misses (and
//! hardware-backoff stalls).
use dvs_bench::figures::fig2_trace;

fn main() {
    fig2_trace();
}
