//! Figure 4: array (queue) lock based synchronization.
use dvs_bench::kernel_figure;
use dvs_kernels::{KernelId, LockKind, LockedStruct};

fn main() {
    let kernels: Vec<KernelId> = LockedStruct::ALL
        .iter()
        .map(|&s| KernelId::Locked(s, LockKind::Array))
        .collect();
    kernel_figure("Figure 4 (array locks)", &kernels, |_| {});
}
