//! Service robustness artifact.
//!
//! Exercises the `dvs-serve` job service end to end in a scratch service
//! directory: a cold campaign run, a warm re-run that must hit the
//! content-addressed cache at >= 90%, a corruption pass (a bit-flipped
//! entry must be quarantined and recomputed to the same digest), and a
//! retry-exhaustion job. Writes `BENCH_serve.json` with the digests and
//! the hit/miss/quarantine/shed/retry counters.

use dvs_campaign::{kernel_grid, ExperimentSpec};
use dvs_core::config::Protocol;
use dvs_kernels::{KernelId, KernelParams, LockKind, LockedStruct};
use dvs_serve::{JobSpec, RetryPolicy, Serve, ServeConfig};
use dvs_stats::report::{host_parallelism, BenchArtifact, ParamTable};
use std::path::PathBuf;
use std::time::Duration;

fn service_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dvs-serve-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn grid_job() -> JobSpec {
    let tatas: Vec<KernelId> = LockedStruct::ALL
        .iter()
        .map(|&s| KernelId::Locked(s, LockKind::Tatas))
        .collect();
    JobSpec::Campaign(kernel_grid(&tatas, 16, &Protocol::ALL, |_| {}))
}

fn config(dir: &PathBuf) -> ServeConfig {
    let mut cfg = ServeConfig::new(dir);
    cfg.retry = RetryPolicy {
        base_delay: Duration::from_millis(1),
        max_delay: Duration::from_millis(4),
        ..RetryPolicy::default()
    };
    cfg
}

fn main() {
    let dir = service_dir();
    let job = grid_job();
    let cells = job.cells().len();
    println!("serve bench: {cells}-cell grid, dir {}", dir.display());

    // Cold: everything computes and populates the store.
    let mut serve = Serve::open(config(&dir)).expect("open service");
    let id = serve.submit(&job).expect("submit cold");
    let cold = serve.run_job(id).expect("run cold");
    assert_eq!(cold.computed, cells, "cold run computes everything");
    assert_eq!(cold.failed, 0, "cold run must be clean");
    drop(serve);

    // Warm: a fresh service process serves from the cache.
    let mut serve = Serve::open(config(&dir)).expect("reopen service");
    let id = serve.submit(&job).expect("submit warm");
    let warm = serve.run_job(id).expect("run warm");
    assert_eq!(warm.digest, cold.digest, "cache cannot change results");
    let hit_rate = warm.hits as f64 / cells as f64;
    assert!(
        hit_rate >= 0.9,
        "warm re-run must hit >= 90% of the cache ({}/{cells})",
        warm.hits
    );
    drop(serve);

    // Corruption: flip one byte of one entry's payload; the service must
    // quarantine it, recompute, and land on the same digest.
    let entries = dir.join("store/entries");
    let victim = std::fs::read_dir(&entries)
        .expect("entries dir")
        .next()
        .expect("at least one entry")
        .expect("dir entry")
        .path();
    let mut raw = std::fs::read(&victim).expect("read entry");
    let n = raw.len();
    raw[n - 2] ^= 0x10;
    std::fs::write(&victim, raw).expect("corrupt entry");

    let mut serve = Serve::open(config(&dir)).expect("reopen after corruption");
    let id = serve.submit(&job).expect("submit repair");
    let repaired = serve.run_job(id).expect("run repair");
    assert_eq!(
        repaired.digest, cold.digest,
        "corruption cannot change results"
    );
    assert_eq!(repaired.computed, 1, "only the quarantined cell recomputes");
    let repair_counters = serve.counters();
    assert_eq!(repair_counters.quarantine, 1);

    // Retry: an always-panicking cell exhausts its attempts.
    let mut broken = KernelParams::smoke(4);
    broken.threads = 0;
    let bad = ExperimentSpec::kernel(
        KernelId::Locked(LockedStruct::Counter, LockKind::Tatas),
        broken,
        Protocol::Mesi,
    );
    let id = serve
        .submit(&JobSpec::Campaign(vec![bad]))
        .expect("submit bad");
    let exhausted = serve.run_job(id).expect("run bad");
    assert_eq!(exhausted.failed, 1);
    assert_eq!(exhausted.retries, 2, "3 attempts = 2 retries");
    let counters = serve.counters();

    let mut summary = ParamTable::new("Service robustness");
    summary
        .row("grid cells", cells)
        .row("cold digest", format!("{:016x}", cold.digest))
        .row("warm hit rate", format!("{:.0}%", hit_rate * 100.0))
        .row("quarantined + recomputed", repair_counters.quarantine)
        .row("retries to exhaustion", exhausted.retries)
        .row("host CPUs", host_parallelism());
    print!("{}", summary.render());

    let mut artifact = BenchArtifact::new("serve", "");
    artifact
        .body()
        .u64("grid_cells", cells as u64)
        .str("cold_digest", &format!("{:016x}", cold.digest))
        .str("warm_digest", &format!("{:016x}", warm.digest))
        .str("repaired_digest", &format!("{:016x}", repaired.digest))
        .bool("digests_identical", true)
        .f64("warm_hit_rate", hit_rate)
        .u64("cache_hits", counters.hit)
        .u64("cache_misses", counters.miss)
        .u64("quarantined", counters.quarantine)
        .u64("shed_writes", counters.shed)
        .u64("retry_attempts", counters.retry)
        .u64("cells_computed", counters.computed)
        .u64("cells_failed", counters.failed);
    artifact.write(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_serve.json"
    ));

    let _ = std::fs::remove_dir_all(&dir);
}
