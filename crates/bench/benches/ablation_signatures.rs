//! Future-work extension (paper §9): DeNovoND-style dynamic signatures vs
//! the paper's static-region self-invalidation, on the workloads the paper
//! says would benefit — the array-lock heap (§7.1.2: "can be remedied using
//! dynamic hardware signatures") and fluidanimate (§7.2, the one
//! application where DeNovoSync loses to MESI for this reason).
use dvs_apps::{all_apps, build_app};
use dvs_bench::figures::quick_mode;
use dvs_bench::{run_kernel, run_workload};
use dvs_core::config::{DataInvalidation, Protocol, SystemConfig};
use dvs_kernels::{KernelId, KernelParams, LockKind, LockedStruct};

fn main() {
    let cores = if quick_mode() { 16 } else { 64 };
    println!("== Ablation: static regions vs dynamic signatures (DeNovoSync, {cores} cores) ==");
    println!(
        "{:18} {:>14} {:>12} {:>12} {:>14}",
        "workload", "mode", "cycles", "rd-misses", "crossings"
    );
    // The heap kernel.
    let kernel = KernelId::Locked(LockedStruct::Heap, LockKind::Array);
    let mut params = KernelParams::paper(kernel, cores);
    if quick_mode() {
        params.iters = params.iters.min(20);
    }
    for mode in [
        DataInvalidation::StaticRegions,
        DataInvalidation::Signatures,
    ] {
        let mut cfg = SystemConfig::paper(cores, Protocol::DeNovoSync);
        cfg.data_inv = mode;
        let stats = run_kernel(kernel, cfg, &params).expect("heap runs");
        println!(
            "{:18} {:>14} {:>12} {:>12} {:>14}",
            "heap (array)",
            format!("{mode:?}")
                .replace("StaticRegions", "static")
                .replace("Signatures", "signature"),
            stats.cycles,
            stats.cache.data_read_misses,
            stats.traffic.total()
        );
    }
    // fluidanimate and water (read-mostly critical sections).
    for name in ["fluidanimate", "water"] {
        let spec = all_apps()
            .into_iter()
            .find(|a| a.name == name)
            .expect("app");
        let threads = if quick_mode() { 16 } else { spec.cores };
        let w = build_app(&spec, threads);
        for mode in [
            DataInvalidation::StaticRegions,
            DataInvalidation::Signatures,
        ] {
            let mut cfg = SystemConfig::paper(threads, Protocol::DeNovoSync);
            cfg.data_inv = mode;
            let stats = run_workload(cfg, &w).expect("app runs");
            println!(
                "{:18} {:>14} {:>12} {:>12} {:>14}",
                name,
                format!("{mode:?}")
                    .replace("StaticRegions", "static")
                    .replace("Signatures", "signature"),
                stats.cycles,
                stats.cache.data_read_misses,
                stats.traffic.total()
            );
        }
    }
    println!(
        "\n(Signatures invalidate only words actually written since the core's \
         last acquire, so read-mostly critical sections keep their cached data.)"
    );
}
