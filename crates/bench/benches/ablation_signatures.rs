//! Future-work extension (paper §9): DeNovoND-style dynamic signatures vs
//! the paper's static-region self-invalidation, on the workloads the paper
//! says would benefit — the array-lock heap (§7.1.2: "can be remedied using
//! dynamic hardware signatures") and fluidanimate (§7.2, the one
//! application where DeNovoSync loses to MESI for this reason).
use dvs_campaign::grids::figure_params;
use dvs_campaign::{quick_mode, workers_from_env, Campaign, ExperimentSpec};
use dvs_core::config::{DataInvalidation, Protocol};
use dvs_kernels::{KernelId, LockKind, LockedStruct};

const MODES: [DataInvalidation; 2] = [
    DataInvalidation::StaticRegions,
    DataInvalidation::Signatures,
];

fn mode_label(mode: DataInvalidation) -> &'static str {
    match mode {
        DataInvalidation::StaticRegions => "static",
        DataInvalidation::Signatures => "signature",
    }
}

fn main() {
    let cores = if quick_mode() { 16 } else { 64 };
    let kernel = KernelId::Locked(LockedStruct::Heap, LockKind::Array);
    let params = figure_params(kernel, cores);

    let mut specs = Vec::new();
    let mut names = Vec::new();
    for mode in MODES {
        let mut spec = ExperimentSpec::kernel(kernel, params, Protocol::DeNovoSync);
        spec.overrides.data_inv = Some(mode);
        specs.push(spec);
        names.push("heap (array)");
    }
    // fluidanimate and water (read-mostly critical sections).
    for name in ["fluidanimate", "water"] {
        let app = dvs_apps::app_by_name(name).expect("app");
        let threads = if quick_mode() { 16 } else { app.cores };
        for mode in MODES {
            let mut spec = ExperimentSpec::app(app.name, threads, Protocol::DeNovoSync);
            spec.overrides.data_inv = Some(mode);
            specs.push(spec);
            names.push(name);
        }
    }
    let report = Campaign::from_specs(specs).run(workers_from_env());
    report.expect_all_ok("signature ablation");

    println!("== Ablation: static regions vs dynamic signatures (DeNovoSync, {cores} cores) ==");
    println!(
        "{:18} {:>14} {:>12} {:>12} {:>14}",
        "workload", "mode", "cycles", "rd-misses", "crossings"
    );
    for (record, name) in report.records.iter().zip(&names) {
        let stats = record.outcome.as_ref().expect("run succeeded");
        let mode = record.spec.overrides.data_inv.expect("ablation spec");
        println!(
            "{:18} {:>14} {:>12} {:>12} {:>14}",
            name,
            mode_label(mode),
            stats.cycles,
            stats.cache.data_read_misses,
            stats.traffic.total()
        );
    }
    println!(
        "\n(Signatures invalidate only words actually written since the core's \
         last acquire, so read-mostly critical sections keep their cached data.)"
    );
}
