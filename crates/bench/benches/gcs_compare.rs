//! GCS comparison artifact: every kernel on all four protocols (MESI,
//! DeNovoSync0, DeNovoSync, GCS), comparing execution time, network traffic
//! by class, and the two wakeup mechanisms — MESI's writer-initiated
//! invalidations versus GCS's targeted sync notifications (plus the recalls
//! that move a word onto the classified path).
//!
//! Writes `BENCH_gcs.json` (machine-readable) and prints a summary table.
//! The whole matrix runs as one campaign twice, at one worker and at the
//! environment's worker count, and asserts the results digest is
//! byte-identical — the comparison is scheduling-independent.

use dvs_campaign::{workers_from_env, Campaign, CampaignReport, ExperimentSpec, TelemetryPolicy};
use dvs_core::config::Protocol;
use dvs_kernels::{KernelId, KernelParams};
use dvs_stats::report::{BenchArtifact, JsonObject, ParamTable};
use dvs_stats::TrafficClass;

const THREADS: usize = 4;

/// The comparison matrix: protocol-major, kernel-minor, with the ring
/// telemetry policy so each record carries its metrics tree (where the GCS
/// banks count notifies and recalls).
fn matrix_specs() -> Vec<ExperimentSpec> {
    let params = KernelParams::smoke(THREADS);
    let mut specs = Vec::new();
    for proto in Protocol::EXTENDED {
        for kernel in KernelId::all() {
            let mut spec = ExperimentSpec::kernel(kernel, params, proto);
            spec.overrides.telemetry = TelemetryPolicy::Ring;
            specs.push(spec);
        }
    }
    specs
}

/// Aggregates the records back into one JSON object per protocol, plus
/// per-kernel cycle rows for side-by-side comparison.
fn protocol_json(report: &CampaignReport) -> (Vec<JsonObject>, Vec<JsonObject>) {
    let kernels = KernelId::all();
    let mut protocols = Vec::new();
    let mut per_kernel: Vec<JsonObject> = kernels
        .iter()
        .map(|k| {
            let mut o = JsonObject::new();
            o.str("kernel", &k.name());
            o
        })
        .collect();
    let mut chunks = report.records.chunks(kernels.len());
    for proto in Protocol::EXTENDED {
        let records = chunks.next().expect("protocol records");
        let mut cycles = 0u64;
        let mut traffic = [0u64; TrafficClass::ALL.len()];
        let mut notifies = 0u64;
        let mut recalls = 0u64;
        for (row, r) in per_kernel.iter_mut().zip(records) {
            let stats = r.outcome.as_ref().expect("matrix run succeeded");
            cycles += stats.cycles;
            row.u64(&format!("cycles_{}", proto.label()), stats.cycles);
            for (slot, &class) in traffic.iter_mut().zip(TrafficClass::ALL.iter()) {
                *slot += stats.traffic.get(class);
            }
            let metrics = r.metrics.as_ref().expect("ring policy keeps metrics");
            notifies += metrics.counter_total("notifies");
            recalls += metrics.counter_total("recalls");
        }
        let mut obj = JsonObject::new();
        obj.str("protocol", proto.label())
            .u64("runs", records.len() as u64)
            .u64("total_cycles", cycles)
            .u64("sync_notifies", notifies)
            .u64("registration_recalls", recalls);
        for (slot, &class) in traffic.iter().zip(TrafficClass::ALL.iter()) {
            obj.u64(&format!("traffic_{}", class.label()), *slot);
        }
        obj.u64("traffic_total", traffic.iter().sum());
        protocols.push(obj);
    }
    (protocols, per_kernel)
}

fn main() {
    let specs = matrix_specs();
    let report = Campaign::from_specs(specs.clone()).run(workers_from_env());
    report.expect_all_ok("gcs comparison matrix");
    // The artifact must not depend on how the campaign was scheduled.
    let single = Campaign::from_specs(specs).run(1);
    assert_eq!(
        report.results_digest(),
        single.results_digest(),
        "gcs comparison digest must be worker-count independent"
    );

    let (protocols, per_kernel) = protocol_json(&report);

    let mut summary = ParamTable::new("GCS vs MESI/DS0/DS");
    summary
        .row("kernels", KernelId::all().len())
        .row("protocols", Protocol::EXTENDED.len())
        .row("threads", THREADS)
        .row("results digest", report.results_digest())
        .row("campaign wall", format!("{:.1}s", report.wall_seconds()));
    print!("{}", summary.render());

    let mut artifact = BenchArtifact::new("gcs_compare", "");
    artifact
        .body()
        .u64("threads", THREADS as u64)
        .str("results_digest", &report.results_digest())
        .array("protocols", protocols)
        .array("per_kernel_cycles", per_kernel);
    artifact.write(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_gcs.json"));
}
