//! Figure 3: Test-and-Test-and-Set lock based synchronization —
//! execution time and network traffic on 16 and 64 cores.
use dvs_bench::kernel_figure;
use dvs_kernels::{KernelId, LockKind, LockedStruct};

fn main() {
    let kernels: Vec<KernelId> = LockedStruct::ALL
        .iter()
        .map(|&s| KernelId::Locked(s, LockKind::Tatas))
        .collect();
    kernel_figure("Figure 3 (TATAS locks)", &kernels, |_| {});
}
