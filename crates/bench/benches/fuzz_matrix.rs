//! Differential fuzzing artifact.
//!
//! Three measurements, written to `BENCH_fuzz.json`:
//!
//! 1. **Throughput + determinism** — a stock-protocol batch at 1, 2, and 4
//!    workers: cases/second, wall-clock per worker count, and the
//!    assertion that all three result digests are byte-identical.
//! 2. **Mutation catch rates** — each seeded [`ProtocolMutation`] over a
//!    fixed seed range: how many cases the differential harness flags.
//! 3. **Shrink ratios** — the first diverging case per mutation is
//!    delta-debugged; initial/final instruction counts are recorded.
//!
//! `DVS_QUICK=1` shrinks the seed ranges for CI smoke.

use dvs_campaign::quick_mode;
use dvs_core::config::ProtocolMutation;
use dvs_fuzz::{generate, run_batch, run_case, shrink, BatchConfig, GenConfig, HarnessConfig};
use dvs_stats::report::{BenchArtifact, JsonObject, ParamTable};
use std::time::Instant;

const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

const MUTATIONS: [(&str, ProtocolMutation); 4] = [
    ("dnv-skip-repoint", ProtocolMutation::DnvSkipRepoint),
    ("dnv-drop-xfer", ProtocolMutation::DnvDropXfer),
    ("mesi-skip-invalidate", ProtocolMutation::MesiSkipInvalidate),
    ("mesi-drop-ack", ProtocolMutation::MesiDropAck),
];

fn main() {
    let quick = quick_mode();
    let stock_count = if quick { 120 } else { 500 };
    let control_count = if quick { 30 } else { 60 };

    // 1. Stock-protocol throughput and worker-count determinism.
    let mut digests = Vec::new();
    let mut scaling = Vec::new();
    let mut summary = ParamTable::new("Differential fuzz matrix");
    summary.row("stock batch", format!("{stock_count} cases"));
    let mut throughput_1w = 0.0;
    for &workers in &WORKER_COUNTS {
        let cfg = BatchConfig {
            seed_start: 0,
            count: stock_count,
            gen: GenConfig::default_pool(),
            harness: HarnessConfig::default(),
            workers,
        };
        let t0 = Instant::now();
        let report = run_batch(&cfg);
        let wall = t0.elapsed().as_secs_f64();
        assert_eq!(
            report.passed, report.total,
            "stock protocols diverged: {:#?}",
            report.diverged
        );
        assert_eq!(report.sick + report.panicked, 0);
        let rate = report.total as f64 / wall;
        if workers == 1 {
            throughput_1w = rate;
        }
        summary.row(
            &format!("{workers} worker(s)"),
            format!("{wall:.2}s wall, {rate:.0} cases/s"),
        );
        digests.push(report.digest);
        let mut row = JsonObject::new();
        row.u64("workers", workers as u64)
            .f64("wall_s", wall)
            .f64("cases_per_s", rate)
            .u64("instrs_total", report.instrs_total as u64)
            .str("digest", &format!("{:016x}", report.digest));
        scaling.push(row);
    }
    assert!(
        digests.iter().all(|d| d == &digests[0]),
        "fuzz digests must be worker-count independent: {digests:?}"
    );
    summary.row(
        "digest",
        format!("{:016x} (identical at 1/2/4)", digests[0]),
    );

    // 2 + 3. Catch rates and shrink ratios per mutation.
    let mut mutation_rows = Vec::new();
    for (tok, mutation) in MUTATIONS {
        let harness = HarnessConfig {
            mutation: Some(mutation),
            ..Default::default()
        };
        let cfg = BatchConfig {
            seed_start: 0,
            count: control_count,
            gen: GenConfig::small(),
            harness,
            workers: 4,
        };
        let report = run_batch(&cfg);
        assert!(
            !report.diverged.is_empty(),
            "{tok}: mutation was never caught in {control_count} seeds"
        );
        let first_seed = report.diverged[0].seed;
        let case = generate(first_seed, &cfg.gen);
        let out = shrink(&case, |c| run_case(c, &cfg.harness).is_divergent());
        summary.row(
            tok,
            format!(
                "caught {}/{}, shrink {} -> {} instrs ({:.0}%)",
                report.diverged.len(),
                report.total,
                out.initial_instrs,
                out.final_instrs,
                100.0 * out.ratio()
            ),
        );
        let mut row = JsonObject::new();
        row.str("mutation", tok)
            .u64("cases", report.total as u64)
            .u64("caught", report.diverged.len() as u64)
            .u64("first_divergent_seed", first_seed)
            .u64("shrink_initial_instrs", out.initial_instrs as u64)
            .u64("shrink_final_instrs", out.final_instrs as u64)
            .f64("shrink_ratio", out.ratio())
            .u64("shrink_attempts", out.attempts as u64);
        mutation_rows.push(row);
    }
    print!("{}", summary.render());

    let mut artifact = BenchArtifact::new("fuzz", "");
    artifact
        .body()
        .u64("stock_cases", stock_count as u64)
        .bool("digests_identical", true)
        .str("digest", &format!("{:016x}", digests[0]))
        .f64("cases_per_s_1_worker", throughput_1w)
        .array("scaling", scaling)
        .array("mutations", mutation_rows);
    artifact.write(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_fuzz.json"
    ));
}
