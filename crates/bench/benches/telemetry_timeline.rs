//! Telemetry timeline artifact: one annotated tatas-lock run per protocol.
//!
//! For each protocol this bench runs the tatas counter kernel twice — once
//! with telemetry off, once with a recorder sink — and asserts the two runs
//! produce identical statistics (the zero-perturbation guarantee). The
//! recorded event stream is exported as a Chrome trace-event / Perfetto
//! timeline (`TRACE_telemetry_<label>.json`, loadable at ui.perfetto.dev),
//! structurally validated, and summarized — together with each run's
//! hierarchical metrics tree — in `BENCH_telemetry.json`.

use dvs_campaign::run_workload_with;
use dvs_core::config::{Protocol, SystemConfig};
use dvs_kernels::{KernelId, KernelParams, LockKind, LockedStruct};
use dvs_stats::report::{BenchArtifact, JsonObject, ParamTable};
use dvs_telemetry::{perfetto, Telemetry};

const THREADS: usize = 4;

fn trace_path(label: &str) -> String {
    format!(
        "{}/../../TRACE_telemetry_{}.json",
        env!("CARGO_MANIFEST_DIR"),
        label.to_ascii_lowercase()
    )
}

fn main() {
    let kernel = KernelId::Locked(LockedStruct::Counter, LockKind::Tatas);
    let params = KernelParams::smoke(THREADS);
    let workload = dvs_kernels::build(kernel, &params);

    let mut summary = ParamTable::new("Telemetry timeline (tatas counter)");
    summary
        .row("kernel", kernel.token())
        .row("threads", THREADS);
    let mut rows = Vec::new();
    let mut metrics_tree = JsonObject::new();

    for proto in Protocol::ALL {
        let cfg = SystemConfig::small(THREADS, proto);

        // Baseline: telemetry fully off (the compile-time-erased no-op path).
        let (base_stats, base_metrics) = run_workload_with(cfg, &workload, Telemetry::off())
            .unwrap_or_else(|e| panic!("{proto} baseline run: {e}"));

        // Instrumented: record every event, then export the timeline.
        let tel = Telemetry::recorder();
        let (stats, metrics) = run_workload_with(cfg, &workload, tel.clone())
            .unwrap_or_else(|e| panic!("{proto} recorded run: {e}"));
        assert_eq!(
            stats, base_stats,
            "{proto}: telemetry must not perturb simulated results"
        );
        assert_eq!(
            metrics.to_json().render(),
            base_metrics.to_json().render(),
            "{proto}: metrics tree must not depend on the event sink"
        );

        let events = tel.take_events().expect("recorder sink drains");
        assert!(!events.is_empty(), "{proto}: instrumented run emits events");
        let title = format!("tatas counter @{THREADS} — {proto}");
        let json = perfetto::export(&title, &events);
        let exported = perfetto::validate(&json)
            .unwrap_or_else(|e| panic!("{proto}: exported trace is malformed: {e}"));
        assert!(exported > 0, "{proto}: trace exports at least one event");

        let path = trace_path(proto.label());
        std::fs::write(&path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {path}");

        summary.row(
            proto.label(),
            format!(
                "{} cycles, {} events recorded, {exported} trace events",
                stats.cycles,
                events.len()
            ),
        );
        let mut row = JsonObject::new();
        row.str("protocol", proto.label())
            .u64("cycles", stats.cycles)
            .u64("events_recorded", events.len() as u64)
            .u64("trace_events", exported)
            .bool("stats_match_baseline", true);
        rows.push(row);
        metrics_tree.object(proto.label(), metrics.to_json());
    }
    print!("{}", summary.render());

    let mut artifact = BenchArtifact::new("telemetry_timeline", "");
    artifact
        .body()
        .str("kernel", &kernel.token())
        .u64("threads", THREADS as u64)
        .array("protocols", rows);
    artifact.telemetry(metrics_tree);
    artifact.write(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_telemetry.json"
    ));
}
