//! Design-choice ablation: the hardware backoff parameters (§4.2.1–4.2.2).
//!
//! The paper picks a 9-bit counter with 1-cycle default increment at 16
//! cores and a 12-bit counter with 64-cycle increment at 64 cores, arguing
//! the increment must scale with the system for the counter to climb fast
//! enough under contention. This sweep varies both knobs on the most
//! backoff-sensitive kernels (TATAS large-CS and the Michael–Scott queue)
//! and prints execution time and traffic relative to DeNovoSync0
//! (increment 0 ≙ no backoff).
use dvs_bench::figures::{quick_mode, time_row};
use dvs_bench::run_kernel;
use dvs_core::config::{Protocol, SystemConfig};
use dvs_kernels::{KernelId, KernelParams, LockKind, LockedStruct, NonBlocking};

fn main() {
    let cores = if quick_mode() { 16 } else { 64 };
    let kernels = [
        KernelId::Locked(LockedStruct::LargeCs, LockKind::Tatas),
        KernelId::NonBlocking(NonBlocking::MsQueue),
    ];
    println!("== Ablation: hardware-backoff parameters, {cores} cores ==");
    println!(
        "{:12} {:>6} {:>10} {:>12} {:>14} {:>12}",
        "kernel", "bits", "increment", "cycles", "vs DS0", "crossings"
    );
    for kernel in kernels {
        let mut params = KernelParams::paper(kernel, cores);
        if quick_mode() {
            params.iters = params.iters.min(20);
        }
        // Baseline: DeNovoSync0 (no backoff at all).
        let base = run_kernel(
            kernel,
            SystemConfig::paper(cores, Protocol::DeNovoSync0),
            &params,
        )
        .expect("baseline runs");
        println!(
            "{:12} {:>6} {:>10} {:>12} {:>14} {:>12}",
            kernel.name(),
            "-",
            "off",
            base.cycles,
            "100.0%",
            base.traffic.total()
        );
        for bits in [6u32, 9, 12] {
            for increment in [1u64, 16, 64, 256] {
                let mut cfg = SystemConfig::paper(cores, Protocol::DeNovoSync);
                cfg.backoff.counter_bits = bits;
                cfg.backoff.default_increment = increment;
                let stats = run_kernel(kernel, cfg, &params).expect("sweep point runs");
                println!(
                    "{:12} {:>6} {:>10} {:>12} {:>13.1}% {:>12}",
                    kernel.name(),
                    bits,
                    increment,
                    stats.cycles,
                    stats.cycles as f64 / base.cycles as f64 * 100.0,
                    stats.traffic.total()
                );
                let _ = time_row(&stats);
            }
        }
        println!();
    }
    println!(
        "(The sweep exposes the tension the paper's adaptive increment \
         mediates: ping-pong-bound spins — large CS — keep improving with \
         bigger counters, while latency-bound read chains — the M-S queue — \
         prefer short delays; larger counters consistently trade execution \
         time for network traffic. The paper's per-system defaults are \
         compromises across this front.)"
    );
}
