//! Design-choice ablation: the hardware backoff parameters (§4.2.1–4.2.2).
//!
//! The paper picks a 9-bit counter with 1-cycle default increment at 16
//! cores and a 12-bit counter with 64-cycle increment at 64 cores, arguing
//! the increment must scale with the system for the counter to climb fast
//! enough under contention. This sweep varies both knobs on the most
//! backoff-sensitive kernels (TATAS large-CS and the Michael–Scott queue)
//! and prints execution time and traffic relative to DeNovoSync0
//! (increment 0 ≙ no backoff). The whole sweep is one campaign.
use dvs_campaign::grids::figure_params;
use dvs_campaign::{quick_mode, workers_from_env, Campaign, ExperimentSpec};
use dvs_core::config::Protocol;
use dvs_kernels::{KernelId, LockKind, LockedStruct, NonBlocking};

const BITS: [u32; 3] = [6, 9, 12];
const INCREMENTS: [u64; 4] = [1, 16, 64, 256];

fn main() {
    let cores = if quick_mode() { 16 } else { 64 };
    let kernels = [
        KernelId::Locked(LockedStruct::LargeCs, LockKind::Tatas),
        KernelId::NonBlocking(NonBlocking::MsQueue),
    ];

    let mut specs = Vec::new();
    for kernel in kernels {
        let params = figure_params(kernel, cores);
        // Baseline: DeNovoSync0 (no backoff at all).
        specs.push(ExperimentSpec::kernel(
            kernel,
            params,
            Protocol::DeNovoSync0,
        ));
        for bits in BITS {
            for increment in INCREMENTS {
                let mut spec = ExperimentSpec::kernel(kernel, params, Protocol::DeNovoSync);
                spec.overrides.backoff_bits = Some(bits);
                spec.overrides.backoff_increment = Some(increment);
                specs.push(spec);
            }
        }
    }
    let report = Campaign::from_specs(specs).run(workers_from_env());
    report.expect_all_ok("backoff-parameter sweep");

    println!("== Ablation: hardware-backoff parameters, {cores} cores ==");
    println!(
        "{:12} {:>6} {:>10} {:>12} {:>14} {:>12}",
        "kernel", "bits", "increment", "cycles", "vs DS0", "crossings"
    );
    let per_kernel = 1 + BITS.len() * INCREMENTS.len();
    for (k, kernel) in kernels.iter().enumerate() {
        let rows = &report.records[k * per_kernel..(k + 1) * per_kernel];
        let base = rows[0].outcome.as_ref().expect("baseline ran");
        println!(
            "{:12} {:>6} {:>10} {:>12} {:>14} {:>12}",
            kernel.name(),
            "-",
            "off",
            base.cycles,
            "100.0%",
            base.traffic.total()
        );
        for row in &rows[1..] {
            let stats = row.outcome.as_ref().expect("sweep point ran");
            let bits = row.spec.overrides.backoff_bits.expect("sweep spec");
            let increment = row.spec.overrides.backoff_increment.expect("sweep spec");
            println!(
                "{:12} {:>6} {:>10} {:>12} {:>13.1}% {:>12}",
                kernel.name(),
                bits,
                increment,
                stats.cycles,
                stats.cycles as f64 / base.cycles as f64 * 100.0,
                stats.traffic.total()
            );
        }
        println!();
    }
    println!(
        "(The sweep exposes the tension the paper's adaptive increment \
         mediates: ping-pong-bound spins — large CS — keep improving with \
         bigger counters, while latency-bound read chains — the M-S queue — \
         prefer short delays; larger counters consistently trade execution \
         time for network traffic. The paper's per-system defaults are \
         compromises across this front.)"
    );
}
