//! Figure 7: execution time and network traffic for MESI and DeNovoSync
//! over the 13 application models (ferret and x264 at 16 cores, the rest
//! at 64).
use dvs_apps::all_apps;
use dvs_bench::app_figure;

fn main() {
    app_figure("Figure 7 (applications)", &all_apps());
}
