//! Figure 5: non-blocking algorithms.
use dvs_bench::kernel_figure;
use dvs_kernels::{KernelId, NonBlocking};

fn main() {
    let kernels: Vec<KernelId> = NonBlocking::ALL
        .iter()
        .map(|&n| KernelId::NonBlocking(n))
        .collect();
    kernel_figure("Figure 5 (non-blocking)", &kernels, |_| {});
}
