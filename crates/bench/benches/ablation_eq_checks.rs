//! §7.1.3 software modifications: reducing the Herlihy kernels' redundant
//! equality checks. The paper found both protocols improve, DeNovo much
//! more (each removed check is a read registration DeNovo no longer
//! ping-pongs).
use dvs_bench::kernel_figure;
use dvs_kernels::{KernelId, NonBlocking};

fn main() {
    let kernels = [
        KernelId::NonBlocking(NonBlocking::HerlihyStack),
        KernelId::NonBlocking(NonBlocking::HerlihyHeap),
    ];
    println!("################ original (full equality checks) ################");
    kernel_figure("Ablation S3 (original)", &kernels, |p| {
        p.reduced_checks = false
    });
    println!("################ reduced equality checks ################");
    kernel_figure("Ablation S3 (reduced)", &kernels, |p| {
        p.reduced_checks = true
    });
}
