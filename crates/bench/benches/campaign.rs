//! Campaign determinism and scaling artifact.
//!
//! Runs one evaluation grid — the full-scale Figure 3 grid, or a reduced
//! fig3+fig7 grid under `DVS_QUICK=1` — through the campaign runner at 1, 2,
//! and 4 workers, asserts the three reports serialize to byte-identical
//! results, and writes `BENCH_campaign.json` with per-worker-count
//! wall-clock and speedup. The ≥ 1.6× 4-worker speedup target is *recorded*,
//! not asserted, when `host_parallelism < 4` (a single-core host cannot
//! show it).

use dvs_campaign::grids::{app_grid, kernel_grid};
use dvs_campaign::{quick_mode, Campaign, ExperimentSpec};
use dvs_core::config::Protocol;
use dvs_kernels::{KernelId, LockKind, LockedStruct};
use dvs_stats::report::{host_parallelism, BenchArtifact, JsonObject, ParamTable};

const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

fn grid() -> Vec<ExperimentSpec> {
    let tatas: Vec<KernelId> = LockedStruct::ALL
        .iter()
        .map(|&s| KernelId::Locked(s, LockKind::Tatas))
        .collect();
    let mut specs = Vec::new();
    if quick_mode() {
        // CI smoke: fig3 at 16 cores plus the fig7 apps at 16 threads.
        specs.extend(kernel_grid(&tatas, 16, &Protocol::ALL, |_| {}));
        specs.extend(app_grid(
            &dvs_apps::all_apps(),
            &[Protocol::Mesi, Protocol::DeNovoSync],
        ));
    } else {
        for cores in [16, 64] {
            specs.extend(kernel_grid(&tatas, cores, &Protocol::ALL, |_| {}));
        }
    }
    specs
}

fn main() {
    let specs = grid();
    let grid_name = if quick_mode() {
        "fig3@16 + fig7@16 (quick)"
    } else {
        "fig3 @16+64 (full)"
    };
    println!(
        "campaign bench: {grid_name}, {} specs, workers {WORKER_COUNTS:?}",
        specs.len()
    );

    let mut digests = Vec::new();
    let mut walls = Vec::new();
    for &workers in &WORKER_COUNTS {
        let report = Campaign::from_specs(specs.clone()).run(workers);
        report.expect_all_ok("campaign grid");
        digests.push(report.results_digest());
        walls.push(report.wall_seconds());
    }
    assert!(
        digests.iter().all(|d| d == &digests[0]),
        "campaign results must be byte-identical across worker counts: {digests:?}"
    );

    let host = host_parallelism();
    let mut summary = ParamTable::new("Campaign scaling");
    summary
        .row("grid", grid_name)
        .row("specs", specs.len())
        .row("results digest", &digests[0])
        .row("host CPUs", host);
    let mut runs = Vec::new();
    for (i, &workers) in WORKER_COUNTS.iter().enumerate() {
        let speedup = walls[0] / walls[i];
        summary.row(
            &format!("{workers} worker(s)"),
            format!("{:.2}s wall, {speedup:.2}x vs 1", walls[i]),
        );
        let mut row = JsonObject::new();
        row.u64("workers", workers as u64)
            .f64("wall_s", walls[i])
            .f64_opt("speedup_vs_1", speedup);
        runs.push(row);
    }
    if host < 4 {
        summary.row(
            "speedup target",
            format!("recorded only: host has {host} CPU(s), <4"),
        );
    }
    print!("{}", summary.render());

    let mut artifact = BenchArtifact::new("campaign", "");
    artifact
        .body()
        .str("grid", grid_name)
        .u64("specs", specs.len() as u64)
        .str("results_digest", &digests[0])
        .bool("digests_identical", true)
        .f64_opt("speedup_4_workers", walls[0] / walls[2])
        .bool("speedup_target_meaningful", host >= 4)
        .array("scaling", runs);
    // Anchor to the workspace root regardless of the bench binary's cwd.
    artifact.write(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_campaign.json"
    ));
}
