//! Timed-core stepping throughput artifact (`BENCH_step.json`).
//!
//! The raw-speed gate for the simulator's hot path. Two workloads, both
//! single-worker so the numbers measure stepping throughput and not host
//! parallelism (BENCH_campaign shows this host has `host_parallelism: 1`):
//!
//! 1. **fig3 quick grid** — the TATAS kernel sweep at 16 cores across all
//!    three protocols, through the campaign runner: wall-clock plus
//!    scheduler events/second summed over every run.
//! 2. **fuzz batch** — the differential fuzzer's stock-protocol batch
//!    (each case runs 7 systems: SC reference + 3 protocols × timed and
//!    untimed): cases/second, dominated by `System` construction and
//!    short-run stepping.
//!
//! The artifact embeds the pre-refactor baseline (measured at the seed
//! commit on this host, before the bucketed scheduler / slot recycling /
//! dense-state overhaul) so every regeneration shows the trajectory, and
//! enforces regression floors: the bench *fails* if either throughput
//! drops below its floor. `DVS_STEP_NO_GATE=1` skips the floors and
//! `DVS_STEP_ITERS=N` repeats the measurement loop (profiling runs use a
//! large N to give coarse samplers something to chew on — see
//! `scripts/profile.sh`).

use dvs_campaign::grids::kernel_grid;
use dvs_campaign::run_recorded;
use dvs_core::config::Protocol;
use dvs_fuzz::{generate, run_case, GenConfig, HarnessConfig};
use dvs_kernels::{KernelId, LockKind, LockedStruct};
use dvs_stats::report::{peak_rss_bytes, BenchArtifact, JsonObject, ParamTable};
use std::time::Instant;

/// Pre-refactor baseline, measured at the seed commit (`8a73eeb`) on the
/// CI host (1 CPU): the fig3 quick grid at 1 worker, the 500-case stock
/// fuzz batch at 1 worker, and the campaign bench's peak RSS.
const BASELINE_FIG3_WALL_S: f64 = 2.345;
const BASELINE_EVENTS_PER_S: f64 = 4_157_151.0;
const BASELINE_FUZZ_CASES_PER_S: f64 = 1026.2;
const BASELINE_PEAK_RSS_BYTES: u64 = 128_167_936;

/// Regression floors: the bench fails if a fresh measurement drops below
/// these. Set at roughly 60% of the post-refactor throughput (fig3
/// ~8.9 Mev/s, fuzz ~2000 cases/s on the CI host) so host noise does not
/// trip the gate but a structural regression — or an accidental return to
/// the heap scheduler / hash-map state — does. Both floors sit *above* the
/// pre-refactor baseline on purpose.
const FLOOR_EVENTS_PER_S: f64 = 5_000_000.0;
const FLOOR_FUZZ_CASES_PER_S: f64 = 1100.0;

const FUZZ_CASES: usize = 500;

fn fig3_specs() -> Vec<dvs_campaign::ExperimentSpec> {
    let tatas: Vec<KernelId> = LockedStruct::ALL
        .iter()
        .map(|&s| KernelId::Locked(s, LockKind::Tatas))
        .collect();
    kernel_grid(&tatas, 16, &Protocol::ALL, |_| {})
}

struct Measurement {
    fig3_wall_s: f64,
    events: u64,
    events_per_s: f64,
    fuzz_wall_s: f64,
    cases_per_s: f64,
}

fn measure_once(specs: &[dvs_campaign::ExperimentSpec]) -> Measurement {
    // Everything runs inline on the calling thread: the bench measures
    // single-thread stepping throughput, not work distribution (and the
    // profiling recipe in scripts/profile.sh needs the hot loop on the
    // main thread).
    let t0 = Instant::now();
    let mut events: u64 = 0;
    for (i, spec) in specs.iter().enumerate() {
        let record = run_recorded(spec, i);
        match &record.outcome {
            Ok(stats) => events += stats.events,
            Err(e) => panic!("{} failed: {e}", spec.label()),
        }
    }
    let fig3_wall_s = t0.elapsed().as_secs_f64();

    let gen = GenConfig::default_pool();
    let harness = HarnessConfig::default();
    let t1 = Instant::now();
    for seed in 0..FUZZ_CASES as u64 {
        let case = generate(seed, &gen);
        let verdict = run_case(&case, &harness);
        assert!(
            !verdict.is_divergent(),
            "stock fuzz batch diverged at seed {seed}"
        );
    }
    let fuzz_wall_s = t1.elapsed().as_secs_f64();

    Measurement {
        fig3_wall_s,
        events,
        events_per_s: events as f64 / fig3_wall_s,
        fuzz_wall_s,
        cases_per_s: FUZZ_CASES as f64 / fuzz_wall_s,
    }
}

fn main() {
    let iters: usize = std::env::var("DVS_STEP_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
        .max(1);
    let gate = std::env::var("DVS_STEP_NO_GATE").is_err();

    let specs = fig3_specs();
    println!("step_micro: fig3 quick grid ({} specs) + {FUZZ_CASES}-case fuzz batch, {iters} iteration(s)", specs.len());

    // Best-of-N: the floor gate should see the host's capability, not its
    // worst scheduling hiccup. N=1 in CI keeps the stage cheap.
    let mut best: Option<Measurement> = None;
    for _ in 0..iters {
        let m = measure_once(&specs);
        let better = match &best {
            Some(b) => m.events_per_s > b.events_per_s,
            None => true,
        };
        if better {
            best = Some(m);
        }
    }
    let m = best.expect("at least one iteration");
    let rss = peak_rss_bytes();

    let mut summary = ParamTable::new("Timed-core stepping throughput");
    summary
        .row(
            "fig3 quick grid",
            format!(
                "{:.3}s wall, {} events, {:.2} Mev/s",
                m.fig3_wall_s,
                m.events,
                m.events_per_s / 1e6
            ),
        )
        .row(
            "fuzz batch",
            format!("{:.3}s wall, {:.0} cases/s", m.fuzz_wall_s, m.cases_per_s),
        )
        .row(
            "vs baseline",
            format!(
                "fig3 wall {:.2}x, events/s {:.2}x, cases/s {:.2}x",
                BASELINE_FIG3_WALL_S / m.fig3_wall_s,
                m.events_per_s / BASELINE_EVENTS_PER_S,
                m.cases_per_s / BASELINE_FUZZ_CASES_PER_S
            ),
        );
    if let Some(rss) = rss {
        summary.row(
            "peak RSS",
            format!(
                "{:.1} MiB ({:+.1}% vs baseline)",
                rss as f64 / (1 << 20) as f64,
                100.0 * (rss as f64 / BASELINE_PEAK_RSS_BYTES as f64 - 1.0)
            ),
        );
    }
    print!("{}", summary.render());

    let mut baseline = JsonObject::new();
    baseline
        .f64("fig3_wall_s", BASELINE_FIG3_WALL_S)
        .f64("events_per_s", BASELINE_EVENTS_PER_S)
        .f64("fuzz_cases_per_s", BASELINE_FUZZ_CASES_PER_S)
        .u64("peak_rss_bytes", BASELINE_PEAK_RSS_BYTES);
    let mut floors = JsonObject::new();
    floors
        .f64("events_per_s", FLOOR_EVENTS_PER_S)
        .f64("fuzz_cases_per_s", FLOOR_FUZZ_CASES_PER_S);
    let mut artifact = BenchArtifact::new("step", "");
    artifact
        .body()
        .u64("fig3_specs", specs.len() as u64)
        .f64("fig3_wall_s", m.fig3_wall_s)
        .u64("fig3_events", m.events)
        .f64("events_per_s", m.events_per_s)
        .u64("fuzz_cases", FUZZ_CASES as u64)
        .f64("fuzz_wall_s", m.fuzz_wall_s)
        .f64("fuzz_cases_per_s", m.cases_per_s)
        .object("baseline", baseline)
        .object("floors", floors)
        .f64_opt("fig3_wall_speedup", BASELINE_FIG3_WALL_S / m.fig3_wall_s)
        .f64_opt(
            "events_per_s_speedup",
            m.events_per_s / BASELINE_EVENTS_PER_S,
        )
        .f64_opt(
            "fuzz_cases_per_s_speedup",
            m.cases_per_s / BASELINE_FUZZ_CASES_PER_S,
        );
    if let Some(rss) = rss {
        artifact.body().f64_opt(
            "peak_rss_vs_baseline",
            rss as f64 / BASELINE_PEAK_RSS_BYTES as f64,
        );
    }
    artifact.write(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_step.json"
    ));

    if gate {
        assert!(
            m.events_per_s >= FLOOR_EVENTS_PER_S,
            "events/s regression: {:.0} < floor {:.0}",
            m.events_per_s,
            FLOOR_EVENTS_PER_S
        );
        assert!(
            m.cases_per_s >= FLOOR_FUZZ_CASES_PER_S,
            "fuzz cases/s regression: {:.0} < floor {:.0}",
            m.cases_per_s,
            FLOOR_FUZZ_CASES_PER_S
        );
        println!(
            "floors OK: {:.0} events/s >= {:.0}, {:.0} cases/s >= {:.0}",
            m.events_per_s, FLOOR_EVENTS_PER_S, m.cases_per_s, FLOOR_FUZZ_CASES_PER_S
        );
    }
}
