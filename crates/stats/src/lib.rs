//! Statistics collection and reporting for the DeNovoSync reproduction.
//!
//! The paper reports two top-level metrics, and this crate models both:
//!
//! * **Execution time**, decomposed per core into the stacked components of
//!   Figures 3–7: non-synchronization compute, kernel compute, memory stall,
//!   software backoff, hardware backoff, and barrier stall
//!   ([`TimeComponent`], [`TimeBreakdown`]).
//! * **Network traffic**, measured in flit–link crossings and decomposed by
//!   message class: load, store, writeback, invalidation (MESI only) and
//!   synchronization (DeNovo only) ([`TrafficClass`], [`TrafficStats`]).
//!
//! [`RunStats`] aggregates everything a single simulation produces, and the
//! [`report`] module renders the paper-style normalized stacked-bar tables
//! printed by the benchmark harnesses.

pub mod report;

use std::fmt;
use std::ops::{Add, AddAssign};

/// The execution-time components of the paper's Figures 3–7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TimeComponent {
    /// Dummy computation between kernel iterations ("non-synch" in Fig 3–6).
    NonSynch,
    /// Instruction execution inside the kernel, including spinning reads that
    /// hit in the cache (1 cycle per instruction).
    Compute,
    /// Cycles a thread is blocked waiting for the memory system.
    MemoryStall,
    /// Software (exponential) backoff delay cycles.
    SwBackoff,
    /// Hardware backoff stall cycles (DeNovoSync only).
    HwBackoff,
    /// Time spent waiting in the end-of-kernel barrier (load imbalance).
    BarrierStall,
}

impl TimeComponent {
    /// All components, in the paper's stacking order.
    pub const ALL: [TimeComponent; 6] = [
        TimeComponent::NonSynch,
        TimeComponent::Compute,
        TimeComponent::MemoryStall,
        TimeComponent::SwBackoff,
        TimeComponent::HwBackoff,
        TimeComponent::BarrierStall,
    ];

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            TimeComponent::NonSynch => "non-synch",
            TimeComponent::Compute => "compute",
            TimeComponent::MemoryStall => "mem-stall",
            TimeComponent::SwBackoff => "sw-backoff",
            TimeComponent::HwBackoff => "hw-backoff",
            TimeComponent::BarrierStall => "barrier",
        }
    }

    fn index(self) -> usize {
        match self {
            TimeComponent::NonSynch => 0,
            TimeComponent::Compute => 1,
            TimeComponent::MemoryStall => 2,
            TimeComponent::SwBackoff => 3,
            TimeComponent::HwBackoff => 4,
            TimeComponent::BarrierStall => 5,
        }
    }
}

impl fmt::Display for TimeComponent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-core cycle counts, one bucket per [`TimeComponent`].
///
/// # Examples
///
/// ```
/// use dvs_stats::{TimeBreakdown, TimeComponent};
///
/// let mut t = TimeBreakdown::new();
/// t.add_cycles(TimeComponent::Compute, 10);
/// t.add_cycles(TimeComponent::MemoryStall, 90);
/// assert_eq!(t.total(), 100);
/// assert_eq!(t.get(TimeComponent::MemoryStall), 90);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimeBreakdown {
    buckets: [u64; 6],
}

impl TimeBreakdown {
    /// Creates an all-zero breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `cycles` to `component`.
    pub fn add_cycles(&mut self, component: TimeComponent, cycles: u64) {
        self.buckets[component.index()] += cycles;
    }

    /// Cycle count for one component.
    pub fn get(&self, component: TimeComponent) -> u64 {
        self.buckets[component.index()]
    }

    /// Sum over all components.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Iterates `(component, cycles)` pairs in stacking order.
    pub fn iter(&self) -> impl Iterator<Item = (TimeComponent, u64)> + '_ {
        TimeComponent::ALL.iter().map(move |&c| (c, self.get(c)))
    }
}

impl Add for TimeBreakdown {
    type Output = TimeBreakdown;
    fn add(mut self, rhs: TimeBreakdown) -> TimeBreakdown {
        self += rhs;
        self
    }
}

impl AddAssign for TimeBreakdown {
    fn add_assign(&mut self, rhs: TimeBreakdown) {
        for i in 0..self.buckets.len() {
            self.buckets[i] += rhs.buckets[i];
        }
    }
}

/// Network message classes for traffic accounting (Figures 3–7, parts b/d).
///
/// MESI traffic is reported as load / store / writeback / invalidation;
/// DeNovo traffic as data load / data store / writeback / synchronization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TrafficClass {
    /// Data-load requests and their data responses.
    Load,
    /// Data-store / ownership-registration requests and responses.
    Store,
    /// Writebacks and their acknowledgments.
    Writeback,
    /// Writer-initiated invalidations and their acks (MESI only).
    Invalidation,
    /// Synchronization loads, stores and RMWs (DeNovo only; MESI does not
    /// distinguish synchronization traffic, per the paper's footnote 3).
    Sync,
}

impl TrafficClass {
    /// All classes, in reporting order (Inv, WB, SYNCH, ST, LD as stacked in
    /// the paper's traffic figures).
    pub const ALL: [TrafficClass; 5] = [
        TrafficClass::Invalidation,
        TrafficClass::Writeback,
        TrafficClass::Sync,
        TrafficClass::Store,
        TrafficClass::Load,
    ];

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            TrafficClass::Load => "LD",
            TrafficClass::Store => "ST",
            TrafficClass::Writeback => "WB",
            TrafficClass::Invalidation => "Inv",
            TrafficClass::Sync => "SYNCH",
        }
    }

    fn index(self) -> usize {
        match self {
            TrafficClass::Invalidation => 0,
            TrafficClass::Writeback => 1,
            TrafficClass::Sync => 2,
            TrafficClass::Store => 3,
            TrafficClass::Load => 4,
        }
    }
}

impl fmt::Display for TrafficClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Flit–link crossing counts per [`TrafficClass`].
///
/// One unit is one flit traversing one network link, the paper's traffic
/// metric ("a flit going over one network link constitutes one unit of
/// network traffic").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficStats {
    flit_crossings: [u64; 5],
    messages: u64,
}

impl TrafficStats {
    /// Creates an all-zero traffic record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one message of `class` that produced `crossings` flit–link
    /// crossings.
    pub fn record(&mut self, class: TrafficClass, crossings: u64) {
        self.flit_crossings[class.index()] += crossings;
        self.messages += 1;
    }

    /// Crossings for one class.
    pub fn get(&self, class: TrafficClass) -> u64 {
        self.flit_crossings[class.index()]
    }

    /// Total crossings over all classes.
    pub fn total(&self) -> u64 {
        self.flit_crossings.iter().sum()
    }

    /// Total messages sent.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Iterates `(class, crossings)` in reporting order.
    pub fn iter(&self) -> impl Iterator<Item = (TrafficClass, u64)> + '_ {
        TrafficClass::ALL.iter().map(move |&c| (c, self.get(c)))
    }
}

impl AddAssign for TrafficStats {
    fn add_assign(&mut self, rhs: TrafficStats) {
        for i in 0..self.flit_crossings.len() {
            self.flit_crossings[i] += rhs.flit_crossings[i];
        }
        self.messages += rhs.messages;
    }
}

/// Cache access outcome counters, split by access kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Data-load hits / misses.
    pub data_read_hits: u64,
    /// Data-load misses.
    pub data_read_misses: u64,
    /// Data-store hits (word/line already owned).
    pub data_write_hits: u64,
    /// Data-store misses (ownership had to be acquired).
    pub data_write_misses: u64,
    /// Synchronization-read hits.
    pub sync_read_hits: u64,
    /// Synchronization-read misses (for DeNovo: registration required).
    pub sync_read_misses: u64,
    /// Synchronization write / RMW hits.
    pub sync_write_hits: u64,
    /// Synchronization write / RMW misses.
    pub sync_write_misses: u64,
}

impl CacheStats {
    /// Creates an all-zero record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total hits.
    pub fn hits(&self) -> u64 {
        self.data_read_hits + self.data_write_hits + self.sync_read_hits + self.sync_write_hits
    }

    /// Total misses.
    pub fn misses(&self) -> u64 {
        self.data_read_misses
            + self.data_write_misses
            + self.sync_read_misses
            + self.sync_write_misses
    }
}

impl AddAssign for CacheStats {
    fn add_assign(&mut self, rhs: CacheStats) {
        self.data_read_hits += rhs.data_read_hits;
        self.data_read_misses += rhs.data_read_misses;
        self.data_write_hits += rhs.data_write_hits;
        self.data_write_misses += rhs.data_write_misses;
        self.sync_read_hits += rhs.sync_read_hits;
        self.sync_read_misses += rhs.sync_read_misses;
        self.sync_write_hits += rhs.sync_write_hits;
        self.sync_write_misses += rhs.sync_write_misses;
    }
}

/// Everything one simulation run produces.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Total simulated cycles (max over cores of completion time).
    pub cycles: u64,
    /// Per-core execution-time breakdowns.
    pub per_core: Vec<TimeBreakdown>,
    /// Aggregate network traffic.
    pub traffic: TrafficStats,
    /// Aggregate L1 cache statistics.
    pub cache: CacheStats,
    /// Number of simulation events processed (simulator health metric).
    pub events: u64,
}

impl RunStats {
    /// Creates an empty record for `cores` cores.
    pub fn new(cores: usize) -> Self {
        RunStats {
            cycles: 0,
            per_core: vec![TimeBreakdown::new(); cores],
            traffic: TrafficStats::new(),
            cache: CacheStats::new(),
            events: 0,
        }
    }

    /// Sum of all cores' breakdowns (the stacked bar of Figures 3–7 before
    /// normalization).
    pub fn breakdown(&self) -> TimeBreakdown {
        self.per_core
            .iter()
            .fold(TimeBreakdown::new(), |acc, b| acc + *b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_accumulates() {
        let mut t = TimeBreakdown::new();
        t.add_cycles(TimeComponent::Compute, 5);
        t.add_cycles(TimeComponent::Compute, 5);
        t.add_cycles(TimeComponent::HwBackoff, 3);
        assert_eq!(t.get(TimeComponent::Compute), 10);
        assert_eq!(t.total(), 13);
    }

    #[test]
    fn breakdown_add() {
        let mut a = TimeBreakdown::new();
        a.add_cycles(TimeComponent::NonSynch, 1);
        let mut b = TimeBreakdown::new();
        b.add_cycles(TimeComponent::NonSynch, 2);
        b.add_cycles(TimeComponent::BarrierStall, 4);
        let c = a + b;
        assert_eq!(c.get(TimeComponent::NonSynch), 3);
        assert_eq!(c.get(TimeComponent::BarrierStall), 4);
    }

    #[test]
    fn breakdown_iter_order_matches_all() {
        let t = TimeBreakdown::new();
        let comps: Vec<TimeComponent> = t.iter().map(|(c, _)| c).collect();
        assert_eq!(comps, TimeComponent::ALL.to_vec());
    }

    #[test]
    fn traffic_accumulates_by_class() {
        let mut t = TrafficStats::new();
        t.record(TrafficClass::Load, 36);
        t.record(TrafficClass::Load, 4);
        t.record(TrafficClass::Invalidation, 8);
        assert_eq!(t.get(TrafficClass::Load), 40);
        assert_eq!(t.get(TrafficClass::Invalidation), 8);
        assert_eq!(t.total(), 48);
        assert_eq!(t.messages(), 3);
    }

    #[test]
    fn traffic_add_assign() {
        let mut a = TrafficStats::new();
        a.record(TrafficClass::Sync, 10);
        let mut b = TrafficStats::new();
        b.record(TrafficClass::Sync, 5);
        b.record(TrafficClass::Writeback, 2);
        a += b;
        assert_eq!(a.get(TrafficClass::Sync), 15);
        assert_eq!(a.get(TrafficClass::Writeback), 2);
        assert_eq!(a.messages(), 3);
    }

    #[test]
    fn cache_stats_totals() {
        let mut c = CacheStats::new();
        c.data_read_hits = 3;
        c.sync_read_misses = 2;
        c.sync_write_hits = 1;
        assert_eq!(c.hits(), 4);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn run_stats_breakdown_sums_cores() {
        let mut r = RunStats::new(2);
        r.per_core[0].add_cycles(TimeComponent::Compute, 7);
        r.per_core[1].add_cycles(TimeComponent::Compute, 3);
        r.per_core[1].add_cycles(TimeComponent::MemoryStall, 5);
        let b = r.breakdown();
        assert_eq!(b.get(TimeComponent::Compute), 10);
        assert_eq!(b.get(TimeComponent::MemoryStall), 5);
    }

    #[test]
    fn labels_are_unique_and_nonempty() {
        let mut labels: Vec<&str> = TimeComponent::ALL.iter().map(|c| c.label()).collect();
        labels.extend(TrafficClass::ALL.iter().map(|c| c.label()));
        assert!(labels.iter().all(|l| !l.is_empty()));
        let mut sorted = labels.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), labels.len());
    }
}
