//! Paper-style report rendering.
//!
//! The paper's evaluation figures are stacked bars normalized to MESI within
//! each workload group. [`StackedTable`] reproduces that presentation as an
//! ASCII table: each group (a kernel or application) gets one bar per
//! protocol, each bar is split into stacked components, and all bars in a
//! group are expressed as a percentage of the group's *first* bar (MESI).
//!
//! # Examples
//!
//! ```
//! use dvs_stats::report::StackedTable;
//!
//! let mut t = StackedTable::new("Execution time", &["compute", "stall"]);
//! t.bar("counter", "M", &[40.0, 60.0]);
//! t.bar("counter", "DS", &[40.0, 30.0]);
//! let text = t.render();
//! assert!(text.contains("counter"));
//! assert!(text.contains("70.0%")); // DS total normalized to M
//! ```

use std::fmt::Write as _;

/// A stacked-bar table normalized to the first bar of each group.
#[derive(Debug, Clone)]
pub struct StackedTable {
    title: String,
    components: Vec<String>,
    groups: Vec<Group>,
}

#[derive(Debug, Clone)]
struct Group {
    name: String,
    bars: Vec<Bar>,
}

#[derive(Debug, Clone)]
struct Bar {
    name: String,
    values: Vec<f64>,
}

impl StackedTable {
    /// Creates a table titled `title` whose bars stack the named components.
    pub fn new(title: &str, components: &[&str]) -> Self {
        StackedTable {
            title: title.to_owned(),
            components: components.iter().map(|s| (*s).to_owned()).collect(),
            groups: Vec::new(),
        }
    }

    /// Appends a bar named `bar` (e.g. a protocol) to group `group` (e.g. a
    /// kernel). `values` are absolute quantities, one per component, in the
    /// order given to [`StackedTable::new`].
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the number of components.
    pub fn bar(&mut self, group: &str, bar: &str, values: &[f64]) {
        assert_eq!(
            values.len(),
            self.components.len(),
            "bar has {} values but table has {} components",
            values.len(),
            self.components.len()
        );
        let g = match self.groups.iter_mut().find(|g| g.name == group) {
            Some(g) => g,
            None => {
                self.groups.push(Group {
                    name: group.to_owned(),
                    bars: Vec::new(),
                });
                self.groups.last_mut().expect("just pushed")
            }
        };
        g.bars.push(Bar {
            name: bar.to_owned(),
            values: values.to_vec(),
        });
    }

    /// Normalized total (in percent of the group's first bar) for one bar, or
    /// `None` if the group/bar does not exist.
    pub fn normalized_total(&self, group: &str, bar: &str) -> Option<f64> {
        let g = self.groups.iter().find(|g| g.name == group)?;
        let base: f64 = g.bars.first()?.values.iter().sum();
        let b = g.bars.iter().find(|b| b.name == bar)?;
        let total: f64 = b.values.iter().sum();
        Some(if base > 0.0 {
            total / base * 100.0
        } else {
            0.0
        })
    }

    /// Renders the table as ASCII text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let group_w = self
            .groups
            .iter()
            .map(|g| g.name.len())
            .chain(["group".len()])
            .max()
            .unwrap_or(5);
        let bar_w = self
            .groups
            .iter()
            .flat_map(|g| g.bars.iter().map(|b| b.name.len()))
            .chain(["bar".len()])
            .max()
            .unwrap_or(3);

        let _ = write!(
            out,
            "{:group_w$}  {:bar_w$}  {:>8}",
            "group", "bar", "total"
        );
        for c in &self.components {
            let _ = write!(out, "  {:>10}", c);
        }
        out.push('\n');

        for g in &self.groups {
            let base: f64 = g.bars.first().map(|b| b.values.iter().sum()).unwrap_or(0.0);
            for (i, b) in g.bars.iter().enumerate() {
                let name = if i == 0 { g.name.as_str() } else { "" };
                let total: f64 = b.values.iter().sum();
                let pct = if base > 0.0 {
                    total / base * 100.0
                } else {
                    0.0
                };
                let _ = write!(out, "{:group_w$}  {:bar_w$}  {:>7.1}%", name, b.name, pct);
                for v in &b.values {
                    let vp = if base > 0.0 { v / base * 100.0 } else { 0.0 };
                    let _ = write!(out, "  {:>9.1}%", vp);
                }
                out.push('\n');
            }
        }
        out
    }

    /// Geometric mean of the normalized totals of bar `bar` across all groups
    /// (skipping groups that lack the bar). This is how the summary numbers
    /// quoted in the paper's text ("22% lower on average") are computed.
    pub fn geomean_total(&self, bar: &str) -> Option<f64> {
        let mut log_sum = 0.0;
        let mut n = 0usize;
        for g in &self.groups {
            if let Some(pct) = self.normalized_total(&g.name, bar) {
                if pct > 0.0 {
                    log_sum += pct.ln();
                    n += 1;
                }
            }
        }
        if n == 0 {
            None
        } else {
            Some((log_sum / n as f64).exp())
        }
    }

    /// Names of the groups, in insertion order.
    pub fn group_names(&self) -> Vec<&str> {
        self.groups.iter().map(|g| g.name.as_str()).collect()
    }
}

/// A minimal JSON object builder for machine-readable benchmark artifacts
/// (`BENCH_*.json`). Hand-rolled so the workspace stays dependency-free: it
/// supports string/number/bool scalars, nested objects, and arrays of
/// objects — exactly what the bench targets emit, nothing more.
///
/// # Examples
///
/// ```
/// use dvs_stats::report::JsonObject;
///
/// let mut inner = JsonObject::new();
/// inner.u64("cycles", 1200);
/// let mut obj = JsonObject::new();
/// obj.str("bench", "chaos_matrix").object("mesi", inner);
/// assert!(obj.render().contains("\"cycles\": 1200"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct JsonObject {
    entries: Vec<(String, JsonValue)>,
}

#[derive(Debug, Clone)]
enum JsonValue {
    Str(String),
    UInt(u64),
    Float(f64),
    Bool(bool),
    Obj(JsonObject),
    Arr(Vec<JsonObject>),
}

impl JsonObject {
    /// Creates an empty object.
    pub fn new() -> Self {
        JsonObject::default()
    }

    /// Appends a string member.
    pub fn str(&mut self, key: &str, value: &str) -> &mut Self {
        self.push(key, JsonValue::Str(value.to_owned()))
    }

    /// Appends an unsigned integer member.
    pub fn u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.push(key, JsonValue::UInt(value))
    }

    /// Appends a floating-point member (non-finite values render as `null`).
    pub fn f64(&mut self, key: &str, value: f64) -> &mut Self {
        self.push(key, JsonValue::Float(value))
    }

    /// Appends a floating-point member only when `value` is finite. Derived
    /// ratios (speedups, rates) that degenerate — a zero-length wall-clock
    /// interval, an empty denominator — are *omitted* rather than rendered
    /// as `null`, so consumers can treat member presence as validity.
    pub fn f64_opt(&mut self, key: &str, value: f64) -> &mut Self {
        if value.is_finite() {
            self.f64(key, value)
        } else {
            self
        }
    }

    /// Appends a boolean member.
    pub fn bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.push(key, JsonValue::Bool(value))
    }

    /// Appends a nested object member.
    pub fn object(&mut self, key: &str, value: JsonObject) -> &mut Self {
        self.push(key, JsonValue::Obj(value))
    }

    /// Appends an array-of-objects member.
    pub fn array(&mut self, key: &str, values: Vec<JsonObject>) -> &mut Self {
        self.push(key, JsonValue::Arr(values))
    }

    fn push(&mut self, key: &str, value: JsonValue) -> &mut Self {
        self.entries.push((key.to_owned(), value));
        self
    }

    /// Renders the object as pretty-printed JSON with a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        if self.entries.is_empty() {
            out.push_str("{}");
            return;
        }
        out.push_str("{\n");
        let pad = "  ".repeat(indent + 1);
        for (i, (key, value)) in self.entries.iter().enumerate() {
            let _ = write!(out, "{pad}\"{}\": ", json_escape(key));
            match value {
                JsonValue::Str(s) => {
                    let _ = write!(out, "\"{}\"", json_escape(s));
                }
                JsonValue::UInt(n) => {
                    let _ = write!(out, "{n}");
                }
                JsonValue::Float(f) if f.is_finite() => {
                    let _ = write!(out, "{f}");
                }
                JsonValue::Float(_) => out.push_str("null"),
                JsonValue::Bool(b) => {
                    let _ = write!(out, "{b}");
                }
                JsonValue::Obj(o) => o.write(out, indent + 1),
                JsonValue::Arr(items) => {
                    if items.is_empty() {
                        out.push_str("[]");
                    } else {
                        out.push_str("[\n");
                        let item_pad = "  ".repeat(indent + 2);
                        for (j, item) in items.iter().enumerate() {
                            out.push_str(&item_pad);
                            item.write(out, indent + 2);
                            if j + 1 < items.len() {
                                out.push(',');
                            }
                            out.push('\n');
                        }
                        let _ = write!(out, "{pad}]");
                    }
                }
            }
            if i + 1 < self.entries.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str(&"  ".repeat(indent));
        out.push('}');
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Version stamped into every `BENCH_*.json` artifact. Bump when the shared
/// envelope (not a bench's payload) changes shape.
pub const BENCH_SCHEMA_VERSION: u64 = 1;

/// Number of hardware threads the host exposes (1 if unknown).
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Peak resident-set size of this process in bytes, read from
/// `/proc/self/status` (`VmHWM`). `None` where procfs is unavailable — the
/// caller omits the field rather than guessing.
pub fn peak_rss_bytes() -> Option<u64> {
    let text = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = text.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kib: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kib * 1024)
}

/// The one emitter behind every `BENCH_*.json` file. Each bench used to
/// hand-assemble its own root object; this wraps [`JsonObject`] with the
/// shared envelope — `bench` name, `schema_version`, `host_parallelism`,
/// `peak_rss_bytes` (when procfs is available), and a caller-supplied
/// timestamp — so all artifacts agree on those fields and the payload stays
/// bench-specific. Peak RSS is sampled at assembly time, which benches do
/// last, so it reflects the run's high-water mark.
///
/// The timestamp is passed in (not read from the clock here) so artifact
/// assembly itself stays deterministic and testable; pass `""` to omit it.
///
/// # Examples
///
/// ```
/// use dvs_stats::report::BenchArtifact;
///
/// let mut a = BenchArtifact::new("fig3", "");
/// a.body().u64("cells", 144);
/// let s = a.render();
/// assert!(s.contains("\"bench\": \"fig3\""));
/// assert!(s.contains("\"schema_version\": 1"));
/// assert!(s.contains("\"host_parallelism\""));
/// ```
#[derive(Debug, Clone)]
pub struct BenchArtifact {
    body: JsonObject,
}

impl BenchArtifact {
    /// Starts an artifact for bench `name` with the shared envelope fields.
    pub fn new(name: &str, timestamp: &str) -> Self {
        let mut body = JsonObject::new();
        body.str("bench", name)
            .u64("schema_version", BENCH_SCHEMA_VERSION)
            .u64("host_parallelism", host_parallelism() as u64);
        if let Some(rss) = peak_rss_bytes() {
            body.u64("peak_rss_bytes", rss);
        }
        if !timestamp.is_empty() {
            body.str("timestamp", timestamp);
        }
        BenchArtifact { body }
    }

    /// The payload object; append bench-specific members here.
    pub fn body(&mut self) -> &mut JsonObject {
        &mut self.body
    }

    /// Appends the optional `telemetry` summary block (event counts, metric
    /// trees). Benches that ran without a telemetry sink never call this, so
    /// the member is absent — omitted, not `null` — in their artifacts.
    pub fn telemetry(&mut self, summary: JsonObject) -> &mut Self {
        self.body.object("telemetry", summary);
        self
    }

    /// Renders the artifact as pretty-printed JSON.
    pub fn render(&self) -> String {
        self.body.render()
    }

    /// Writes the artifact to `path` and prints a `wrote <path>` line.
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be written (benches treat that as fatal).
    pub fn write(&self, path: &str) {
        std::fs::write(path, self.render()).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {path}");
    }
}

/// A plain key/value listing (used for the paper's parameter tables).
#[derive(Debug, Clone, Default)]
pub struct ParamTable {
    title: String,
    rows: Vec<(String, String)>,
}

impl ParamTable {
    /// Creates an empty listing titled `title`.
    pub fn new(title: &str) -> Self {
        ParamTable {
            title: title.to_owned(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, key: &str, value: impl std::fmt::Display) -> &mut Self {
        self.rows.push((key.to_owned(), value.to_string()));
        self
    }

    /// Renders the listing as ASCII text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let w = self.rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
        for (k, v) in &self.rows {
            let _ = writeln!(out, "{:w$}  {}", k, v);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_is_relative_to_first_bar() {
        let mut t = StackedTable::new("t", &["a", "b"]);
        t.bar("k", "M", &[50.0, 50.0]);
        t.bar("k", "DS", &[25.0, 25.0]);
        assert_eq!(t.normalized_total("k", "M"), Some(100.0));
        assert_eq!(t.normalized_total("k", "DS"), Some(50.0));
    }

    #[test]
    fn missing_group_or_bar_is_none() {
        let t = StackedTable::new("t", &["a"]);
        assert_eq!(t.normalized_total("nope", "M"), None);
    }

    #[test]
    fn render_contains_all_names() {
        let mut t = StackedTable::new("Exec", &["c1"]);
        t.bar("g1", "M", &[1.0]);
        t.bar("g1", "DS0", &[2.0]);
        t.bar("g2", "M", &[3.0]);
        let s = t.render();
        assert!(s.contains("Exec"));
        assert!(s.contains("g1"));
        assert!(s.contains("g2"));
        assert!(s.contains("DS0"));
        assert!(s.contains("200.0%"));
    }

    #[test]
    fn geomean_of_equal_ratios() {
        let mut t = StackedTable::new("t", &["a"]);
        t.bar("g1", "M", &[100.0]);
        t.bar("g1", "DS", &[80.0]);
        t.bar("g2", "M", &[10.0]);
        t.bar("g2", "DS", &[8.0]);
        let g = t.geomean_total("DS").unwrap();
        assert!((g - 80.0).abs() < 1e-9);
    }

    #[test]
    fn geomean_mixes_multiplicatively() {
        let mut t = StackedTable::new("t", &["a"]);
        t.bar("g1", "M", &[100.0]);
        t.bar("g1", "DS", &[50.0]);
        t.bar("g2", "M", &[100.0]);
        t.bar("g2", "DS", &[200.0]);
        let g = t.geomean_total("DS").unwrap();
        assert!((g - 100.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "components")]
    fn wrong_arity_panics() {
        let mut t = StackedTable::new("t", &["a", "b"]);
        t.bar("g", "M", &[1.0]);
    }

    #[test]
    fn json_object_renders_nested_structure() {
        let mut run = JsonObject::new();
        run.u64("cycles", 1234).bool("invariants", true);
        let mut arr_item = JsonObject::new();
        arr_item.str("kernel", "tatas counter");
        let mut root = JsonObject::new();
        root.str("bench", "chaos")
            .f64("overhead", 1.25)
            .object("run", run)
            .array("kernels", vec![arr_item]);
        let s = root.render();
        assert!(s.contains("\"bench\": \"chaos\""));
        assert!(s.contains("\"overhead\": 1.25"));
        assert!(s.contains("\"cycles\": 1234"));
        assert!(s.contains("\"invariants\": true"));
        assert!(s.contains("\"kernel\": \"tatas counter\""));
        assert!(s.ends_with("}\n"));
        // Balanced braces/brackets — a cheap well-formedness check.
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert_eq!(s.matches('[').count(), s.matches(']').count());
    }

    #[test]
    fn json_escapes_quotes_and_control_chars() {
        let mut o = JsonObject::new();
        o.str("msg", "a \"quoted\"\nline\\");
        let s = o.render();
        assert!(s.contains(r#""a \"quoted\"\nline\\""#));
    }

    #[test]
    fn json_non_finite_floats_render_as_null() {
        let mut o = JsonObject::new();
        o.f64("nan", f64::NAN).f64("inf", f64::INFINITY);
        let s = o.render();
        assert!(s.contains("\"nan\": null"));
        assert!(s.contains("\"inf\": null"));
    }

    #[test]
    fn optional_floats_are_omitted_not_null() {
        let mut o = JsonObject::new();
        o.f64_opt("kept", 1.5)
            .f64_opt("nan", f64::NAN)
            .f64_opt("inf", f64::INFINITY);
        let s = o.render();
        assert!(s.contains("\"kept\": 1.5"));
        assert!(!s.contains("nan"));
        assert!(!s.contains("inf"));
        assert!(!s.contains("null"));
    }

    #[test]
    fn bench_artifact_telemetry_block_is_optional() {
        // Absent unless attached — omitted, not null.
        let s = BenchArtifact::new("fig3", "").render();
        assert!(!s.contains("telemetry"));
        let mut summary = JsonObject::new();
        summary.u64("events", 42);
        let mut a = BenchArtifact::new("fig3", "");
        a.telemetry(summary);
        let s = a.render();
        assert!(s.contains("\"telemetry\": {"));
        assert!(s.contains("\"events\": 42"));
    }

    #[test]
    fn peak_rss_is_plausible_and_in_the_envelope() {
        // procfs hosts (the CI image is Linux) must report a nonzero peak
        // that covers at least the binary's own footprint.
        if let Some(rss) = peak_rss_bytes() {
            assert!(rss > 1 << 20, "peak RSS {rss} implausibly small");
            let s = BenchArtifact::new("x", "").render();
            assert!(s.contains("\"peak_rss_bytes\""));
        }
    }

    #[test]
    fn bench_artifact_has_shared_envelope() {
        let mut a = BenchArtifact::new("campaign", "2026-01-01");
        a.body().u64("runs", 3);
        let s = a.render();
        assert!(s.contains("\"bench\": \"campaign\""));
        assert!(s.contains(&format!("\"schema_version\": {BENCH_SCHEMA_VERSION}")));
        assert!(s.contains("\"host_parallelism\""));
        assert!(s.contains("\"timestamp\": \"2026-01-01\""));
        assert!(s.contains("\"runs\": 3"));
        // Empty timestamp omits the field entirely.
        let s = BenchArtifact::new("campaign", "").render();
        assert!(!s.contains("timestamp"));
    }

    #[test]
    fn param_table_renders_rows() {
        let mut p = ParamTable::new("Table 1");
        p.row("Core frequency", "2 GHz").row("L1", "32KB");
        let s = p.render();
        assert!(s.contains("Table 1"));
        assert!(s.contains("2 GHz"));
        assert!(s.contains("32KB"));
    }
}
