//! Two-tier keyed storage: a flat dense span plus a sparse spill map.
//!
//! The protocol controllers and the directory/registry banks key their
//! per-line state by address. Workload layouts are small and contiguous
//! (`LayoutBuilder` bump-allocates from `LINE_BYTES` upward), so almost
//! every key a bank ever sees falls in a span that is known at construction
//! time — those live in a flat array indexed by ordinal, with no hashing
//! and no pointer chasing. Keys outside the span (thread-private allocation
//! pools live at `1 << 40`, far above any layout) spill to a `HashMap`.
//!
//! A [`SpanMap`] hashes canonically — entries sorted by key, length-prefixed
//! — so replacing a `HashMap` with one leaves model-checking fingerprints
//! byte-identical.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// A map from `u64` keys to `T` with a dense fast path.
///
/// Keys of the form `base + i * stride` for `i < slots` are stored in a flat
/// array at index `i`; all other keys fall back to a sparse map. A banked
/// structure that only homes keys congruent to `bank` modulo `banks` uses
/// `base = bank, stride = banks` for a table with no unreachable slots.
///
/// # Examples
///
/// ```
/// use dvs_mem::SpanMap;
///
/// let mut m: SpanMap<&str> = SpanMap::with_span(1, 2, 8); // keys 1,3,..,15
/// *m.or_insert_with(3, || "dense") = "dense";
/// *m.or_insert_with(1 << 40, || "sparse") = "sparse";
/// assert_eq!(m.get(3), Some(&"dense"));
/// assert_eq!(m.get(1 << 40), Some(&"sparse"));
/// assert_eq!(m.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct SpanMap<T> {
    base: u64,
    stride: u64,
    dense: Vec<Option<T>>,
    dense_len: usize,
    sparse: HashMap<u64, T>,
}

impl<T> Default for SpanMap<T> {
    fn default() -> Self {
        Self::sparse_only()
    }
}

impl<T> SpanMap<T> {
    /// Creates a map with no dense span: every key uses the sparse tier.
    pub fn sparse_only() -> Self {
        SpanMap {
            base: 0,
            stride: 1,
            dense: Vec::new(),
            dense_len: 0,
            sparse: HashMap::new(),
        }
    }

    /// Creates a map whose dense tier covers the `slots` keys
    /// `base, base + stride, …, base + (slots - 1) * stride`.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero.
    pub fn with_span(base: u64, stride: u64, slots: usize) -> Self {
        assert!(stride > 0, "zero stride");
        let mut dense = Vec::new();
        dense.resize_with(slots, || None);
        SpanMap {
            base,
            stride,
            dense,
            dense_len: 0,
            sparse: HashMap::new(),
        }
    }

    /// The dense slot for `key`, if it falls in the span.
    fn slot(&self, key: u64) -> Option<usize> {
        let off = key.checked_sub(self.base)?;
        if off % self.stride != 0 {
            return None;
        }
        let i = (off / self.stride) as usize;
        (i < self.dense.len()).then_some(i)
    }

    /// Looks up `key`.
    pub fn get(&self, key: u64) -> Option<&T> {
        match self.slot(key) {
            Some(i) => self.dense[i].as_ref(),
            None => self.sparse.get(&key),
        }
    }

    /// Looks up `key` mutably.
    pub fn get_mut(&mut self, key: u64) -> Option<&mut T> {
        match self.slot(key) {
            Some(i) => self.dense[i].as_mut(),
            None => self.sparse.get_mut(&key),
        }
    }

    /// Returns the entry for `key`, inserting `make()` if absent.
    pub fn or_insert_with(&mut self, key: u64, make: impl FnOnce() -> T) -> &mut T {
        match self.slot(key) {
            Some(i) => {
                let slot = &mut self.dense[i];
                if slot.is_none() {
                    *slot = Some(make());
                    self.dense_len += 1;
                }
                slot.as_mut().expect("just filled")
            }
            None => self.sparse.entry(key).or_insert_with(make),
        }
    }

    /// Number of present entries.
    pub fn len(&self) -> usize {
        self.dense_len + self.sparse.len()
    }

    /// Whether no entries are present.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates present entries. Dense entries come first in ascending key
    /// order, then sparse entries in arbitrary order — callers that need a
    /// canonical order must sort (as [`SpanMap::hash`] does).
    pub fn iter(&self) -> impl Iterator<Item = (u64, &T)> + '_ {
        self.dense
            .iter()
            .enumerate()
            .filter_map(move |(i, slot)| {
                slot.as_ref()
                    .map(|v| (self.base + i as u64 * self.stride, v))
            })
            .chain(self.sparse.iter().map(|(&k, v)| (k, v)))
    }
}

/// Canonical hash: entries sorted by key, length-prefixed. Matches what a
/// plain `HashMap` version hashed after sorting, so swapping the storage
/// leaves fingerprints unchanged.
impl<T: Hash> Hash for SpanMap<T> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_usize(self.len());
        let mut sparse: Vec<(&u64, &T)> = self.sparse.iter().collect();
        sparse.sort_unstable_by_key(|(k, _)| **k);
        let mut spill = sparse.into_iter().peekable();
        for (i, slot) in self.dense.iter().enumerate() {
            if let Some(v) = slot {
                let key = self.base + i as u64 * self.stride;
                while let Some(&(&k, sv)) = spill.peek() {
                    if k >= key {
                        break;
                    }
                    k.hash(state);
                    sv.hash(state);
                    spill.next();
                }
                key.hash(state);
                v.hash(state);
            }
        }
        for (&k, sv) in spill {
            k.hash(state);
            sv.hash(state);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::DefaultHasher;

    fn fingerprint<T: Hash>(m: &SpanMap<T>) -> u64 {
        let mut h = DefaultHasher::new();
        m.hash(&mut h);
        h.finish()
    }

    #[test]
    fn dense_and_sparse_tiers_roundtrip() {
        let mut m: SpanMap<u32> = SpanMap::with_span(2, 4, 4); // 2, 6, 10, 14
        *m.or_insert_with(6, || 0) = 66;
        *m.or_insert_with(18, || 0) = 18; // past the span
        *m.or_insert_with(4, || 0) = 44; // wrong residue
        *m.or_insert_with(1, || 0) = 11; // below base
        assert_eq!(m.get(6), Some(&66));
        assert_eq!(m.get(18), Some(&18));
        assert_eq!(m.get(4), Some(&44));
        assert_eq!(m.get(1), Some(&11));
        assert_eq!(m.get(10), None);
        assert_eq!(m.len(), 4);
        *m.get_mut(6).unwrap() += 1;
        assert_eq!(m.get(6), Some(&67));
    }

    #[test]
    fn or_insert_keeps_existing() {
        let mut m: SpanMap<u32> = SpanMap::with_span(0, 1, 8);
        *m.or_insert_with(3, || 1) = 9;
        assert_eq!(*m.or_insert_with(3, || 1), 9);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn iter_visits_every_entry_once() {
        let mut m: SpanMap<u64> = SpanMap::with_span(0, 2, 8);
        for k in [0u64, 4, 14, 3, 1 << 50] {
            *m.or_insert_with(k, || 0) = k;
        }
        let mut seen: Vec<u64> = m.iter().map(|(k, _)| k).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 3, 4, 14, 1 << 50]);
        assert!(m.iter().all(|(k, &v)| k == v));
    }

    #[test]
    fn hash_is_layout_independent() {
        // The same entries must hash identically whether they sit in the
        // dense tier, the sparse tier, or a mix — the canonical form is the
        // sorted entry list, not the storage.
        let keys = [3u64, 9, 15, 1 << 41, 2];
        let mut all_sparse: SpanMap<u64> = SpanMap::sparse_only();
        let mut mixed: SpanMap<u64> = SpanMap::with_span(3, 6, 3); // 3, 9, 15
        let mut shifted: SpanMap<u64> = SpanMap::with_span(0, 1, 64);
        for &k in &keys {
            *all_sparse.or_insert_with(k, || 0) = k * 7;
            *mixed.or_insert_with(k, || 0) = k * 7;
            *shifted.or_insert_with(k, || 0) = k * 7;
        }
        assert_eq!(fingerprint(&all_sparse), fingerprint(&mixed));
        assert_eq!(fingerprint(&all_sparse), fingerprint(&shifted));
        *mixed.or_insert_with(100, || 1) = 1;
        assert_ne!(fingerprint(&all_sparse), fingerprint(&mixed));
    }

    #[test]
    fn empty_spans_behave() {
        let m: SpanMap<u8> = SpanMap::sparse_only();
        assert!(m.is_empty());
        assert_eq!(m.get(0), None);
        assert_eq!(m.iter().count(), 0);
    }
}
