//! Set-associative cache geometry.

use crate::addr::{LineAddr, LINE_BYTES};

/// Geometry of a set-associative cache with 64-byte lines.
///
/// # Examples
///
/// ```
/// use dvs_mem::{CacheGeometry, LineAddr};
///
/// let l1 = CacheGeometry::new(32 * 1024, 4); // the paper's 32KB 4-way L1
/// assert_eq!(l1.sets(), 128);
/// assert_eq!(l1.lines(), 512);
/// let line = LineAddr::new(0x1234);
/// assert!(l1.set_index(line) < l1.sets());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    size_bytes: u64,
    assoc: usize,
    sets: usize,
}

impl CacheGeometry {
    /// Creates a geometry for a cache of `size_bytes` with `assoc` ways.
    ///
    /// # Panics
    ///
    /// Panics if the parameters do not describe a power-of-two number of
    /// sets, or if `assoc` is zero.
    pub fn new(size_bytes: u64, assoc: usize) -> Self {
        assert!(assoc > 0, "associativity must be positive");
        let lines = size_bytes / LINE_BYTES;
        assert!(
            lines > 0 && lines.is_multiple_of(assoc as u64),
            "cache of {size_bytes} bytes cannot be {assoc}-way"
        );
        let sets = (lines / assoc as u64) as usize;
        assert!(
            sets.is_power_of_two(),
            "set count {sets} not a power of two"
        );
        CacheGeometry {
            size_bytes,
            assoc,
            sets,
        }
    }

    /// Total capacity in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Number of ways per set.
    pub fn assoc(&self) -> usize {
        self.assoc
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Total number of lines.
    pub fn lines(&self) -> usize {
        self.sets * self.assoc
    }

    /// The set a line maps to.
    pub fn set_index(&self, line: LineAddr) -> usize {
        (line.raw() % self.sets as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l1_geometry_matches_paper() {
        let g = CacheGeometry::new(32 * 1024, 4);
        assert_eq!(g.sets(), 128);
        assert_eq!(g.lines(), 512);
        assert_eq!(g.size_bytes(), 32 * 1024);
        assert_eq!(g.assoc(), 4);
    }

    #[test]
    fn consecutive_lines_spread_over_sets() {
        let g = CacheGeometry::new(8 * 1024, 2);
        let s0 = g.set_index(LineAddr::new(0));
        let s1 = g.set_index(LineAddr::new(1));
        assert_ne!(s0, s1);
        assert_eq!(g.set_index(LineAddr::new(g.sets() as u64)), s0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_rejected() {
        CacheGeometry::new(3 * 64, 1);
    }

    #[test]
    #[should_panic(expected = "associativity")]
    fn zero_assoc_rejected() {
        CacheGeometry::new(1024, 0);
    }
}
