//! Address types.
//!
//! The simulated machine has a 64-bit byte-addressed physical address space.
//! Cache lines are 64 bytes (Table 1); the architectural word — DeNovo's
//! coherence granularity — is 8 bytes, so a line holds eight words. All
//! memory operations in the VM are word-aligned word accesses (the kernels
//! operate on pointers and counters, which are naturally word-sized).

use std::fmt;

/// Bytes per cache line (paper Table 1: 64-byte lines).
pub const LINE_BYTES: u64 = 64;
/// Bytes per architectural word (DeNovo's coherence granularity).
pub const WORD_BYTES: u64 = 8;
/// Words per cache line.
pub const WORDS_PER_LINE: usize = (LINE_BYTES / WORD_BYTES) as usize;

/// A byte address.
///
/// # Examples
///
/// ```
/// use dvs_mem::{Addr, LINE_BYTES};
///
/// let a = Addr::new(0x1048);
/// assert_eq!(a.line().base().raw(), 0x1040);
/// assert_eq!(a.word().index_in_line(), 1);
/// assert_eq!(a.offset_in_line(), 0x8);
/// # let _ = LINE_BYTES;
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Addr(u64);

impl Addr {
    /// Wraps a raw byte address.
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// The raw byte address.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The line containing this address.
    pub const fn line(self) -> LineAddr {
        LineAddr(self.0 / LINE_BYTES)
    }

    /// The word containing this address.
    pub const fn word(self) -> WordAddr {
        WordAddr(self.0 / WORD_BYTES)
    }

    /// Byte offset within the containing line.
    pub const fn offset_in_line(self) -> u64 {
        self.0 % LINE_BYTES
    }

    /// Whether the address is word-aligned.
    pub const fn is_word_aligned(self) -> bool {
        self.0.is_multiple_of(WORD_BYTES)
    }

    /// Address displaced by `bytes` (may be negative).
    pub fn offset(self, bytes: i64) -> Addr {
        Addr(self.0.wrapping_add(bytes as u64))
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// Telemetry subjects are byte addresses; each address type renders as the
/// first byte it covers.
impl dvs_telemetry::TelemetryKey for Addr {
    fn telemetry_key(&self) -> u64 {
        self.raw()
    }
}

impl dvs_telemetry::TelemetryKey for WordAddr {
    fn telemetry_key(&self) -> u64 {
        self.base().raw()
    }
}

impl dvs_telemetry::TelemetryKey for LineAddr {
    fn telemetry_key(&self) -> u64 {
        self.base().raw()
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

/// A word-granularity address (byte address divided by [`WORD_BYTES`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct WordAddr(u64);

impl WordAddr {
    /// Wraps a raw word index.
    pub const fn new(index: u64) -> Self {
        WordAddr(index)
    }

    /// The raw word index.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The first byte of this word.
    pub const fn base(self) -> Addr {
        Addr(self.0 * WORD_BYTES)
    }

    /// The line containing this word.
    pub const fn line(self) -> LineAddr {
        LineAddr(self.0 / WORDS_PER_LINE as u64)
    }

    /// This word's position within its line, `0..WORDS_PER_LINE`.
    pub const fn index_in_line(self) -> usize {
        (self.0 % WORDS_PER_LINE as u64) as usize
    }
}

impl fmt::Display for WordAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{:#x}", self.0 * WORD_BYTES)
    }
}

/// A line-granularity address (byte address divided by [`LINE_BYTES`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Wraps a raw line index.
    pub const fn new(index: u64) -> Self {
        LineAddr(index)
    }

    /// The raw line index.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The first byte of this line.
    pub const fn base(self) -> Addr {
        Addr(self.0 * LINE_BYTES)
    }

    /// The `i`-th word of this line.
    ///
    /// # Panics
    ///
    /// Panics if `i >= WORDS_PER_LINE`.
    pub fn word(self, i: usize) -> WordAddr {
        assert!(i < WORDS_PER_LINE, "word index {i} out of line");
        WordAddr(self.0 * WORDS_PER_LINE as u64 + i as u64)
    }

    /// Iterates the words of this line.
    pub fn words(self) -> impl Iterator<Item = WordAddr> {
        (0..WORDS_PER_LINE).map(move |i| self.word(i))
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{:#x}", self.0 * LINE_BYTES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_and_word_of_byte_address() {
        let a = Addr::new(0x1000 + 63);
        assert_eq!(a.line(), LineAddr::new(0x1000 / 64));
        assert_eq!(a.word().index_in_line(), 7);
        assert!(!Addr::new(3).is_word_aligned());
        assert!(Addr::new(16).is_word_aligned());
    }

    #[test]
    fn word_line_roundtrip() {
        for raw in [0u64, 7, 8, 63, 64, 1000, u32::MAX as u64] {
            let w = WordAddr::new(raw);
            let l = w.line();
            let idx = w.index_in_line();
            assert_eq!(l.word(idx), w);
            assert_eq!(w.base().word(), w);
        }
    }

    #[test]
    fn line_words_enumerates_all() {
        let l = LineAddr::new(5);
        let words: Vec<WordAddr> = l.words().collect();
        assert_eq!(words.len(), WORDS_PER_LINE);
        assert!(words.iter().all(|w| w.line() == l));
        assert_eq!(words[0].base().raw(), 5 * LINE_BYTES);
    }

    #[test]
    fn offset_moves_bytes() {
        let a = Addr::new(100);
        assert_eq!(a.offset(8).raw(), 108);
        assert_eq!(a.offset(-4).raw(), 96);
    }

    #[test]
    #[should_panic(expected = "out of line")]
    fn word_index_bounds() {
        LineAddr::new(0).word(WORDS_PER_LINE);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Addr::new(0x40).to_string(), "0x40");
        assert_eq!(LineAddr::new(1).to_string(), "l0x40");
        assert_eq!(WordAddr::new(1).to_string(), "w0x8");
    }
}
