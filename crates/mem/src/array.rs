//! A generic set-associative tag array with true-LRU replacement.
//!
//! The protocol controllers store their per-line coherence metadata (MESI
//! state + data, or DeNovo per-word states + data) as the array's payload
//! type. Victim selection can be filtered: a line that is mid-transaction
//! (MSHR pending, registered word with an in-flight writeback, ...) can be
//! declared non-evictable by the caller.

use crate::addr::LineAddr;
use crate::geometry::CacheGeometry;
use std::hash::{Hash, Hasher};

/// A resident cache line: its address and the protocol-specific payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheLine<L> {
    /// The line's address.
    pub addr: LineAddr,
    /// Protocol-specific per-line state (and data).
    pub payload: L,
    lru: u64,
}

/// Outcome of [`CacheArray::insert_filtered`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InsertOutcome<L> {
    /// The line was inserted into a free (or same-address) way.
    Inserted,
    /// The line was inserted after evicting the returned victim.
    Evicted(LineAddr, L),
    /// No way could be freed (every candidate was vetoed); the payload is
    /// handed back and the array is unchanged.
    NoVictim(L),
}

/// A set-associative array of `L`-payload lines with true-LRU replacement.
///
/// # Examples
///
/// ```
/// use dvs_mem::{CacheArray, CacheGeometry, LineAddr};
///
/// let mut cache: CacheArray<u32> = CacheArray::new(CacheGeometry::new(128, 2));
/// cache.insert_filtered(LineAddr::new(1), 11, |_, _| true);
/// assert_eq!(cache.get(LineAddr::new(1)), Some(&11));
/// assert_eq!(cache.get(LineAddr::new(2)), None);
/// ```
#[derive(Debug, Clone)]
pub struct CacheArray<L> {
    geometry: CacheGeometry,
    sets: Vec<Vec<CacheLine<L>>>,
    clock: u64,
}

impl<L> CacheArray<L> {
    /// Creates an empty array with the given geometry.
    pub fn new(geometry: CacheGeometry) -> Self {
        CacheArray {
            geometry,
            sets: (0..geometry.sets()).map(|_| Vec::new()).collect(),
            clock: 0,
        }
    }

    /// The array's geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Whether no lines are resident.
    pub fn is_empty(&self) -> bool {
        self.sets.iter().all(Vec::is_empty)
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Immutable payload lookup. Does **not** update LRU state.
    pub fn get(&self, addr: LineAddr) -> Option<&L> {
        let set = &self.sets[self.geometry.set_index(addr)];
        set.iter().find(|l| l.addr == addr).map(|l| &l.payload)
    }

    /// Mutable payload lookup; marks the line most-recently-used.
    pub fn get_mut(&mut self, addr: LineAddr) -> Option<&mut L> {
        let stamp = self.tick();
        let set_idx = self.geometry.set_index(addr);
        let set = &mut self.sets[set_idx];
        let line = set.iter_mut().find(|l| l.addr == addr)?;
        line.lru = stamp;
        Some(&mut line.payload)
    }

    /// Marks a line most-recently-used without touching its payload.
    pub fn touch(&mut self, addr: LineAddr) {
        let stamp = self.tick();
        let set_idx = self.geometry.set_index(addr);
        if let Some(line) = self.sets[set_idx].iter_mut().find(|l| l.addr == addr) {
            line.lru = stamp;
        }
    }

    /// Whether a line is resident.
    pub fn contains(&self, addr: LineAddr) -> bool {
        self.get(addr).is_some()
    }

    /// Inserts `payload` for `addr`, evicting the least-recently-used line
    /// for which `can_evict` returns `true` if the set is full.
    ///
    /// If `addr` is already resident its payload is **replaced** (and the
    /// line becomes most-recently-used); the old payload is returned as an
    /// eviction of the same address.
    pub fn insert_filtered(
        &mut self,
        addr: LineAddr,
        payload: L,
        mut can_evict: impl FnMut(LineAddr, &L) -> bool,
    ) -> InsertOutcome<L> {
        let stamp = self.tick();
        let assoc = self.geometry.assoc();
        let set_idx = self.geometry.set_index(addr);
        let set = &mut self.sets[set_idx];

        if let Some(line) = set.iter_mut().find(|l| l.addr == addr) {
            line.lru = stamp;
            let old = std::mem::replace(&mut line.payload, payload);
            return InsertOutcome::Evicted(addr, old);
        }

        if set.len() < assoc {
            set.push(CacheLine {
                addr,
                payload,
                lru: stamp,
            });
            return InsertOutcome::Inserted;
        }

        // Choose the LRU way among evictable candidates.
        let victim = set
            .iter()
            .enumerate()
            .filter(|(_, l)| can_evict(l.addr, &l.payload))
            .min_by_key(|(_, l)| l.lru)
            .map(|(i, _)| i);
        match victim {
            Some(i) => {
                let old = std::mem::replace(
                    &mut set[i],
                    CacheLine {
                        addr,
                        payload,
                        lru: stamp,
                    },
                );
                InsertOutcome::Evicted(old.addr, old.payload)
            }
            None => InsertOutcome::NoVictim(payload),
        }
    }

    /// Removes a line, returning its payload.
    pub fn remove(&mut self, addr: LineAddr) -> Option<L> {
        let set_idx = self.geometry.set_index(addr);
        let set = &mut self.sets[set_idx];
        let pos = set.iter().position(|l| l.addr == addr)?;
        Some(set.swap_remove(pos).payload)
    }

    /// Iterates all resident lines (no particular order).
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, &L)> {
        self.sets
            .iter()
            .flat_map(|s| s.iter().map(|l| (l.addr, &l.payload)))
    }

    /// Iterates all resident lines mutably (no particular order; does not
    /// update LRU state).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (LineAddr, &mut L)> {
        self.sets
            .iter_mut()
            .flat_map(|s| s.iter_mut().map(|l| (l.addr, &mut l.payload)))
    }
}

/// Hashes the array's *replacement-relevant* state canonically: for each set
/// (in index order), the resident lines sorted by address, each hashed as
/// `(addr, lru-rank-within-set, payload)`. Absolute `lru` stamps and the
/// global `clock` are excluded — two arrays that would make identical
/// eviction decisions forever hash identically even if they were touched a
/// different number of times.
impl<L: Hash> Hash for CacheArray<L> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.geometry.hash(state);
        for set in &self.sets {
            // Rank of each line's lru stamp within its set (0 = LRU).
            let mut stamps: Vec<u64> = set.iter().map(|l| l.lru).collect();
            stamps.sort_unstable();
            let mut entries: Vec<&CacheLine<L>> = set.iter().collect();
            entries.sort_unstable_by_key(|l| l.addr);
            state.write_usize(entries.len());
            for line in entries {
                line.addr.hash(state);
                let rank = stamps.iter().position(|&s| s == line.lru).unwrap();
                state.write_usize(rank);
                line.payload.hash(state);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CacheArray<u32> {
        // 2 ways, 2 sets.
        CacheArray::new(CacheGeometry::new(4 * 64, 2))
    }

    fn line(i: u64) -> LineAddr {
        LineAddr::new(i)
    }

    #[test]
    fn insert_and_lookup() {
        let mut c = small();
        assert!(matches!(
            c.insert_filtered(line(0), 10, |_, _| true),
            InsertOutcome::Inserted
        ));
        assert_eq!(c.get(line(0)), Some(&10));
        assert!(c.contains(line(0)));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn same_address_replaces() {
        let mut c = small();
        c.insert_filtered(line(0), 1, |_, _| true);
        match c.insert_filtered(line(0), 2, |_, _| true) {
            InsertOutcome::Evicted(a, old) => {
                assert_eq!(a, line(0));
                assert_eq!(old, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(c.get(line(0)), Some(&2));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn evicts_lru() {
        let mut c = small();
        // lines 0, 2, 4 all map to set 0 (2 sets).
        c.insert_filtered(line(0), 0, |_, _| true);
        c.insert_filtered(line(2), 2, |_, _| true);
        c.get_mut(line(0)); // make line 0 MRU
        match c.insert_filtered(line(4), 4, |_, _| true) {
            InsertOutcome::Evicted(a, p) => {
                assert_eq!(a, line(2));
                assert_eq!(p, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(c.contains(line(0)));
        assert!(c.contains(line(4)));
    }

    #[test]
    fn touch_updates_lru() {
        let mut c = small();
        c.insert_filtered(line(0), 0, |_, _| true);
        c.insert_filtered(line(2), 2, |_, _| true);
        c.touch(line(0));
        match c.insert_filtered(line(4), 4, |_, _| true) {
            InsertOutcome::Evicted(a, _) => assert_eq!(a, line(2)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn eviction_filter_vetoes() {
        let mut c = small();
        c.insert_filtered(line(0), 0, |_, _| true);
        c.insert_filtered(line(2), 2, |_, _| true);
        // Veto everything: insertion must fail and give the payload back.
        match c.insert_filtered(line(4), 4, |_, _| false) {
            InsertOutcome::NoVictim(p) => assert_eq!(p, 4),
            other => panic!("unexpected {other:?}"),
        }
        assert!(!c.contains(line(4)));
        // Veto only line 0: line 2 must be evicted even though 0 is older.
        c.get_mut(line(2)); // 0 is LRU now
        match c.insert_filtered(line(4), 4, |a, _| a != line(0)) {
            InsertOutcome::Evicted(a, _) => assert_eq!(a, line(2)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn remove_returns_payload() {
        let mut c = small();
        c.insert_filtered(line(1), 7, |_, _| true);
        assert_eq!(c.remove(line(1)), Some(7));
        assert_eq!(c.remove(line(1)), None);
        assert!(c.is_empty());
    }

    #[test]
    fn iter_visits_everything() {
        let mut c = small();
        c.insert_filtered(line(0), 0, |_, _| true);
        c.insert_filtered(line(1), 1, |_, _| true);
        c.insert_filtered(line(2), 2, |_, _| true);
        let mut seen: Vec<u64> = c.iter().map(|(a, _)| a.raw()).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2]);
    }

    #[test]
    fn sets_are_independent() {
        let mut c = small();
        // Set 0 full.
        c.insert_filtered(line(0), 0, |_, _| true);
        c.insert_filtered(line(2), 2, |_, _| true);
        // Set 1 still has room: no eviction.
        assert!(matches!(
            c.insert_filtered(line(1), 1, |_, _| true),
            InsertOutcome::Inserted
        ));
        assert_eq!(c.len(), 3);
    }
}
