//! Miss-status holding registers.
//!
//! An MSHR file tracks outstanding misses keyed by address (line address for
//! MESI, word address for DeNovo). The paper does not evaluate MSHR-capacity
//! pressure, so the file is unbounded by default, but it records a high-water
//! mark so experiments can confirm realistic occupancies; a bound can be set
//! to model a finite file.
//!
//! Occupancy is a handful of entries (bounded by each core's outstanding
//! misses), so the file is a flat key-sorted vector: binary-search lookups
//! with no hashing, and the canonical fingerprint hash falls out of plain
//! in-order iteration.

use dvs_telemetry::{Component, Event, EventKind, Telemetry, TelemetryKey};
use std::hash::Hash;

/// A file of miss-status holding registers keyed by `K`.
///
/// # Examples
///
/// ```
/// use dvs_mem::Mshr;
///
/// let mut mshr: Mshr<u64, &str> = Mshr::unbounded();
/// assert!(mshr.try_insert(100, "pending GetM").is_ok());
/// assert_eq!(mshr.get(&100), Some(&"pending GetM"));
/// assert_eq!(mshr.remove(&100), Some("pending GetM"));
/// ```
#[derive(Debug, Clone)]
pub struct Mshr<K, V> {
    /// Outstanding entries, sorted by key.
    entries: Vec<(K, V)>,
    capacity: Option<usize>,
    high_water: usize,
    /// Observability only — excluded from `Hash`, never affects behaviour.
    tel: Telemetry,
    node: u32,
}

/// Error returned when inserting into a full or conflicting MSHR file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrError {
    /// The file is at capacity.
    Full,
    /// An entry for this key already exists.
    Occupied,
}

impl std::fmt::Display for MshrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MshrError::Full => f.write_str("mshr file full"),
            MshrError::Occupied => f.write_str("mshr entry already exists for key"),
        }
    }
}

impl std::error::Error for MshrError {}

impl<K, V> Mshr<K, V> {
    /// Creates an unbounded file.
    pub fn unbounded() -> Self {
        Mshr {
            entries: Vec::new(),
            capacity: None,
            high_water: 0,
            tel: Telemetry::off(),
            node: 0,
        }
    }

    /// Creates a file bounded to `capacity` entries.
    pub fn bounded(capacity: usize) -> Self {
        Mshr {
            entries: Vec::new(),
            capacity: Some(capacity),
            high_water: 0,
            tel: Telemetry::off(),
            node: 0,
        }
    }

    /// Attaches a telemetry handle; allocations and releases then emit
    /// [`EventKind::MshrAlloc`]/[`EventKind::MshrFree`] events attributed to
    /// `node`, stamped from the handle's shared clock
    /// ([`Telemetry::now`]).
    pub fn set_telemetry(&mut self, tel: Telemetry, node: u32) {
        self.tel = tel;
        self.node = node;
    }
}

impl<K: Ord, V> Mshr<K, V> {
    /// Where `key` is, or where it would insert.
    fn search(&self, key: &K) -> Result<usize, usize> {
        self.entries.binary_search_by(|(k, _)| k.cmp(key))
    }
}

impl<K: Ord + TelemetryKey, V> Mshr<K, V> {
    /// Inserts a new entry.
    ///
    /// # Errors
    ///
    /// Returns [`MshrError::Occupied`] if the key is already tracked and
    /// [`MshrError::Full`] if a bounded file is at capacity.
    pub fn try_insert(&mut self, key: K, value: V) -> Result<(), MshrError> {
        let slot = match self.search(&key) {
            Ok(_) => return Err(MshrError::Occupied),
            Err(slot) => slot,
        };
        if let Some(cap) = self.capacity {
            if self.entries.len() >= cap {
                return Err(MshrError::Full);
            }
        }
        let addr = key.telemetry_key();
        self.entries.insert(slot, (key, value));
        self.high_water = self.high_water.max(self.entries.len());
        self.tel.emit(|| Event {
            cycle: self.tel.now(),
            node: self.node,
            component: Component::Mshr,
            addr,
            kind: EventKind::MshrAlloc {
                occupancy: self.entries.len() as u32,
            },
        });
        Ok(())
    }

    /// Removes and returns an entry.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let slot = self.search(key).ok()?;
        let (_, value) = self.entries.remove(slot);
        self.tel.emit(|| Event {
            cycle: self.tel.now(),
            node: self.node,
            component: Component::Mshr,
            addr: key.telemetry_key(),
            kind: EventKind::MshrFree {
                occupancy: self.entries.len() as u32,
            },
        });
        Some(value)
    }

    /// Looks up an entry.
    pub fn get(&self, key: &K) -> Option<&V> {
        let slot = self.search(key).ok()?;
        Some(&self.entries[slot].1)
    }

    /// Looks up an entry mutably.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        let slot = self.search(key).ok()?;
        Some(&mut self.entries[slot].1)
    }

    /// Whether an entry exists for `key`.
    pub fn contains(&self, key: &K) -> bool {
        self.search(key).is_ok()
    }

    /// Current number of outstanding entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries are outstanding.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Maximum simultaneous occupancy observed.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Iterates outstanding entries in ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

/// Canonical hash: entries sorted by key (their storage order), plus the
/// capacity bound. The `high_water` statistic is excluded — it never affects
/// future behaviour.
impl<K: Ord + Hash, V: Hash> Hash for Mshr<K, V> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_usize(self.entries.len());
        for (k, v) in &self.entries {
            k.hash(state);
            v.hash(state);
        }
        self.capacity.hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut m: Mshr<u32, u32> = Mshr::unbounded();
        m.try_insert(1, 10).unwrap();
        assert_eq!(m.get(&1), Some(&10));
        *m.get_mut(&1).unwrap() += 1;
        assert_eq!(m.remove(&1), Some(11));
        assert!(m.is_empty());
    }

    #[test]
    fn duplicate_key_rejected() {
        let mut m: Mshr<u32, ()> = Mshr::unbounded();
        m.try_insert(1, ()).unwrap();
        assert_eq!(m.try_insert(1, ()), Err(MshrError::Occupied));
    }

    #[test]
    fn bounded_capacity_enforced() {
        let mut m: Mshr<u32, ()> = Mshr::bounded(2);
        m.try_insert(1, ()).unwrap();
        m.try_insert(2, ()).unwrap();
        assert_eq!(m.try_insert(3, ()), Err(MshrError::Full));
        m.remove(&1);
        assert!(m.try_insert(3, ()).is_ok());
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut m: Mshr<u32, ()> = Mshr::unbounded();
        m.try_insert(1, ()).unwrap();
        m.try_insert(2, ()).unwrap();
        m.remove(&1);
        m.remove(&2);
        assert_eq!(m.high_water(), 2);
        assert_eq!(m.len(), 0);
    }

    #[test]
    fn iteration_is_key_sorted() {
        let mut m: Mshr<u32, u32> = Mshr::unbounded();
        for k in [9u32, 2, 5, 7, 1] {
            m.try_insert(k, k * 10).unwrap();
        }
        let keys: Vec<u32> = m.iter().map(|(&k, _)| k).collect();
        assert_eq!(keys, vec![1, 2, 5, 7, 9]);
    }
}
