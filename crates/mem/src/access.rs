//! The memory-access vocabulary shared by the thread VM and the protocols.
//!
//! The paper's software assumption §3(2): programs distinguish data accesses
//! from synchronization accesses and convey the distinction to hardware. In
//! this reproduction the distinction is carried by [`AccessKind`], set by the
//! VM instruction that issued the access.

/// A read-modify-write operation, executed atomically at the point of
/// ownership (MESI: the line in `M`; DeNovo: the word in `Registered`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RmwOp {
    /// Compare-and-swap: if the current value equals `expected`, store `new`.
    /// The operation always returns the *old* value.
    Cas {
        /// Value the word must hold for the swap to happen.
        expected: u64,
        /// Value stored on success.
        new: u64,
    },
    /// Fetch-and-add `delta` (wrapping). Returns the old value.
    Fai {
        /// Amount added to the word.
        delta: u64,
    },
    /// Unconditional atomic exchange. Returns the old value.
    Swap {
        /// Value stored.
        new: u64,
    },
    /// Test-and-set: store 1. Returns the old value (0 means "acquired").
    Tas,
}

impl RmwOp {
    /// Applies the operation to `old`, returning the value the word holds
    /// afterwards. (The operation's *result* is always `old`.)
    pub fn apply(self, old: u64) -> u64 {
        match self {
            RmwOp::Cas { expected, new } => {
                if old == expected {
                    new
                } else {
                    old
                }
            }
            RmwOp::Fai { delta } => old.wrapping_add(delta),
            RmwOp::Swap { new } => new,
            RmwOp::Tas => 1,
        }
    }

    /// Whether applying to `old` changes the stored value.
    pub fn writes(self, old: u64) -> bool {
        self.apply(old) != old
    }
}

/// The kind of a memory access, as issued by the core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// An ordinary (data-race-free) load.
    DataLoad,
    /// An ordinary (data-race-free) store. Non-blocking in both protocols.
    DataStore {
        /// Value stored.
        value: u64,
    },
    /// A synchronization load (`volatile`/`atomic` read).
    SyncLoad,
    /// A synchronization store (release write).
    SyncStore {
        /// Value stored.
        value: u64,
    },
    /// An atomic read-modify-write; always a synchronization access.
    SyncRmw(RmwOp),
}

impl AccessKind {
    /// Whether this is a synchronization access (racy by definition).
    pub fn is_sync(self) -> bool {
        matches!(
            self,
            AccessKind::SyncLoad | AccessKind::SyncStore { .. } | AccessKind::SyncRmw(_)
        )
    }

    /// Whether the access may write memory.
    pub fn may_write(self) -> bool {
        matches!(
            self,
            AccessKind::DataStore { .. } | AccessKind::SyncStore { .. } | AccessKind::SyncRmw(_)
        )
    }

    /// Whether the access returns a value to the core.
    pub fn returns_value(self) -> bool {
        matches!(
            self,
            AccessKind::DataLoad | AccessKind::SyncLoad | AccessKind::SyncRmw(_)
        )
    }

    /// Whether the core blocks until the access completes. Data stores are
    /// non-blocking (the paper's MESI is modified for non-blocking writes,
    /// and DeNovo writes are non-blocking by default); everything else blocks
    /// (loads return values; sync accesses obey the program-order condition).
    pub fn blocks_core(self) -> bool {
        !matches!(self, AccessKind::DataStore { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cas_semantics() {
        let op = RmwOp::Cas {
            expected: 5,
            new: 9,
        };
        assert_eq!(op.apply(5), 9);
        assert_eq!(op.apply(6), 6);
        assert!(op.writes(5));
        assert!(!op.writes(6));
    }

    #[test]
    fn fai_wraps() {
        let op = RmwOp::Fai { delta: 2 };
        assert_eq!(op.apply(u64::MAX), 1);
        assert_eq!(op.apply(10), 12);
    }

    #[test]
    fn swap_and_tas() {
        assert_eq!(RmwOp::Swap { new: 3 }.apply(99), 3);
        assert_eq!(RmwOp::Tas.apply(0), 1);
        assert_eq!(RmwOp::Tas.apply(1), 1);
        assert!(!RmwOp::Tas.writes(1));
        assert!(RmwOp::Tas.writes(0));
    }

    #[test]
    fn kind_classification() {
        assert!(!AccessKind::DataLoad.is_sync());
        assert!(AccessKind::SyncLoad.is_sync());
        assert!(AccessKind::SyncRmw(RmwOp::Tas).is_sync());
        assert!(AccessKind::DataStore { value: 0 }.may_write());
        assert!(!AccessKind::DataStore { value: 0 }.blocks_core());
        assert!(AccessKind::SyncStore { value: 0 }.blocks_core());
        assert!(AccessKind::SyncRmw(RmwOp::Tas).returns_value());
        assert!(!AccessKind::SyncStore { value: 1 }.returns_value());
    }
}
