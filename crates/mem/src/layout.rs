//! Memory layouts and DeNovo regions.
//!
//! The paper (§3) assumes programs provide *static regions*: named groups of
//! memory locations that a synchronization acquire must self-invalidate. A
//! [`MemoryLayout`] is built once per workload: the builder allocates named,
//! line-aligned segments, assigns each to a [`Region`], and the resulting
//! layout answers "which region does this address belong to?" during
//! self-invalidation.
//!
//! Synchronization variables are allocated line-aligned and padded to a full
//! line by default, matching the paper's observation that "most software pads
//! lock variables to avoid false sharing". The padding ablation
//! (`ablation_padding`) allocates them unpadded instead.

use crate::addr::{Addr, WordAddr, LINE_BYTES, WORD_BYTES};
use std::fmt;

/// A DeNovo region identifier.
///
/// Regions are dense small integers handed out by [`LayoutBuilder::region`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Region(pub u16);

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "region#{}", self.0)
    }
}

/// A named, contiguous, region-tagged range of memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Human-readable name (unique within a layout).
    pub name: String,
    /// First byte.
    pub base: Addr,
    /// Size in bytes.
    pub bytes: u64,
    /// The DeNovo region this segment belongs to.
    pub region: Region,
}

impl Segment {
    /// Whether `addr` falls inside this segment.
    pub fn contains(&self, addr: Addr) -> bool {
        addr.raw() >= self.base.raw() && addr.raw() < self.base.raw() + self.bytes
    }

    /// The `i`-th word of the segment.
    ///
    /// # Panics
    ///
    /// Panics if the word would fall outside the segment.
    pub fn word(&self, i: u64) -> Addr {
        let a = self.base.offset((i * WORD_BYTES) as i64);
        assert!(self.contains(a), "word {i} outside segment {}", self.name);
        a
    }

    /// Number of whole words in the segment.
    pub fn words(&self) -> u64 {
        self.bytes / WORD_BYTES
    }
}

/// Builder for a [`MemoryLayout`].
///
/// # Examples
///
/// ```
/// use dvs_mem::LayoutBuilder;
///
/// let mut b = LayoutBuilder::new();
/// let shared = b.region("shared");
/// let lock = b.sync_var("lock", shared, true);
/// let data = b.segment("payload", 1024, shared);
/// let layout = b.build();
/// assert_eq!(layout.region_of(lock), Some(shared));
/// assert!(layout.segment("payload").unwrap().contains(data));
/// ```
#[derive(Debug, Default)]
pub struct LayoutBuilder {
    segments: Vec<Segment>,
    region_names: Vec<String>,
    cursor: u64,
}

impl LayoutBuilder {
    /// Creates an empty builder. Allocation starts at a non-zero base so a
    /// null "pointer" (0) never aliases real memory.
    pub fn new() -> Self {
        LayoutBuilder {
            segments: Vec::new(),
            region_names: Vec::new(),
            cursor: LINE_BYTES, // keep address 0 unused (null)
        }
    }

    /// Declares a new region and returns its id.
    pub fn region(&mut self, name: &str) -> Region {
        let id = Region(u16::try_from(self.region_names.len()).expect("too many regions"));
        self.region_names.push(name.to_owned());
        id
    }

    /// Allocates a line-aligned segment of at least `bytes` bytes (rounded up
    /// to whole lines) tagged with `region`.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero or a segment name repeats.
    pub fn segment(&mut self, name: &str, bytes: u64, region: Region) -> Addr {
        assert!(bytes > 0, "empty segment {name}");
        assert!(
            self.segments.iter().all(|s| s.name != name),
            "duplicate segment name {name}"
        );
        let rounded = bytes.div_ceil(LINE_BYTES) * LINE_BYTES;
        let base = Addr::new(self.cursor);
        self.cursor += rounded;
        self.segments.push(Segment {
            name: name.to_owned(),
            base,
            bytes: rounded,
            region,
        });
        base
    }

    /// Allocates a single synchronization variable. If `padded`, it occupies
    /// a full line by itself (the paper's default); otherwise it is a single
    /// word (packed with whatever is allocated next via
    /// [`LayoutBuilder::word_in`]).
    pub fn sync_var(&mut self, name: &str, region: Region, padded: bool) -> Addr {
        if padded {
            self.segment(name, LINE_BYTES, region)
        } else {
            self.word_in(name, region)
        }
    }

    /// Allocates a single unpadded word (word-aligned, possibly sharing a
    /// line with neighbouring allocations in the same region).
    pub fn word_in(&mut self, name: &str, region: Region) -> Addr {
        assert!(
            self.segments.iter().all(|s| s.name != name),
            "duplicate segment name {name}"
        );
        let base = Addr::new(self.cursor);
        self.cursor += WORD_BYTES;
        self.segments.push(Segment {
            name: name.to_owned(),
            base,
            bytes: WORD_BYTES,
            region,
        });
        base
    }

    /// Finishes the layout.
    pub fn build(self) -> MemoryLayout {
        let mut segments = self.segments;
        segments.sort_by_key(|s| s.base.raw());
        for pair in segments.windows(2) {
            assert!(
                pair[0].base.raw() + pair[0].bytes <= pair[1].base.raw(),
                "overlapping segments {} and {}",
                pair[0].name,
                pair[1].name
            );
        }
        MemoryLayout {
            segments,
            region_names: self.region_names,
        }
    }
}

/// A finished memory layout: sorted segments plus region names.
#[derive(Debug, Clone, Default)]
pub struct MemoryLayout {
    segments: Vec<Segment>,
    region_names: Vec<String>,
}

impl MemoryLayout {
    /// Rebuilds a layout from raw parts (e.g. parsed back from a trace
    /// file). Segments are sorted by base; region indices in segments must
    /// refer into `region_names`.
    ///
    /// # Panics
    ///
    /// Panics on overlapping segments or a segment naming an undeclared
    /// region, exactly like [`LayoutBuilder::build`].
    pub fn from_parts(segments: Vec<Segment>, region_names: Vec<String>) -> Self {
        let mut segments = segments;
        segments.sort_by_key(|s| s.base.raw());
        for pair in segments.windows(2) {
            assert!(
                pair[0].base.raw() + pair[0].bytes <= pair[1].base.raw(),
                "overlapping segments {} and {}",
                pair[0].name,
                pair[1].name
            );
        }
        for s in &segments {
            assert!(
                (s.region.0 as usize) < region_names.len(),
                "segment {} names undeclared region {}",
                s.name,
                s.region.0
            );
        }
        MemoryLayout {
            segments,
            region_names,
        }
    }

    /// The region containing `addr`, if any.
    pub fn region_of(&self, addr: Addr) -> Option<Region> {
        let i = self
            .segments
            .partition_point(|s| s.base.raw() + s.bytes <= addr.raw());
        let seg = self.segments.get(i)?;
        seg.contains(addr).then_some(seg.region)
    }

    /// The region containing word `w`, if any.
    pub fn region_of_word(&self, w: WordAddr) -> Option<Region> {
        self.region_of(w.base())
    }

    /// Looks up a segment by name.
    pub fn segment(&self, name: &str) -> Option<&Segment> {
        self.segments.iter().find(|s| s.name == name)
    }

    /// All segments, sorted by base address.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Number of declared regions.
    pub fn regions(&self) -> usize {
        self.region_names.len()
    }

    /// Name of a region.
    pub fn region_name(&self, region: Region) -> Option<&str> {
        self.region_names.get(region.0 as usize).map(String::as_str)
    }

    /// Total allocated bytes (including padding).
    pub fn footprint(&self) -> u64 {
        self.segments.iter().map(|s| s.bytes).sum()
    }

    /// One past the last allocated byte — the exclusive top of the layout
    /// (0 for an empty layout). Dense per-line/per-word state tables size
    /// themselves from this: every layout address falls below it.
    pub fn top(&self) -> u64 {
        // Segments are sorted by base and disjoint, so the last one ends
        // highest.
        self.segments.last().map_or(0, |s| s.base.raw() + s.bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segments_are_line_aligned_and_disjoint() {
        let mut b = LayoutBuilder::new();
        let r = b.region("r");
        let a1 = b.segment("a", 10, r);
        let a2 = b.segment("b", 100, r);
        assert_eq!(a1.raw() % LINE_BYTES, 0);
        assert_eq!(a2.raw() % LINE_BYTES, 0);
        assert!(a2.raw() >= a1.raw() + LINE_BYTES);
        let l = b.build();
        assert_eq!(l.segment("a").unwrap().bytes, LINE_BYTES);
        assert_eq!(l.segment("b").unwrap().bytes, 2 * LINE_BYTES);
    }

    #[test]
    fn region_lookup() {
        let mut b = LayoutBuilder::new();
        let r1 = b.region("one");
        let r2 = b.region("two");
        let a = b.segment("a", 64, r1);
        let c = b.segment("c", 64, r2);
        let l = b.build();
        assert_eq!(l.region_of(a), Some(r1));
        assert_eq!(l.region_of(a.offset(63)), Some(r1));
        assert_eq!(l.region_of(c), Some(r2));
        assert_eq!(l.region_of(Addr::new(0)), None);
        assert_eq!(l.region_of(Addr::new(1 << 40)), None);
        assert_eq!(l.region_name(r2), Some("two"));
        assert_eq!(l.regions(), 2);
    }

    #[test]
    fn padded_sync_var_owns_its_line() {
        let mut b = LayoutBuilder::new();
        let r = b.region("sync");
        let lock = b.sync_var("lock", r, true);
        let next = b.segment("data", 8, r);
        assert_eq!(lock.raw() % LINE_BYTES, 0);
        assert_ne!(lock.line(), next.line());
    }

    #[test]
    fn unpadded_sync_vars_share_a_line() {
        let mut b = LayoutBuilder::new();
        let r = b.region("sync");
        let l1 = b.sync_var("lock1", r, false);
        let l2 = b.sync_var("lock2", r, false);
        assert_eq!(l1.line(), l2.line());
        assert_ne!(l1.word(), l2.word());
    }

    #[test]
    fn null_address_is_never_allocated() {
        let mut b = LayoutBuilder::new();
        let r = b.region("r");
        let a = b.segment("a", 8, r);
        assert!(a.raw() > 0);
    }

    #[test]
    #[should_panic(expected = "duplicate segment name")]
    fn duplicate_names_panic() {
        let mut b = LayoutBuilder::new();
        let r = b.region("r");
        b.segment("x", 8, r);
        b.segment("x", 8, r);
    }

    #[test]
    fn segment_word_accessor() {
        let mut b = LayoutBuilder::new();
        let r = b.region("r");
        b.segment("arr", 128, r);
        let l = b.build();
        let seg = l.segment("arr").unwrap();
        assert_eq!(seg.words(), 16);
        assert_eq!(seg.word(0), seg.base);
        assert_eq!(seg.word(15).raw(), seg.base.raw() + 15 * WORD_BYTES);
    }

    #[test]
    #[should_panic(expected = "outside segment")]
    fn segment_word_out_of_bounds() {
        let mut b = LayoutBuilder::new();
        let r = b.region("r");
        b.segment("arr", 64, r);
        let l = b.build();
        l.segment("arr").unwrap().word(8);
    }

    #[test]
    fn footprint_sums_segments() {
        let mut b = LayoutBuilder::new();
        let r = b.region("r");
        b.segment("a", 64, r);
        b.segment("b", 65, r);
        assert_eq!(b.build().footprint(), 64 + 128);
    }
}
