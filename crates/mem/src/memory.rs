//! The functional backing store (main memory image).
//!
//! Caches in this simulator hold real data (so that protocol bugs manifest
//! as wrong values, not just wrong timings); main memory is the root of that
//! data. It is a sparse word-addressed image initialized to zero.

use crate::addr::{LineAddr, WordAddr, WORDS_PER_LINE};
use std::collections::HashMap;

/// A sparse, zero-initialized main-memory image.
///
/// # Examples
///
/// ```
/// use dvs_mem::{MainMemory, WordAddr};
///
/// let mut mem = MainMemory::new();
/// let w = WordAddr::new(100);
/// assert_eq!(mem.read_word(w), 0);
/// mem.write_word(w, 42);
/// assert_eq!(mem.read_word(w), 42);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MainMemory {
    words: HashMap<WordAddr, u64>,
}

impl MainMemory {
    /// Creates an all-zero image.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads one word (0 if never written).
    pub fn read_word(&self, w: WordAddr) -> u64 {
        self.words.get(&w).copied().unwrap_or(0)
    }

    /// Writes one word.
    pub fn write_word(&mut self, w: WordAddr, value: u64) {
        if value == 0 {
            self.words.remove(&w);
        } else {
            self.words.insert(w, value);
        }
    }

    /// Reads a whole line.
    pub fn read_line(&self, line: LineAddr) -> [u64; WORDS_PER_LINE] {
        let mut out = [0u64; WORDS_PER_LINE];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.read_word(line.word(i));
        }
        out
    }

    /// Writes the words of `line` selected by `mask` (bit `i` = word `i`).
    pub fn write_line_masked(&mut self, line: LineAddr, data: &[u64; WORDS_PER_LINE], mask: u8) {
        for (i, &value) in data.iter().enumerate() {
            if mask & (1 << i) != 0 {
                self.write_word(line.word(i), value);
            }
        }
    }

    /// Number of words holding a non-zero value.
    pub fn nonzero_words(&self) -> usize {
        self.words.len()
    }
}

/// Canonical hash: the non-zero words sorted by address. Zero-valued words
/// are removed by [`MainMemory::write_word`], so two images holding the same
/// architectural contents always hash identically.
impl std::hash::Hash for MainMemory {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        let mut words: Vec<(&WordAddr, &u64)> = self.words.iter().collect();
        words.sort_unstable_by_key(|(w, _)| **w);
        state.write_usize(words.len());
        for (w, v) in words {
            w.hash(state);
            v.hash(state);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_words_read_zero() {
        let mem = MainMemory::new();
        assert_eq!(mem.read_word(WordAddr::new(12345)), 0);
    }

    #[test]
    fn line_roundtrip() {
        let mut mem = MainMemory::new();
        let line = LineAddr::new(9);
        for i in 0..WORDS_PER_LINE {
            mem.write_word(line.word(i), (i as u64 + 1) * 10);
        }
        let data = mem.read_line(line);
        assert_eq!(data[0], 10);
        assert_eq!(data[7], 80);
    }

    #[test]
    fn masked_write_only_touches_selected_words() {
        let mut mem = MainMemory::new();
        let line = LineAddr::new(2);
        mem.write_word(line.word(0), 1);
        mem.write_word(line.word(1), 2);
        let new = [100u64; WORDS_PER_LINE];
        mem.write_line_masked(line, &new, 0b0000_0010);
        assert_eq!(mem.read_word(line.word(0)), 1);
        assert_eq!(mem.read_word(line.word(1)), 100);
        assert_eq!(mem.read_word(line.word(2)), 0);
    }

    #[test]
    fn writing_zero_reclaims_storage() {
        let mut mem = MainMemory::new();
        let w = WordAddr::new(1);
        mem.write_word(w, 5);
        assert_eq!(mem.nonzero_words(), 1);
        mem.write_word(w, 0);
        assert_eq!(mem.nonzero_words(), 0);
        assert_eq!(mem.read_word(w), 0);
    }
}
