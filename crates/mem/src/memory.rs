//! The functional backing store (main memory image).
//!
//! Caches in this simulator hold real data (so that protocol bugs manifest
//! as wrong values, not just wrong timings); main memory is the root of that
//! data. It is a word-addressed image initialized to zero, stored in two
//! tiers: a flat dense array covering the workload layout (every shared
//! address the protocols fight over) and a sparse spill map for everything
//! above it (thread-private allocation pools live at `1 << 40`).

use crate::addr::{LineAddr, WordAddr, WORDS_PER_LINE, WORD_BYTES};
use crate::layout::MemoryLayout;
use std::collections::HashMap;

/// A zero-initialized main-memory image.
///
/// # Examples
///
/// ```
/// use dvs_mem::{MainMemory, WordAddr};
///
/// let mut mem = MainMemory::new();
/// let w = WordAddr::new(100);
/// assert_eq!(mem.read_word(w), 0);
/// mem.write_word(w, 42);
/// assert_eq!(mem.read_word(w), 42);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MainMemory {
    /// Word `w` for `w < dense.len()` lives at `dense[w]`; zero means unset
    /// (architecturally indistinguishable from never-written).
    dense: Vec<u64>,
    /// Non-zero words in the dense tier (so `nonzero_words` and the hash
    /// length prefix stay O(1)/O(span)).
    dense_nonzero: usize,
    /// Words at or above `dense.len()` — out-of-layout addresses.
    sparse: HashMap<WordAddr, u64>,
}

impl MainMemory {
    /// Creates an all-zero image with no dense tier (every word sparse).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an all-zero image whose dense tier covers `layout`: words
    /// from address zero through the layout's top live in a flat array, so
    /// the shared data the protocols actually contend on is reached without
    /// hashing. Out-of-layout words still work — they spill to the sparse
    /// tier.
    pub fn with_layout(layout: &MemoryLayout) -> Self {
        let words = layout.top().div_ceil(WORD_BYTES) as usize;
        MainMemory {
            dense: vec![0; words],
            dense_nonzero: 0,
            sparse: HashMap::new(),
        }
    }

    /// Reads one word (0 if never written).
    pub fn read_word(&self, w: WordAddr) -> u64 {
        match self.dense.get(w.raw() as usize) {
            Some(&v) => v,
            None => self.sparse.get(&w).copied().unwrap_or(0),
        }
    }

    /// Writes one word.
    pub fn write_word(&mut self, w: WordAddr, value: u64) {
        match self.dense.get_mut(w.raw() as usize) {
            Some(slot) => {
                self.dense_nonzero += (value != 0) as usize;
                self.dense_nonzero -= (*slot != 0) as usize;
                *slot = value;
            }
            None => {
                if value == 0 {
                    self.sparse.remove(&w);
                } else {
                    self.sparse.insert(w, value);
                }
            }
        }
    }

    /// Reads a whole line.
    pub fn read_line(&self, line: LineAddr) -> [u64; WORDS_PER_LINE] {
        let mut out = [0u64; WORDS_PER_LINE];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.read_word(line.word(i));
        }
        out
    }

    /// Writes the words of `line` selected by `mask` (bit `i` = word `i`).
    pub fn write_line_masked(&mut self, line: LineAddr, data: &[u64; WORDS_PER_LINE], mask: u8) {
        for (i, &value) in data.iter().enumerate() {
            if mask & (1 << i) != 0 {
                self.write_word(line.word(i), value);
            }
        }
    }

    /// Number of words holding a non-zero value.
    pub fn nonzero_words(&self) -> usize {
        self.dense_nonzero + self.sparse.len()
    }
}

/// Canonical hash: the non-zero words sorted by address. Zero is "unset" in
/// both tiers (the sparse tier drops zero writes, the dense tier skips zeros
/// here), so two images holding the same architectural contents always hash
/// identically — regardless of how their storage is tiered.
impl std::hash::Hash for MainMemory {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_usize(self.nonzero_words());
        // Sparse keys all lie at or above the dense span, so dense-ascending
        // followed by sparse-sorted is globally sorted.
        for (i, &v) in self.dense.iter().enumerate() {
            if v != 0 {
                WordAddr::new(i as u64).hash(state);
                v.hash(state);
            }
        }
        let mut words: Vec<(&WordAddr, &u64)> = self.sparse.iter().collect();
        words.sort_unstable_by_key(|(w, _)| **w);
        for (w, v) in words {
            debug_assert!(w.raw() as usize >= self.dense.len());
            w.hash(state);
            v.hash(state);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::LayoutBuilder;
    use std::hash::{DefaultHasher, Hash, Hasher};

    fn fingerprint(mem: &MainMemory) -> u64 {
        let mut h = DefaultHasher::new();
        mem.hash(&mut h);
        h.finish()
    }

    #[test]
    fn unwritten_words_read_zero() {
        let mem = MainMemory::new();
        assert_eq!(mem.read_word(WordAddr::new(12345)), 0);
    }

    #[test]
    fn line_roundtrip() {
        let mut mem = MainMemory::new();
        let line = LineAddr::new(9);
        for i in 0..WORDS_PER_LINE {
            mem.write_word(line.word(i), (i as u64 + 1) * 10);
        }
        let data = mem.read_line(line);
        assert_eq!(data[0], 10);
        assert_eq!(data[7], 80);
    }

    #[test]
    fn masked_write_only_touches_selected_words() {
        let mut mem = MainMemory::new();
        let line = LineAddr::new(2);
        mem.write_word(line.word(0), 1);
        mem.write_word(line.word(1), 2);
        let new = [100u64; WORDS_PER_LINE];
        mem.write_line_masked(line, &new, 0b0000_0010);
        assert_eq!(mem.read_word(line.word(0)), 1);
        assert_eq!(mem.read_word(line.word(1)), 100);
        assert_eq!(mem.read_word(line.word(2)), 0);
    }

    #[test]
    fn writing_zero_reclaims_storage() {
        let mut mem = MainMemory::new();
        let w = WordAddr::new(1);
        mem.write_word(w, 5);
        assert_eq!(mem.nonzero_words(), 1);
        mem.write_word(w, 0);
        assert_eq!(mem.nonzero_words(), 0);
        assert_eq!(mem.read_word(w), 0);
    }

    #[test]
    fn dense_tier_covers_the_layout() {
        let mut b = LayoutBuilder::new();
        let r = b.region("r");
        let a = b.segment("a", 256, r);
        let layout = b.build();
        let mut mem = MainMemory::with_layout(&layout);
        // In-layout words hit the dense tier; far addresses still work.
        mem.write_word(a.word(), 7);
        mem.write_word(WordAddr::new(1 << 40), 9);
        assert_eq!(mem.read_word(a.word()), 7);
        assert_eq!(mem.read_word(WordAddr::new(1 << 40)), 9);
        assert_eq!(mem.nonzero_words(), 2);
        mem.write_word(a.word(), 0);
        mem.write_word(WordAddr::new(1 << 40), 0);
        assert_eq!(mem.nonzero_words(), 0);
    }

    #[test]
    fn hash_is_tier_independent() {
        let mut b = LayoutBuilder::new();
        let r = b.region("r");
        let a = b.segment("a", 128, r);
        let layout = b.build();
        let mut dense = MainMemory::with_layout(&layout);
        let mut sparse = MainMemory::new();
        let writes = [
            (a.word(), 3u64),
            (WordAddr::new(a.word().raw() + 5), 8),
            (WordAddr::new(1 << 41), 1),
        ];
        for (w, v) in writes {
            dense.write_word(w, v);
            sparse.write_word(w, v);
        }
        assert_eq!(fingerprint(&dense), fingerprint(&sparse));
        dense.write_word(a.word(), 0);
        assert_ne!(fingerprint(&dense), fingerprint(&sparse));
        sparse.write_word(a.word(), 0);
        assert_eq!(fingerprint(&dense), fingerprint(&sparse));
    }
}
