//! Memory-system building blocks for the DeNovoSync reproduction.
//!
//! This crate holds everything about memory that is *not* protocol-specific:
//!
//! * [`addr`] — byte/word/line address types and the fixed geometry constants
//!   (64-byte lines, 8-byte words — DeNovo's coherence granularity),
//! * [`access`] — the access vocabulary shared by the VM and the protocols
//!   (data vs. synchronization loads/stores, RMW operations),
//! * [`geometry`] — set-associative cache geometry maths,
//! * [`mod@array`] — a generic set-associative tag array with LRU replacement,
//! * [`mshr`] — miss-status holding registers,
//! * [`layout`] — named memory segments with DeNovo *regions* (the paper's
//!   software-provided self-invalidation targets),
//! * [`memory`] — the functional backing store (main memory image),
//! * [`table`] — two-tier dense/sparse keyed storage for per-line and
//!   per-word protocol state.
//!
//! The protocol controllers in `dvs-core` compose these into MESI and DeNovo
//! cache hierarchies.

pub mod access;
pub mod addr;
pub mod array;
pub mod geometry;
pub mod layout;
pub mod memory;
pub mod mshr;
pub mod table;

pub use access::{AccessKind, RmwOp};
pub use addr::{Addr, LineAddr, WordAddr, LINE_BYTES, WORDS_PER_LINE, WORD_BYTES};
pub use array::{CacheArray, CacheLine};
pub use geometry::CacheGeometry;
pub use layout::{LayoutBuilder, MemoryLayout, Region, Segment};
pub use memory::MainMemory;
pub use mshr::Mshr;
pub use table::SpanMap;
