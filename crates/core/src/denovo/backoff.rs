//! The DeNovoSync hardware backoff unit (paper §4.2).
//!
//! One unit per core. Two levels of adaptivity:
//!
//! * The **backoff counter** delays synchronization read misses to words in
//!   Valid state. It grows by the current increment on every incoming
//!   remote synchronization-read registration request (the contention
//!   symptom), wraps to zero on overflow, and resets on a synchronization
//!   read/RMW *hit* (low-contention signal).
//! * The **increment counter** grows by the default increment on every
//!   N-th incoming remote synchronization-read registration request
//!   (N = core count in the paper) and resets to the default on a release.

use crate::config::BackoffConfig;
use dvs_engine::Cycle;

/// Per-core adaptive backoff state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BackoffUnit {
    cfg: BackoffConfig,
    enabled: bool,
    counter: u64,
    increment: u64,
    remote_seen: u64,
}

impl BackoffUnit {
    /// Creates a unit; `enabled` is false for DeNovoSync0 (every query
    /// returns zero delay and updates are ignored).
    pub fn new(cfg: BackoffConfig, enabled: bool) -> Self {
        BackoffUnit {
            cfg,
            enabled,
            counter: 0,
            increment: cfg.default_increment,
            remote_seen: 0,
        }
    }

    /// Whether the backoff mechanism is active (DeNovoSync).
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Current delay applied to a synchronization read of a Valid-state
    /// word, in cycles.
    pub fn current(&self) -> Cycle {
        if self.enabled {
            self.counter
        } else {
            0
        }
    }

    /// The current increment value (visible for tests/ablation reporting).
    pub fn increment(&self) -> u64 {
        self.increment
    }

    /// A remote synchronization-read registration request arrived for a word
    /// this core had registered: bump the counter (and, every N-th request,
    /// the increment).
    pub fn on_remote_sync_read(&mut self) {
        if !self.enabled {
            return;
        }
        self.remote_seen += 1;
        if self.remote_seen.is_multiple_of(self.cfg.increment_period) {
            self.increment += self.cfg.default_increment;
        }
        // Wrap on overflow, per the paper.
        self.counter = (self.counter + self.increment) & self.cfg.counter_max();
    }

    /// A synchronization read or RMW hit in Registered state: no one
    /// intervened, so contention is low — reset the backoff counter.
    pub fn on_sync_hit(&mut self) {
        self.counter = 0;
    }

    /// A release (synchronization write) completed: the synchronization
    /// construct finished; reset the increment to the default.
    pub fn on_release(&mut self) {
        self.increment = self.cfg.default_increment;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> BackoffUnit {
        BackoffUnit::new(BackoffConfig::cores16(), true)
    }

    #[test]
    fn disabled_unit_never_delays() {
        let mut u = BackoffUnit::new(BackoffConfig::cores16(), false);
        for _ in 0..100 {
            u.on_remote_sync_read();
        }
        assert_eq!(u.current(), 0);
        assert!(!u.is_enabled());
    }

    #[test]
    fn counter_grows_with_remote_requests() {
        let mut u = unit();
        assert_eq!(u.current(), 0);
        u.on_remote_sync_read();
        assert_eq!(u.current(), 1); // default increment 1 at 16 cores
        u.on_remote_sync_read();
        assert_eq!(u.current(), 2);
    }

    #[test]
    fn increment_adapts_every_period() {
        let mut u = unit();
        // 15 requests at increment 1, the 16th bumps the increment to 2
        // before being applied.
        for _ in 0..15 {
            u.on_remote_sync_read();
        }
        assert_eq!(u.current(), 15);
        assert_eq!(u.increment(), 1);
        u.on_remote_sync_read();
        assert_eq!(u.increment(), 2);
        assert_eq!(u.current(), 17);
    }

    #[test]
    fn hit_resets_counter_but_not_increment() {
        let mut u = unit();
        for _ in 0..20 {
            u.on_remote_sync_read();
        }
        let inc = u.increment();
        assert!(inc > 1);
        u.on_sync_hit();
        assert_eq!(u.current(), 0);
        assert_eq!(u.increment(), inc);
    }

    #[test]
    fn release_resets_increment_but_not_counter() {
        let mut u = unit();
        for _ in 0..20 {
            u.on_remote_sync_read();
        }
        let count = u.current();
        u.on_release();
        assert_eq!(u.increment(), 1);
        assert_eq!(u.current(), count);
    }

    #[test]
    fn counter_wraps_at_width() {
        let mut u = BackoffUnit::new(
            BackoffConfig {
                counter_bits: 4, // max 15
                default_increment: 6,
                increment_period: 1000,
            },
            true,
        );
        u.on_remote_sync_read(); // 6
        u.on_remote_sync_read(); // 12
        u.on_remote_sync_read(); // 18 & 15 = 2
        assert_eq!(u.current(), 2);
    }

    #[test]
    fn paper_64_core_defaults() {
        let mut u = BackoffUnit::new(BackoffConfig::cores64(), true);
        u.on_remote_sync_read();
        assert_eq!(u.current(), 64);
    }
}
