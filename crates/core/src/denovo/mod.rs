//! The DeNovo protocol family: DeNovoSync0 and DeNovoSync.
//!
//! DeNovo keeps coherence state at *word* granularity with exactly three
//! stable states — Invalid, Valid, Registered — and no writer-initiated
//! invalidations: readers self-invalidate stale data at synchronization
//! acquires, and the shared L2 doubles as a *registry* that tracks one
//! up-to-date copy per word (data, or a pointer to the registered core)
//! instead of a sharer list.
//!
//! The paper's extension for arbitrary synchronization:
//!
//! * **DeNovoSync0** (§4.1): synchronization reads *register*, just like
//!   writes — the single-reader rule. The registry is non-blocking: a
//!   registration request for an already-registered word immediately
//!   re-points the registry and forwards the request to the previous
//!   registrant; racing registrations chain through the L1s' MSHRs,
//!   forming a distributed queue (module [`l1`]).
//! * **DeNovoSync** (§4.2): adds a per-core hardware [`backoff`] that delays
//!   synchronization read misses to Valid-state words, adaptively backing
//!   off under contention. The Valid state doubles as the "recently lost my
//!   registration to a remote sync reader" marker.
//!
//! [`registry`] implements the L2-side word registry.

pub mod backoff;
pub mod l1;
pub mod registry;

pub use backoff::BackoffUnit;
pub use l1::DnvL1;
pub use registry::DnvRegistry;
