//! The DeNovo private-cache (L1) controller.
//!
//! Per-word states Invalid / Valid / Registered; no transient states in the
//! array — in-flight work lives in word-granularity MSHRs. Key behaviours
//! from the paper:
//!
//! * data writes transition to Registered **immediately** (no stall) and
//!   send a registration request;
//! * synchronization reads to anything but Registered state always miss and
//!   register (DeNovoSync0's single-reader rule);
//! * a forwarded request arriving while the word's own registration is
//!   pending parks in the MSHR — the distributed registration queue;
//! * under DeNovoSync, a remote synchronization-read registration downgrades
//!   Registered → Valid and bumps the backoff counter; a later local
//!   synchronization read to Valid state stalls for the counter value
//!   before issuing its miss;
//! * evicting a Registered word uses a writeback *handshake* (`WbReq` /
//!   `WbAck` / `WbNack`): the registry may have already re-pointed the word
//!   at a new registrant, in which case the in-flight transfer must still be
//!   served from the held value.

use crate::config::BackoffConfig;
use crate::denovo::backoff::BackoffUnit;
use crate::msg::{CoreId, DnvMsg, Endpoint, Msg, XferClass};
use crate::proto::{Action, IssueResult};
use dvs_mem::array::InsertOutcome;
use dvs_mem::layout::MemoryLayout;
use dvs_mem::{
    AccessKind, CacheArray, CacheGeometry, LineAddr, Mshr, Region, RmwOp, WordAddr, WORDS_PER_LINE,
};
use dvs_stats::CacheStats;
use dvs_telemetry::{Component, Event, EventKind, Telemetry, TelemetryKey};
use dvs_vm::MemRequest;
use std::sync::Arc;

/// Per-word coherence state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WState {
    /// No usable copy.
    Invalid,
    /// A (possibly stale) copy; usable by data reads, never by
    /// synchronization reads. Under DeNovoSync also the backoff trigger.
    Valid,
    /// The registered (single up-to-date) copy; readable and writable.
    Registered,
}

impl WState {
    /// Short state label for telemetry transitions.
    pub fn label(self) -> &'static str {
        match self {
            WState::Invalid => "I",
            WState::Valid => "V",
            WState::Registered => "R",
        }
    }
}

/// One cached word.
#[derive(Debug, Clone, Copy, Hash)]
pub struct DnvWord {
    /// Coherence state.
    pub state: WState,
    /// The word's value (meaningful unless Invalid).
    pub value: u64,
}

/// A cached line: eight independently-tracked words.
#[derive(Debug, Clone, Hash)]
pub struct DnvLine {
    /// The line's words.
    pub words: [DnvWord; WORDS_PER_LINE],
}

impl DnvLine {
    fn empty() -> Self {
        DnvLine {
            words: [DnvWord {
                state: WState::Invalid,
                value: 0,
            }; WORDS_PER_LINE],
        }
    }

    fn has_registered(&self) -> bool {
        self.words.iter().any(|w| w.state == WState::Registered)
    }
}

/// What an MSHR entry is waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum PendKind {
    /// Non-ownership data read.
    Read,
    /// Synchronization-read registration.
    SyncRead,
    /// Data-write registration (the word is already Registered locally).
    Write,
    /// Synchronization-write registration; holds the value to store.
    SyncWrite { value: u64 },
    /// RMW registration; executes on arrival of the current value.
    Rmw { op: RmwOp },
    /// Writeback handshake in flight; holds the evicted value. `nacked`
    /// means the registry refused (ownership moved) and we are waiting for
    /// the in-flight transfer.
    Wb { value: u64, nacked: bool },
}

/// One outstanding word-granularity transaction.
#[derive(Debug, Clone, Hash)]
struct Pend {
    kind: PendKind,
    /// Forwarded data reads that arrived while we were pending.
    parked_reads: Vec<CoreId>,
    /// A forwarded registration transfer that arrived while we were pending
    /// (at most one: the registry serializes, and each registrant has
    /// exactly one successor).
    parked_xfer: Option<(CoreId, XferClass)>,
}

impl Pend {
    fn new(kind: PendKind) -> Self {
        Pend {
            kind,
            parked_reads: Vec::new(),
            parked_xfer: None,
        }
    }
}

/// The DeNovo L1 controller for one core.
#[derive(Debug, Clone)]
pub struct DnvL1 {
    id: CoreId,
    banks: usize,
    cache: CacheArray<DnvLine>,
    mshr: Mshr<WordAddr, Pend>,
    backoff: BackoffUnit,
    watch: Option<WordAddr>,
    layout: Arc<MemoryLayout>,
    stats: CacheStats,
    /// Observability only — excluded from `Hash`, never affects behaviour.
    tel: Telemetry,
}

fn bank_for(word: WordAddr, banks: usize) -> usize {
    (word.line().raw() % banks as u64) as usize
}

impl DnvL1 {
    /// Creates an empty L1 for core `id`. `backoff_enabled` selects
    /// DeNovoSync (true) vs DeNovoSync0 (false).
    pub fn new(
        id: CoreId,
        geometry: CacheGeometry,
        banks: usize,
        backoff_cfg: BackoffConfig,
        backoff_enabled: bool,
        layout: Arc<MemoryLayout>,
    ) -> Self {
        DnvL1 {
            id,
            banks,
            cache: CacheArray::new(geometry),
            mshr: Mshr::unbounded(),
            backoff: BackoffUnit::new(backoff_cfg, backoff_enabled),
            watch: None,
            layout,
            stats: CacheStats::new(),
            tel: Telemetry::off(),
        }
    }

    /// Attaches a telemetry handle (word-state transitions, registrations,
    /// MSHR occupancy).
    pub fn set_telemetry(&mut self, tel: Telemetry) {
        self.mshr.set_telemetry(tel.clone(), self.id as u32);
        self.tel = tel;
    }

    /// Peak simultaneous MSHR occupancy observed.
    pub fn mshr_high_water(&self) -> usize {
        self.mshr.high_water()
    }

    fn emit_transition(
        &self,
        word: WordAddr,
        from: &'static str,
        to: &'static str,
        cause: &'static str,
    ) {
        self.tel.emit(|| Event {
            cycle: self.tel.now(),
            node: self.id as u32,
            component: Component::L1,
            addr: word.telemetry_key(),
            kind: EventKind::Transition { from, to, cause },
        });
    }

    /// Cache-access statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The backoff unit (diagnostics / ablation reporting).
    pub fn backoff(&self) -> &BackoffUnit {
        &self.backoff
    }

    /// Sets the spin-watched word.
    pub fn set_watch(&mut self, word: WordAddr) {
        self.watch = Some(word);
    }

    /// Clears the spin watch.
    pub fn clear_watch(&mut self) {
        self.watch = None;
    }

    /// Whether a synchronization read of `word` would hit right now (the
    /// word is Registered with no writeback pending) — used by the system to
    /// decide between watching and re-issuing a failed spin.
    pub fn word_registered(&self, word: WordAddr) -> bool {
        !self.mshr.contains(&word) && self.word_state(word) == WState::Registered
    }

    /// The word's current state (Invalid if the line is absent).
    pub fn word_state(&self, word: WordAddr) -> WState {
        self.cache
            .get(word.line())
            .map_or(WState::Invalid, |l| l.words[word.index_in_line()].state)
    }

    /// The value of a word this core is responsible for (Registered in the
    /// array, or held by a writeback handshake), if any.
    pub fn peek_registered(&self, word: WordAddr) -> Option<u64> {
        if let Some(Pend {
            kind: PendKind::Wb { value, .. },
            ..
        }) = self.mshr.get(&word)
        {
            return Some(*value);
        }
        let line = self.cache.get(word.line())?;
        let w = line.words[word.index_in_line()];
        (w.state == WState::Registered).then_some(w.value)
    }

    /// Iterates every word this L1 holds in Registered state (for invariant
    /// checking).
    pub fn registered_words(&self) -> impl Iterator<Item = WordAddr> + '_ {
        self.cache.iter().flat_map(|(line, payload)| {
            payload
                .words
                .iter()
                .enumerate()
                .filter(|(_, w)| w.state == WState::Registered)
                .map(move |(i, _)| line.word(i))
        })
    }

    /// Number of outstanding MSHR transactions.
    pub fn outstanding_txns(&self) -> usize {
        self.mshr.len()
    }

    /// Whether this L1 has an outstanding MSHR transaction on `word`.
    pub fn has_pending(&self, word: WordAddr) -> bool {
        self.mshr.contains(&word)
    }

    /// Whether a forwarded registration transfer is parked on `word`'s MSHR
    /// entry — the in-L1 link of the distributed registration queue.
    pub fn has_parked_xfer(&self, word: WordAddr) -> bool {
        self.mshr
            .get(&word)
            .is_some_and(|p| p.parked_xfer.is_some())
    }

    /// One `(word, description)` pair per outstanding MSHR entry (stall
    /// diagnostics and conservation checking).
    pub fn pending_summaries(&self) -> Vec<(WordAddr, String)> {
        self.mshr
            .iter()
            .map(|(w, p)| {
                let mut desc = format!("{:?}", p.kind);
                if !p.parked_reads.is_empty() {
                    desc.push_str(&format!(", {} parked read(s)", p.parked_reads.len()));
                }
                if let Some((c, class)) = p.parked_xfer {
                    desc.push_str(&format!(", parked xfer to core {c} ({class:?})"));
                }
                (*w, desc)
            })
            .collect()
    }

    /// Self-invalidates every Valid word belonging to `region` (Registered
    /// words are untouched — "registered data stays in the cache across
    /// synchronization boundaries").
    pub fn self_invalidate(&mut self, region: Region) {
        let layout = Arc::clone(&self.layout);
        for (line, payload) in self.cache.iter_mut() {
            for i in 0..WORDS_PER_LINE {
                if payload.words[i].state == WState::Valid
                    && layout.region_of_word(line.word(i)) == Some(region)
                {
                    payload.words[i].state = WState::Invalid;
                }
            }
        }
    }

    /// Self-invalidates exactly the given words (signature mode): each one
    /// that is cached Valid becomes Invalid; Registered words are untouched.
    pub fn self_invalidate_words(&mut self, words: &[WordAddr]) {
        for &word in words {
            if let Some(line) = self.cache.get_mut(word.line()) {
                let w = &mut line.words[word.index_in_line()];
                if w.state == WState::Valid {
                    w.state = WState::Invalid;
                }
            }
        }
    }

    fn home(&self, word: WordAddr) -> Endpoint {
        Endpoint::Bank(bank_for(word, self.banks))
    }

    fn word_mut(&mut self, word: WordAddr) -> Option<&mut DnvWord> {
        self.cache
            .get_mut(word.line())
            .map(|l| &mut l.words[word.index_in_line()])
    }

    /// Presents a core memory request. `after_backoff` marks the re-issue of
    /// a synchronization read whose hardware backoff has expired (it must
    /// not be delayed again).
    pub fn core_request(
        &mut self,
        req: &MemRequest,
        after_backoff: bool,
        actions: &mut Vec<Action>,
    ) -> IssueResult {
        let word = req.addr.word();
        match req.kind {
            AccessKind::DataLoad => {
                if let Some(Pend { kind, .. }) = self.mshr.get(&word) {
                    match kind {
                        PendKind::Wb { .. } => return IssueResult::Blocked,
                        PendKind::Write => { /* word is Registered locally: falls through to hit */
                        }
                        other => unreachable!("data load with own {other:?} pending"),
                    }
                }
                match self.word_state(word) {
                    WState::Valid | WState::Registered => {
                        let value = self.word_mut(word).expect("resident").value;
                        self.note_hit(req.kind);
                        IssueResult::Hit { value: Some(value) }
                    }
                    WState::Invalid => {
                        self.note_miss(req.kind);
                        self.mshr
                            .try_insert(word, Pend::new(PendKind::Read))
                            .expect("fresh mshr");
                        actions.push(Action::Send {
                            to: self.home(word),
                            msg: Msg::Dnv(DnvMsg::ReadReq { word, req: self.id }),
                        });
                        IssueResult::Miss
                    }
                }
            }
            AccessKind::DataStore { value } => {
                if let Some(Pend { kind, .. }) = self.mshr.get(&word) {
                    match kind {
                        PendKind::Wb { .. } => return IssueResult::Blocked,
                        PendKind::Write => {
                            // Previous store's registration still in flight;
                            // the word is Registered locally — just update.
                            self.word_mut(word).expect("registered word").value = value;
                            self.note_hit(req.kind);
                            return IssueResult::StoreAccepted { completed: true };
                        }
                        other => unreachable!("data store with own {other:?} pending"),
                    }
                }
                if self.word_state(word) == WState::Registered {
                    self.word_mut(word).expect("resident").value = value;
                    self.note_hit(req.kind);
                    return IssueResult::StoreAccepted { completed: true };
                }
                // Immediate transition to Registered + registration request
                // (no transient state — the paper's write path).
                if !self.ensure_line(word.line(), actions) {
                    return IssueResult::Blocked;
                }
                self.note_miss(req.kind);
                let w = self.word_mut(word).expect("line just ensured");
                let from = w.state.label();
                w.state = WState::Registered;
                w.value = value;
                self.emit_transition(word, from, "R", "store");
                self.mshr
                    .try_insert(word, Pend::new(PendKind::Write))
                    .expect("fresh mshr");
                actions.push(Action::Send {
                    to: self.home(word),
                    msg: Msg::Dnv(DnvMsg::RegReq {
                        word,
                        req: self.id,
                        class: XferClass::Write,
                    }),
                });
                IssueResult::StoreAccepted { completed: false }
            }
            AccessKind::SyncLoad => {
                if self.mshr.contains(&word) {
                    return IssueResult::Blocked; // writeback handshake in flight
                }
                match self.word_state(word) {
                    WState::Registered => {
                        let value = self.word_mut(word).expect("resident").value;
                        self.backoff.on_sync_hit();
                        self.note_hit(req.kind);
                        IssueResult::Hit { value: Some(value) }
                    }
                    state => {
                        // DeNovoSync: a read to Valid state triggers backoff.
                        if state == WState::Valid && !after_backoff {
                            let delay = self.backoff.current();
                            if delay > 0 {
                                return IssueResult::Backoff { cycles: delay };
                            }
                        }
                        self.note_miss(req.kind);
                        self.mshr
                            .try_insert(word, Pend::new(PendKind::SyncRead))
                            .expect("fresh mshr");
                        actions.push(Action::Send {
                            to: self.home(word),
                            msg: Msg::Dnv(DnvMsg::RegReq {
                                word,
                                req: self.id,
                                class: XferClass::SyncRead,
                            }),
                        });
                        IssueResult::Miss
                    }
                }
            }
            AccessKind::SyncStore { value } => {
                if self.mshr.contains(&word) {
                    return IssueResult::Blocked;
                }
                if self.word_state(word) == WState::Registered {
                    self.word_mut(word).expect("resident").value = value;
                    self.backoff.on_release();
                    self.note_hit(req.kind);
                    return IssueResult::Hit { value: None };
                }
                self.note_miss(req.kind);
                self.mshr
                    .try_insert(word, Pend::new(PendKind::SyncWrite { value }))
                    .expect("fresh mshr");
                actions.push(Action::Send {
                    to: self.home(word),
                    msg: Msg::Dnv(DnvMsg::RegReq {
                        word,
                        req: self.id,
                        class: XferClass::SyncWrite,
                    }),
                });
                IssueResult::Miss
            }
            AccessKind::SyncRmw(op) => {
                if self.mshr.contains(&word) {
                    return IssueResult::Blocked;
                }
                if self.word_state(word) == WState::Registered {
                    let w = self.word_mut(word).expect("resident");
                    let old = w.value;
                    w.value = op.apply(old);
                    self.backoff.on_sync_hit();
                    self.note_hit(req.kind);
                    return IssueResult::Hit { value: Some(old) };
                }
                self.note_miss(req.kind);
                self.mshr
                    .try_insert(word, Pend::new(PendKind::Rmw { op }))
                    .expect("fresh mshr");
                actions.push(Action::Send {
                    to: self.home(word),
                    msg: Msg::Dnv(DnvMsg::RegReq {
                        word,
                        req: self.id,
                        class: XferClass::SyncWrite,
                    }),
                });
                IssueResult::Miss
            }
        }
    }

    /// Handles an incoming protocol message.
    pub fn on_msg(&mut self, msg: DnvMsg, actions: &mut Vec<Action>) {
        match msg {
            DnvMsg::ReadReq { word, req } => {
                // A data read forwarded by the registry: we are (or were
                // about to become) the registrant.
                if let Some(pend) = self.mshr.get_mut(&word) {
                    if !matches!(pend.kind, PendKind::Write) {
                        pend.parked_reads.push(req);
                        return;
                    }
                }
                if self.word_state(word) != WState::Registered {
                    actions.push(Action::violation(format!(
                        "L1 {}: forwarded read for unregistered word {word}",
                        self.id
                    )));
                    return;
                }
                // DeNovo transfers data at line granularity: piggy-back the
                // line's other words registered here (they are equally
                // current), cutting the forwarded-read count for data that
                // was written together (original DeNovo [10]).
                let line = self
                    .cache
                    .get(word.line())
                    .expect("registered word resident");
                let idx = word.index_in_line();
                let value = line.words[idx].value;
                let mut mask = 0u8;
                let mut data = [0u64; WORDS_PER_LINE];
                for (i, w) in line.words.iter().enumerate() {
                    if i != idx && w.state == WState::Registered {
                        mask |= 1 << i;
                        data[i] = w.value;
                    }
                }
                let fill = (mask != 0).then_some((mask, data));
                actions.push(Action::Send {
                    to: Endpoint::L1(req),
                    msg: Msg::Dnv(DnvMsg::ReadResp { word, value, fill }),
                });
            }
            DnvMsg::Xfer {
                word,
                new_owner,
                class,
            } => {
                if let Some(pend) = self.mshr.get_mut(&word) {
                    if let PendKind::Wb {
                        value,
                        nacked: true,
                    } = pend.kind
                    {
                        // The registry refused our writeback because this
                        // transfer was already on its way: serve and drop.
                        let reads = std::mem::take(&mut pend.parked_reads);
                        self.mshr.remove(&word);
                        self.serve_reads(word, value, &reads, actions);
                        actions.push(Action::Send {
                            to: Endpoint::L1(new_owner),
                            msg: Msg::Dnv(DnvMsg::RegAck { word, value, class }),
                        });
                        return;
                    }
                    if pend.parked_xfer.is_some() {
                        actions.push(Action::violation(format!(
                            "L1: second transfer parked on one registration for {word}"
                        )));
                        return;
                    }
                    pend.parked_xfer = Some((new_owner, class));
                    return;
                }
                let Some(value) = self.downgrade(word, class, actions) else {
                    actions.push(Action::violation(format!(
                        "L1 {}: transfer for unregistered word {word}",
                        self.id
                    )));
                    return;
                };
                actions.push(Action::Send {
                    to: Endpoint::L1(new_owner),
                    msg: Msg::Dnv(DnvMsg::RegAck { word, value, class }),
                });
            }
            DnvMsg::ReadResp { word, value, fill } => {
                let Some(pend) = self.mshr.remove(&word) else {
                    actions.push(Action::violation(format!(
                        "L1 {}: ReadResp without pending read for {word}",
                        self.id
                    )));
                    return;
                };
                if !matches!(pend.kind, PendKind::Read) {
                    actions.push(Action::violation(format!(
                        "L1 {}: ReadResp for {word} with {:?} pending",
                        self.id, pend.kind
                    )));
                    return;
                }
                if self.ensure_line(word.line(), actions) {
                    let w = self.word_mut(word).expect("line ensured");
                    if w.state == WState::Invalid {
                        w.state = WState::Valid;
                        w.value = value;
                    }
                    if let Some((mask, data)) = fill {
                        self.fill_line(word.line(), mask, &data);
                    }
                }
                // (If no way could be freed, deliver uncached — reads take
                // no ownership, so nothing else is required.)
                actions.push(Action::CoreDone { value: Some(value) });
            }
            DnvMsg::RegAck { word, value, .. } => self.on_reg_ack(word, value, actions),
            DnvMsg::WbAck { word } => {
                let Some(pend) = self.mshr.remove(&word) else {
                    actions.push(Action::violation(format!(
                        "L1 {}: WbAck without writeback for {word}",
                        self.id
                    )));
                    return;
                };
                let PendKind::Wb { value, nacked } = pend.kind else {
                    actions.push(Action::violation(format!(
                        "L1 {}: WbAck for {word} with {:?} pending",
                        self.id, pend.kind
                    )));
                    return;
                };
                if nacked {
                    actions.push(Action::violation(format!(
                        "L1 {}: WbAck for {word} after WbNack",
                        self.id
                    )));
                    return;
                }
                if pend.parked_xfer.is_some() {
                    actions.push(Action::violation(format!(
                        "L1 {}: registry acked a writeback of {word} with a transfer outstanding",
                        self.id
                    )));
                    return;
                }
                self.serve_reads(word, value, &pend.parked_reads, actions);
            }
            DnvMsg::WbNack { word } => {
                let Some(pend) = self.mshr.get_mut(&word) else {
                    actions.push(Action::violation(format!(
                        "L1: WbNack without writeback for {word}"
                    )));
                    return;
                };
                let PendKind::Wb { value, .. } = pend.kind else {
                    let kind = pend.kind;
                    actions.push(Action::violation(format!(
                        "L1: WbNack for {word} with {kind:?} pending"
                    )));
                    return;
                };
                if let Some((new_owner, class)) = pend.parked_xfer.take() {
                    let reads = std::mem::take(&mut pend.parked_reads);
                    self.mshr.remove(&word);
                    self.serve_reads(word, value, &reads, actions);
                    actions.push(Action::Send {
                        to: Endpoint::L1(new_owner),
                        msg: Msg::Dnv(DnvMsg::RegAck { word, value, class }),
                    });
                } else {
                    pend.kind = PendKind::Wb {
                        value,
                        nacked: true,
                    };
                }
            }
            other => actions.push(Action::violation(format!(
                "L1 {} cannot handle {other:?}",
                self.id
            ))),
        }
    }

    /// Our own registration was acknowledged: perform the operation, then
    /// serve anything that parked behind us in the distributed queue.
    fn on_reg_ack(&mut self, word: WordAddr, ack_value: u64, actions: &mut Vec<Action>) {
        let Some(pend) = self.mshr.remove(&word) else {
            actions.push(Action::violation(format!(
                "L1 {}: RegAck without registration for {word}",
                self.id
            )));
            return;
        };
        let cached = self.ensure_line(word.line(), actions);
        let mut owned_value = ack_value;
        match pend.kind {
            PendKind::Write => {
                // The word was already Registered locally with our value;
                // the ack just retires the store.
                owned_value = self
                    .word_mut(word)
                    .map(|w| w.value)
                    .expect("write-registered word resident");
                actions.push(Action::StoresDone { count: 1 });
            }
            PendKind::SyncRead => {
                if cached {
                    let w = self.word_mut(word).expect("line ensured");
                    let from = w.state.label();
                    w.state = WState::Registered;
                    w.value = ack_value;
                    self.emit_transition(word, from, "R", "RegAck");
                }
                actions.push(Action::CoreDone {
                    value: Some(ack_value),
                });
            }
            PendKind::SyncWrite { value } => {
                if cached {
                    let w = self.word_mut(word).expect("line ensured");
                    let from = w.state.label();
                    w.state = WState::Registered;
                    w.value = value;
                    self.emit_transition(word, from, "R", "RegAck");
                }
                owned_value = value;
                self.backoff.on_release();
                actions.push(Action::CoreDone { value: None });
            }
            PendKind::Rmw { op } => {
                let new = op.apply(ack_value);
                if cached {
                    let w = self.word_mut(word).expect("line ensured");
                    let from = w.state.label();
                    w.state = WState::Registered;
                    w.value = new;
                    self.emit_transition(word, from, "R", "RegAck");
                }
                owned_value = new;
                actions.push(Action::CoreDone {
                    value: Some(ack_value),
                });
            }
            PendKind::Read | PendKind::Wb { .. } => {
                actions.push(Action::violation(format!(
                    "L1 {}: RegAck for {word} with {:?} pending",
                    self.id, pend.kind
                )));
                return;
            }
        }
        // Serve parked forwarded reads with the post-operation value (they
        // were serialized after our registration).
        self.serve_reads(word, owned_value, &pend.parked_reads, actions);
        // Then the parked transfer, if any: ownership moves on.
        if let Some((new_owner, class)) = pend.parked_xfer {
            let value = if cached {
                // The ack just (re-)registered the word here, so the
                // downgrade cannot miss.
                self.downgrade(word, class, actions)
                    .expect("word registered by this ack")
            } else {
                owned_value
            };
            actions.push(Action::Send {
                to: Endpoint::L1(new_owner),
                msg: Msg::Dnv(DnvMsg::RegAck { word, value, class }),
            });
        } else if !cached {
            // We are the registrant but could not cache the word: hand the
            // value straight back to the registry.
            self.mshr
                .try_insert(
                    word,
                    Pend::new(PendKind::Wb {
                        value: owned_value,
                        nacked: false,
                    }),
                )
                .expect("fresh mshr");
            actions.push(Action::Send {
                to: self.home(word),
                msg: Msg::Dnv(DnvMsg::WbReq {
                    word,
                    value: owned_value,
                    from: self.id,
                }),
            });
        }
    }

    /// Downgrades a Registered word for an outgoing transfer, returning its
    /// value (`None` if the word is not actually Registered here — a
    /// protocol violation the caller reports). Synchronization reads under
    /// DeNovoSync leave a Valid copy (the backoff trigger) and bump the
    /// counter; everything else invalidates.
    fn downgrade(
        &mut self,
        word: WordAddr,
        class: XferClass,
        actions: &mut Vec<Action>,
    ) -> Option<u64> {
        let keep_valid = class == XferClass::SyncRead && self.backoff.is_enabled();
        if class == XferClass::SyncRead {
            self.backoff.on_remote_sync_read();
        }
        let w = self
            .word_mut(word)
            .filter(|w| w.state == WState::Registered)?;
        let value = w.value;
        w.state = if keep_valid {
            WState::Valid
        } else {
            WState::Invalid
        };
        self.emit_transition(word, "R", if keep_valid { "V" } else { "I" }, "Xfer");
        if self.watch == Some(word) {
            actions.push(Action::SpinWake);
        }
        Some(value)
    }

    fn serve_reads(
        &self,
        word: WordAddr,
        value: u64,
        readers: &[CoreId],
        actions: &mut Vec<Action>,
    ) {
        for &r in readers {
            actions.push(Action::Send {
                to: Endpoint::L1(r),
                msg: Msg::Dnv(DnvMsg::ReadResp {
                    word,
                    value,
                    fill: None,
                }),
            });
        }
    }

    /// Copies the registry's valid sibling words into Invalid slots.
    fn fill_line(&mut self, line: LineAddr, mask: u8, data: &[u64; WORDS_PER_LINE]) {
        let payload = self.cache.get_mut(line).expect("line resident");
        for (i, (slot, &value)) in payload.words.iter_mut().zip(data).enumerate() {
            if mask & (1 << i) != 0
                && slot.state == WState::Invalid
                // Skip words with their own pending transactions.
                && !self.mshr.contains(&line.word(i))
            {
                *slot = DnvWord {
                    state: WState::Valid,
                    value,
                };
            }
        }
    }

    /// Makes `line` resident, evicting if necessary. Returns false if no way
    /// could be freed.
    fn ensure_line(&mut self, line: LineAddr, actions: &mut Vec<Action>) -> bool {
        if self.cache.contains(line) {
            self.cache.touch(line);
            return true;
        }
        let watch_line = self.watch.map(WordAddr::line);
        // First preference: a victim with nothing pinned (clean Valid-only
        // lines drop silently — Valid words are always clean copies).
        let mshr = &self.mshr;
        let clean = self
            .cache
            .insert_filtered(line, DnvLine::empty(), |addr, l| {
                Some(addr) != watch_line
                    && !l.has_registered()
                    && addr.words().all(|w| !mshr.contains(&w))
            });
        match clean {
            InsertOutcome::Inserted | InsertOutcome::Evicted(..) => return true,
            InsertOutcome::NoVictim(_) => {}
        }
        // Fall back to evicting a line with Registered words via the
        // writeback handshake.
        let mshr = &self.mshr;
        let outcome = self
            .cache
            .insert_filtered(line, DnvLine::empty(), |addr, _| {
                Some(addr) != watch_line && addr.words().all(|w| !mshr.contains(&w))
            });
        match outcome {
            InsertOutcome::Inserted => true,
            InsertOutcome::Evicted(victim, old) => {
                for i in 0..WORDS_PER_LINE {
                    if old.words[i].state == WState::Registered {
                        let word = victim.word(i);
                        let value = old.words[i].value;
                        self.mshr
                            .try_insert(
                                word,
                                Pend::new(PendKind::Wb {
                                    value,
                                    nacked: false,
                                }),
                            )
                            .expect("victim words unpinned");
                        actions.push(Action::Send {
                            to: self.home(word),
                            msg: Msg::Dnv(DnvMsg::WbReq {
                                word,
                                value,
                                from: self.id,
                            }),
                        });
                    }
                }
                true
            }
            InsertOutcome::NoVictim(_) => false,
        }
    }

    fn note_hit(&mut self, kind: AccessKind) {
        match kind {
            AccessKind::DataLoad => self.stats.data_read_hits += 1,
            AccessKind::DataStore { .. } => self.stats.data_write_hits += 1,
            AccessKind::SyncLoad => self.stats.sync_read_hits += 1,
            AccessKind::SyncStore { .. } | AccessKind::SyncRmw(_) => {
                self.stats.sync_write_hits += 1
            }
        }
    }

    fn note_miss(&mut self, kind: AccessKind) {
        match kind {
            AccessKind::DataLoad => self.stats.data_read_misses += 1,
            AccessKind::DataStore { .. } => self.stats.data_write_misses += 1,
            AccessKind::SyncLoad => self.stats.sync_read_misses += 1,
            AccessKind::SyncStore { .. } | AccessKind::SyncRmw(_) => {
                self.stats.sync_write_misses += 1
            }
        }
    }
}

/// Canonical hash for model checking: every field that influences future
/// protocol behaviour. `stats` (counters) and `layout` (immutable, shared)
/// are excluded.
impl std::hash::Hash for DnvL1 {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.id.hash(state);
        self.banks.hash(state);
        self.cache.hash(state);
        self.mshr.hash(state);
        self.backoff.hash(state);
        self.watch.hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvs_mem::{Addr, LayoutBuilder};

    fn layout() -> Arc<MemoryLayout> {
        let mut b = LayoutBuilder::new();
        let r = b.region("shared");
        b.segment("arena", 1 << 16, r);
        Arc::new(b.build())
    }

    fn l1(enabled: bool) -> DnvL1 {
        DnvL1::new(
            0,
            CacheGeometry::new(1024, 2),
            4,
            BackoffConfig::cores16(),
            enabled,
            layout(),
        )
    }

    fn req(addr: u64, kind: AccessKind) -> MemRequest {
        MemRequest {
            addr: Addr::new(addr),
            kind,
            dst: None,
            spin: None,
        }
    }

    fn word(addr: u64) -> WordAddr {
        Addr::new(addr).word()
    }

    #[test]
    fn sync_read_always_misses_unless_registered() {
        let mut l1 = l1(false);
        let mut acts = Vec::new();
        assert_eq!(
            l1.core_request(&req(0x100, AccessKind::SyncLoad), false, &mut acts),
            IssueResult::Miss
        );
        assert!(matches!(
            acts[0],
            Action::Send {
                msg: Msg::Dnv(DnvMsg::RegReq {
                    class: XferClass::SyncRead,
                    ..
                }),
                ..
            }
        ));
        acts.clear();
        l1.on_msg(
            DnvMsg::RegAck {
                word: word(0x100),
                value: 7,
                class: XferClass::SyncRead,
            },
            &mut acts,
        );
        assert!(acts.contains(&Action::CoreDone { value: Some(7) }));
        assert!(l1.word_registered(word(0x100)));
        // Now a sync read hits.
        acts.clear();
        assert_eq!(
            l1.core_request(&req(0x100, AccessKind::SyncLoad), false, &mut acts),
            IssueResult::Hit { value: Some(7) }
        );
    }

    #[test]
    fn data_write_registers_immediately_without_stalling() {
        let mut l1 = l1(false);
        let mut acts = Vec::new();
        assert_eq!(
            l1.core_request(
                &req(0x100, AccessKind::DataStore { value: 5 }),
                false,
                &mut acts
            ),
            IssueResult::StoreAccepted { completed: false }
        );
        // The word is already Registered locally: reads hit and see 5.
        acts.clear();
        assert_eq!(
            l1.core_request(&req(0x100, AccessKind::DataLoad), false, &mut acts),
            IssueResult::Hit { value: Some(5) }
        );
        // The ack retires the outstanding store.
        l1.on_msg(
            DnvMsg::RegAck {
                word: word(0x100),
                value: 0,
                class: XferClass::Write,
            },
            &mut acts,
        );
        assert!(acts.contains(&Action::StoresDone { count: 1 }));
        assert_eq!(l1.peek_registered(word(0x100)), Some(5));
    }

    #[test]
    fn transfer_downgrades_to_invalid_on_ds0_and_valid_on_ds() {
        for (enabled, expect) in [(false, WState::Invalid), (true, WState::Valid)] {
            let mut l1 = l1(enabled);
            let mut acts = Vec::new();
            l1.core_request(
                &req(0x100, AccessKind::DataStore { value: 9 }),
                false,
                &mut acts,
            );
            l1.on_msg(
                DnvMsg::RegAck {
                    word: word(0x100),
                    value: 0,
                    class: XferClass::Write,
                },
                &mut acts,
            );
            acts.clear();
            l1.on_msg(
                DnvMsg::Xfer {
                    word: word(0x100),
                    new_owner: 2,
                    class: XferClass::SyncRead,
                },
                &mut acts,
            );
            // Value 9 travels to the new owner.
            assert!(acts.iter().any(|a| matches!(
                a,
                Action::Send {
                    to: Endpoint::L1(2),
                    msg: Msg::Dnv(DnvMsg::RegAck { value: 9, .. })
                }
            )));
            assert_eq!(l1.word_state(word(0x100)), expect, "enabled={enabled}");
            if enabled {
                assert!(l1.backoff().current() > 0, "backoff must have grown");
            }
        }
    }

    #[test]
    fn sync_read_to_valid_backs_off_then_misses() {
        let mut l1 = l1(true);
        let mut acts = Vec::new();
        // Register then lose to a remote sync read → Valid + backoff > 0.
        l1.core_request(
            &req(0x100, AccessKind::DataStore { value: 1 }),
            false,
            &mut acts,
        );
        l1.on_msg(
            DnvMsg::RegAck {
                word: word(0x100),
                value: 0,
                class: XferClass::Write,
            },
            &mut acts,
        );
        l1.on_msg(
            DnvMsg::Xfer {
                word: word(0x100),
                new_owner: 1,
                class: XferClass::SyncRead,
            },
            &mut acts,
        );
        acts.clear();
        let res = l1.core_request(&req(0x100, AccessKind::SyncLoad), false, &mut acts);
        let IssueResult::Backoff { cycles } = res else {
            panic!("expected backoff, got {res:?}");
        };
        assert!(cycles > 0);
        assert!(acts.is_empty(), "no messages during backoff");
        // After the backoff expires the re-issue must miss (ignoring the
        // Valid copy).
        let res = l1.core_request(&req(0x100, AccessKind::SyncLoad), true, &mut acts);
        assert_eq!(res, IssueResult::Miss);
    }

    #[test]
    fn racing_transfer_parks_in_mshr_until_own_ack() {
        // The distributed queue: our sync read is pending; the next
        // registrant's transfer arrives first and must wait for our ack.
        let mut l1 = l1(false);
        let mut acts = Vec::new();
        l1.core_request(&req(0x100, AccessKind::SyncLoad), false, &mut acts);
        acts.clear();
        l1.on_msg(
            DnvMsg::Xfer {
                word: word(0x100),
                new_owner: 3,
                class: XferClass::SyncRead,
            },
            &mut acts,
        );
        assert!(acts.is_empty(), "transfer must park: {acts:?}");
        // Our ack arrives: we complete, then immediately pass ownership on.
        l1.on_msg(
            DnvMsg::RegAck {
                word: word(0x100),
                value: 42,
                class: XferClass::SyncRead,
            },
            &mut acts,
        );
        assert!(acts.contains(&Action::CoreDone { value: Some(42) }));
        assert!(acts.iter().any(|a| matches!(
            a,
            Action::Send {
                to: Endpoint::L1(3),
                msg: Msg::Dnv(DnvMsg::RegAck { value: 42, .. })
            }
        )));
        assert_eq!(l1.word_state(word(0x100)), WState::Invalid);
    }

    #[test]
    fn rmw_applies_at_ownership_and_serves_parked_reads_with_new_value() {
        let mut l1 = l1(false);
        let mut acts = Vec::new();
        l1.core_request(
            &req(0x100, AccessKind::SyncRmw(RmwOp::Fai { delta: 1 })),
            false,
            &mut acts,
        );
        acts.clear();
        // A forwarded data read parks behind our pending registration.
        l1.on_msg(
            DnvMsg::ReadReq {
                word: word(0x100),
                req: 5,
            },
            &mut acts,
        );
        assert!(acts.is_empty());
        l1.on_msg(
            DnvMsg::RegAck {
                word: word(0x100),
                value: 10,
                class: XferClass::SyncWrite,
            },
            &mut acts,
        );
        assert!(acts.contains(&Action::CoreDone { value: Some(10) }));
        // The parked read sees the post-RMW value 11.
        assert!(acts.iter().any(|a| matches!(
            a,
            Action::Send {
                to: Endpoint::L1(5),
                msg: Msg::Dnv(DnvMsg::ReadResp { value: 11, .. })
            }
        )));
        assert_eq!(l1.peek_registered(word(0x100)), Some(11));
    }

    #[test]
    fn self_invalidation_clears_valid_but_not_registered() {
        let mut l1 = l1(false);
        let mut acts = Vec::new();
        // Valid word via data read.
        l1.core_request(&req(0x100, AccessKind::DataLoad), false, &mut acts);
        l1.on_msg(
            DnvMsg::ReadResp {
                word: word(0x100),
                value: 3,
                fill: None,
            },
            &mut acts,
        );
        // Registered word via store.
        l1.core_request(
            &req(0x140, AccessKind::DataStore { value: 4 }),
            false,
            &mut acts,
        );
        assert_eq!(l1.word_state(word(0x100)), WState::Valid);
        assert_eq!(l1.word_state(word(0x140)), WState::Registered);
        let region = l1.layout.region_of(Addr::new(0x100)).unwrap();
        l1.self_invalidate(region);
        assert_eq!(l1.word_state(word(0x100)), WState::Invalid);
        assert_eq!(l1.word_state(word(0x140)), WState::Registered);
    }

    #[test]
    fn read_resp_fill_installs_only_invalid_words() {
        let mut l1 = l1(false);
        let mut acts = Vec::new();
        // Make word 1 of the line Registered first.
        l1.core_request(
            &req(0x108, AccessKind::DataStore { value: 99 }),
            false,
            &mut acts,
        );
        acts.clear();
        l1.core_request(&req(0x100, AccessKind::DataLoad), false, &mut acts);
        let mut data = [0u64; 8];
        data[2] = 22;
        data[1] = 11; // must NOT overwrite the registered 99
        l1.on_msg(
            DnvMsg::ReadResp {
                word: word(0x100),
                value: 5,
                fill: Some((0b0000_0110, data)),
            },
            &mut acts,
        );
        assert_eq!(l1.word_state(word(0x100)), WState::Valid);
        assert_eq!(l1.word_state(word(0x110)), WState::Valid);
        assert_eq!(l1.peek_registered(word(0x108)), Some(99));
    }

    #[test]
    fn writeback_handshake_ack_path() {
        let mut l1 = l1(false);
        let mut acts = Vec::new();
        // Fill both ways of set 0 with registered words, then force a third
        // line into the set (2-way, 8 sets ⇒ stride 8 lines = 0x200).
        for (a, v) in [(0x200u64, 1u64), (0x400, 2)] {
            l1.core_request(
                &req(a, AccessKind::DataStore { value: v }),
                false,
                &mut acts,
            );
            l1.on_msg(
                DnvMsg::RegAck {
                    word: word(a),
                    value: 0,
                    class: XferClass::Write,
                },
                &mut acts,
            );
        }
        acts.clear();
        let res = l1.core_request(
            &req(0x600, AccessKind::DataStore { value: 3 }),
            false,
            &mut acts,
        );
        assert_eq!(res, IssueResult::StoreAccepted { completed: false });
        let wb = acts.iter().find_map(|a| match a {
            Action::Send {
                msg: Msg::Dnv(DnvMsg::WbReq { word, value, .. }),
                ..
            } => Some((*word, *value)),
            _ => None,
        });
        let (wb_word, wb_value) = wb.expect("writeback for the evicted registered word");
        assert_eq!(wb_word, word(0x200));
        assert_eq!(wb_value, 1);
        // Held value still answers peeks during the handshake.
        assert_eq!(l1.peek_registered(wb_word), Some(1));
        acts.clear();
        l1.on_msg(DnvMsg::WbAck { word: wb_word }, &mut acts);
        assert_eq!(l1.peek_registered(wb_word), None);
    }

    #[test]
    fn writeback_nack_then_transfer_serves_from_held_value() {
        let mut l1 = l1(false);
        let mut acts = Vec::new();
        for (a, v) in [(0x200u64, 1u64), (0x400, 2)] {
            l1.core_request(
                &req(a, AccessKind::DataStore { value: v }),
                false,
                &mut acts,
            );
            l1.on_msg(
                DnvMsg::RegAck {
                    word: word(a),
                    value: 0,
                    class: XferClass::Write,
                },
                &mut acts,
            );
        }
        acts.clear();
        l1.core_request(
            &req(0x600, AccessKind::DataStore { value: 3 }),
            false,
            &mut acts,
        );
        acts.clear();
        // Registry refuses: ownership already moved to core 4.
        l1.on_msg(DnvMsg::WbNack { word: word(0x200) }, &mut acts);
        assert!(acts.is_empty());
        l1.on_msg(
            DnvMsg::Xfer {
                word: word(0x200),
                new_owner: 4,
                class: XferClass::SyncRead,
            },
            &mut acts,
        );
        assert!(acts.iter().any(|a| matches!(
            a,
            Action::Send {
                to: Endpoint::L1(4),
                msg: Msg::Dnv(DnvMsg::RegAck { value: 1, .. })
            }
        )));
        // Only the 0x600 store's own registration remains outstanding.
        assert_eq!(l1.outstanding_txns(), 1);
    }

    #[test]
    fn transfer_before_nack_also_resolves() {
        let mut l1 = l1(false);
        let mut acts = Vec::new();
        for (a, v) in [(0x200u64, 1u64), (0x400, 2)] {
            l1.core_request(
                &req(a, AccessKind::DataStore { value: v }),
                false,
                &mut acts,
            );
            l1.on_msg(
                DnvMsg::RegAck {
                    word: word(a),
                    value: 0,
                    class: XferClass::Write,
                },
                &mut acts,
            );
        }
        acts.clear();
        l1.core_request(
            &req(0x600, AccessKind::DataStore { value: 3 }),
            false,
            &mut acts,
        );
        acts.clear();
        // Transfer parks on the writeback entry, then the nack releases it.
        l1.on_msg(
            DnvMsg::Xfer {
                word: word(0x200),
                new_owner: 4,
                class: XferClass::Write,
            },
            &mut acts,
        );
        assert!(acts.is_empty());
        l1.on_msg(DnvMsg::WbNack { word: word(0x200) }, &mut acts);
        assert!(acts.iter().any(|a| matches!(
            a,
            Action::Send {
                to: Endpoint::L1(4),
                msg: Msg::Dnv(DnvMsg::RegAck { value: 1, .. })
            }
        )));
    }

    #[test]
    fn spin_watch_wakes_on_transfer() {
        let mut l1 = l1(false);
        let mut acts = Vec::new();
        l1.core_request(&req(0x100, AccessKind::SyncLoad), false, &mut acts);
        l1.on_msg(
            DnvMsg::RegAck {
                word: word(0x100),
                value: 0,
                class: XferClass::SyncRead,
            },
            &mut acts,
        );
        l1.set_watch(word(0x100));
        acts.clear();
        l1.on_msg(
            DnvMsg::Xfer {
                word: word(0x100),
                new_owner: 9,
                class: XferClass::SyncWrite,
            },
            &mut acts,
        );
        assert!(acts.contains(&Action::SpinWake));
    }
}
