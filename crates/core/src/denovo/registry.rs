//! The DeNovo registry: the L2 bank's word-granularity ownership tracker.
//!
//! Each word is either `Valid(data)` — the L2 holds the up-to-date value —
//! or `Registered(core)` — a pointer to the L1 holding it. There are no
//! sharer lists and, crucially, the registry is **non-blocking**: a
//! registration request for a word registered elsewhere immediately
//! re-points the registry at the new requestor and forwards the request to
//! the previous registrant; it never buffers waiting for the transfer to
//! finish. Racing registrations therefore serialize through the L1s' MSHRs
//! (the paper's distributed queue, §4.1 "Handling races").

use crate::config::ProtocolMutation;
use crate::msg::{BankId, CoreId, DnvMsg, Endpoint, LineData, Msg};
use crate::proto::Action;
use dvs_mem::{LineAddr, MemoryLayout, SpanMap, WordAddr, LINE_BYTES, WORDS_PER_LINE};
use dvs_telemetry::{Component, Event, EventKind, Telemetry, TelemetryKey};
use std::collections::VecDeque;

/// One word's registry state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegWord {
    /// The L2 holds the current value.
    Valid(u64),
    /// The named core's L1 holds the current value.
    Registered(CoreId),
}

#[derive(Debug, Clone, Hash)]
struct RegLine {
    words: [RegWord; WORDS_PER_LINE],
    has_data: bool,
    fetching: bool,
    queue: VecDeque<DnvMsg>,
}

impl RegLine {
    fn new() -> Self {
        RegLine {
            words: [RegWord::Valid(0); WORDS_PER_LINE],
            has_data: false,
            fetching: false,
            queue: VecDeque::new(),
        }
    }
}

/// One L2 bank's slice of the registry.
#[derive(Debug, Clone)]
pub struct DnvRegistry {
    bank: BankId,
    mem: Endpoint,
    lines: SpanMap<RegLine>,
    mutation: Option<ProtocolMutation>,
    /// Observability only — excluded from `Hash`, never affects behaviour.
    tel: Telemetry,
}

impl DnvRegistry {
    /// Creates an empty bank. `mem` is the memory-controller endpoint this
    /// bank fetches lines through.
    pub fn new(bank: BankId, mem: Endpoint) -> Self {
        DnvRegistry {
            bank,
            mem,
            lines: SpanMap::sparse_only(),
            mutation: None,
            tel: Telemetry::off(),
        }
    }

    /// Sizes the dense line table from the workload layout. This bank homes
    /// exactly the lines `l` with `l.raw() % banks == bank`, so the table
    /// covers the layout span at stride `banks` with no unreachable slots;
    /// out-of-layout lines (thread-private pools) spill to the sparse tier.
    /// Call before any traffic arrives.
    pub fn configure_span(&mut self, layout: &MemoryLayout, banks: usize) {
        debug_assert!(self.lines.is_empty(), "span configured after traffic");
        let top_line = layout.top().div_ceil(LINE_BYTES);
        let slots = top_line.div_ceil(banks as u64) as usize;
        self.lines = SpanMap::with_span(self.bank as u64, banks as u64, slots);
    }

    /// Attaches a telemetry handle (registration re-points).
    pub fn set_telemetry(&mut self, tel: Telemetry) {
        self.tel = tel;
    }

    /// Emits a [`EventKind::Registration`]: the registry pointer for `word`
    /// moved to `owner` (from `prev`, or `u32::MAX` when the registry itself
    /// held the value).
    fn emit_registration(&self, word: WordAddr, owner: CoreId, prev: Option<CoreId>) {
        self.tel.emit(|| Event {
            cycle: self.tel.now(),
            node: self.bank as u32,
            component: Component::Dir,
            addr: word.telemetry_key(),
            kind: EventKind::Registration {
                owner: owner as u32,
                prev: prev.map_or(u32::MAX, |p| p as u32),
            },
        });
    }

    /// Arms a seeded protocol bug (negative testing; see
    /// [`ProtocolMutation`]).
    pub fn set_mutation(&mut self, mutation: Option<ProtocolMutation>) {
        self.mutation = mutation;
    }

    /// The registry state of a word, if its line has been touched.
    pub fn word(&self, word: WordAddr) -> Option<RegWord> {
        let line = self.lines.get(word.line().raw())?;
        line.has_data.then_some(line.words[word.index_in_line()])
    }

    /// Number of words currently registered to some L1 (diagnostics; the
    /// registry's entire "sharer state" is this one pointer per word).
    pub fn registered_words(&self) -> usize {
        self.lines
            .iter()
            .flat_map(|(_, l)| l.words.iter())
            .filter(|w| matches!(w, RegWord::Registered(_)))
            .count()
    }

    /// Iterates every word currently registered to some core (for invariant
    /// checking).
    pub fn registrations(&self) -> impl Iterator<Item = (WordAddr, CoreId)> + '_ {
        self.lines.iter().flat_map(|(raw, e)| {
            let line = LineAddr::new(raw);
            e.words
                .iter()
                .enumerate()
                .filter_map(move |(i, w)| match w {
                    RegWord::Registered(c) => Some((line.word(i), *c)),
                    RegWord::Valid(_) => None,
                })
        })
    }

    /// Whether any line is still waiting on a memory fetch (for quiescence
    /// checks).
    pub fn any_fetching(&self) -> bool {
        self.lines
            .iter()
            .any(|(_, l)| l.fetching || !l.queue.is_empty())
    }

    /// Whether the line is still being resolved — fetching from memory,
    /// holding queued requests, or not yet filled. The transient exemption
    /// for the runtime conservation checker.
    pub fn line_busy(&self, line: LineAddr) -> bool {
        self.lines
            .get(line.raw())
            .is_some_and(|l| l.fetching || !l.queue.is_empty() || !l.has_data)
    }

    /// A one-line human-readable description of a word's registry state, if
    /// its line has been touched (stall diagnostics).
    pub fn describe_word(&self, word: WordAddr) -> Option<String> {
        let e = self.lines.get(word.line().raw())?;
        Some(format!(
            "bank {}: {word} {:?} has_data={} fetching={} queued={}",
            self.bank,
            e.words[word.index_in_line()],
            e.has_data,
            e.fetching,
            e.queue.len()
        ))
    }

    /// Handles one incoming message.
    pub fn on_msg(&mut self, msg: DnvMsg, actions: &mut Vec<Action>) {
        let word = msg.word();
        let line = word.line();
        let entry = self.lines.or_insert_with(line.raw(), RegLine::new);
        if !entry.has_data {
            entry.queue.push_back(msg);
            if !entry.fetching {
                entry.fetching = true;
                actions.push(Action::Send {
                    to: self.mem,
                    msg: Msg::MemRead {
                        line,
                        bank: self.bank,
                        class: msg.class(),
                    },
                });
            }
            return;
        }
        self.handle(msg, actions);
    }

    /// Memory returned a line this bank was fetching.
    pub fn on_mem_data(&mut self, line: LineAddr, data: LineData, actions: &mut Vec<Action>) {
        let Some(entry) = self.lines.get_mut(line.raw()) else {
            actions.push(Action::violation(format!(
                "registry bank {}: MemData for unknown line {line}",
                self.bank
            )));
            return;
        };
        if !entry.fetching {
            actions.push(Action::violation(format!(
                "registry bank {}: MemData for {line} that was not being fetched",
                self.bank
            )));
            return;
        }
        for (i, w) in entry.words.iter_mut().enumerate() {
            *w = RegWord::Valid(data[i]);
        }
        entry.has_data = true;
        entry.fetching = false;
        // The registry is non-blocking: drain everything that queued.
        let queued: Vec<DnvMsg> = entry.queue.drain(..).collect();
        for m in queued {
            self.handle(m, actions);
        }
    }

    fn handle(&mut self, msg: DnvMsg, actions: &mut Vec<Action>) {
        let word = msg.word();
        let line = word.line();
        let idx = word.index_in_line();
        let entry = self.lines.get_mut(line.raw()).expect("line fetched");
        match msg {
            DnvMsg::ReadReq { req, .. } => match entry.words[idx] {
                RegWord::Valid(value) => {
                    // Piggy-back the line's other valid words (only valid
                    // parts travel — DeNovo's traffic advantage).
                    let mut mask = 0u8;
                    let mut data = [0u64; WORDS_PER_LINE];
                    for (i, w) in entry.words.iter().enumerate() {
                        if i != idx {
                            if let RegWord::Valid(v) = *w {
                                mask |= 1 << i;
                                data[i] = v;
                            }
                        }
                    }
                    actions.push(Action::Send {
                        to: Endpoint::L1(req),
                        msg: Msg::Dnv(DnvMsg::ReadResp {
                            word,
                            value,
                            fill: Some((mask, data)),
                        }),
                    });
                }
                RegWord::Registered(owner) => {
                    if owner == req {
                        actions.push(Action::violation(format!(
                            "registry bank {}: registrant core {req} data-reading its own \
                             word {word} remotely",
                            self.bank
                        )));
                        return;
                    }
                    actions.push(Action::Send {
                        to: Endpoint::L1(owner),
                        msg: Msg::Dnv(DnvMsg::ReadReq { word, req }),
                    });
                }
            },
            DnvMsg::RegReq { req, class, .. } => match entry.words[idx] {
                RegWord::Valid(value) => {
                    entry.words[idx] = RegWord::Registered(req);
                    actions.push(Action::Send {
                        to: Endpoint::L1(req),
                        msg: Msg::Dnv(DnvMsg::RegAck { word, value, class }),
                    });
                    self.emit_registration(word, req, None);
                }
                RegWord::Registered(prev) => {
                    if prev == req {
                        actions.push(Action::violation(format!(
                            "registry bank {}: re-registration of {word} by current \
                             registrant core {req}",
                            self.bank
                        )));
                        return;
                    }
                    if self.mutation != Some(ProtocolMutation::DnvSkipRepoint) {
                        entry.words[idx] = RegWord::Registered(req);
                    }
                    if self.mutation != Some(ProtocolMutation::DnvDropXfer) {
                        actions.push(Action::Send {
                            to: Endpoint::L1(prev),
                            msg: Msg::Dnv(DnvMsg::Xfer {
                                word,
                                new_owner: req,
                                class,
                            }),
                        });
                    }
                    self.emit_registration(word, req, Some(prev));
                }
            },
            DnvMsg::WbReq { value, from, .. } => match entry.words[idx] {
                RegWord::Registered(owner) if owner == from => {
                    entry.words[idx] = RegWord::Valid(value);
                    actions.push(Action::Send {
                        to: Endpoint::L1(from),
                        msg: Msg::Dnv(DnvMsg::WbAck { word }),
                    });
                }
                RegWord::Registered(_) => {
                    actions.push(Action::Send {
                        to: Endpoint::L1(from),
                        msg: Msg::Dnv(DnvMsg::WbNack { word }),
                    });
                }
                RegWord::Valid(_) => actions.push(Action::violation(format!(
                    "registry bank {}: writeback for {word}, which the registry already holds",
                    self.bank
                ))),
            },
            other => actions.push(Action::violation(format!(
                "registry bank {} cannot handle {other:?}",
                self.bank
            ))),
        }
    }
}

/// Canonical hash for model checking: lines sorted by address. Queued
/// messages hash in FIFO order — their order is architecturally visible.
impl std::hash::Hash for DnvRegistry {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.bank.hash(state);
        self.mem.hash(state);
        // SpanMap hashes entries sorted by key, length-prefixed; `LineAddr`
        // hashes as its raw `u64`, so the stream is unchanged from the
        // HashMap-backed version of this bank.
        self.lines.hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::XferClass;

    fn word(i: u64) -> WordAddr {
        WordAddr::new(64 + i)
    }

    fn warmed() -> DnvRegistry {
        let mut r = DnvRegistry::new(0, Endpoint::Mem(0));
        let mut acts = Vec::new();
        r.on_msg(
            DnvMsg::ReadReq {
                word: word(0),
                req: 9,
            },
            &mut acts,
        );
        assert!(matches!(
            acts[0],
            Action::Send {
                msg: Msg::MemRead { .. },
                ..
            }
        ));
        acts.clear();
        let mut data = [0u64; 8];
        data[0] = 100;
        data[1] = 101;
        r.on_mem_data(word(0).line(), data, &mut acts);
        // The queued read is now served with a fill of the other words.
        assert!(acts.iter().any(|a| matches!(
            a,
            Action::Send {
                to: Endpoint::L1(9),
                msg: Msg::Dnv(DnvMsg::ReadResp {
                    value: 100,
                    fill: Some((0xFE, _)),
                    ..
                })
            }
        )));
        r
    }

    #[test]
    fn cold_line_fetches_memory_once_and_drains_queue() {
        let mut r = DnvRegistry::new(0, Endpoint::Mem(0));
        let mut acts = Vec::new();
        r.on_msg(
            DnvMsg::ReadReq {
                word: word(0),
                req: 1,
            },
            &mut acts,
        );
        r.on_msg(
            DnvMsg::RegReq {
                word: word(1),
                req: 2,
                class: XferClass::SyncRead,
            },
            &mut acts,
        );
        // Only one memory fetch despite two queued requests.
        let fetches = acts
            .iter()
            .filter(|a| {
                matches!(
                    a,
                    Action::Send {
                        msg: Msg::MemRead { .. },
                        ..
                    }
                )
            })
            .count();
        assert_eq!(fetches, 1);
        acts.clear();
        r.on_mem_data(word(0).line(), [7; 8], &mut acts);
        assert!(acts.iter().any(|a| matches!(
            a,
            Action::Send {
                to: Endpoint::L1(1),
                msg: Msg::Dnv(DnvMsg::ReadResp { value: 7, .. })
            }
        )));
        assert!(acts.iter().any(|a| matches!(
            a,
            Action::Send {
                to: Endpoint::L1(2),
                msg: Msg::Dnv(DnvMsg::RegAck { value: 7, .. })
            }
        )));
        assert_eq!(r.word(word(1)), Some(RegWord::Registered(2)));
    }

    #[test]
    fn registration_of_valid_word_acks_with_value() {
        let mut r = warmed();
        let mut acts = Vec::new();
        r.on_msg(
            DnvMsg::RegReq {
                word: word(1),
                req: 3,
                class: XferClass::Write,
            },
            &mut acts,
        );
        assert!(acts.iter().any(|a| matches!(
            a,
            Action::Send {
                to: Endpoint::L1(3),
                msg: Msg::Dnv(DnvMsg::RegAck {
                    value: 101,
                    class: XferClass::Write,
                    ..
                })
            }
        )));
        assert_eq!(r.word(word(1)), Some(RegWord::Registered(3)));
    }

    #[test]
    fn registration_race_repoints_immediately_and_forwards() {
        // The non-blocking registry: A registers, then B and C race; the
        // registry re-points on each request without waiting.
        let mut r = warmed();
        let mut acts = Vec::new();
        for core in [4usize, 5, 6] {
            r.on_msg(
                DnvMsg::RegReq {
                    word: word(2),
                    req: core,
                    class: XferClass::SyncRead,
                },
                &mut acts,
            );
        }
        assert_eq!(r.word(word(2)), Some(RegWord::Registered(6)));
        // B's request forwarded to A, C's to B: a chain.
        assert!(acts.iter().any(|a| matches!(
            a,
            Action::Send {
                to: Endpoint::L1(4),
                msg: Msg::Dnv(DnvMsg::Xfer { new_owner: 5, .. })
            }
        )));
        assert!(acts.iter().any(|a| matches!(
            a,
            Action::Send {
                to: Endpoint::L1(5),
                msg: Msg::Dnv(DnvMsg::Xfer { new_owner: 6, .. })
            }
        )));
    }

    #[test]
    fn forwarded_data_read_goes_to_registrant() {
        let mut r = warmed();
        let mut acts = Vec::new();
        r.on_msg(
            DnvMsg::RegReq {
                word: word(3),
                req: 2,
                class: XferClass::Write,
            },
            &mut acts,
        );
        acts.clear();
        r.on_msg(
            DnvMsg::ReadReq {
                word: word(3),
                req: 7,
            },
            &mut acts,
        );
        assert!(acts.iter().any(|a| matches!(
            a,
            Action::Send {
                to: Endpoint::L1(2),
                msg: Msg::Dnv(DnvMsg::ReadReq { req: 7, .. })
            }
        )));
        // Registry still points at 2: data reads take no ownership.
        assert_eq!(r.word(word(3)), Some(RegWord::Registered(2)));
    }

    #[test]
    fn writeback_ack_and_nack() {
        let mut r = warmed();
        let mut acts = Vec::new();
        r.on_msg(
            DnvMsg::RegReq {
                word: word(4),
                req: 2,
                class: XferClass::Write,
            },
            &mut acts,
        );
        acts.clear();
        // Owner writes back: accepted, value stored.
        r.on_msg(
            DnvMsg::WbReq {
                word: word(4),
                value: 77,
                from: 2,
            },
            &mut acts,
        );
        assert!(acts.iter().any(|a| matches!(
            a,
            Action::Send {
                to: Endpoint::L1(2),
                msg: Msg::Dnv(DnvMsg::WbAck { .. })
            }
        )));
        assert_eq!(r.word(word(4)), Some(RegWord::Valid(77)));
        // Now 3 registers; a stale writeback from 2 is nacked.
        acts.clear();
        r.on_msg(
            DnvMsg::RegReq {
                word: word(4),
                req: 3,
                class: XferClass::SyncWrite,
            },
            &mut acts,
        );
        r.on_msg(
            DnvMsg::WbReq {
                word: word(4),
                value: 1,
                from: 2,
            },
            &mut acts,
        );
        assert!(acts.iter().any(|a| matches!(
            a,
            Action::Send {
                to: Endpoint::L1(2),
                msg: Msg::Dnv(DnvMsg::WbNack { .. })
            }
        )));
        assert_eq!(r.word(word(4)), Some(RegWord::Registered(3)));
    }

    #[test]
    fn registered_word_count_tracks_pointers() {
        let mut r = warmed();
        assert_eq!(r.registered_words(), 0);
        let mut acts = Vec::new();
        r.on_msg(
            DnvMsg::RegReq {
                word: word(1),
                req: 1,
                class: XferClass::Write,
            },
            &mut acts,
        );
        r.on_msg(
            DnvMsg::RegReq {
                word: word(2),
                req: 1,
                class: XferClass::Write,
            },
            &mut acts,
        );
        assert_eq!(r.registered_words(), 2);
    }
}
