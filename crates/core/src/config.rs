//! System configurations (the paper's Table 1).

use crate::chaos::FaultPlan;
use dvs_engine::Cycle;
use dvs_mem::CacheGeometry;
use dvs_noc::NocParams;
use dvs_stats::report::ParamTable;

/// How DeNovo decides what data to self-invalidate at an acquire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DataInvalidation {
    /// The paper's default: compiler-provided static regions — a `SelfInv`
    /// instruction invalidates every Valid word of its region (§3).
    #[default]
    StaticRegions,
    /// The paper's future-work integration of DeNovoND-style dynamic
    /// signatures \[35\]: each release publishes the writer's
    /// critical-section write set to the lock; an acquire invalidates only
    /// the words accumulated in the lock's signature. Signatures accumulate
    /// monotonically (a safe over-approximation of DeNovoND's scheme; see
    /// the module docs of `dvs_core::system`).
    Signatures,
}

/// A seeded protocol bug, injected at a single transition of a controller.
///
/// Mutations exist to prove the model checker and the runtime invariant
/// checkers actually discriminate: each one breaks exactly one rule the
/// protocol depends on, and `dvs-check` must find an interleaving that
/// exposes it. They are plumbed through [`SystemConfig::mutation`] (default
/// `None`) rather than `#[cfg(test)]` so integration tests and the checker
/// crate can enable them on an otherwise-stock system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolMutation {
    /// DeNovo registry: serve a registration transfer from the previous
    /// registrant but forget to re-point the registry word at the new one.
    DnvSkipRepoint,
    /// DeNovo registry: re-point the registry word but never send the
    /// `Xfer` to the previous registrant (the transfer is lost).
    DnvDropXfer,
    /// MESI L1: acknowledge an `Inv` without actually dropping the S copy.
    MesiSkipInvalidate,
    /// MESI L1: drop an incoming `InvAck` (the acks balance never reaches
    /// zero, or ownership completes early on the next ack).
    MesiDropAck,
    /// GCS bank: a value-changing sync operation clears the waiter set but
    /// never sends the `SyncNotify` wakeups (lost wakeup — spinning cores
    /// sleep forever).
    GcsDropNotify,
    /// GCS bank: execute a sync RMW's read half but forget to store the new
    /// value back (lost update — the returned old value is correct but the
    /// variable never changes).
    GcsSkipUpdate,
}

/// Which coherence protocol the system runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// Directory MESI with writer-initiated invalidations (baseline).
    Mesi,
    /// DeNovo with synchronization-read registration, no backoff (§4.1).
    DeNovoSync0,
    /// DeNovoSync0 plus the adaptive hardware backoff (§4.2).
    DeNovoSync,
    /// Generalized coherence (GCS/Soul-style): a DS0-like ownership path for
    /// data, plus dynamic classification of contended synchronization words
    /// into a dedicated directory-mediated update/notify path — spinning
    /// cores are woken by a targeted `SyncNotify` instead of invalidation
    /// storms or self-invalidation polling.
    Gcs,
}

impl Protocol {
    /// The bar label ("M", "DS0", "DS", "GCS").
    pub fn label(self) -> &'static str {
        match self {
            Protocol::Mesi => "M",
            Protocol::DeNovoSync0 => "DS0",
            Protocol::DeNovoSync => "DS",
            Protocol::Gcs => "GCS",
        }
    }

    /// Whether this is one of the DeNovo variants (GCS is its own family:
    /// its data path is DeNovo-like but its sync path is not).
    pub fn is_denovo(self) -> bool {
        matches!(self, Protocol::DeNovoSync0 | Protocol::DeNovoSync)
    }

    /// The paper's three protocols, in the paper's bar order. Figure grids
    /// keep this set so committed figure shapes and digests are stable.
    pub const ALL: [Protocol; 3] = [Protocol::Mesi, Protocol::DeNovoSync0, Protocol::DeNovoSync];

    /// Every backend, paper bar order first, then GCS. The differential
    /// stack (litmus, check, fuzz) runs over this set.
    pub const EXTENDED: [Protocol; 4] = [
        Protocol::Mesi,
        Protocol::DeNovoSync0,
        Protocol::DeNovoSync,
        Protocol::Gcs,
    ];
}

impl std::fmt::Display for Protocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Hardware-backoff parameters (paper §4.2 and §5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BackoffConfig {
    /// Backoff-counter width in bits (counter wraps on overflow).
    pub counter_bits: u32,
    /// Default increment value in cycles.
    pub default_increment: u64,
    /// The increment counter grows by `default_increment` every
    /// `increment_period`-th incoming remote sync-read registration request
    /// (the paper uses the core count).
    pub increment_period: u64,
}

impl BackoffConfig {
    /// The paper's 16-core parameters: 9-bit counter, 1-cycle increment.
    pub fn cores16() -> Self {
        BackoffConfig {
            counter_bits: 9,
            default_increment: 1,
            increment_period: 16,
        }
    }

    /// The paper's 64-core parameters: 12-bit counter, 64-cycle increment.
    pub fn cores64() -> Self {
        BackoffConfig {
            counter_bits: 12,
            default_increment: 64,
            increment_period: 64,
        }
    }

    /// Parameters scaled for an arbitrary core count (paper values at 16/64,
    /// interpolated elsewhere; used by `SystemConfig::small` test systems).
    pub fn for_cores(cores: usize) -> Self {
        if cores >= 64 {
            Self::cores64()
        } else if cores >= 16 {
            Self::cores16()
        } else {
            BackoffConfig {
                counter_bits: 8,
                default_increment: 1,
                increment_period: cores.max(2) as u64,
            }
        }
    }

    /// Maximum counter value before wrap-around.
    pub fn counter_max(&self) -> u64 {
        (1u64 << self.counter_bits) - 1
    }
}

/// Fixed access latencies of the memory hierarchy components.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyConfig {
    /// L1 hit latency in cycles (Table 1: 1 cycle).
    pub l1_hit: Cycle,
    /// L2 bank access latency (tag + data array).
    pub l2_access: Cycle,
    /// A remote L1 servicing a forwarded request.
    pub remote_l1: Cycle,
    /// DRAM access at a memory controller.
    pub dram: Cycle,
    /// Gap before a spinning core re-examines a watched word after it
    /// changes state (models the few loop instructions around the spin).
    pub spin_recheck: Cycle,
}

impl Default for LatencyConfig {
    fn default() -> Self {
        LatencyConfig {
            l1_hit: 1,
            l2_access: 26,
            remote_l1: 8,
            dram: 150,
            spin_recheck: 2,
        }
    }
}

/// A mesh topology shape: `rows × cols` tiles. The paper's systems are
/// square; non-square shapes (2×8, 16×8, …) widen the hardware space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MeshShape {
    /// Mesh rows (must be positive).
    pub rows: u32,
    /// Mesh columns (must be positive).
    pub cols: u32,
}

impl MeshShape {
    /// Creates a shape, validating both dimensions.
    ///
    /// # Errors
    ///
    /// Rejects a zero dimension with an explanation.
    pub fn new(rows: u32, cols: u32) -> Result<Self, String> {
        if rows == 0 || cols == 0 {
            return Err(format!("mesh {rows}x{cols} has a zero dimension"));
        }
        Ok(MeshShape { rows, cols })
    }

    /// Tile count.
    pub fn tiles(self) -> usize {
        self.rows as usize * self.cols as usize
    }

    /// The canonical `<rows>x<cols>` token.
    pub fn token(self) -> String {
        format!("{}x{}", self.rows, self.cols)
    }

    /// Parses a `<rows>x<cols>` token (the inverse of [`MeshShape::token`]).
    ///
    /// # Errors
    ///
    /// Explains a malformed token or a zero dimension.
    pub fn from_token(tok: &str) -> Result<Self, String> {
        let (r, c) = tok
            .split_once('x')
            .ok_or_else(|| format!("mesh {tok:?} is not <rows>x<cols>"))?;
        let rows = r
            .parse()
            .map_err(|_| format!("mesh rows {r:?} is not a number"))?;
        let cols = c
            .parse()
            .map_err(|_| format!("mesh cols {c:?} is not a number"))?;
        MeshShape::new(rows, cols)
    }
}

/// Deterministic heterogeneous link latencies: each mesh link gets a fixed
/// extra per-hop delay in `0..=max_extra`, chosen by `seed`. Models chips
/// whose links are not all equally fast (longer wires, slower voltage
/// domains) while keeping runs bit-reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HeteroLinks {
    /// Seed the per-link delays derive from.
    pub seed: u64,
    /// Largest extra per-hop delay a link may carry, in cycles.
    pub max_extra: Cycle,
}

/// A complete simulated-system configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystemConfig {
    /// Number of cores (= tiles = L2 banks).
    pub cores: usize,
    /// Mesh shape; `None` means the square mesh for `cores` tiles. When set,
    /// `rows × cols` must equal `cores`.
    pub mesh: Option<MeshShape>,
    /// Heterogeneous per-link latencies; `None` keeps every link uniform.
    pub hetero_links: Option<HeteroLinks>,
    /// The coherence protocol.
    pub protocol: Protocol,
    /// Private L1 geometry (Table 1: 32 KB).
    pub l1: CacheGeometry,
    /// Network parameters.
    pub noc: NocParams,
    /// Component latencies.
    pub latency: LatencyConfig,
    /// Hardware backoff parameters (used by DeNovoSync only).
    pub backoff: BackoffConfig,
    /// Data self-invalidation mechanism (DeNovo variants only).
    pub data_inv: DataInvalidation,
    /// Seed for workload randomization.
    pub seed: u64,
    /// Safety valve: abort the simulation after this many cycles.
    pub max_cycles: Cycle,
    /// Run the runtime coherence-invariant checkers at message-delivery
    /// boundaries. Off by default: checking costs time, and the checks are
    /// for protocol debugging and chaos testing, not production runs.
    pub check_invariants: bool,
    /// Deterministic fault injection (delivery delay + legal reordering).
    /// `None` leaves message timing exactly as the network model produces
    /// it.
    pub fault_plan: Option<FaultPlan>,
    /// A seeded protocol bug for negative testing (`None` = stock protocol).
    pub mutation: Option<ProtocolMutation>,
}

impl SystemConfig {
    fn noc_params() -> NocParams {
        NocParams {
            hop_cycles: 2,
            endpoint_cycles: 1,
        }
    }

    /// The paper's 16-core system (Table 1): 4×4 mesh, 32 KB L1s, 4 MB L2 in
    /// 16 banks.
    pub fn cores16(protocol: Protocol) -> Self {
        SystemConfig {
            cores: 16,
            protocol,
            mesh: None,
            hetero_links: None,
            l1: CacheGeometry::new(32 * 1024, 4),
            noc: Self::noc_params(),
            latency: LatencyConfig::default(),
            backoff: BackoffConfig::cores16(),
            data_inv: DataInvalidation::StaticRegions,
            seed: 0xDE40,
            max_cycles: 2_000_000_000,
            check_invariants: false,
            fault_plan: None,
            mutation: None,
        }
    }

    /// The paper's 64-core system (Table 1): 8×8 mesh, 32 KB L1s, 8 MB L2 in
    /// 64 banks.
    pub fn cores64(protocol: Protocol) -> Self {
        SystemConfig {
            cores: 64,
            protocol,
            mesh: None,
            hetero_links: None,
            l1: CacheGeometry::new(32 * 1024, 4),
            noc: Self::noc_params(),
            latency: LatencyConfig::default(),
            backoff: BackoffConfig::cores64(),
            data_inv: DataInvalidation::StaticRegions,
            seed: 0xDE40,
            max_cycles: 2_000_000_000,
            check_invariants: false,
            fault_plan: None,
            mutation: None,
        }
    }

    /// A small square system for tests and examples (`cores` must be a
    /// perfect square: 1, 4, 9, 16, ...).
    pub fn small(cores: usize, protocol: Protocol) -> Self {
        SystemConfig {
            cores,
            protocol,
            mesh: None,
            hetero_links: None,
            l1: CacheGeometry::new(32 * 1024, 4),
            noc: Self::noc_params(),
            latency: LatencyConfig::default(),
            backoff: BackoffConfig::for_cores(cores),
            data_inv: DataInvalidation::StaticRegions,
            seed: 0xDE40,
            max_cycles: 500_000_000,
            check_invariants: false,
            fault_plan: None,
            mutation: None,
        }
    }

    /// A system on an explicit (possibly non-square, possibly large)
    /// `rows × cols` mesh: the [`SystemConfig::small`] parameterization
    /// with the core count taken from the shape.
    pub fn meshed(shape: MeshShape, protocol: Protocol) -> Self {
        let mut cfg = Self::small(shape.tiles(), protocol);
        cfg.mesh = Some(shape);
        cfg
    }

    /// The paper's configuration for a given core count (16 or 64).
    ///
    /// # Panics
    ///
    /// Panics on any other core count; use [`SystemConfig::small`] for test
    /// systems.
    pub fn paper(cores: usize, protocol: Protocol) -> Self {
        match cores {
            16 => Self::cores16(protocol),
            64 => Self::cores64(protocol),
            other => panic!("the paper evaluates 16 and 64 cores, not {other}"),
        }
    }

    /// L2 capacity per Table 1 (4 MB at 16 cores, 8 MB at 64; informational —
    /// the simulated L2/registry keeps tags for every touched line, see
    /// DESIGN.md).
    pub fn l2_bytes(&self) -> u64 {
        if self.cores >= 64 {
            8 << 20
        } else {
            4 << 20
        }
    }

    /// Renders this configuration as the paper's Table 1.
    pub fn table1(&self) -> ParamTable {
        let mut t = ParamTable::new("Table 1: Simulated system parameters");
        t.row("# of cores", self.cores)
            .row("Core frequency", "2 GHz (1 cycle = 0.5 ns)")
            .row(
                "Core model",
                "in-order, 1 CPI, blocking loads, non-blocking stores",
            )
            .row(
                "L1 data cache (private)",
                format!(
                    "{}KB, {}-way, 64-byte lines",
                    self.l1.size_bytes() / 1024,
                    self.l1.assoc()
                ),
            )
            .row(
                "L2 (shared, NUCA)",
                format!(
                    "{}MB, {} banks, 64-byte lines",
                    self.l2_bytes() >> 20,
                    self.cores
                ),
            )
            .row("Memory", "4 on-chip controllers (mesh corners)")
            .row("L1 hit latency", format!("{} cycle", self.latency.l1_hit))
            .row(
                "L2 bank access",
                format!("{} cycles + network", self.latency.l2_access),
            )
            .row(
                "Remote L1 access",
                format!("{} cycles + network", self.latency.remote_l1),
            )
            .row(
                "Memory latency",
                format!("{} cycles + network", self.latency.dram),
            )
            .row(
                "Network",
                format!("2D mesh, 16-bit flits, {} cycles/hop", self.noc.hop_cycles),
            );
        if self.protocol == Protocol::DeNovoSync {
            t.row(
                "HW backoff",
                format!(
                    "{}-bit counter, {}-cycle default increment",
                    self.backoff.counter_bits, self.backoff.default_increment
                ),
            );
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvs_noc::{flits_for, Mesh, Network};

    #[test]
    fn paper_presets_match_table1() {
        let c16 = SystemConfig::cores16(Protocol::Mesi);
        assert_eq!(c16.cores, 16);
        assert_eq!(c16.l1.size_bytes(), 32 * 1024);
        assert_eq!(c16.l2_bytes(), 4 << 20);
        assert_eq!(c16.backoff.counter_bits, 9);
        let c64 = SystemConfig::cores64(Protocol::DeNovoSync);
        assert_eq!(c64.cores, 64);
        assert_eq!(c64.l2_bytes(), 8 << 20);
        assert_eq!(c64.backoff.counter_bits, 12);
        assert_eq!(c64.backoff.default_increment, 64);
    }

    #[test]
    #[should_panic(expected = "16 and 64")]
    fn paper_rejects_other_core_counts() {
        SystemConfig::paper(32, Protocol::Mesi);
    }

    #[test]
    fn protocol_lists_and_labels() {
        assert_eq!(Protocol::ALL.len(), 3, "paper bar order is fixed");
        assert_eq!(Protocol::EXTENDED[..3], Protocol::ALL);
        assert_eq!(Protocol::Gcs.label(), "GCS");
        assert!(!Protocol::Gcs.is_denovo());
        assert!(Protocol::DeNovoSync0.is_denovo());
        assert!(!Protocol::Mesi.is_denovo());
    }

    #[test]
    fn mesh_shape_tokens_round_trip_and_reject_zeros() {
        for shape in [
            MeshShape { rows: 2, cols: 8 },
            MeshShape { rows: 16, cols: 8 },
            MeshShape { rows: 16, cols: 16 },
        ] {
            assert_eq!(MeshShape::from_token(&shape.token()), Ok(shape));
        }
        assert!(MeshShape::from_token("0x8").unwrap_err().contains("zero"));
        assert!(MeshShape::from_token("4x0").unwrap_err().contains("zero"));
        assert!(MeshShape::from_token("4")
            .unwrap_err()
            .contains("<rows>x<cols>"));
        assert!(MeshShape::from_token("axb").unwrap_err().contains("rows"));
        assert_eq!(MeshShape { rows: 16, cols: 8 }.tiles(), 128);
    }

    #[test]
    fn meshed_config_carries_the_shape() {
        let shape = MeshShape { rows: 2, cols: 8 };
        let cfg = SystemConfig::meshed(shape, Protocol::Gcs);
        assert_eq!(cfg.cores, 16);
        assert_eq!(cfg.mesh, Some(shape));
    }

    #[test]
    fn backoff_counter_max() {
        assert_eq!(BackoffConfig::cores16().counter_max(), 511);
        assert_eq!(BackoffConfig::cores64().counter_max(), 4095);
    }

    #[test]
    fn table1_renders_key_rows() {
        let t = SystemConfig::cores16(Protocol::DeNovoSync)
            .table1()
            .render();
        assert!(t.contains("2 GHz"));
        assert!(t.contains("32KB"));
        assert!(t.contains("4MB"));
        assert!(t.contains("HW backoff"));
    }

    /// Table 1 latency calibration: round-trip L2 access latencies must land
    /// in the ranges the paper reports (28–68 cycles at 16 cores for a
    /// control-sized response; memory 197–277).
    #[test]
    fn latency_ranges_roughly_match_table1() {
        let cfg = SystemConfig::cores16(Protocol::Mesi);
        let mesh = Mesh::square(16);
        let net = Network::new(mesh, cfg.noc);
        let word_resp = flits_for(8, 8);
        let req = flits_for(8, 0);
        let l2 = |hops: usize| {
            net.ideal_latency(hops, req)
                + cfg.latency.l2_access
                + net.ideal_latency(hops, word_resp)
        };
        let min = l2(0);
        let max = l2(6);
        assert!(
            (24..=34).contains(&min),
            "same-tile L2 hit {min} should be near Table 1's 28"
        );
        assert!(
            (55..=80).contains(&max),
            "far-bank L2 hit {max} should be near Table 1's 68"
        );
        // Memory: far bank + controller trip + DRAM.
        let mem =
            max + net.ideal_latency(3, req) + cfg.latency.dram + net.ideal_latency(3, word_resp);
        assert!(
            (195..=290).contains(&mem),
            "memory latency {mem} should be within Table 1's 197–277"
        );
    }
}
