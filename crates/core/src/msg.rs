//! Protocol messages, their wire sizes, and traffic classes.
//!
//! Every message knows its size in bytes (an 8-byte header carrying the
//! type, address, and routing information, plus any data payload) and its
//! [`TrafficClass`] for the paper's traffic breakdown. DeNovo responses
//! carry only valid words ("load responses do not contain invalid parts of
//! the cache line"), which is one of DeNovo's structural traffic advantages.

use dvs_mem::{LineAddr, RmwOp, WordAddr, WORDS_PER_LINE, WORD_BYTES};
use dvs_noc::NodeId;
use dvs_stats::TrafficClass;

/// A core index (also its tile and L1 index).
pub type CoreId = usize;
/// An L2 bank index (one bank per tile).
pub type BankId = usize;

/// Bytes of header (message type + address + source) on every message.
pub const HEADER_BYTES: u64 = 8;

/// A full line of data words.
pub type LineData = [u64; WORDS_PER_LINE];

/// Where a message is delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Endpoint {
    /// A private L1 cache (by core id).
    L1(CoreId),
    /// A shared L2 bank / directory / registry (by bank id).
    Bank(BankId),
    /// A memory controller (by mesh node).
    Mem(NodeId),
}

/// The access class behind a DeNovo transfer; determines both how a previous
/// registrant downgrades and the traffic class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum XferClass {
    /// Non-ownership data read.
    DataRead,
    /// Data-write registration.
    Write,
    /// Synchronization-read registration (single-reader rule, §4.1).
    SyncRead,
    /// Synchronization write or RMW registration.
    SyncWrite,
}

impl XferClass {
    /// The traffic class for messages of this transfer class.
    pub fn traffic(self) -> TrafficClass {
        match self {
            XferClass::DataRead => TrafficClass::Load,
            XferClass::Write => TrafficClass::Store,
            XferClass::SyncRead | XferClass::SyncWrite => TrafficClass::Sync,
        }
    }

    /// Whether this transfer takes ownership (registration).
    pub fn registers(self) -> bool {
        !matches!(self, XferClass::DataRead)
    }
}

/// MESI protocol messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MesiMsg {
    /// Read request to the directory.
    GetS {
        /// Requested line.
        line: LineAddr,
        /// Requesting core.
        req: CoreId,
    },
    /// Ownership request to the directory.
    GetM {
        /// Requested line.
        line: LineAddr,
        /// Requesting core.
        req: CoreId,
    },
    /// Sharer eviction notice.
    PutS {
        /// Evicted line.
        line: LineAddr,
        /// Evicting core.
        req: CoreId,
    },
    /// Owner eviction with dirty data.
    PutM {
        /// Evicted line.
        line: LineAddr,
        /// Evicting core.
        req: CoreId,
        /// The dirty line.
        data: LineData,
    },
    /// Clean-exclusive eviction notice.
    PutE {
        /// Evicted line.
        line: LineAddr,
        /// Evicting core.
        req: CoreId,
    },
    /// Data response (directory or owner → requestor).
    Data {
        /// The line.
        line: LineAddr,
        /// Line contents.
        data: LineData,
        /// Invalidation acks the requestor must still collect.
        acks: u32,
        /// Grant E instead of S (no other sharers).
        exclusive: bool,
        /// Traffic class of the owning transaction.
        class: TrafficClass,
    },
    /// Directory forwards a GetS to the owner.
    FwdGetS {
        /// The line.
        line: LineAddr,
        /// Original requestor (receives the data directly).
        req: CoreId,
    },
    /// Directory forwards a GetM to the owner.
    FwdGetM {
        /// The line.
        line: LineAddr,
        /// Original requestor (receives the data directly).
        req: CoreId,
    },
    /// Writer-initiated invalidation; ack goes directly to `req`.
    Inv {
        /// The line.
        line: LineAddr,
        /// The new owner awaiting the ack.
        req: CoreId,
    },
    /// Invalidation acknowledgment (sharer → new owner).
    InvAck {
        /// The line.
        line: LineAddr,
        /// The acknowledging core.
        from: CoreId,
    },
    /// Directory acknowledges a Put*.
    PutAck {
        /// The line.
        line: LineAddr,
    },
    /// Owner's downgrade data to the directory on FwdGetS.
    OwnerWb {
        /// The line.
        line: LineAddr,
        /// The dirty line.
        data: LineData,
        /// Former owner.
        from: CoreId,
    },
    /// Requestor tells the blocking directory its transaction completed.
    Unblock {
        /// The line.
        line: LineAddr,
        /// The requestor.
        from: CoreId,
        /// Traffic class of the completed transaction.
        class: TrafficClass,
    },
}

impl MesiMsg {
    /// Total wire size in bytes (header + payload).
    pub fn wire_bytes(&self) -> u64 {
        match self {
            MesiMsg::PutM { .. } | MesiMsg::Data { .. } | MesiMsg::OwnerWb { .. } => {
                HEADER_BYTES + WORDS_PER_LINE as u64 * WORD_BYTES
            }
            _ => HEADER_BYTES,
        }
    }

    /// Traffic class for the paper's breakdown (LD / ST / WB / Inv).
    pub fn class(&self) -> TrafficClass {
        match self {
            MesiMsg::GetS { .. } | MesiMsg::FwdGetS { .. } => TrafficClass::Load,
            MesiMsg::GetM { .. } | MesiMsg::FwdGetM { .. } => TrafficClass::Store,
            MesiMsg::PutS { .. }
            | MesiMsg::PutM { .. }
            | MesiMsg::PutE { .. }
            | MesiMsg::PutAck { .. }
            | MesiMsg::OwnerWb { .. } => TrafficClass::Writeback,
            MesiMsg::Inv { .. } | MesiMsg::InvAck { .. } => TrafficClass::Invalidation,
            MesiMsg::Data { class, .. } | MesiMsg::Unblock { class, .. } => *class,
        }
    }

    /// The line this message concerns.
    pub fn line(&self) -> LineAddr {
        match *self {
            MesiMsg::GetS { line, .. }
            | MesiMsg::GetM { line, .. }
            | MesiMsg::PutS { line, .. }
            | MesiMsg::PutM { line, .. }
            | MesiMsg::PutE { line, .. }
            | MesiMsg::Data { line, .. }
            | MesiMsg::FwdGetS { line, .. }
            | MesiMsg::FwdGetM { line, .. }
            | MesiMsg::Inv { line, .. }
            | MesiMsg::InvAck { line, .. }
            | MesiMsg::PutAck { line }
            | MesiMsg::OwnerWb { line, .. }
            | MesiMsg::Unblock { line, .. } => line,
        }
    }

    /// The message type's name (telemetry / forensics labels).
    pub fn kind_name(&self) -> &'static str {
        match self {
            MesiMsg::GetS { .. } => "GetS",
            MesiMsg::GetM { .. } => "GetM",
            MesiMsg::PutS { .. } => "PutS",
            MesiMsg::PutM { .. } => "PutM",
            MesiMsg::PutE { .. } => "PutE",
            MesiMsg::Data { .. } => "Data",
            MesiMsg::FwdGetS { .. } => "FwdGetS",
            MesiMsg::FwdGetM { .. } => "FwdGetM",
            MesiMsg::Inv { .. } => "Inv",
            MesiMsg::InvAck { .. } => "InvAck",
            MesiMsg::PutAck { .. } => "PutAck",
            MesiMsg::OwnerWb { .. } => "OwnerWb",
            MesiMsg::Unblock { .. } => "Unblock",
        }
    }
}

/// DeNovo protocol messages (word granularity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DnvMsg {
    /// Non-ownership data-read request to the registry.
    ReadReq {
        /// Requested word.
        word: WordAddr,
        /// Requesting core.
        req: CoreId,
    },
    /// Registration request (data write, sync read, sync write/RMW).
    RegReq {
        /// Requested word.
        word: WordAddr,
        /// Requesting core.
        req: CoreId,
        /// Why ownership is wanted.
        class: XferClass,
    },
    /// Data-read response (registry or current registrant → requestor).
    /// `fill` carries the other valid words of the line when the registry
    /// responds (word-mask + values; invalid words are not transferred).
    ReadResp {
        /// The word.
        word: WordAddr,
        /// Its value.
        value: u64,
        /// Valid-sibling-word fill: `(mask, line)`; bit i of `mask` says
        /// `line[i]` is carried.
        fill: Option<(u8, LineData)>,
    },
    /// Registration acknowledgment (registry or previous registrant → new
    /// registrant) carrying the word's current value.
    RegAck {
        /// The word.
        word: WordAddr,
        /// Current value of the word.
        value: u64,
        /// Transfer class (for traffic accounting).
        class: XferClass,
    },
    /// Registry tells the previous registrant to hand the word to
    /// `new_owner` (the paper's forwarded registration).
    Xfer {
        /// The word.
        word: WordAddr,
        /// New registrant.
        new_owner: CoreId,
        /// Access class (sync reads downgrade to Valid under DeNovoSync).
        class: XferClass,
    },
    /// Writeback handshake: request to return a registered word's value.
    WbReq {
        /// The word.
        word: WordAddr,
        /// Its value.
        value: u64,
        /// Evicting core.
        from: CoreId,
    },
    /// Registry accepted the writeback (the core was the registrant).
    WbAck {
        /// The word.
        word: WordAddr,
    },
    /// Registry rejected the writeback (ownership already moved; an `Xfer`
    /// is in flight to the evicting core).
    WbNack {
        /// The word.
        word: WordAddr,
    },
}

impl DnvMsg {
    /// Total wire size in bytes (header + payload; only valid words travel).
    pub fn wire_bytes(&self) -> u64 {
        match self {
            DnvMsg::ReadReq { .. }
            | DnvMsg::RegReq { .. }
            | DnvMsg::Xfer { .. }
            | DnvMsg::WbAck { .. }
            | DnvMsg::WbNack { .. } => HEADER_BYTES,
            DnvMsg::RegAck { .. } | DnvMsg::WbReq { .. } => HEADER_BYTES + WORD_BYTES,
            DnvMsg::ReadResp { fill, .. } => {
                let extra = fill.map_or(0, |(mask, _)| u64::from(mask.count_ones()));
                HEADER_BYTES + WORD_BYTES * (1 + extra)
            }
        }
    }

    /// Traffic class for the paper's breakdown (LD / ST / WB / SYNCH).
    pub fn class(&self) -> TrafficClass {
        match self {
            DnvMsg::ReadReq { .. } | DnvMsg::ReadResp { .. } => TrafficClass::Load,
            DnvMsg::RegReq { class, .. }
            | DnvMsg::RegAck { class, .. }
            | DnvMsg::Xfer { class, .. } => class.traffic(),
            DnvMsg::WbReq { .. } | DnvMsg::WbAck { .. } | DnvMsg::WbNack { .. } => {
                TrafficClass::Writeback
            }
        }
    }

    /// The word this message concerns.
    pub fn word(&self) -> WordAddr {
        match *self {
            DnvMsg::ReadReq { word, .. }
            | DnvMsg::RegReq { word, .. }
            | DnvMsg::ReadResp { word, .. }
            | DnvMsg::RegAck { word, .. }
            | DnvMsg::Xfer { word, .. }
            | DnvMsg::WbReq { word, .. }
            | DnvMsg::WbAck { word }
            | DnvMsg::WbNack { word } => word,
        }
    }

    /// The message type's name (telemetry / forensics labels).
    pub fn kind_name(&self) -> &'static str {
        match self {
            DnvMsg::ReadReq { .. } => "ReadReq",
            DnvMsg::RegReq { .. } => "RegReq",
            DnvMsg::ReadResp { .. } => "ReadResp",
            DnvMsg::RegAck { .. } => "RegAck",
            DnvMsg::Xfer { .. } => "Xfer",
            DnvMsg::WbReq { .. } => "WbReq",
            DnvMsg::WbAck { .. } => "WbAck",
            DnvMsg::WbNack { .. } => "WbNack",
        }
    }
}

/// The operation a GCS sync message asks the home bank to perform on a
/// sync-classified word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GcsOpKind {
    /// Read the current value.
    Load,
    /// Store a new value (release write executed at the directory).
    Store {
        /// Value stored.
        value: u64,
    },
    /// Atomic read-modify-write executed at the directory.
    Rmw(RmwOp),
}

impl GcsOpKind {
    /// Payload words beyond the header (CAS ships both compare and swap
    /// values; other ops at most one operand).
    pub fn payload_words(self) -> u64 {
        match self {
            GcsOpKind::Load => 0,
            GcsOpKind::Rmw(RmwOp::Cas { .. }) => 2,
            GcsOpKind::Store { .. } | GcsOpKind::Rmw(_) => 1,
        }
    }
}

/// GCS sync-path messages (the generalized-coherence dedicated path for
/// words classified as synchronization variables). Ordinary GCS data
/// traffic reuses [`DnvMsg`]; these messages exist only for classified
/// words, the classification handshake, and spin-wakeup notifications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GcsMsg {
    /// Execute a sync operation at the word's home bank.
    SyncOp {
        /// The classified word.
        word: WordAddr,
        /// Requesting core (receives the `SyncResp`).
        req: CoreId,
        /// What to do to the word.
        op: GcsOpKind,
    },
    /// Result of a `SyncOp` (bank → requestor): the loaded value, the old
    /// value of an RMW, or the stored value echoed back for a store.
    SyncResp {
        /// The word.
        word: WordAddr,
        /// Result value.
        value: u64,
    },
    /// Level-triggered spin registration: if the word's value already
    /// differs from `seen` the bank notifies immediately, otherwise it sets
    /// the requestor's waiter bit (no lost wakeups).
    SyncWatch {
        /// The watched word.
        word: WordAddr,
        /// Watching core.
        req: CoreId,
        /// The value the spinner last observed.
        seen: u64,
    },
    /// Targeted wakeup (bank → waiter) carrying the word's new value.
    SyncNotify {
        /// The word.
        word: WordAddr,
        /// Its new value.
        value: u64,
    },
    /// Bank reclaims a newly classified word from its current registrant.
    Recall {
        /// The word.
        word: WordAddr,
    },
    /// Registrant returns the word (`value` when it still held it; `None`
    /// when ownership had already moved on before the recall arrived).
    RecallAck {
        /// The word.
        word: WordAddr,
        /// Responding core.
        from: CoreId,
        /// The recalled value, if this core was still the registrant.
        value: Option<u64>,
    },
    /// Bank rejects a registration because the word is sync-classified;
    /// the L1 must convert the pending access to the `SyncOp` path.
    Classified {
        /// The word.
        word: WordAddr,
    },
}

impl GcsMsg {
    /// Total wire size in bytes (header + operand/value payload).
    pub fn wire_bytes(&self) -> u64 {
        match self {
            GcsMsg::SyncOp { op, .. } => HEADER_BYTES + WORD_BYTES * op.payload_words(),
            GcsMsg::SyncResp { .. } | GcsMsg::SyncWatch { .. } | GcsMsg::SyncNotify { .. } => {
                HEADER_BYTES + WORD_BYTES
            }
            GcsMsg::Recall { .. } | GcsMsg::Classified { .. } => HEADER_BYTES,
            GcsMsg::RecallAck { value, .. } => {
                HEADER_BYTES + WORD_BYTES * u64::from(value.is_some())
            }
        }
    }

    /// Traffic class: the whole dedicated path is synchronization traffic.
    pub fn class(&self) -> TrafficClass {
        match self {
            GcsMsg::Recall { .. } | GcsMsg::RecallAck { .. } => TrafficClass::Writeback,
            _ => TrafficClass::Sync,
        }
    }

    /// The word this message concerns.
    pub fn word(&self) -> WordAddr {
        match *self {
            GcsMsg::SyncOp { word, .. }
            | GcsMsg::SyncResp { word, .. }
            | GcsMsg::SyncWatch { word, .. }
            | GcsMsg::SyncNotify { word, .. }
            | GcsMsg::Recall { word }
            | GcsMsg::RecallAck { word, .. }
            | GcsMsg::Classified { word } => word,
        }
    }

    /// The message type's name (telemetry / forensics labels).
    pub fn kind_name(&self) -> &'static str {
        match self {
            GcsMsg::SyncOp { .. } => "SyncOp",
            GcsMsg::SyncResp { .. } => "SyncResp",
            GcsMsg::SyncWatch { .. } => "SyncWatch",
            GcsMsg::SyncNotify { .. } => "SyncNotify",
            GcsMsg::Recall { .. } => "Recall",
            GcsMsg::RecallAck { .. } => "RecallAck",
            GcsMsg::Classified { .. } => "Classified",
        }
    }
}

/// Any message on the interconnect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Msg {
    /// A MESI protocol message.
    Mesi(MesiMsg),
    /// A DeNovo protocol message.
    Dnv(DnvMsg),
    /// A GCS sync-path message (GCS data traffic travels as [`Msg::Dnv`]).
    Gcs(GcsMsg),
    /// L2 bank asks a memory controller for a line.
    MemRead {
        /// The line.
        line: LineAddr,
        /// Requesting bank.
        bank: BankId,
        /// Traffic class of the triggering transaction.
        class: TrafficClass,
    },
    /// Memory controller returns a line to an L2 bank.
    MemData {
        /// The line.
        line: LineAddr,
        /// Line contents from DRAM.
        data: LineData,
        /// Traffic class of the triggering transaction.
        class: TrafficClass,
    },
    /// L2 bank writes words back to memory (fire-and-forget).
    MemWrite {
        /// The line.
        line: LineAddr,
        /// Data to write.
        data: LineData,
        /// Which words are meaningful.
        mask: u8,
    },
}

impl Msg {
    /// Total wire size in bytes.
    pub fn wire_bytes(&self) -> u64 {
        match self {
            Msg::Mesi(m) => m.wire_bytes(),
            Msg::Dnv(m) => m.wire_bytes(),
            Msg::Gcs(m) => m.wire_bytes(),
            Msg::MemRead { .. } => HEADER_BYTES,
            Msg::MemData { .. } => HEADER_BYTES + WORDS_PER_LINE as u64 * WORD_BYTES,
            Msg::MemWrite { mask, .. } => HEADER_BYTES + WORD_BYTES * u64::from(mask.count_ones()),
        }
    }

    /// Size in 16-bit flits.
    pub fn flits(&self) -> u64 {
        self.wire_bytes().div_ceil(dvs_noc::FLIT_BYTES)
    }

    /// Traffic class.
    pub fn class(&self) -> TrafficClass {
        match self {
            Msg::Mesi(m) => m.class(),
            Msg::Dnv(m) => m.class(),
            Msg::Gcs(m) => m.class(),
            Msg::MemRead { class, .. } | Msg::MemData { class, .. } => *class,
            Msg::MemWrite { .. } => TrafficClass::Writeback,
        }
    }

    /// The message type's name (telemetry / forensics labels).
    pub fn kind_name(&self) -> &'static str {
        match self {
            Msg::Mesi(m) => m.kind_name(),
            Msg::Dnv(m) => m.kind_name(),
            Msg::Gcs(m) => m.kind_name(),
            Msg::MemRead { .. } => "MemRead",
            Msg::MemData { .. } => "MemData",
            Msg::MemWrite { .. } => "MemWrite",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line() -> LineAddr {
        LineAddr::new(5)
    }

    fn word() -> WordAddr {
        WordAddr::new(40)
    }

    #[test]
    fn mesi_control_messages_are_four_flits() {
        let msgs = [
            MesiMsg::GetS {
                line: line(),
                req: 0,
            },
            MesiMsg::GetM {
                line: line(),
                req: 0,
            },
            MesiMsg::Inv {
                line: line(),
                req: 1,
            },
            MesiMsg::InvAck {
                line: line(),
                from: 2,
            },
            MesiMsg::PutAck { line: line() },
        ];
        for m in msgs {
            assert_eq!(Msg::Mesi(m).flits(), 4, "{m:?}");
        }
    }

    #[test]
    fn mesi_data_messages_carry_the_full_line() {
        let m = Msg::Mesi(MesiMsg::Data {
            line: line(),
            data: [0; WORDS_PER_LINE],
            acks: 0,
            exclusive: false,
            class: TrafficClass::Load,
        });
        assert_eq!(m.flits(), 36);
    }

    #[test]
    fn denovo_responses_carry_only_valid_words() {
        let bare = Msg::Dnv(DnvMsg::ReadResp {
            word: word(),
            value: 1,
            fill: None,
        });
        assert_eq!(bare.flits(), 8);
        let with_three = Msg::Dnv(DnvMsg::ReadResp {
            word: word(),
            value: 1,
            fill: Some((0b0000_0111, [0; WORDS_PER_LINE])),
        });
        assert_eq!(with_three.flits(), 8 + 3 * 4);
        // Even a full-line DeNovo fill matches the MESI line message.
        let full = Msg::Dnv(DnvMsg::ReadResp {
            word: word(),
            value: 1,
            fill: Some((0xFF, [0; WORDS_PER_LINE])),
        });
        assert_eq!(full.flits(), 4 + 4 + 32);
    }

    #[test]
    fn traffic_classes_follow_the_paper() {
        assert_eq!(
            Msg::Mesi(MesiMsg::Inv {
                line: line(),
                req: 0
            })
            .class(),
            TrafficClass::Invalidation
        );
        assert_eq!(
            Msg::Mesi(MesiMsg::GetM {
                line: line(),
                req: 0
            })
            .class(),
            TrafficClass::Store
        );
        assert_eq!(
            Msg::Dnv(DnvMsg::RegReq {
                word: word(),
                req: 0,
                class: XferClass::SyncRead
            })
            .class(),
            TrafficClass::Sync
        );
        assert_eq!(
            Msg::Dnv(DnvMsg::RegReq {
                word: word(),
                req: 0,
                class: XferClass::Write
            })
            .class(),
            TrafficClass::Store
        );
        assert_eq!(
            Msg::Dnv(DnvMsg::WbReq {
                word: word(),
                value: 0,
                from: 0
            })
            .class(),
            TrafficClass::Writeback
        );
    }

    #[test]
    fn xfer_class_properties() {
        assert!(XferClass::Write.registers());
        assert!(XferClass::SyncRead.registers());
        assert!(!XferClass::DataRead.registers());
        assert_eq!(XferClass::SyncWrite.traffic(), TrafficClass::Sync);
    }

    #[test]
    fn mem_write_size_scales_with_mask() {
        let m = Msg::MemWrite {
            line: line(),
            data: [0; WORDS_PER_LINE],
            mask: 0b0000_0011,
        };
        assert_eq!(m.wire_bytes(), 8 + 16);
        assert_eq!(m.class(), TrafficClass::Writeback);
    }

    #[test]
    fn accessors_return_the_address() {
        assert_eq!(MesiMsg::PutAck { line: line() }.line(), line());
        assert_eq!(DnvMsg::WbAck { word: word() }.word(), word());
        assert_eq!(GcsMsg::Recall { word: word() }.word(), word());
    }

    #[test]
    fn gcs_sync_path_sizes_and_classes() {
        let load = Msg::Gcs(GcsMsg::SyncOp {
            word: word(),
            req: 0,
            op: GcsOpKind::Load,
        });
        assert_eq!(load.wire_bytes(), HEADER_BYTES);
        assert_eq!(load.class(), TrafficClass::Sync);
        let cas = Msg::Gcs(GcsMsg::SyncOp {
            word: word(),
            req: 0,
            op: GcsOpKind::Rmw(RmwOp::Cas {
                expected: 0,
                new: 1,
            }),
        });
        assert_eq!(cas.wire_bytes(), HEADER_BYTES + 2 * WORD_BYTES);
        let fai = Msg::Gcs(GcsMsg::SyncOp {
            word: word(),
            req: 0,
            op: GcsOpKind::Rmw(RmwOp::Fai { delta: 1 }),
        });
        assert_eq!(fai.wire_bytes(), HEADER_BYTES + WORD_BYTES);
        let notify = Msg::Gcs(GcsMsg::SyncNotify {
            word: word(),
            value: 7,
        });
        assert_eq!(notify.wire_bytes(), HEADER_BYTES + WORD_BYTES);
        assert_eq!(notify.class(), TrafficClass::Sync);
        // Recall is a forced writeback: account it with the WB traffic.
        let recall = Msg::Gcs(GcsMsg::Recall { word: word() });
        assert_eq!(recall.wire_bytes(), HEADER_BYTES);
        assert_eq!(recall.class(), TrafficClass::Writeback);
        let ack_some = Msg::Gcs(GcsMsg::RecallAck {
            word: word(),
            from: 3,
            value: Some(9),
        });
        assert_eq!(ack_some.wire_bytes(), HEADER_BYTES + WORD_BYTES);
        let ack_none = Msg::Gcs(GcsMsg::RecallAck {
            word: word(),
            from: 3,
            value: None,
        });
        assert_eq!(ack_none.wire_bytes(), HEADER_BYTES);
        assert_eq!(
            Msg::Gcs(GcsMsg::Classified { word: word() }).wire_bytes(),
            HEADER_BYTES
        );
    }
}
