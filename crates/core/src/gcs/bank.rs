//! The GCS home bank: a DeNovo registry with a sync-variable directory.
//!
//! Ordinary words behave exactly like [`crate::denovo::registry`]: `Valid`
//! at the bank or `Registered` to one L1, non-blocking re-points on racing
//! registrations. The generalized-coherence twist is **dynamic
//! classification**: when two cores contend for a word with synchronization
//! accesses (a sync-class registration hits a word registered elsewhere, or
//! a `SyncOp`/`SyncWatch` arrives), the bank promotes the word to a
//! *sync-classified* entry — permanently. Classified words always live at
//! the bank (`Valid`); sync operations execute here atomically
//! ([`GcsMsg::SyncOp`]), spinners park in a per-word waiter set
//! ([`GcsMsg::SyncWatch`]), and every value change pushes targeted
//! [`GcsMsg::SyncNotify`] wakeups — no writer-initiated invalidations, no
//! broadcast.
//!
//! Promotion of a currently-registered word runs a recall handshake: the
//! bank sends [`GcsMsg::Recall`], parks everything that arrives for the
//! word, and settles when the value comes back (via [`GcsMsg::RecallAck`]
//! or a crossing writeback, whichever wins the race).

use crate::config::ProtocolMutation;
use crate::denovo::registry::RegWord;
use crate::msg::{BankId, CoreId, DnvMsg, Endpoint, GcsMsg, GcsOpKind, LineData, Msg};
use crate::proto::Action;
use dvs_mem::{LineAddr, MemoryLayout, SpanMap, WordAddr, LINE_BYTES, WORDS_PER_LINE};
use dvs_telemetry::{Component, Event, EventKind, Telemetry, TelemetryKey};
use std::collections::{BTreeMap, VecDeque};

/// Maximum cores a waiter set can track.
const MAX_WAITERS: usize = 256;

/// A dense per-word waiter set (one bit per core, up to 256 cores).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
struct WaiterMask([u64; MAX_WAITERS / 64]);

impl WaiterMask {
    fn set(&mut self, core: CoreId) {
        assert!(
            core < MAX_WAITERS,
            "waiter mask supports {MAX_WAITERS} cores"
        );
        self.0[core / 64] |= 1 << (core % 64);
    }

    fn iter(&self) -> impl Iterator<Item = CoreId> + '_ {
        self.0.iter().enumerate().flat_map(|(i, &w)| {
            (0..64)
                .filter(move |b| w & (1 << b) != 0)
                .map(move |b| i * 64 + b)
        })
    }

    /// Returns all set cores and clears the mask.
    fn drain(&mut self) -> Vec<CoreId> {
        let waiters: Vec<CoreId> = self.iter().collect();
        self.0 = [0; MAX_WAITERS / 64];
        waiters
    }
}

/// Directory state for one sync-classified word. Presence in the bank's
/// sync map *is* the classification — entries are never removed.
#[derive(Debug, Clone, Hash)]
struct SyncEntry {
    /// Cores to wake on the next value change.
    waiters: WaiterMask,
    /// A recall handshake is reclaiming the word from its registrant.
    recalling: bool,
    /// Messages parked while recalling; drained FIFO once settled.
    pending: VecDeque<Msg>,
}

impl SyncEntry {
    fn new(recalling: bool) -> Self {
        SyncEntry {
            waiters: WaiterMask::default(),
            recalling,
            pending: VecDeque::new(),
        }
    }
}

#[derive(Debug, Clone, Hash)]
struct GcsLine {
    words: [RegWord; WORDS_PER_LINE],
    has_data: bool,
    fetching: bool,
    queue: VecDeque<Msg>,
}

impl GcsLine {
    fn new() -> Self {
        GcsLine {
            words: [RegWord::Valid(0); WORDS_PER_LINE],
            has_data: false,
            fetching: false,
            queue: VecDeque::new(),
        }
    }
}

/// One L2 bank's slice of the GCS directory.
#[derive(Debug, Clone)]
pub struct GcsBank {
    bank: BankId,
    mem: Endpoint,
    lines: SpanMap<GcsLine>,
    /// Sync-classified words homed here (sticky; sorted for canonical hash).
    sync: BTreeMap<WordAddr, SyncEntry>,
    mutation: Option<ProtocolMutation>,
    /// Targeted wakeup notifications sent (metric).
    notifies: u64,
    /// Recall handshakes started (metric).
    recalls: u64,
    /// Observability only — excluded from `Hash`, never affects behaviour.
    tel: Telemetry,
}

impl GcsBank {
    /// Creates an empty bank fetching lines through `mem`.
    pub fn new(bank: BankId, mem: Endpoint) -> Self {
        GcsBank {
            bank,
            mem,
            lines: SpanMap::sparse_only(),
            sync: BTreeMap::new(),
            mutation: None,
            notifies: 0,
            recalls: 0,
            tel: Telemetry::off(),
        }
    }

    /// Sizes the dense line table from the workload layout (see
    /// [`crate::denovo::registry::DnvRegistry::configure_span`]).
    pub fn configure_span(&mut self, layout: &MemoryLayout, banks: usize) {
        debug_assert!(self.lines.is_empty(), "span configured after traffic");
        let top_line = layout.top().div_ceil(LINE_BYTES);
        let slots = top_line.div_ceil(banks as u64) as usize;
        self.lines = SpanMap::with_span(self.bank as u64, banks as u64, slots);
    }

    /// Attaches a telemetry handle.
    pub fn set_telemetry(&mut self, tel: Telemetry) {
        self.tel = tel;
    }

    /// Arms a seeded protocol bug (negative testing).
    pub fn set_mutation(&mut self, mutation: Option<ProtocolMutation>) {
        self.mutation = mutation;
    }

    /// Targeted wakeup notifications sent so far.
    pub fn notifies(&self) -> u64 {
        self.notifies
    }

    /// Recall handshakes started so far.
    pub fn recalls(&self) -> u64 {
        self.recalls
    }

    /// The registry state of a word, if its line has been touched.
    pub fn word(&self, word: WordAddr) -> Option<RegWord> {
        let line = self.lines.get(word.line().raw())?;
        line.has_data.then_some(line.words[word.index_in_line()])
    }

    /// Whether `word` is sync-classified at this bank.
    pub fn classified(&self, word: WordAddr) -> bool {
        self.sync.contains_key(&word)
    }

    /// Iterates every sync-classified word homed here.
    pub fn classified_words(&self) -> impl Iterator<Item = WordAddr> + '_ {
        self.sync.keys().copied()
    }

    /// Whether a recall handshake is in flight for `word`.
    pub fn recalling(&self, word: WordAddr) -> bool {
        self.sync.get(&word).is_some_and(|e| e.recalling)
    }

    /// The cores currently parked in `word`'s waiter set.
    pub fn waiters_of(&self, word: WordAddr) -> Vec<CoreId> {
        self.sync
            .get(&word)
            .map_or_else(Vec::new, |e| e.waiters.iter().collect())
    }

    /// Total parked waiters across all classified words.
    pub fn waiter_count(&self) -> usize {
        self.sync.values().map(|e| e.waiters.iter().count()).sum()
    }

    /// Number of words currently registered to some L1.
    pub fn registered_words(&self) -> usize {
        self.lines
            .iter()
            .flat_map(|(_, l)| l.words.iter())
            .filter(|w| matches!(w, RegWord::Registered(_)))
            .count()
    }

    /// Iterates every word currently registered to some core.
    pub fn registrations(&self) -> impl Iterator<Item = (WordAddr, CoreId)> + '_ {
        self.lines.iter().flat_map(|(raw, e)| {
            let line = LineAddr::new(raw);
            e.words
                .iter()
                .enumerate()
                .filter_map(move |(i, w)| match w {
                    RegWord::Registered(c) => Some((line.word(i), *c)),
                    RegWord::Valid(_) => None,
                })
        })
    }

    /// Whether any line is still waiting on a memory fetch.
    pub fn any_fetching(&self) -> bool {
        self.lines
            .iter()
            .any(|(_, l)| l.fetching || !l.queue.is_empty())
    }

    /// Whether any sync entry is mid-recall or holds parked messages (for
    /// quiescence checks).
    pub fn sync_busy(&self) -> bool {
        self.sync
            .values()
            .any(|e| e.recalling || !e.pending.is_empty())
    }

    /// Whether the line is still being resolved — fetching, holding queued
    /// requests, unfilled, or mid-recall on one of its words. The transient
    /// exemption for the runtime conservation checker.
    pub fn line_busy(&self, line: LineAddr) -> bool {
        self.lines
            .get(line.raw())
            .is_some_and(|l| l.fetching || !l.queue.is_empty() || !l.has_data)
            || line.words().any(|w| {
                self.sync
                    .get(&w)
                    .is_some_and(|e| e.recalling || !e.pending.is_empty())
            })
    }

    /// A one-line human-readable description of a word's state (stall
    /// diagnostics).
    pub fn describe_word(&self, word: WordAddr) -> Option<String> {
        let e = self.lines.get(word.line().raw())?;
        let mut s = format!(
            "gcs bank {}: {word} {:?} has_data={} fetching={} queued={}",
            self.bank,
            e.words[word.index_in_line()],
            e.has_data,
            e.fetching,
            e.queue.len()
        );
        if let Some(sync) = self.sync.get(&word) {
            s.push_str(&format!(
                " sync[recalling={} waiters={} parked={}]",
                sync.recalling,
                sync.waiters.iter().count(),
                sync.pending.len()
            ));
        }
        Some(s)
    }

    fn emit_registration(&self, word: WordAddr, owner: CoreId, prev: Option<CoreId>) {
        self.tel.emit(|| Event {
            cycle: self.tel.now(),
            node: self.bank as u32,
            component: Component::Dir,
            addr: word.telemetry_key(),
            kind: EventKind::Registration {
                owner: owner as u32,
                prev: prev.map_or(u32::MAX, |p| p as u32),
            },
        });
    }

    fn emit_classify(&self, word: WordAddr) {
        self.tel.emit(|| Event {
            cycle: self.tel.now(),
            node: self.bank as u32,
            component: Component::Dir,
            addr: word.telemetry_key(),
            kind: EventKind::Transition {
                from: "data",
                to: "sync",
                cause: "classify",
            },
        });
    }

    /// Handles one incoming message (data-path [`Msg::Dnv`] or sync-path
    /// [`Msg::Gcs`]).
    pub fn on_msg(&mut self, msg: Msg, actions: &mut Vec<Action>) {
        let (word, class) = match &msg {
            Msg::Dnv(m) => (m.word(), m.class()),
            Msg::Gcs(m) => (m.word(), m.class()),
            other => {
                actions.push(Action::violation(format!(
                    "gcs bank {} cannot handle {other:?}",
                    self.bank
                )));
                return;
            }
        };
        let line = word.line();
        let entry = self.lines.or_insert_with(line.raw(), GcsLine::new);
        if !entry.has_data {
            entry.queue.push_back(msg);
            if !entry.fetching {
                entry.fetching = true;
                actions.push(Action::Send {
                    to: self.mem,
                    msg: Msg::MemRead {
                        line,
                        bank: self.bank,
                        class,
                    },
                });
            }
            return;
        }
        self.dispatch(msg, actions);
    }

    /// Memory returned a line this bank was fetching.
    pub fn on_mem_data(&mut self, line: LineAddr, data: LineData, actions: &mut Vec<Action>) {
        let Some(entry) = self.lines.get_mut(line.raw()) else {
            actions.push(Action::violation(format!(
                "gcs bank {}: MemData for unknown line {line}",
                self.bank
            )));
            return;
        };
        if !entry.fetching {
            actions.push(Action::violation(format!(
                "gcs bank {}: MemData for {line} that was not being fetched",
                self.bank
            )));
            return;
        }
        for (i, w) in entry.words.iter_mut().enumerate() {
            *w = RegWord::Valid(data[i]);
        }
        entry.has_data = true;
        entry.fetching = false;
        let queued: Vec<Msg> = entry.queue.drain(..).collect();
        for m in queued {
            self.dispatch(m, actions);
        }
    }

    fn dispatch(&mut self, msg: Msg, actions: &mut Vec<Action>) {
        let word = match &msg {
            Msg::Dnv(m) => m.word(),
            Msg::Gcs(m) => m.word(),
            _ => unreachable!("filtered by on_msg"),
        };
        match self.sync.get(&word).map(|e| e.recalling) {
            Some(true) => self.on_recalling(word, msg, actions),
            Some(false) => self.on_classified(word, msg, actions),
            None => self.on_unclassified(word, msg, actions),
        }
    }

    fn word_slot(&mut self, word: WordAddr) -> &mut RegWord {
        let entry = self
            .lines
            .get_mut(word.line().raw())
            .expect("line fetched before dispatch");
        &mut entry.words[word.index_in_line()]
    }

    /// A recall handshake is in flight: accept the returning value (a
    /// `RecallAck`, or the registrant's crossing writeback), park sync and
    /// read traffic, and turn registrations away immediately.
    fn on_recalling(&mut self, word: WordAddr, msg: Msg, actions: &mut Vec<Action>) {
        match msg {
            Msg::Dnv(DnvMsg::WbReq { value, from, .. }) => match *self.word_slot(word) {
                // The registrant's eviction writeback crossed our recall:
                // accept it as the recall return (its L1 drops the recall).
                RegWord::Registered(owner) if owner == from => {
                    *self.word_slot(word) = RegWord::Valid(value);
                    actions.push(Action::Send {
                        to: Endpoint::L1(from),
                        msg: Msg::Dnv(DnvMsg::WbAck { word }),
                    });
                    self.settle_recall(word, actions);
                }
                RegWord::Registered(_) => actions.push(Action::Send {
                    to: Endpoint::L1(from),
                    msg: Msg::Dnv(DnvMsg::WbNack { word }),
                }),
                RegWord::Valid(_) => actions.push(Action::violation(format!(
                    "gcs bank {}: writeback for recalled word {word} the bank already holds",
                    self.bank
                ))),
            },
            Msg::Gcs(GcsMsg::RecallAck { from, value, .. }) => {
                let RegWord::Registered(owner) = *self.word_slot(word) else {
                    actions.push(Action::violation(format!(
                        "gcs bank {}: RecallAck for {word} the bank already holds",
                        self.bank
                    )));
                    return;
                };
                if owner != from {
                    actions.push(Action::violation(format!(
                        "gcs bank {}: RecallAck for {word} from core {from}, \
                         registrant is core {owner}",
                        self.bank
                    )));
                    return;
                }
                let Some(value) = value else {
                    actions.push(Action::violation(format!(
                        "gcs bank {}: registrant core {from} answered the recall of \
                         {word} without the value",
                        self.bank
                    )));
                    return;
                };
                *self.word_slot(word) = RegWord::Valid(value);
                self.settle_recall(word, actions);
            }
            // The word is classified; any registration attempt converts.
            Msg::Dnv(DnvMsg::RegReq { req, .. }) => actions.push(Action::Send {
                to: Endpoint::L1(req),
                msg: Msg::Gcs(GcsMsg::Classified { word }),
            }),
            Msg::Dnv(DnvMsg::ReadReq { .. })
            | Msg::Gcs(GcsMsg::SyncOp { .. })
            | Msg::Gcs(GcsMsg::SyncWatch { .. }) => {
                let entry = self.sync.get_mut(&word).expect("recalling entry");
                entry.pending.push_back(msg);
            }
            other => actions.push(Action::violation(format!(
                "gcs bank {} cannot handle {other:?} while recalling {word}",
                self.bank
            ))),
        }
    }

    fn settle_recall(&mut self, word: WordAddr, actions: &mut Vec<Action>) {
        let entry = self.sync.get_mut(&word).expect("recalling entry");
        entry.recalling = false;
        let pending: Vec<Msg> = entry.pending.drain(..).collect();
        for m in pending {
            self.dispatch(m, actions);
        }
    }

    /// The word is classified and settled at the bank.
    fn on_classified(&mut self, word: WordAddr, msg: Msg, actions: &mut Vec<Action>) {
        match msg {
            Msg::Gcs(GcsMsg::SyncOp { req, op, .. }) => self.exec_sync(word, req, op, actions),
            Msg::Gcs(GcsMsg::SyncWatch { req, seen, .. }) => self.watch(word, req, seen, actions),
            Msg::Dnv(DnvMsg::RegReq { req, .. }) => actions.push(Action::Send {
                to: Endpoint::L1(req),
                msg: Msg::Gcs(GcsMsg::Classified { word }),
            }),
            Msg::Dnv(DnvMsg::ReadReq { req, .. }) => {
                let RegWord::Valid(value) = *self.word_slot(word) else {
                    actions.push(Action::violation(format!(
                        "gcs bank {}: classified word {word} registered away",
                        self.bank
                    )));
                    return;
                };
                self.serve_read(word, req, value, actions);
            }
            // A stale recall answer from a registrant whose writeback had
            // already returned the word; the handshake is long settled.
            Msg::Gcs(GcsMsg::RecallAck { value: None, .. }) => {}
            other => actions.push(Action::violation(format!(
                "gcs bank {} cannot handle {other:?} for classified word {word}",
                self.bank
            ))),
        }
    }

    /// The word is ordinary data so far: behave like the DeNovo registry,
    /// but promote to sync-classified on synchronization contention.
    fn on_unclassified(&mut self, word: WordAddr, msg: Msg, actions: &mut Vec<Action>) {
        match msg {
            // A sync op can only reach an unclassified word when the
            // sender's predictor outlives knowledge this bank never had
            // (fresh bank state in unit tests); classify on demand.
            Msg::Gcs(GcsMsg::SyncOp { req, .. }) | Msg::Gcs(GcsMsg::SyncWatch { req, .. }) => {
                match *self.word_slot(word) {
                    RegWord::Registered(owner) => {
                        if owner == req {
                            actions.push(Action::violation(format!(
                                "gcs bank {}: sync op for {word} from its own \
                                 registrant core {req}",
                                self.bank
                            )));
                            return;
                        }
                        self.classify(word, owner, actions);
                        let entry = self.sync.get_mut(&word).expect("just classified");
                        entry.pending.push_back(msg);
                    }
                    RegWord::Valid(_) => {
                        self.sync.insert(word, SyncEntry::new(false));
                        self.emit_classify(word);
                        self.on_classified(word, msg, actions);
                    }
                }
            }
            Msg::Dnv(DnvMsg::RegReq { req, class, .. }) => {
                match *self.word_slot(word) {
                    RegWord::Valid(value) => {
                        *self.word_slot(word) = RegWord::Registered(req);
                        actions.push(Action::Send {
                            to: Endpoint::L1(req),
                            msg: Msg::Dnv(DnvMsg::RegAck { word, value, class }),
                        });
                        self.emit_registration(word, req, None);
                    }
                    RegWord::Registered(prev) => {
                        if prev == req {
                            actions.push(Action::violation(format!(
                                "gcs bank {}: re-registration of {word} by current \
                                 registrant core {req}",
                                self.bank
                            )));
                            return;
                        }
                        if class.registers() && class != crate::msg::XferClass::Write {
                            // Sync-on-sync contention: this is what marks a
                            // word as a synchronization variable.
                            self.classify(word, prev, actions);
                            actions.push(Action::Send {
                                to: Endpoint::L1(req),
                                msg: Msg::Gcs(GcsMsg::Classified { word }),
                            });
                            return;
                        }
                        // Plain data-write contention: the DeNovo
                        // non-blocking re-point, no classification.
                        *self.word_slot(word) = RegWord::Registered(req);
                        actions.push(Action::Send {
                            to: Endpoint::L1(prev),
                            msg: Msg::Dnv(DnvMsg::Xfer {
                                word,
                                new_owner: req,
                                class,
                            }),
                        });
                        self.emit_registration(word, req, Some(prev));
                    }
                }
            }
            Msg::Dnv(DnvMsg::ReadReq { req, .. }) => match *self.word_slot(word) {
                RegWord::Valid(value) => self.serve_read(word, req, value, actions),
                RegWord::Registered(owner) => {
                    if owner == req {
                        actions.push(Action::violation(format!(
                            "gcs bank {}: registrant core {req} data-reading its own \
                             word {word} remotely",
                            self.bank
                        )));
                        return;
                    }
                    actions.push(Action::Send {
                        to: Endpoint::L1(owner),
                        msg: Msg::Dnv(DnvMsg::ReadReq { word, req }),
                    });
                }
            },
            Msg::Dnv(DnvMsg::WbReq { value, from, .. }) => match *self.word_slot(word) {
                RegWord::Registered(owner) if owner == from => {
                    *self.word_slot(word) = RegWord::Valid(value);
                    actions.push(Action::Send {
                        to: Endpoint::L1(from),
                        msg: Msg::Dnv(DnvMsg::WbAck { word }),
                    });
                }
                RegWord::Registered(_) => actions.push(Action::Send {
                    to: Endpoint::L1(from),
                    msg: Msg::Dnv(DnvMsg::WbNack { word }),
                }),
                RegWord::Valid(_) => actions.push(Action::violation(format!(
                    "gcs bank {}: writeback for {word}, which the registry already holds",
                    self.bank
                ))),
            },
            other => actions.push(Action::violation(format!(
                "gcs bank {} cannot handle {other:?}",
                self.bank
            ))),
        }
    }

    /// Promotes `word` to sync-classified and starts recalling it from its
    /// current registrant.
    fn classify(&mut self, word: WordAddr, registrant: CoreId, actions: &mut Vec<Action>) {
        self.sync.insert(word, SyncEntry::new(true));
        self.recalls += 1;
        self.emit_classify(word);
        actions.push(Action::Send {
            to: Endpoint::L1(registrant),
            msg: Msg::Gcs(GcsMsg::Recall { word }),
        });
    }

    /// Executes a sync operation atomically at the bank and notifies the
    /// waiter set if the value changed.
    fn exec_sync(&mut self, word: WordAddr, req: CoreId, op: GcsOpKind, actions: &mut Vec<Action>) {
        let RegWord::Valid(old) = *self.word_slot(word) else {
            actions.push(Action::violation(format!(
                "gcs bank {}: classified word {word} registered away during sync op",
                self.bank
            )));
            return;
        };
        let (stored, resp) = match op {
            GcsOpKind::Load => (old, old),
            GcsOpKind::Store { value } => (value, value),
            GcsOpKind::Rmw(o) => {
                let new = if self.mutation == Some(ProtocolMutation::GcsSkipUpdate) {
                    old
                } else {
                    o.apply(old)
                };
                (new, old)
            }
        };
        *self.word_slot(word) = RegWord::Valid(stored);
        actions.push(Action::Send {
            to: Endpoint::L1(req),
            msg: Msg::Gcs(GcsMsg::SyncResp { word, value: resp }),
        });
        if stored != old {
            self.notify_waiters(word, stored, req, actions);
        }
    }

    /// Arms a level-triggered watch: notify immediately if the value has
    /// already moved past what the spinner saw, otherwise park it.
    fn watch(&mut self, word: WordAddr, req: CoreId, seen: u64, actions: &mut Vec<Action>) {
        let RegWord::Valid(cur) = *self.word_slot(word) else {
            actions.push(Action::violation(format!(
                "gcs bank {}: classified word {word} registered away during watch",
                self.bank
            )));
            return;
        };
        if cur != seen {
            if self.mutation != Some(ProtocolMutation::GcsDropNotify) {
                self.notifies += 1;
                actions.push(Action::Send {
                    to: Endpoint::L1(req),
                    msg: Msg::Gcs(GcsMsg::SyncNotify { word, value: cur }),
                });
            }
            return;
        }
        let entry = self.sync.get_mut(&word).expect("classified entry");
        entry.waiters.set(req);
    }

    /// Pushes the new value to every parked waiter. The waiter set always
    /// clears — a half-cleared set would desynchronize the directory even
    /// under the drop-notify mutation.
    fn notify_waiters(
        &mut self,
        word: WordAddr,
        value: u64,
        writer: CoreId,
        actions: &mut Vec<Action>,
    ) {
        let entry = self.sync.get_mut(&word).expect("classified entry");
        let waiters = entry.waiters.drain();
        if waiters.is_empty() {
            return;
        }
        if self.mutation != Some(ProtocolMutation::GcsDropNotify) {
            for &c in &waiters {
                self.notifies += 1;
                actions.push(Action::Send {
                    to: Endpoint::L1(c),
                    msg: Msg::Gcs(GcsMsg::SyncNotify { word, value }),
                });
            }
        }
        self.tel.emit(|| Event {
            cycle: self.tel.now(),
            node: self.bank as u32,
            component: Component::Dir,
            addr: word.telemetry_key(),
            kind: EventKind::Notify {
                writer: writer as u32,
                waiters: waiters.len() as u32,
            },
        });
    }

    /// Serves a data read from the bank, piggy-backing the line's other
    /// valid words (only valid parts travel — DeNovo's traffic advantage).
    fn serve_read(&mut self, word: WordAddr, req: CoreId, value: u64, actions: &mut Vec<Action>) {
        let entry = self
            .lines
            .get(word.line().raw())
            .expect("line fetched before dispatch");
        let idx = word.index_in_line();
        let mut mask = 0u8;
        let mut data = [0u64; WORDS_PER_LINE];
        for (i, w) in entry.words.iter().enumerate() {
            if i != idx {
                if let RegWord::Valid(v) = *w {
                    mask |= 1 << i;
                    data[i] = v;
                }
            }
        }
        actions.push(Action::Send {
            to: Endpoint::L1(req),
            msg: Msg::Dnv(DnvMsg::ReadResp {
                word,
                value,
                fill: Some((mask, data)),
            }),
        });
    }
}

/// Canonical hash for model checking: lines and sync entries sorted by
/// address; queued and parked messages hash in FIFO order. The notify and
/// recall counters are metrics and excluded.
impl std::hash::Hash for GcsBank {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.bank.hash(state);
        self.mem.hash(state);
        self.lines.hash(state);
        self.sync.hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::XferClass;
    use dvs_mem::RmwOp;

    fn word(i: u64) -> WordAddr {
        WordAddr::new(64 + i)
    }

    fn warmed() -> GcsBank {
        let mut b = GcsBank::new(0, Endpoint::Mem(0));
        let mut acts = Vec::new();
        b.on_msg(
            Msg::Dnv(DnvMsg::ReadReq {
                word: word(0),
                req: 9,
            }),
            &mut acts,
        );
        let mut data = [0u64; 8];
        data[0] = 100;
        data[1] = 101;
        b.on_mem_data(word(0).line(), data, &mut acts);
        b
    }

    fn reg(b: &mut GcsBank, w: WordAddr, core: CoreId, class: XferClass) {
        let mut acts = Vec::new();
        b.on_msg(
            Msg::Dnv(DnvMsg::RegReq {
                word: w,
                req: core,
                class,
            }),
            &mut acts,
        );
        assert_eq!(b.word(w), Some(RegWord::Registered(core)));
    }

    #[test]
    fn sync_contention_classifies_and_recalls() {
        let mut b = warmed();
        reg(&mut b, word(2), 1, XferClass::SyncWrite);
        let mut acts = Vec::new();
        // Core 4's sync read contends: the word becomes a sync variable.
        b.on_msg(
            Msg::Dnv(DnvMsg::RegReq {
                word: word(2),
                req: 4,
                class: XferClass::SyncRead,
            }),
            &mut acts,
        );
        assert!(b.classified(word(2)) && b.recalling(word(2)));
        assert_eq!(b.recalls(), 1);
        assert!(acts.contains(&Action::Send {
            to: Endpoint::L1(1),
            msg: Msg::Gcs(GcsMsg::Recall { word: word(2) }),
        }));
        assert!(acts.contains(&Action::Send {
            to: Endpoint::L1(4),
            msg: Msg::Gcs(GcsMsg::Classified { word: word(2) }),
        }));
        acts.clear();
        // A read parks behind the recall.
        b.on_msg(
            Msg::Dnv(DnvMsg::ReadReq {
                word: word(2),
                req: 6,
            }),
            &mut acts,
        );
        assert!(acts.is_empty());
        // The registrant returns the value; parked traffic drains.
        b.on_msg(
            Msg::Gcs(GcsMsg::RecallAck {
                word: word(2),
                from: 1,
                value: Some(55),
            }),
            &mut acts,
        );
        assert!(!b.recalling(word(2)));
        assert_eq!(b.word(word(2)), Some(RegWord::Valid(55)));
        assert!(acts.iter().any(|a| matches!(
            a,
            Action::Send {
                to: Endpoint::L1(6),
                msg: Msg::Dnv(DnvMsg::ReadResp { value: 55, .. }),
            }
        )));
    }

    #[test]
    fn data_write_contention_repoints_without_classifying() {
        let mut b = warmed();
        reg(&mut b, word(3), 1, XferClass::Write);
        let mut acts = Vec::new();
        b.on_msg(
            Msg::Dnv(DnvMsg::RegReq {
                word: word(3),
                req: 2,
                class: XferClass::Write,
            }),
            &mut acts,
        );
        assert!(!b.classified(word(3)));
        assert_eq!(b.word(word(3)), Some(RegWord::Registered(2)));
        assert!(acts.iter().any(|a| matches!(
            a,
            Action::Send {
                to: Endpoint::L1(1),
                msg: Msg::Dnv(DnvMsg::Xfer { new_owner: 2, .. }),
            }
        )));
    }

    #[test]
    fn sync_op_executes_at_bank_and_notifies_waiters() {
        let mut b = warmed();
        let mut acts = Vec::new();
        // RMW on a bank-held word classifies on demand and executes.
        b.on_msg(
            Msg::Gcs(GcsMsg::SyncOp {
                word: word(1),
                req: 2,
                op: GcsOpKind::Rmw(RmwOp::Fai { delta: 1 }),
            }),
            &mut acts,
        );
        assert!(b.classified(word(1)));
        assert!(acts.contains(&Action::Send {
            to: Endpoint::L1(2),
            msg: Msg::Gcs(GcsMsg::SyncResp {
                word: word(1),
                value: 101,
            }),
        }));
        assert_eq!(b.word(word(1)), Some(RegWord::Valid(102)));
        acts.clear();
        // Core 5 watches the value it just saw: parked, no notify yet.
        b.on_msg(
            Msg::Gcs(GcsMsg::SyncWatch {
                word: word(1),
                req: 5,
                seen: 102,
            }),
            &mut acts,
        );
        assert!(acts.is_empty());
        assert_eq!(b.waiters_of(word(1)), vec![5]);
        // A store changes the value: targeted notify, set cleared.
        b.on_msg(
            Msg::Gcs(GcsMsg::SyncOp {
                word: word(1),
                req: 3,
                op: GcsOpKind::Store { value: 7 },
            }),
            &mut acts,
        );
        assert!(acts.contains(&Action::Send {
            to: Endpoint::L1(5),
            msg: Msg::Gcs(GcsMsg::SyncNotify {
                word: word(1),
                value: 7,
            }),
        }));
        assert!(b.waiters_of(word(1)).is_empty());
        assert_eq!(b.notifies(), 1);
    }

    #[test]
    fn stale_watch_notifies_immediately() {
        let mut b = warmed();
        let mut acts = Vec::new();
        b.on_msg(
            Msg::Gcs(GcsMsg::SyncOp {
                word: word(1),
                req: 2,
                op: GcsOpKind::Load,
            }),
            &mut acts,
        );
        acts.clear();
        // The spinner saw 0 but the word is 101: immediate wakeup, no bit.
        b.on_msg(
            Msg::Gcs(GcsMsg::SyncWatch {
                word: word(1),
                req: 5,
                seen: 0,
            }),
            &mut acts,
        );
        assert!(acts.contains(&Action::Send {
            to: Endpoint::L1(5),
            msg: Msg::Gcs(GcsMsg::SyncNotify {
                word: word(1),
                value: 101,
            }),
        }));
        assert!(b.waiters_of(word(1)).is_empty());
    }

    #[test]
    fn crossing_writeback_settles_the_recall() {
        let mut b = warmed();
        reg(&mut b, word(2), 1, XferClass::Write);
        let mut acts = Vec::new();
        // A sync op from core 3 starts the recall of core 1's registration.
        b.on_msg(
            Msg::Gcs(GcsMsg::SyncOp {
                word: word(2),
                req: 3,
                op: GcsOpKind::Load,
            }),
            &mut acts,
        );
        assert!(b.recalling(word(2)));
        acts.clear();
        // Core 1's eviction writeback crossed the recall in flight: the
        // bank accepts it as the recall return and serves the parked op.
        b.on_msg(
            Msg::Dnv(DnvMsg::WbReq {
                word: word(2),
                value: 88,
                from: 1,
            }),
            &mut acts,
        );
        assert!(!b.recalling(word(2)));
        assert!(acts.contains(&Action::Send {
            to: Endpoint::L1(1),
            msg: Msg::Dnv(DnvMsg::WbAck { word: word(2) }),
        }));
        assert!(acts.contains(&Action::Send {
            to: Endpoint::L1(3),
            msg: Msg::Gcs(GcsMsg::SyncResp {
                word: word(2),
                value: 88,
            }),
        }));
    }

    #[test]
    fn registration_of_classified_word_is_rejected() {
        let mut b = warmed();
        let mut acts = Vec::new();
        b.on_msg(
            Msg::Gcs(GcsMsg::SyncOp {
                word: word(1),
                req: 2,
                op: GcsOpKind::Load,
            }),
            &mut acts,
        );
        acts.clear();
        b.on_msg(
            Msg::Dnv(DnvMsg::RegReq {
                word: word(1),
                req: 7,
                class: XferClass::Write,
            }),
            &mut acts,
        );
        assert_eq!(
            acts,
            vec![Action::Send {
                to: Endpoint::L1(7),
                msg: Msg::Gcs(GcsMsg::Classified { word: word(1) }),
            }]
        );
        assert_eq!(b.word(word(1)), Some(RegWord::Valid(101)));
    }

    #[test]
    fn skip_update_mutation_loses_the_rmw() {
        let mut b = warmed();
        b.set_mutation(Some(ProtocolMutation::GcsSkipUpdate));
        let mut acts = Vec::new();
        b.on_msg(
            Msg::Gcs(GcsMsg::SyncOp {
                word: word(1),
                req: 2,
                op: GcsOpKind::Rmw(RmwOp::Fai { delta: 1 }),
            }),
            &mut acts,
        );
        // The old value comes back but the increment is lost.
        assert_eq!(b.word(word(1)), Some(RegWord::Valid(101)));
    }

    #[test]
    fn drop_notify_mutation_strands_waiters() {
        let mut b = warmed();
        b.set_mutation(Some(ProtocolMutation::GcsDropNotify));
        let mut acts = Vec::new();
        b.on_msg(
            Msg::Gcs(GcsMsg::SyncOp {
                word: word(1),
                req: 2,
                op: GcsOpKind::Load,
            }),
            &mut acts,
        );
        b.on_msg(
            Msg::Gcs(GcsMsg::SyncWatch {
                word: word(1),
                req: 5,
                seen: 101,
            }),
            &mut acts,
        );
        acts.clear();
        b.on_msg(
            Msg::Gcs(GcsMsg::SyncOp {
                word: word(1),
                req: 3,
                op: GcsOpKind::Store { value: 9 },
            }),
            &mut acts,
        );
        // The store completes but the wakeup never leaves the bank.
        assert!(!acts.iter().any(|a| matches!(
            a,
            Action::Send {
                msg: Msg::Gcs(GcsMsg::SyncNotify { .. }),
                ..
            }
        )));
        assert_eq!(b.notifies(), 0);
        assert!(b.waiters_of(word(1)).is_empty());
    }
}
