//! The per-L1 synchronization-variable predictor.
//!
//! A small, bounded table of word addresses this L1 has learned are
//! sync-classified at their home bank (from `Classified` rejections,
//! `Recall`s, and `SyncNotify` wakeups). A predictor hit routes the access
//! straight down the dedicated sync path; a miss costs one optimistic
//! registration round trip that the bank answers with `Classified`, after
//! which the entry is re-learned. Capacity misses are therefore a
//! performance event, never a correctness event.

use dvs_mem::WordAddr;

/// Bounded FIFO set of sync-classified word addresses.
#[derive(Debug, Clone, Hash)]
pub struct SyncPredictor {
    slots: Vec<Option<WordAddr>>,
    /// Next slot to overwrite (round-robin replacement).
    next: usize,
}

impl SyncPredictor {
    /// Default table size: matches a realistic per-core structure of a few
    /// dozen hot sync variables.
    pub const DEFAULT_SLOTS: usize = 32;

    /// An empty predictor with `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "predictor needs at least one slot");
        SyncPredictor {
            slots: vec![None; capacity],
            next: 0,
        }
    }

    /// Whether `word` is predicted sync-classified.
    pub fn contains(&self, word: WordAddr) -> bool {
        self.slots.contains(&Some(word))
    }

    /// Learns `word` (idempotent; evicts round-robin when full).
    pub fn insert(&mut self, word: WordAddr) {
        if self.contains(word) {
            return;
        }
        if let Some(free) = self.slots.iter().position(Option::is_none) {
            self.slots[free] = Some(word);
            return;
        }
        self.slots[self.next] = Some(word);
        self.next = (self.next + 1) % self.slots.len();
    }

    /// Number of learned entries.
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Whether nothing has been learned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(i: u64) -> WordAddr {
        WordAddr::new(i)
    }

    #[test]
    fn insert_is_idempotent_and_bounded() {
        let mut p = SyncPredictor::new(2);
        assert!(p.is_empty());
        p.insert(w(1));
        p.insert(w(1));
        assert_eq!(p.len(), 1);
        p.insert(w(2));
        assert!(p.contains(w(1)) && p.contains(w(2)));
        // Full: the third insert evicts round-robin, capacity stays 2.
        p.insert(w(3));
        assert_eq!(p.len(), 2);
        assert!(p.contains(w(3)));
    }

    #[test]
    fn eviction_is_deterministic() {
        let mut a = SyncPredictor::new(2);
        let mut b = SyncPredictor::new(2);
        for i in 0..10 {
            a.insert(w(i));
            b.insert(w(i));
        }
        assert_eq!(a.contains(w(9)), b.contains(w(9)));
        assert_eq!(a.len(), b.len());
    }
}
