//! GCS: sync-aware generalized coherence.
//!
//! A fourth protocol backend that splits memory traffic by *observed role*
//! rather than by static annotation. Ordinary data takes the DeNovo
//! ownership path — word-granularity Invalid / Valid / Registered, reader
//! self-invalidation, a non-blocking registry, no writer-initiated
//! invalidations. Words the hardware observes being fought over with
//! synchronization accesses (RMW targets, spin flags) are *dynamically
//! classified* as sync variables and moved onto a dedicated
//! directory-mediated update path:
//!
//! * classified words live permanently at their home [`bank`]; sync
//!   operations execute there atomically and never bounce registrations
//!   between L1s;
//! * spinning cores park in a per-word waiter set and are woken by a
//!   *targeted* notification carrying the new value — the update protocol
//!   the paper argues is wasteful for data is exactly right for the tiny,
//!   hot set of sync variables;
//! * each [`l1`] learns classifications in a small bounded [`predictor`]
//!   table, routing future sync accesses straight down the dedicated path;
//!   a capacity miss costs one optimistic registration round trip, never
//!   correctness.

pub mod bank;
pub mod l1;
pub mod predictor;

pub use bank::GcsBank;
pub use l1::GcsL1;
pub use predictor::SyncPredictor;
