//! The GCS private-cache (L1) controller.
//!
//! Ordinary data follows the DeNovo ownership/registration path verbatim
//! (word-granularity Invalid / Valid / Registered, writeback handshakes,
//! the distributed registration queue) — see [`crate::denovo::l1`]. What
//! changes is synchronization:
//!
//! * sync accesses to *unclassified* words issue optimistic DeNovo
//!   registrations, exactly like DeNovoSync0 (no hardware backoff);
//! * when the home bank classifies a word as a synchronization variable it
//!   answers registrations with `Classified`; the L1 converts the pending
//!   access into a [`GcsMsg::SyncOp`] executed *at the bank* and records
//!   the word in its bounded [`SyncPredictor`];
//! * predicted-sync accesses skip the optimistic attempt and go straight
//!   down the dedicated path;
//! * a failed spin on a classified word arms a level-triggered remote
//!   watch ([`GcsMsg::SyncWatch`]); the bank's targeted [`GcsMsg::SyncNotify`]
//!   lands in a one-entry notify buffer that the re-issued spin load hits;
//! * `Recall` surrenders a just-classified word's registered copy back to
//!   the bank (the value rides on [`GcsMsg::RecallAck`]).

use crate::denovo::l1::{DnvLine, DnvWord, WState};
use crate::gcs::predictor::SyncPredictor;
use crate::msg::{CoreId, DnvMsg, Endpoint, GcsMsg, GcsOpKind, Msg, XferClass};
use crate::proto::{Action, IssueResult};
use dvs_mem::array::InsertOutcome;
use dvs_mem::layout::MemoryLayout;
use dvs_mem::{
    AccessKind, CacheArray, CacheGeometry, LineAddr, Mshr, Region, RmwOp, WordAddr, WORDS_PER_LINE,
};
use dvs_stats::CacheStats;
use dvs_telemetry::{Component, Event, EventKind, Telemetry, TelemetryKey};
use dvs_vm::MemRequest;
use std::sync::Arc;

/// How to complete a dedicated-path operation when its `SyncResp` arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum SyncComplete {
    /// Blocking sync load: `CoreDone` with the loaded value.
    Load,
    /// Blocking sync store: `CoreDone` with no value.
    Store { value: u64 },
    /// Blocking RMW: `CoreDone` with the old value; the new value is
    /// recomputed locally for parked readers.
    Rmw { op: RmwOp },
    /// A converted (non-blocking) data store: retires via `StoresDone`.
    DataStore { value: u64 },
}

/// What an MSHR entry is waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum PendKind {
    /// Non-ownership data read.
    Read,
    /// Optimistic synchronization-read registration.
    SyncRead,
    /// Data-write registration (the word is already Registered locally).
    Write,
    /// Optimistic synchronization-write registration.
    SyncWrite { value: u64 },
    /// Optimistic RMW registration.
    Rmw { op: RmwOp },
    /// Writeback handshake in flight.
    Wb { value: u64, nacked: bool },
    /// Dedicated sync path: a `SyncOp` is executing at the home bank.
    SyncWait { complete: SyncComplete },
}

/// One outstanding word-granularity transaction.
#[derive(Debug, Clone, Hash)]
struct Pend {
    kind: PendKind,
    /// Forwarded data reads that arrived while we were pending.
    parked_reads: Vec<CoreId>,
    /// A forwarded registration transfer that arrived while we were
    /// pending (at most one — the registry serializes).
    parked_xfer: Option<(CoreId, XferClass)>,
    /// A `Recall` that arrived while our own registration was still in
    /// flight; served right after the operation completes. Mutually
    /// exclusive with `parked_xfer` (the bank stops re-pointing a word the
    /// moment it classifies it).
    parked_recall: bool,
}

impl Pend {
    fn new(kind: PendKind) -> Self {
        Pend {
            kind,
            parked_reads: Vec::new(),
            parked_xfer: None,
            parked_recall: false,
        }
    }
}

/// The GCS L1 controller for one core.
#[derive(Debug, Clone)]
pub struct GcsL1 {
    id: CoreId,
    banks: usize,
    cache: CacheArray<DnvLine>,
    mshr: Mshr<WordAddr, Pend>,
    predictor: SyncPredictor,
    /// Local spin watch on a word this L1 holds Registered.
    watch: Option<WordAddr>,
    /// Remote spin watch: `(word, seen)` sent to the bank as `SyncWatch`.
    remote_watch: Option<(WordAddr, u64)>,
    /// The last targeted notification `(word, value)`; consumed by the
    /// re-issued spin load.
    notify_buf: Option<(WordAddr, u64)>,
    layout: Arc<MemoryLayout>,
    stats: CacheStats,
    /// Observability only — excluded from `Hash`, never affects behaviour.
    tel: Telemetry,
}

fn bank_for(word: WordAddr, banks: usize) -> usize {
    (word.line().raw() % banks as u64) as usize
}

impl GcsL1 {
    /// Creates an empty GCS L1 for core `id`.
    pub fn new(
        id: CoreId,
        geometry: CacheGeometry,
        banks: usize,
        layout: Arc<MemoryLayout>,
    ) -> Self {
        GcsL1 {
            id,
            banks,
            cache: CacheArray::new(geometry),
            mshr: Mshr::unbounded(),
            predictor: SyncPredictor::new(SyncPredictor::DEFAULT_SLOTS),
            watch: None,
            remote_watch: None,
            notify_buf: None,
            layout,
            stats: CacheStats::new(),
            tel: Telemetry::off(),
        }
    }

    /// Attaches a telemetry handle.
    pub fn set_telemetry(&mut self, tel: Telemetry) {
        self.mshr.set_telemetry(tel.clone(), self.id as u32);
        self.tel = tel;
    }

    /// Peak simultaneous MSHR occupancy observed.
    pub fn mshr_high_water(&self) -> usize {
        self.mshr.high_water()
    }

    fn emit_transition(
        &self,
        word: WordAddr,
        from: &'static str,
        to: &'static str,
        cause: &'static str,
    ) {
        self.tel.emit(|| Event {
            cycle: self.tel.now(),
            node: self.id as u32,
            component: Component::L1,
            addr: word.telemetry_key(),
            kind: EventKind::Transition { from, to, cause },
        });
    }

    /// Records `word` as sync-classified (idempotent) and emits the
    /// data→sync classification transition the first time.
    fn learn(&mut self, word: WordAddr, cause: &'static str) {
        if !self.predictor.contains(word) {
            self.emit_transition(word, "data", "sync", cause);
        }
        self.predictor.insert(word);
    }

    /// Cache-access statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The sync predictor (diagnostics).
    pub fn predictor(&self) -> &SyncPredictor {
        &self.predictor
    }

    /// Whether this L1 predicts `word` is sync-classified at its bank.
    pub fn predicts_sync(&self, word: WordAddr) -> bool {
        self.predictor.contains(word)
    }

    /// Sets the local spin watch (the spun word is Registered here).
    pub fn set_watch(&mut self, word: WordAddr) {
        self.watch = Some(word);
    }

    /// Clears the local spin watch.
    pub fn clear_watch(&mut self) {
        self.watch = None;
    }

    /// Arms a level-triggered remote watch for a classified word and sends
    /// the `SyncWatch` to the home bank. `seen` is the value the failed
    /// spin observed — the bank notifies immediately if it already differs.
    pub fn start_remote_watch(&mut self, word: WordAddr, seen: u64, actions: &mut Vec<Action>) {
        self.remote_watch = Some((word, seen));
        actions.push(Action::Send {
            to: self.home(word),
            msg: Msg::Gcs(GcsMsg::SyncWatch {
                word,
                req: self.id,
                seen,
            }),
        });
    }

    /// The word this L1 is remote-watching, if any (invariant checking).
    pub fn remote_watch_word(&self) -> Option<WordAddr> {
        self.remote_watch.map(|(w, _)| w)
    }

    /// Whether a synchronization read of `word` would hit right now.
    pub fn word_registered(&self, word: WordAddr) -> bool {
        !self.mshr.contains(&word) && self.word_state(word) == WState::Registered
    }

    /// The word's current state (Invalid if the line is absent).
    pub fn word_state(&self, word: WordAddr) -> WState {
        self.cache
            .get(word.line())
            .map_or(WState::Invalid, |l| l.words[word.index_in_line()].state)
    }

    /// The value of a word this core is responsible for (Registered in the
    /// array, or held by a writeback handshake), if any.
    pub fn peek_registered(&self, word: WordAddr) -> Option<u64> {
        if let Some(Pend {
            kind: PendKind::Wb { value, .. },
            ..
        }) = self.mshr.get(&word)
        {
            return Some(*value);
        }
        let line = self.cache.get(word.line())?;
        let w = line.words[word.index_in_line()];
        (w.state == WState::Registered).then_some(w.value)
    }

    /// Iterates every word this L1 holds in Registered state.
    pub fn registered_words(&self) -> impl Iterator<Item = WordAddr> + '_ {
        self.cache.iter().flat_map(|(line, payload)| {
            payload
                .words
                .iter()
                .enumerate()
                .filter(|(_, w)| w.state == WState::Registered)
                .map(move |(i, _)| line.word(i))
        })
    }

    /// Number of outstanding MSHR transactions.
    pub fn outstanding_txns(&self) -> usize {
        self.mshr.len()
    }

    /// Whether this L1 has an outstanding MSHR transaction on `word`.
    pub fn has_pending(&self, word: WordAddr) -> bool {
        self.mshr.contains(&word)
    }

    /// Whether a forwarded registration transfer is parked on `word`'s
    /// MSHR entry.
    pub fn has_parked_xfer(&self, word: WordAddr) -> bool {
        self.mshr
            .get(&word)
            .is_some_and(|p| p.parked_xfer.is_some())
    }

    /// Whether a bank recall is parked on `word`'s MSHR entry.
    pub fn has_parked_recall(&self, word: WordAddr) -> bool {
        self.mshr.get(&word).is_some_and(|p| p.parked_recall)
    }

    /// One `(word, description)` pair per outstanding MSHR entry.
    pub fn pending_summaries(&self) -> Vec<(WordAddr, String)> {
        self.mshr
            .iter()
            .map(|(w, p)| {
                let mut desc = format!("{:?}", p.kind);
                if !p.parked_reads.is_empty() {
                    desc.push_str(&format!(", {} parked read(s)", p.parked_reads.len()));
                }
                if let Some((c, class)) = p.parked_xfer {
                    desc.push_str(&format!(", parked xfer to core {c} ({class:?})"));
                }
                if p.parked_recall {
                    desc.push_str(", parked recall");
                }
                (*w, desc)
            })
            .collect()
    }

    /// Self-invalidates every Valid word belonging to `region`.
    pub fn self_invalidate(&mut self, region: Region) {
        let layout = Arc::clone(&self.layout);
        for (line, payload) in self.cache.iter_mut() {
            for i in 0..WORDS_PER_LINE {
                if payload.words[i].state == WState::Valid
                    && layout.region_of_word(line.word(i)) == Some(region)
                {
                    payload.words[i].state = WState::Invalid;
                }
            }
        }
    }

    /// Self-invalidates exactly the given words.
    pub fn self_invalidate_words(&mut self, words: &[WordAddr]) {
        for &word in words {
            if let Some(line) = self.cache.get_mut(word.line()) {
                let w = &mut line.words[word.index_in_line()];
                if w.state == WState::Valid {
                    w.state = WState::Invalid;
                }
            }
        }
    }

    fn home(&self, word: WordAddr) -> Endpoint {
        Endpoint::Bank(bank_for(word, self.banks))
    }

    fn word_mut(&mut self, word: WordAddr) -> Option<&mut DnvWord> {
        self.cache
            .get_mut(word.line())
            .map(|l| &mut l.words[word.index_in_line()])
    }

    fn send_sync_op(&mut self, word: WordAddr, op: GcsOpKind, actions: &mut Vec<Action>) {
        actions.push(Action::Send {
            to: self.home(word),
            msg: Msg::Gcs(GcsMsg::SyncOp {
                word,
                req: self.id,
                op,
            }),
        });
    }

    /// Presents a core memory request.
    pub fn core_request(&mut self, req: &MemRequest, actions: &mut Vec<Action>) -> IssueResult {
        let word = req.addr.word();
        match req.kind {
            AccessKind::DataLoad => {
                if let Some(Pend { kind, .. }) = self.mshr.get(&word) {
                    match kind {
                        PendKind::Wb { .. } | PendKind::SyncWait { .. } => {
                            return IssueResult::Blocked
                        }
                        PendKind::Write => { /* word is Registered locally: falls through */ }
                        other => unreachable!("data load with own {other:?} pending"),
                    }
                }
                match self.word_state(word) {
                    WState::Valid | WState::Registered => {
                        let value = self.word_mut(word).expect("resident").value;
                        self.note_hit(req.kind);
                        IssueResult::Hit { value: Some(value) }
                    }
                    WState::Invalid => {
                        self.note_miss(req.kind);
                        self.mshr
                            .try_insert(word, Pend::new(PendKind::Read))
                            .expect("fresh mshr");
                        actions.push(Action::Send {
                            to: self.home(word),
                            msg: Msg::Dnv(DnvMsg::ReadReq { word, req: self.id }),
                        });
                        IssueResult::Miss
                    }
                }
            }
            AccessKind::DataStore { value } => {
                if let Some(Pend { kind, .. }) = self.mshr.get(&word) {
                    match kind {
                        PendKind::Wb { .. } | PendKind::SyncWait { .. } => {
                            return IssueResult::Blocked
                        }
                        PendKind::Write => {
                            self.word_mut(word).expect("registered word").value = value;
                            self.note_hit(req.kind);
                            return IssueResult::StoreAccepted { completed: true };
                        }
                        other => unreachable!("data store with own {other:?} pending"),
                    }
                }
                if self.word_state(word) == WState::Registered {
                    self.word_mut(word).expect("resident").value = value;
                    self.note_hit(req.kind);
                    return IssueResult::StoreAccepted { completed: true };
                }
                if self.predicts_sync(word) {
                    // Classified words cannot be registered here: execute
                    // the store at the directory.
                    self.note_miss(req.kind);
                    self.mshr
                        .try_insert(
                            word,
                            Pend::new(PendKind::SyncWait {
                                complete: SyncComplete::DataStore { value },
                            }),
                        )
                        .expect("fresh mshr");
                    self.send_sync_op(word, GcsOpKind::Store { value }, actions);
                    return IssueResult::StoreAccepted { completed: false };
                }
                if !self.ensure_line(word.line(), actions) {
                    return IssueResult::Blocked;
                }
                self.note_miss(req.kind);
                let w = self.word_mut(word).expect("line just ensured");
                let from = w.state.label();
                w.state = WState::Registered;
                w.value = value;
                self.emit_transition(word, from, "R", "store");
                self.mshr
                    .try_insert(word, Pend::new(PendKind::Write))
                    .expect("fresh mshr");
                actions.push(Action::Send {
                    to: self.home(word),
                    msg: Msg::Dnv(DnvMsg::RegReq {
                        word,
                        req: self.id,
                        class: XferClass::Write,
                    }),
                });
                IssueResult::StoreAccepted { completed: false }
            }
            AccessKind::SyncLoad => {
                if let Some((w, v)) = self.notify_buf {
                    if w == word {
                        // The targeted notification answers the re-issued
                        // spin load without touching the network.
                        self.notify_buf = None;
                        self.note_hit(req.kind);
                        return IssueResult::Hit { value: Some(v) };
                    }
                }
                if self.mshr.contains(&word) {
                    return IssueResult::Blocked;
                }
                if self.word_state(word) == WState::Registered {
                    let value = self.word_mut(word).expect("resident").value;
                    self.note_hit(req.kind);
                    return IssueResult::Hit { value: Some(value) };
                }
                self.note_miss(req.kind);
                if self.predicts_sync(word) {
                    self.mshr
                        .try_insert(
                            word,
                            Pend::new(PendKind::SyncWait {
                                complete: SyncComplete::Load,
                            }),
                        )
                        .expect("fresh mshr");
                    self.send_sync_op(word, GcsOpKind::Load, actions);
                } else {
                    self.mshr
                        .try_insert(word, Pend::new(PendKind::SyncRead))
                        .expect("fresh mshr");
                    actions.push(Action::Send {
                        to: self.home(word),
                        msg: Msg::Dnv(DnvMsg::RegReq {
                            word,
                            req: self.id,
                            class: XferClass::SyncRead,
                        }),
                    });
                }
                IssueResult::Miss
            }
            AccessKind::SyncStore { value } => {
                if self.mshr.contains(&word) {
                    return IssueResult::Blocked;
                }
                if self.word_state(word) == WState::Registered {
                    self.word_mut(word).expect("resident").value = value;
                    self.note_hit(req.kind);
                    return IssueResult::Hit { value: None };
                }
                self.note_miss(req.kind);
                if self.predicts_sync(word) {
                    self.mshr
                        .try_insert(
                            word,
                            Pend::new(PendKind::SyncWait {
                                complete: SyncComplete::Store { value },
                            }),
                        )
                        .expect("fresh mshr");
                    self.send_sync_op(word, GcsOpKind::Store { value }, actions);
                } else {
                    self.mshr
                        .try_insert(word, Pend::new(PendKind::SyncWrite { value }))
                        .expect("fresh mshr");
                    actions.push(Action::Send {
                        to: self.home(word),
                        msg: Msg::Dnv(DnvMsg::RegReq {
                            word,
                            req: self.id,
                            class: XferClass::SyncWrite,
                        }),
                    });
                }
                IssueResult::Miss
            }
            AccessKind::SyncRmw(op) => {
                if self.mshr.contains(&word) {
                    return IssueResult::Blocked;
                }
                if self.word_state(word) == WState::Registered {
                    let w = self.word_mut(word).expect("resident");
                    let old = w.value;
                    w.value = op.apply(old);
                    self.note_hit(req.kind);
                    return IssueResult::Hit { value: Some(old) };
                }
                self.note_miss(req.kind);
                if self.predicts_sync(word) {
                    self.mshr
                        .try_insert(
                            word,
                            Pend::new(PendKind::SyncWait {
                                complete: SyncComplete::Rmw { op },
                            }),
                        )
                        .expect("fresh mshr");
                    self.send_sync_op(word, GcsOpKind::Rmw(op), actions);
                } else {
                    self.mshr
                        .try_insert(word, Pend::new(PendKind::Rmw { op }))
                        .expect("fresh mshr");
                    actions.push(Action::Send {
                        to: self.home(word),
                        msg: Msg::Dnv(DnvMsg::RegReq {
                            word,
                            req: self.id,
                            class: XferClass::SyncWrite,
                        }),
                    });
                }
                IssueResult::Miss
            }
        }
    }

    /// Handles an incoming data-path (DeNovo) message.
    pub fn on_msg(&mut self, msg: DnvMsg, actions: &mut Vec<Action>) {
        match msg {
            DnvMsg::ReadReq { word, req } => {
                if let Some(pend) = self.mshr.get_mut(&word) {
                    if !matches!(pend.kind, PendKind::Write) {
                        pend.parked_reads.push(req);
                        return;
                    }
                }
                if self.word_state(word) != WState::Registered {
                    actions.push(Action::violation(format!(
                        "GCS L1 {}: forwarded read for unregistered word {word}",
                        self.id
                    )));
                    return;
                }
                let line = self
                    .cache
                    .get(word.line())
                    .expect("registered word resident");
                let idx = word.index_in_line();
                let value = line.words[idx].value;
                let mut mask = 0u8;
                let mut data = [0u64; WORDS_PER_LINE];
                for (i, w) in line.words.iter().enumerate() {
                    if i != idx && w.state == WState::Registered {
                        mask |= 1 << i;
                        data[i] = w.value;
                    }
                }
                let fill = (mask != 0).then_some((mask, data));
                actions.push(Action::Send {
                    to: Endpoint::L1(req),
                    msg: Msg::Dnv(DnvMsg::ReadResp { word, value, fill }),
                });
            }
            DnvMsg::Xfer {
                word,
                new_owner,
                class,
            } => {
                if let Some(pend) = self.mshr.get_mut(&word) {
                    if matches!(pend.kind, PendKind::SyncWait { .. }) {
                        // The bank never re-points a classified word.
                        actions.push(Action::violation(format!(
                            "GCS L1 {}: transfer for classified word {word}",
                            self.id
                        )));
                        return;
                    }
                    if let PendKind::Wb {
                        value,
                        nacked: true,
                    } = pend.kind
                    {
                        let reads = std::mem::take(&mut pend.parked_reads);
                        self.mshr.remove(&word);
                        self.serve_reads(word, value, &reads, actions);
                        actions.push(Action::Send {
                            to: Endpoint::L1(new_owner),
                            msg: Msg::Dnv(DnvMsg::RegAck { word, value, class }),
                        });
                        return;
                    }
                    if pend.parked_xfer.is_some() || pend.parked_recall {
                        actions.push(Action::violation(format!(
                            "GCS L1: second transfer parked on one registration for {word}"
                        )));
                        return;
                    }
                    pend.parked_xfer = Some((new_owner, class));
                    return;
                }
                let Some(value) = self.downgrade(word, "Xfer", actions) else {
                    actions.push(Action::violation(format!(
                        "GCS L1 {}: transfer for unregistered word {word}",
                        self.id
                    )));
                    return;
                };
                actions.push(Action::Send {
                    to: Endpoint::L1(new_owner),
                    msg: Msg::Dnv(DnvMsg::RegAck { word, value, class }),
                });
            }
            DnvMsg::ReadResp { word, value, fill } => {
                let Some(pend) = self.mshr.remove(&word) else {
                    actions.push(Action::violation(format!(
                        "GCS L1 {}: ReadResp without pending read for {word}",
                        self.id
                    )));
                    return;
                };
                if !matches!(pend.kind, PendKind::Read) {
                    actions.push(Action::violation(format!(
                        "GCS L1 {}: ReadResp for {word} with {:?} pending",
                        self.id, pend.kind
                    )));
                    return;
                }
                if self.ensure_line(word.line(), actions) {
                    let w = self.word_mut(word).expect("line ensured");
                    if w.state == WState::Invalid {
                        w.state = WState::Valid;
                        w.value = value;
                    }
                    if let Some((mask, data)) = fill {
                        self.fill_line(word.line(), mask, &data);
                    }
                }
                actions.push(Action::CoreDone { value: Some(value) });
            }
            DnvMsg::RegAck { word, value, .. } => self.on_reg_ack(word, value, actions),
            DnvMsg::WbAck { word } => {
                let Some(pend) = self.mshr.remove(&word) else {
                    actions.push(Action::violation(format!(
                        "GCS L1 {}: WbAck without writeback for {word}",
                        self.id
                    )));
                    return;
                };
                let PendKind::Wb { value, nacked } = pend.kind else {
                    actions.push(Action::violation(format!(
                        "GCS L1 {}: WbAck for {word} with {:?} pending",
                        self.id, pend.kind
                    )));
                    return;
                };
                if nacked {
                    actions.push(Action::violation(format!(
                        "GCS L1 {}: WbAck for {word} after WbNack",
                        self.id
                    )));
                    return;
                }
                if pend.parked_xfer.is_some() {
                    actions.push(Action::violation(format!(
                        "GCS L1 {}: registry acked a writeback of {word} with a transfer \
                         outstanding",
                        self.id
                    )));
                    return;
                }
                self.serve_reads(word, value, &pend.parked_reads, actions);
            }
            DnvMsg::WbNack { word } => {
                let Some(pend) = self.mshr.get_mut(&word) else {
                    actions.push(Action::violation(format!(
                        "GCS L1: WbNack without writeback for {word}"
                    )));
                    return;
                };
                let PendKind::Wb { value, .. } = pend.kind else {
                    let kind = pend.kind;
                    actions.push(Action::violation(format!(
                        "GCS L1: WbNack for {word} with {kind:?} pending"
                    )));
                    return;
                };
                if let Some((new_owner, class)) = pend.parked_xfer.take() {
                    let reads = std::mem::take(&mut pend.parked_reads);
                    self.mshr.remove(&word);
                    self.serve_reads(word, value, &reads, actions);
                    actions.push(Action::Send {
                        to: Endpoint::L1(new_owner),
                        msg: Msg::Dnv(DnvMsg::RegAck { word, value, class }),
                    });
                } else {
                    pend.kind = PendKind::Wb {
                        value,
                        nacked: true,
                    };
                }
            }
            other => actions.push(Action::violation(format!(
                "GCS L1 {} cannot handle {other:?}",
                self.id
            ))),
        }
    }

    /// Handles an incoming dedicated-path (GCS) message.
    pub fn on_gcs(&mut self, msg: GcsMsg, actions: &mut Vec<Action>) {
        match msg {
            GcsMsg::Classified { word } => self.on_classified(word, actions),
            GcsMsg::SyncResp { word, value } => self.on_sync_resp(word, value, actions),
            GcsMsg::SyncNotify { word, value } => {
                self.learn(word, "SyncNotify");
                if self.remote_watch.map(|(w, _)| w) == Some(word) {
                    self.remote_watch = None;
                    self.notify_buf = Some((word, value));
                    actions.push(Action::SpinWake);
                } else {
                    actions.push(Action::violation(format!(
                        "GCS L1 {}: SyncNotify for {word} without a remote watch",
                        self.id
                    )));
                }
            }
            GcsMsg::Recall { word } => self.on_recall(word, actions),
            other => actions.push(Action::violation(format!(
                "GCS L1 {} cannot handle {other:?}",
                self.id
            ))),
        }
    }

    /// The bank rejected our optimistic registration: the word is
    /// sync-classified. Convert the pending access to the dedicated path.
    fn on_classified(&mut self, word: WordAddr, actions: &mut Vec<Action>) {
        self.learn(word, "Classified");
        let Some(pend) = self.mshr.get_mut(&word) else {
            actions.push(Action::violation(format!(
                "GCS L1 {}: Classified without pending registration for {word}",
                self.id
            )));
            return;
        };
        if pend.parked_xfer.is_some() || pend.parked_recall {
            actions.push(Action::violation(format!(
                "GCS L1 {}: Classified for {word} with a parked transfer or recall",
                self.id
            )));
            return;
        }
        let (complete, op) = match pend.kind {
            PendKind::SyncRead => (SyncComplete::Load, GcsOpKind::Load),
            PendKind::SyncWrite { value } => {
                (SyncComplete::Store { value }, GcsOpKind::Store { value })
            }
            PendKind::Rmw { op } => (SyncComplete::Rmw { op }, GcsOpKind::Rmw(op)),
            PendKind::Write => {
                // The optimistic store set the word Registered locally; the
                // directory owns classified words, so undo and re-execute
                // there.
                let value = self
                    .word_mut(word)
                    .filter(|w| w.state == WState::Registered)
                    .map(|w| {
                        w.state = WState::Invalid;
                        w.value
                    })
                    .expect("write-registered word resident");
                self.emit_transition(word, "R", "I", "Classified");
                (
                    SyncComplete::DataStore { value },
                    GcsOpKind::Store { value },
                )
            }
            other => {
                actions.push(Action::violation(format!(
                    "GCS L1 {}: Classified for {word} with {other:?} pending",
                    self.id
                )));
                return;
            }
        };
        let pend = self.mshr.get_mut(&word).expect("checked above");
        pend.kind = PendKind::SyncWait { complete };
        self.send_sync_op(word, op, actions);
    }

    /// The bank executed our `SyncOp`.
    fn on_sync_resp(&mut self, word: WordAddr, value: u64, actions: &mut Vec<Action>) {
        let Some(pend) = self.mshr.remove(&word) else {
            actions.push(Action::violation(format!(
                "GCS L1 {}: SyncResp without pending sync op for {word}",
                self.id
            )));
            return;
        };
        let PendKind::SyncWait { complete } = pend.kind else {
            actions.push(Action::violation(format!(
                "GCS L1 {}: SyncResp for {word} with {:?} pending",
                self.id, pend.kind
            )));
            return;
        };
        if pend.parked_xfer.is_some() || pend.parked_recall {
            actions.push(Action::violation(format!(
                "GCS L1 {}: SyncResp for {word} with a parked transfer or recall",
                self.id
            )));
            return;
        }
        let stored = match complete {
            SyncComplete::Load => {
                actions.push(Action::CoreDone { value: Some(value) });
                value
            }
            SyncComplete::Store { value: v } => {
                actions.push(Action::CoreDone { value: None });
                v
            }
            SyncComplete::Rmw { op } => {
                actions.push(Action::CoreDone { value: Some(value) });
                op.apply(value)
            }
            SyncComplete::DataStore { value: v } => {
                actions.push(Action::StoresDone { count: 1 });
                v
            }
        };
        // Keep any stale Valid copy program-order consistent with our own
        // completed operation.
        if let Some(w) = self.word_mut(word) {
            if w.state == WState::Valid {
                w.value = stored;
            }
        }
        self.serve_reads(word, stored, &pend.parked_reads, actions);
    }

    /// The bank reclaims a newly classified word we are registered for.
    fn on_recall(&mut self, word: WordAddr, actions: &mut Vec<Action>) {
        self.learn(word, "Recall");
        if let Some(pend) = self.mshr.get_mut(&word) {
            match pend.kind {
                // Our writeback is already in flight; the bank accepts it
                // as the recall return.
                PendKind::Wb { .. } => {}
                PendKind::SyncRead
                | PendKind::SyncWrite { .. }
                | PendKind::Rmw { .. }
                | PendKind::Write => {
                    if pend.parked_recall || pend.parked_xfer.is_some() {
                        actions.push(Action::violation(format!(
                            "GCS L1 {}: second recall/transfer parked for {word}",
                            self.id
                        )));
                        return;
                    }
                    pend.parked_recall = true;
                }
                PendKind::Read | PendKind::SyncWait { .. } => {
                    actions.push(Action::violation(format!(
                        "GCS L1 {}: Recall for {word} with {:?} pending",
                        self.id, pend.kind
                    )));
                }
            }
            return;
        }
        match self.downgrade(word, "Recall", actions) {
            Some(value) => actions.push(Action::Send {
                to: self.home(word),
                msg: Msg::Gcs(GcsMsg::RecallAck {
                    word,
                    from: self.id,
                    value: Some(value),
                }),
            }),
            // Ownership had already moved on (our writeback raced ahead):
            // answer empty; the bank ignores stale acks.
            None => actions.push(Action::Send {
                to: self.home(word),
                msg: Msg::Gcs(GcsMsg::RecallAck {
                    word,
                    from: self.id,
                    value: None,
                }),
            }),
        }
    }

    /// Our own registration was acknowledged: perform the operation, then
    /// serve anything that parked behind us.
    fn on_reg_ack(&mut self, word: WordAddr, ack_value: u64, actions: &mut Vec<Action>) {
        let Some(pend) = self.mshr.remove(&word) else {
            actions.push(Action::violation(format!(
                "GCS L1 {}: RegAck without registration for {word}",
                self.id
            )));
            return;
        };
        let cached = self.ensure_line(word.line(), actions);
        let mut owned_value = ack_value;
        match pend.kind {
            PendKind::Write => {
                owned_value = self
                    .word_mut(word)
                    .map(|w| w.value)
                    .expect("write-registered word resident");
                actions.push(Action::StoresDone { count: 1 });
            }
            PendKind::SyncRead => {
                if cached {
                    let w = self.word_mut(word).expect("line ensured");
                    let from = w.state.label();
                    w.state = WState::Registered;
                    w.value = ack_value;
                    self.emit_transition(word, from, "R", "RegAck");
                }
                actions.push(Action::CoreDone {
                    value: Some(ack_value),
                });
            }
            PendKind::SyncWrite { value } => {
                if cached {
                    let w = self.word_mut(word).expect("line ensured");
                    let from = w.state.label();
                    w.state = WState::Registered;
                    w.value = value;
                    self.emit_transition(word, from, "R", "RegAck");
                }
                owned_value = value;
                actions.push(Action::CoreDone { value: None });
            }
            PendKind::Rmw { op } => {
                let new = op.apply(ack_value);
                if cached {
                    let w = self.word_mut(word).expect("line ensured");
                    let from = w.state.label();
                    w.state = WState::Registered;
                    w.value = new;
                    self.emit_transition(word, from, "R", "RegAck");
                }
                owned_value = new;
                actions.push(Action::CoreDone {
                    value: Some(ack_value),
                });
            }
            PendKind::Read | PendKind::Wb { .. } | PendKind::SyncWait { .. } => {
                actions.push(Action::violation(format!(
                    "GCS L1 {}: RegAck for {word} with {:?} pending",
                    self.id, pend.kind
                )));
                return;
            }
        }
        self.serve_reads(word, owned_value, &pend.parked_reads, actions);
        if pend.parked_recall {
            // The word was classified while our registration was in flight:
            // the operation completed above, now surrender the value.
            let value = if cached {
                self.downgrade(word, "Recall", actions)
                    .expect("word registered by this ack")
            } else {
                owned_value
            };
            self.learn(word, "Recall");
            actions.push(Action::Send {
                to: self.home(word),
                msg: Msg::Gcs(GcsMsg::RecallAck {
                    word,
                    from: self.id,
                    value: Some(value),
                }),
            });
            return;
        }
        if let Some((new_owner, class)) = pend.parked_xfer {
            let value = if cached {
                self.downgrade(word, "Xfer", actions)
                    .expect("word registered by this ack")
            } else {
                owned_value
            };
            actions.push(Action::Send {
                to: Endpoint::L1(new_owner),
                msg: Msg::Dnv(DnvMsg::RegAck { word, value, class }),
            });
        } else if !cached {
            self.mshr
                .try_insert(
                    word,
                    Pend::new(PendKind::Wb {
                        value: owned_value,
                        nacked: false,
                    }),
                )
                .expect("fresh mshr");
            actions.push(Action::Send {
                to: self.home(word),
                msg: Msg::Dnv(DnvMsg::WbReq {
                    word,
                    value: owned_value,
                    from: self.id,
                }),
            });
        }
    }

    /// Downgrades a Registered word (transfer or recall), returning its
    /// value. GCS has no backoff: the copy always invalidates.
    fn downgrade(
        &mut self,
        word: WordAddr,
        cause: &'static str,
        actions: &mut Vec<Action>,
    ) -> Option<u64> {
        let w = self
            .word_mut(word)
            .filter(|w| w.state == WState::Registered)?;
        let value = w.value;
        w.state = WState::Invalid;
        self.emit_transition(word, "R", "I", cause);
        if self.watch == Some(word) {
            actions.push(Action::SpinWake);
        }
        Some(value)
    }

    fn serve_reads(
        &self,
        word: WordAddr,
        value: u64,
        readers: &[CoreId],
        actions: &mut Vec<Action>,
    ) {
        for &r in readers {
            actions.push(Action::Send {
                to: Endpoint::L1(r),
                msg: Msg::Dnv(DnvMsg::ReadResp {
                    word,
                    value,
                    fill: None,
                }),
            });
        }
    }

    /// Copies the registry's valid sibling words into Invalid slots.
    fn fill_line(&mut self, line: LineAddr, mask: u8, data: &[u64; WORDS_PER_LINE]) {
        let payload = self.cache.get_mut(line).expect("line resident");
        for (i, (slot, &value)) in payload.words.iter_mut().zip(data).enumerate() {
            if mask & (1 << i) != 0
                && slot.state == WState::Invalid
                && !self.mshr.contains(&line.word(i))
            {
                *slot = DnvWord {
                    state: WState::Valid,
                    value,
                };
            }
        }
    }

    /// Makes `line` resident, evicting if necessary. Returns false if no
    /// way could be freed.
    fn ensure_line(&mut self, line: LineAddr, actions: &mut Vec<Action>) -> bool {
        if self.cache.contains(line) {
            self.cache.touch(line);
            return true;
        }
        let watch_line = self.watch.map(WordAddr::line);
        let mshr = &self.mshr;
        let clean = self
            .cache
            .insert_filtered(line, DnvLine::empty(), |addr, l| {
                Some(addr) != watch_line
                    && !l.has_registered()
                    && addr.words().all(|w| !mshr.contains(&w))
            });
        match clean {
            InsertOutcome::Inserted | InsertOutcome::Evicted(..) => return true,
            InsertOutcome::NoVictim(_) => {}
        }
        let mshr = &self.mshr;
        let outcome = self
            .cache
            .insert_filtered(line, DnvLine::empty(), |addr, _| {
                Some(addr) != watch_line && addr.words().all(|w| !mshr.contains(&w))
            });
        match outcome {
            InsertOutcome::Inserted => true,
            InsertOutcome::Evicted(victim, old) => {
                for i in 0..WORDS_PER_LINE {
                    if old.words[i].state == WState::Registered {
                        let word = victim.word(i);
                        let value = old.words[i].value;
                        self.mshr
                            .try_insert(
                                word,
                                Pend::new(PendKind::Wb {
                                    value,
                                    nacked: false,
                                }),
                            )
                            .expect("victim words unpinned");
                        actions.push(Action::Send {
                            to: self.home(word),
                            msg: Msg::Dnv(DnvMsg::WbReq {
                                word,
                                value,
                                from: self.id,
                            }),
                        });
                    }
                }
                true
            }
            InsertOutcome::NoVictim(_) => false,
        }
    }

    fn note_hit(&mut self, kind: AccessKind) {
        match kind {
            AccessKind::DataLoad => self.stats.data_read_hits += 1,
            AccessKind::DataStore { .. } => self.stats.data_write_hits += 1,
            AccessKind::SyncLoad => self.stats.sync_read_hits += 1,
            AccessKind::SyncStore { .. } | AccessKind::SyncRmw(_) => {
                self.stats.sync_write_hits += 1
            }
        }
    }

    fn note_miss(&mut self, kind: AccessKind) {
        match kind {
            AccessKind::DataLoad => self.stats.data_read_misses += 1,
            AccessKind::DataStore { .. } => self.stats.data_write_misses += 1,
            AccessKind::SyncLoad => self.stats.sync_read_misses += 1,
            AccessKind::SyncStore { .. } | AccessKind::SyncRmw(_) => {
                self.stats.sync_write_misses += 1
            }
        }
    }
}

/// Canonical hash for model checking: every field that influences future
/// protocol behaviour. `stats` and `layout` are excluded.
impl std::hash::Hash for GcsL1 {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.id.hash(state);
        self.banks.hash(state);
        self.cache.hash(state);
        self.mshr.hash(state);
        self.predictor.hash(state);
        self.watch.hash(state);
        self.remote_watch.hash(state);
        self.notify_buf.hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvs_mem::{Addr, LayoutBuilder};

    fn layout() -> Arc<MemoryLayout> {
        let mut b = LayoutBuilder::new();
        let r = b.region("shared");
        b.segment("arena", 1 << 16, r);
        Arc::new(b.build())
    }

    fn l1() -> GcsL1 {
        GcsL1::new(0, CacheGeometry::new(1024, 2), 4, layout())
    }

    fn req(addr: u64, kind: AccessKind) -> MemRequest {
        MemRequest {
            addr: Addr::new(addr),
            kind,
            dst: None,
            spin: None,
        }
    }

    fn word(addr: u64) -> WordAddr {
        Addr::new(addr).word()
    }

    #[test]
    fn unclassified_sync_access_registers_optimistically() {
        let mut l1 = l1();
        let mut acts = Vec::new();
        assert_eq!(
            l1.core_request(&req(0x100, AccessKind::SyncLoad), &mut acts),
            IssueResult::Miss
        );
        assert!(matches!(
            acts[0],
            Action::Send {
                msg: Msg::Dnv(DnvMsg::RegReq {
                    class: XferClass::SyncRead,
                    ..
                }),
                ..
            }
        ));
        acts.clear();
        l1.on_msg(
            DnvMsg::RegAck {
                word: word(0x100),
                value: 7,
                class: XferClass::SyncRead,
            },
            &mut acts,
        );
        assert!(acts.contains(&Action::CoreDone { value: Some(7) }));
        assert!(l1.word_registered(word(0x100)));
    }

    #[test]
    fn classified_rejection_converts_to_sync_op() {
        let mut l1 = l1();
        let mut acts = Vec::new();
        l1.core_request(
            &req(0x100, AccessKind::SyncRmw(RmwOp::Fai { delta: 1 })),
            &mut acts,
        );
        acts.clear();
        l1.on_gcs(GcsMsg::Classified { word: word(0x100) }, &mut acts);
        assert!(l1.predicts_sync(word(0x100)));
        assert!(acts.iter().any(|a| matches!(
            a,
            Action::Send {
                msg: Msg::Gcs(GcsMsg::SyncOp {
                    op: GcsOpKind::Rmw(RmwOp::Fai { delta: 1 }),
                    ..
                }),
                ..
            }
        )));
        acts.clear();
        // The bank executed the RMW on old value 10: core sees 10.
        l1.on_gcs(
            GcsMsg::SyncResp {
                word: word(0x100),
                value: 10,
            },
            &mut acts,
        );
        assert!(acts.contains(&Action::CoreDone { value: Some(10) }));
        assert_eq!(l1.outstanding_txns(), 0);
    }

    #[test]
    fn predicted_sync_access_skips_registration() {
        let mut l1 = l1();
        let mut acts = Vec::new();
        l1.core_request(&req(0x100, AccessKind::SyncLoad), &mut acts);
        acts.clear();
        l1.on_gcs(GcsMsg::Classified { word: word(0x100) }, &mut acts);
        l1.on_gcs(
            GcsMsg::SyncResp {
                word: word(0x100),
                value: 1,
            },
            &mut acts,
        );
        acts.clear();
        // Second access goes straight down the dedicated path.
        assert_eq!(
            l1.core_request(&req(0x100, AccessKind::SyncStore { value: 9 }), &mut acts),
            IssueResult::Miss
        );
        assert!(matches!(
            acts[0],
            Action::Send {
                msg: Msg::Gcs(GcsMsg::SyncOp {
                    op: GcsOpKind::Store { value: 9 },
                    ..
                }),
                ..
            }
        ));
    }

    #[test]
    fn converted_data_store_invalidates_local_copy_and_retires() {
        let mut l1 = l1();
        let mut acts = Vec::new();
        assert_eq!(
            l1.core_request(&req(0x100, AccessKind::DataStore { value: 5 }), &mut acts),
            IssueResult::StoreAccepted { completed: false }
        );
        assert_eq!(l1.word_state(word(0x100)), WState::Registered);
        acts.clear();
        l1.on_gcs(GcsMsg::Classified { word: word(0x100) }, &mut acts);
        assert_eq!(l1.word_state(word(0x100)), WState::Invalid);
        assert!(acts.iter().any(|a| matches!(
            a,
            Action::Send {
                msg: Msg::Gcs(GcsMsg::SyncOp {
                    op: GcsOpKind::Store { value: 5 },
                    ..
                }),
                ..
            }
        )));
        acts.clear();
        l1.on_gcs(
            GcsMsg::SyncResp {
                word: word(0x100),
                value: 5,
            },
            &mut acts,
        );
        assert!(acts.contains(&Action::StoresDone { count: 1 }));
    }

    #[test]
    fn recall_of_settled_word_returns_value_and_wakes_spinner() {
        let mut l1 = l1();
        let mut acts = Vec::new();
        l1.core_request(&req(0x100, AccessKind::SyncLoad), &mut acts);
        l1.on_msg(
            DnvMsg::RegAck {
                word: word(0x100),
                value: 3,
                class: XferClass::SyncRead,
            },
            &mut acts,
        );
        l1.set_watch(word(0x100));
        acts.clear();
        l1.on_gcs(GcsMsg::Recall { word: word(0x100) }, &mut acts);
        assert!(acts.contains(&Action::SpinWake));
        assert!(acts.iter().any(|a| matches!(
            a,
            Action::Send {
                msg: Msg::Gcs(GcsMsg::RecallAck { value: Some(3), .. }),
                ..
            }
        )));
        assert_eq!(l1.word_state(word(0x100)), WState::Invalid);
        assert!(l1.predicts_sync(word(0x100)));
    }

    #[test]
    fn recall_parks_on_inflight_registration_and_serves_after_ack() {
        let mut l1 = l1();
        let mut acts = Vec::new();
        l1.core_request(
            &req(0x100, AccessKind::SyncRmw(RmwOp::Fai { delta: 1 })),
            &mut acts,
        );
        acts.clear();
        l1.on_gcs(GcsMsg::Recall { word: word(0x100) }, &mut acts);
        assert!(acts.is_empty(), "recall must park: {acts:?}");
        assert!(l1.has_parked_recall(word(0x100)));
        l1.on_msg(
            DnvMsg::RegAck {
                word: word(0x100),
                value: 10,
                class: XferClass::SyncWrite,
            },
            &mut acts,
        );
        assert!(acts.contains(&Action::CoreDone { value: Some(10) }));
        // The post-RMW value 11 is surrendered to the bank.
        assert!(acts.iter().any(|a| matches!(
            a,
            Action::Send {
                msg: Msg::Gcs(GcsMsg::RecallAck {
                    value: Some(11),
                    ..
                }),
                ..
            }
        )));
        assert_eq!(l1.word_state(word(0x100)), WState::Invalid);
        assert_eq!(l1.outstanding_txns(), 0);
    }

    #[test]
    fn notify_buffer_serves_the_reissued_spin_load() {
        let mut l1 = l1();
        let mut acts = Vec::new();
        l1.start_remote_watch(word(0x100), 0, &mut acts);
        assert!(matches!(
            acts[0],
            Action::Send {
                msg: Msg::Gcs(GcsMsg::SyncWatch { seen: 0, .. }),
                ..
            }
        ));
        acts.clear();
        l1.on_gcs(
            GcsMsg::SyncNotify {
                word: word(0x100),
                value: 42,
            },
            &mut acts,
        );
        assert!(acts.contains(&Action::SpinWake));
        assert!(l1.remote_watch_word().is_none());
        acts.clear();
        assert_eq!(
            l1.core_request(&req(0x100, AccessKind::SyncLoad), &mut acts),
            IssueResult::Hit { value: Some(42) }
        );
        assert!(acts.is_empty(), "notify hit must not touch the network");
        // Consumed: the next spin load goes remote again.
        assert_eq!(
            l1.core_request(&req(0x100, AccessKind::SyncLoad), &mut acts),
            IssueResult::Miss
        );
    }

    #[test]
    fn recall_with_writeback_in_flight_defers_to_the_writeback() {
        let mut l1 = l1();
        let mut acts = Vec::new();
        for (a, v) in [(0x200u64, 1u64), (0x400, 2)] {
            l1.core_request(&req(a, AccessKind::DataStore { value: v }), &mut acts);
            l1.on_msg(
                DnvMsg::RegAck {
                    word: word(a),
                    value: 0,
                    class: XferClass::Write,
                },
                &mut acts,
            );
        }
        acts.clear();
        l1.core_request(&req(0x600, AccessKind::DataStore { value: 3 }), &mut acts);
        acts.clear();
        // The recall crosses our in-flight WbReq: the bank will accept the
        // writeback as the recall return, so the L1 stays silent.
        l1.on_gcs(GcsMsg::Recall { word: word(0x200) }, &mut acts);
        assert!(acts.is_empty(), "{acts:?}");
        l1.on_msg(DnvMsg::WbAck { word: word(0x200) }, &mut acts);
        assert_eq!(l1.peek_registered(word(0x200)), None);
    }
}
