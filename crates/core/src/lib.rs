//! The DeNovoSync protocols and the simulated multicore system.
//!
//! This crate is the paper's primary contribution plus its baseline:
//!
//! * [`mesi`] — the MESI directory protocol the paper compares against:
//!   full sharer lists, writer-initiated invalidations, a blocking directory,
//!   and the paper's modification of non-blocking writes.
//! * [`denovo`] — the DeNovo word-granularity protocol with its three stable
//!   states (Invalid / Valid / Registered), extended per the paper:
//!   **DeNovoSync0** registers every synchronization read (single-reader
//!   serialization through a non-blocking registry with a distributed MSHR
//!   queue), and **DeNovoSync** adds the adaptive hardware backoff
//!   ([`denovo::backoff`]).
//! * [`gcs`] — generalized coherence: the DeNovo data path plus dynamic
//!   sync-variable classification with a dedicated directory-mediated
//!   update/notify path for classified words.
//! * [`config`] — Table 1's system configurations (16 and 64 cores).
//! * [`msg`] — the protocol message vocabulary, with per-message wire sizes
//!   and traffic classes.
//! * [`system`] — the full simulated machine: VM threads on in-order cores,
//!   private L1s, a banked shared L2 (registry/directory), memory
//!   controllers, and the 2D-mesh interconnect, driven by a deterministic
//!   event loop. Attach a [`dvs_telemetry::Telemetry`] sink via
//!   [`System::set_telemetry`](system::System::set_telemetry) to observe
//!   per-access outcomes, protocol transitions, and stalls.
//!
//! # Examples
//!
//! Run a four-thread fetch-and-increment program under DeNovoSync:
//!
//! ```
//! use dvs_core::config::{Protocol, SystemConfig};
//! use dvs_core::system::System;
//! use dvs_vm::{Asm, Reg};
//! use dvs_mem::LayoutBuilder;
//!
//! let mut lb = LayoutBuilder::new();
//! let region = lb.region("sync");
//! let counter = lb.sync_var("counter", region, true);
//!
//! let prog = |_: usize| {
//!     let mut a = Asm::new("incr");
//!     a.movi(Reg(1), counter.raw());
//!     a.movi(Reg(2), 1);
//!     a.fai(Reg(3), Reg(1), 0, Reg(2));
//!     a.halt();
//!     a.build()
//! };
//!
//! let cfg = SystemConfig::small(4, Protocol::DeNovoSync);
//! let mut sys = System::new(cfg, lb.build(), (0..4).map(prog).collect::<Vec<_>>());
//! let stats = sys.run().expect("simulation completes");
//! assert_eq!(sys.read_word(counter), 4);
//! assert!(stats.cycles > 0);
//! ```

pub mod chaos;
pub mod config;
pub mod denovo;
pub mod gcs;
pub mod mesi;
pub mod msg;
pub mod oracle;
pub mod proto;
pub mod replay;
pub mod system;

pub use config::{Protocol, ProtocolMutation, SystemConfig};
pub use replay::{compress_ops, Recording, TraceOp, TraceRecorder};
pub use system::System;
