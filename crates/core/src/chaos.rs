//! Deterministic fault injection for protocol stress testing.
//!
//! A [`FaultPlan`] describes a *legal* perturbation of message timing: extra
//! delivery delay and reordering of concurrently in-flight messages between
//! independent endpoint pairs. Messages are never dropped or duplicated, and
//! point-to-point FIFO order between a (source node, destination endpoint)
//! pair is preserved, so every perturbed schedule is one the real network
//! could have produced under different contention — any kernel that is
//! correct must still complete and pass verification.
//!
//! The plan is pure data (seed + bounds); the runtime state lives in
//! [`FaultInjector`], which owns a [`DetRng`] stream and the per-channel
//! FIFO clamp. Two injectors built from the same plan perturb identically,
//! so chaos runs stay bit-reproducible.

use crate::msg::Endpoint;
use dvs_engine::{Cycle, DetRng};
use dvs_noc::NodeId;
use std::collections::HashMap;

/// A deterministic, bounded perturbation of message delivery timing.
///
/// Carried inside [`SystemConfig`](crate::config::SystemConfig); `Copy` so
/// configs stay plain values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultPlan {
    /// Seed for the injector's random stream. Different seeds explore
    /// different message interleavings.
    pub seed: u64,
    /// Upper bound (inclusive) on extra delivery delay added to a perturbed
    /// message, in cycles. Zero disables delivery-delay injection.
    pub max_extra_delay: Cycle,
    /// Probability that any given message is perturbed, as
    /// `chance_num / chance_denom`.
    pub chance_num: u64,
    /// Denominator of the perturbation probability.
    pub chance_denom: u64,
    /// Upper bound (inclusive) on per-message jitter added inside the NoC
    /// link model. Zero disables link jitter.
    pub link_jitter: Cycle,
}

impl FaultPlan {
    /// A plan with the default perturbation envelope: a quarter of messages
    /// delayed by up to 40 cycles at delivery, up to 6 cycles of link
    /// jitter. Aggressive enough to reorder most concurrently in-flight
    /// message pairs between independent endpoints.
    pub fn from_seed(seed: u64) -> Self {
        FaultPlan {
            seed,
            max_extra_delay: 40,
            chance_num: 1,
            chance_denom: 4,
            link_jitter: 6,
        }
    }

    /// The seed to feed the NoC's link-jitter stream (decorrelated from the
    /// delivery-delay stream).
    pub fn link_seed(&self) -> u64 {
        self.seed ^ 0x9E37_79B9_7F4A_7C15
    }
}

/// Runtime state of delivery-path fault injection: the random stream plus
/// the per-channel FIFO clamp that keeps perturbations legal.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: DetRng,
    /// Latest arrival cycle handed out per (source node, destination
    /// endpoint) channel. Every message on a channel is clamped to arrive
    /// no earlier than its predecessor, preserving point-to-point FIFO.
    last_arrival: HashMap<(NodeId, Endpoint), Cycle>,
    perturbed: u64,
    extra_cycles: Cycle,
}

impl FaultInjector {
    /// Builds an injector from a plan. Deterministic: same plan, same
    /// perturbations.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            rng: DetRng::new(plan.seed),
            last_arrival: HashMap::new(),
            perturbed: 0,
            extra_cycles: 0,
        }
    }

    /// Perturbs the arrival cycle of a message travelling from node `src`
    /// to endpoint `dst`, returning the adjusted arrival. Adds bounded
    /// random delay, then clamps so the channel's messages still arrive in
    /// send order (delaying is always legal; reordering within a channel is
    /// not).
    pub fn perturb(&mut self, src: NodeId, dst: Endpoint, arrive: Cycle) -> Cycle {
        let mut adjusted = arrive;
        if self.plan.max_extra_delay > 0
            && self
                .rng
                .chance(self.plan.chance_num, self.plan.chance_denom)
        {
            let extra = self.rng.range(1, self.plan.max_extra_delay + 1);
            adjusted += extra;
            self.perturbed += 1;
            self.extra_cycles += extra;
        }
        let last = self.last_arrival.entry((src, dst)).or_insert(0);
        if adjusted < *last {
            adjusted = *last;
        }
        *last = adjusted;
        adjusted
    }

    /// Number of messages whose delivery was delayed.
    pub fn perturbed(&self) -> u64 {
        self.perturbed
    }

    /// Total extra delivery cycles injected across all messages.
    pub fn extra_cycles(&self) -> Cycle {
        self.extra_cycles
    }

    /// The plan this injector was built from.
    pub fn plan(&self) -> FaultPlan {
        self.plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::Endpoint;

    #[test]
    fn injector_is_deterministic() {
        let plan = FaultPlan::from_seed(42);
        let mut a = FaultInjector::new(plan);
        let mut b = FaultInjector::new(plan);
        for i in 0..200u64 {
            let src = (i % 7) as NodeId;
            let dst = Endpoint::Bank(((i * 3) % 5) as usize);
            assert_eq!(a.perturb(src, dst, i * 10), b.perturb(src, dst, i * 10));
        }
        assert_eq!(a.perturbed(), b.perturbed());
        assert_eq!(a.extra_cycles(), b.extra_cycles());
    }

    #[test]
    fn channel_fifo_is_preserved() {
        let plan = FaultPlan::from_seed(7);
        let mut inj = FaultInjector::new(plan);
        let dst = Endpoint::L1(3);
        let mut last = 0;
        // Arrivals on one channel, already monotone (as the NoC guarantees),
        // stay monotone after perturbation.
        for i in 0..500u64 {
            let arrive = inj.perturb(1, dst, i * 4);
            assert!(arrive >= last, "channel order flipped at message {i}");
            assert!(arrive >= i * 4, "perturbation may only delay");
            assert!(
                arrive <= i * 4 + plan.max_extra_delay + last,
                "delay bounded"
            );
            last = arrive;
        }
        assert!(inj.perturbed() > 0, "default plan perturbs some messages");
    }

    #[test]
    fn seeds_change_the_schedule() {
        let mut a = FaultInjector::new(FaultPlan::from_seed(1));
        let mut b = FaultInjector::new(FaultPlan::from_seed(2));
        let dst = Endpoint::Mem(0);
        let diverged = (0..100u64).any(|i| a.perturb(0, dst, i * 50) != b.perturb(0, dst, i * 50));
        assert!(
            diverged,
            "different seeds should produce different schedules"
        );
    }
}
