//! Per-access tracing (used by the Figure-2 walkthrough and tests).

use dvs_engine::Cycle;
use dvs_mem::Addr;

/// What happened at one traced point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A memory access was issued and hit in the L1.
    Hit,
    /// A memory access was issued and missed.
    Miss,
    /// A synchronization read was delayed by the hardware backoff.
    Backoff {
        /// Stall length in cycles.
        cycles: Cycle,
    },
    /// A `Mark` instruction executed.
    Mark(u32),
}

/// One trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Issuing core.
    pub core: usize,
    /// Simulated cycle.
    pub cycle: Cycle,
    /// Accessed address (zero for marks).
    pub addr: Addr,
    /// Whether the access was a synchronization access.
    pub sync: bool,
    /// Whether the access writes.
    pub write: bool,
    /// What happened.
    pub kind: TraceKind,
}

/// An in-memory trace buffer.
#[derive(Debug, Default, Clone)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event.
    pub fn push(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }

    /// All events, in recording order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events for one core, in order.
    pub fn for_core(&self, core: usize) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.core == core)
    }

    /// Count of events matching a predicate.
    pub fn count(&self, pred: impl Fn(&TraceEvent) -> bool) -> usize {
        self.events.iter().filter(|e| pred(e)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_records_and_filters() {
        let mut t = Trace::new();
        t.push(TraceEvent {
            core: 0,
            cycle: 5,
            addr: Addr::new(0x40),
            sync: true,
            write: false,
            kind: TraceKind::Miss,
        });
        t.push(TraceEvent {
            core: 1,
            cycle: 6,
            addr: Addr::new(0x40),
            sync: true,
            write: true,
            kind: TraceKind::Hit,
        });
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.for_core(0).count(), 1);
        assert_eq!(t.count(|e| e.kind == TraceKind::Hit), 1);
    }
}
