//! Per-access tracing (used by the Figure-2 walkthrough and tests) and the
//! always-on delivered-message ring buffer that feeds stall diagnostics.

use crate::msg::{Endpoint, Msg};
use dvs_engine::Cycle;
use dvs_mem::Addr;

/// What happened at one traced point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A memory access was issued and hit in the L1.
    Hit,
    /// A memory access was issued and missed.
    Miss,
    /// A synchronization read was delayed by the hardware backoff.
    Backoff {
        /// Stall length in cycles.
        cycles: Cycle,
    },
    /// A `Mark` instruction executed.
    Mark(u32),
}

/// One trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Issuing core.
    pub core: usize,
    /// Simulated cycle.
    pub cycle: Cycle,
    /// The system's delivery ordinal (count of messages delivered so far)
    /// when the event was recorded: the common clock for lining traces up
    /// against the message ring and `ProtocolViolation` reports.
    pub ordinal: u64,
    /// Accessed address (zero for marks).
    pub addr: Addr,
    /// Whether the access was a synchronization access.
    pub sync: bool,
    /// Whether the access writes.
    pub write: bool,
    /// What happened.
    pub kind: TraceKind,
}

/// An in-memory trace buffer.
#[derive(Debug, Default, Clone)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event.
    pub fn push(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }

    /// All events, in recording order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events for one core, in order.
    pub fn for_core(&self, core: usize) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.core == core)
    }

    /// Count of events matching a predicate.
    pub fn count(&self, pred: impl Fn(&TraceEvent) -> bool) -> usize {
        self.events.iter().filter(|e| pred(e)).count()
    }
}

/// One delivered protocol message, as remembered by [`MsgRing`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeliveredMsg {
    /// Delivery cycle.
    pub cycle: Cycle,
    /// Receiving endpoint.
    pub to: Endpoint,
    /// Delivery ordinal (1-based count of deliveries, including this one).
    pub ordinal: u64,
    /// The message.
    pub msg: Msg,
}

/// A fixed-capacity ring buffer of the most recently delivered messages.
///
/// Kept always-on by the system (entries are small `Copy` records, and the
/// push is two stores), so a deadlock or cycle-limit abort can report the
/// last messages the machine processed without any tracing opt-in.
#[derive(Debug, Clone)]
pub struct MsgRing {
    buf: Vec<DeliveredMsg>,
    next: usize,
    cap: usize,
}

impl MsgRing {
    /// Creates a ring remembering the last `cap` messages.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "ring capacity must be positive");
        MsgRing {
            buf: Vec::with_capacity(cap),
            next: 0,
            cap,
        }
    }

    /// Records a delivery, evicting the oldest entry once full.
    pub fn push(&mut self, cycle: Cycle, to: Endpoint, ordinal: u64, msg: Msg) {
        let entry = DeliveredMsg {
            cycle,
            to,
            ordinal,
            msg,
        };
        if self.buf.len() < self.cap {
            self.buf.push(entry);
        } else {
            self.buf[self.next] = entry;
        }
        self.next = (self.next + 1) % self.cap;
    }

    /// Number of messages currently remembered (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The remembered messages, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &DeliveredMsg> {
        let split = if self.buf.len() < self.cap {
            0
        } else {
            self.next
        };
        self.buf[split..].iter().chain(self.buf[..split].iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_last_n_in_order() {
        let mut ring = MsgRing::new(4);
        assert!(ring.is_empty());
        for i in 0..10u64 {
            let msg = Msg::MemRead {
                line: dvs_mem::LineAddr::new(i),
                bank: 0,
                class: dvs_stats::TrafficClass::Writeback,
            };
            ring.push(i, Endpoint::L1(0), i + 1, msg);
        }
        assert_eq!(ring.len(), 4);
        let cycles: Vec<Cycle> = ring.iter().map(|d| d.cycle).collect();
        assert_eq!(cycles, vec![6, 7, 8, 9], "oldest first, last four kept");
        let ordinals: Vec<u64> = ring.iter().map(|d| d.ordinal).collect();
        assert_eq!(ordinals, vec![7, 8, 9, 10]);
    }

    #[test]
    fn trace_records_and_filters() {
        let mut t = Trace::new();
        t.push(TraceEvent {
            core: 0,
            cycle: 5,
            ordinal: 0,
            addr: Addr::new(0x40),
            sync: true,
            write: false,
            kind: TraceKind::Miss,
        });
        t.push(TraceEvent {
            core: 1,
            cycle: 6,
            ordinal: 2,
            addr: Addr::new(0x40),
            sync: true,
            write: true,
            kind: TraceKind::Hit,
        });
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.for_core(0).count(), 1);
        assert_eq!(t.count(|e| e.kind == TraceKind::Hit), 1);
    }
}
