//! Oracle (untimed) stepping interface for the model checker.
//!
//! In oracle mode the system does not schedule timed `Deliver` events.
//! Instead every protocol message enqueues into a per-channel FIFO keyed by
//! [`ChannelKey`], and an external driver — `dvs-check` — picks which
//! channel's head message to deliver next. Between deliveries the system
//! runs all core-local events to quiescence, so the *only* branch points in
//! the state space are delivery picks. [`StepOracle`] is the trait the
//! checker programs against; [`System`] is its one real implementation.
//!
//! Channels mirror the guarantees of the timed network: point-to-point FIFO
//! order between a (source node, destination endpoint) pair is preserved
//! (the same invariant [`FaultInjector`](crate::chaos::FaultInjector)
//! enforces when perturbing timed runs), and `Action::Local` self-messages
//! get their own lane per endpoint so a controller's install-retry loop
//! cannot starve or be starved by network traffic.

use crate::msg::{CoreId, Endpoint, Msg};
use crate::system::{SimError, System};
use dvs_noc::NodeId;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;

/// One FIFO message channel of the oracle-mode system.
///
/// `Ord` gives the channels a canonical enumeration order, which makes
/// enabled-transition lists deterministic across runs and worker counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ChannelKey {
    /// Network traffic from a source tile to a destination endpoint.
    /// Keying by source keeps cross-source reordering available to the
    /// checker while preserving each source's FIFO order.
    Net(NodeId, Endpoint),
    /// An endpoint's deferred self-messages (`Action::Local`): retry loops
    /// a controller schedules against itself, e.g. a MESI fill waiting for
    /// an evictable way.
    Local(Endpoint),
}

impl ChannelKey {
    /// The endpoint a delivery on this channel mutates.
    pub fn dst(self) -> Endpoint {
        match self {
            ChannelKey::Net(_, dst) => dst,
            ChannelKey::Local(ep) => ep,
        }
    }

    /// The mesh node hosting an endpoint — mirrors the system's endpoint
    /// placement (tile `i` hosts both `L1(i)` and `Bank(i)`; memory
    /// controller `n` sits on node `n`). Sends are FIFO per (source *node*,
    /// destination), so co-located endpoints share outbound channels.
    fn node(ep: Endpoint) -> usize {
        match ep {
            Endpoint::L1(i) => i,
            Endpoint::Bank(b) => b,
            Endpoint::Mem(n) => n,
        }
    }

    /// The partial-order-reduction dependence relation: whether deliveries
    /// on `self` and `other` can influence each other's effect, i.e.
    /// whether firing them in either order may reach different states.
    ///
    /// A delivery to endpoint `E` mutates `E`'s controller (plus `E`'s core
    /// for an L1, plus main memory for a memory controller) and *appends*
    /// to outbound channels keyed by `E`'s node. Two deliveries commute
    /// when those footprints are disjoint, so they are dependent iff their
    /// destinations share a node (same controller, or co-located
    /// controllers whose responses race into one outbound FIFO — e.g.
    /// `L1(0)` forwarding data and `Bank(0)` sending an Inv to the same
    /// requester), or both destinations are memory controllers (which share
    /// the one main-memory image). Parked-core re-issues triggered by an
    /// unrelated delivery re-block without side effects, so they do not
    /// widen the footprint.
    pub fn depends(self, other: ChannelKey) -> bool {
        let (a, b) = (self.dst(), other.dst());
        Self::node(a) == Self::node(b)
            || (matches!(a, Endpoint::Mem(_)) && matches!(b, Endpoint::Mem(_)))
    }
}

impl fmt::Display for ChannelKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn ep(f: &mut fmt::Formatter<'_>, e: Endpoint) -> fmt::Result {
            match e {
                Endpoint::L1(i) => write!(f, "l1:{i}"),
                Endpoint::Bank(i) => write!(f, "bank:{i}"),
                Endpoint::Mem(i) => write!(f, "mem:{i}"),
            }
        }
        match self {
            ChannelKey::Net(src, dst) => {
                write!(f, "net({src}->")?;
                ep(f, *dst)?;
                write!(f, ")")
            }
            ChannelKey::Local(e) => {
                write!(f, "local(")?;
                ep(f, *e)?;
                write!(f, ")")
            }
        }
    }
}

/// The oracle-mode runtime state carried by [`System`]: the undelivered
/// message channels and the cores parked on `IssueResult::Blocked` (they
/// re-issue after the next delivery instead of on a timer).
#[derive(Debug, Clone, Default)]
pub(crate) struct OracleState {
    /// Undelivered messages, FIFO per channel. A `BTreeMap` so enumeration
    /// order (and hence the checker's transition order) is canonical; empty
    /// queues are removed eagerly to keep the map canonical too.
    pub(crate) channels: BTreeMap<ChannelKey, VecDeque<Msg>>,
    /// Cores whose last issue returned `Blocked`; woken by the next
    /// delivery.
    pub(crate) parked: Vec<CoreId>,
}

/// What the model checker needs from a steppable machine: enabled
/// transitions, firing one, and terminal-state classification. Implemented
/// by [`System`] in oracle mode; the indirection keeps `dvs-check` free of
/// protocol knowledge and lets its tests drive synthetic state spaces.
pub trait StepOracle: Clone {
    /// The enabled transitions (non-empty channels) of the current state,
    /// in canonical order.
    fn enabled(&self) -> Vec<ChannelKey>;

    /// Fires one transition: delivers the head message of `key` and runs
    /// the machine back to quiescence. Returns `false` if the channel was
    /// empty (the pick was invalid).
    fn fire(&mut self, key: ChannelKey) -> bool;

    /// Canonical hash of the architectural state, for the visited set.
    /// States with equal fingerprints are treated as identical.
    fn fingerprint(&self) -> u64;

    /// The recorded safety failure (assertion, protocol violation, MSHR
    /// overflow…), if any. A state with an error is terminal.
    fn error(&self) -> Option<&SimError>;

    /// Whether every thread has halted. Together with an empty `enabled()`
    /// set this is the (good) end of an execution.
    fn all_halted(&self) -> bool;

    /// Builds the deadlock error for a state where `enabled()` is empty but
    /// threads are still running.
    fn deadlock_error(&self) -> SimError;
}

impl StepOracle for System {
    fn enabled(&self) -> Vec<ChannelKey> {
        self.oracle_channels()
    }

    fn fire(&mut self, key: ChannelKey) -> bool {
        self.oracle_deliver(key)
    }

    fn fingerprint(&self) -> u64 {
        System::fingerprint(self)
    }

    fn error(&self) -> Option<&SimError> {
        System::error(self)
    }

    fn all_halted(&self) -> bool {
        System::all_halted(self)
    }

    fn deadlock_error(&self) -> SimError {
        System::deadlock_error(self)
    }
}

/// An explicit delivery schedule: the counterexample form the checker
/// exports. Where a [`FaultPlan`](crate::chaos::FaultPlan) describes a
/// *distribution* over legal schedules (seed + bounds), a `SchedulePlan`
/// pins one exact schedule — the sequence of channel picks from the initial
/// state — so a violation found by the checker replays deterministically.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct SchedulePlan {
    /// The channel picked at each delivery step, in order.
    pub picks: Vec<ChannelKey>,
}

impl SchedulePlan {
    /// A plan delivering `picks` in order.
    pub fn new(picks: Vec<ChannelKey>) -> Self {
        SchedulePlan { picks }
    }

    /// Number of deliveries in the schedule.
    pub fn len(&self) -> usize {
        self.picks.len()
    }

    /// Whether the schedule delivers nothing.
    pub fn is_empty(&self) -> bool {
        self.picks.is_empty()
    }

    /// Replays the schedule against a fresh oracle-mode machine, returning
    /// the machine in its final state for inspection (its [`System::error`],
    /// stall report, and memory contents).
    ///
    /// Stops early if a pick is invalid (its channel is empty — the plan
    /// does not match the machine) or an error is recorded before the plan
    /// runs out; in both cases the returned system shows how far it got via
    /// its delivery ordinal.
    pub fn replay(&self, mut sys: System) -> System {
        for &pick in &self.picks {
            if sys.error().is_some() || !sys.oracle_deliver(pick) {
                break;
            }
        }
        sys
    }
}

impl fmt::Display for SchedulePlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "schedule[{}]:", self.picks.len())?;
        for p in &self.picks {
            write!(f, " {p}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_key_dependence_and_order() {
        let a = ChannelKey::Net(0, Endpoint::Bank(1));
        let b = ChannelKey::Net(3, Endpoint::Bank(1));
        let c = ChannelKey::Net(0, Endpoint::L1(2));
        let m0 = ChannelKey::Net(1, Endpoint::Mem(0));
        let m1 = ChannelKey::Local(Endpoint::Mem(3));
        assert!(a.depends(b), "same destination bank");
        assert!(!a.depends(c), "distinct nodes commute");
        assert!(
            a.depends(ChannelKey::Net(2, Endpoint::L1(1))),
            "co-located L1/bank share outbound channels"
        );
        assert!(m0.depends(m1), "memory controllers share the memory image");
        assert!(a.depends(a));
        // Ord is total and agrees with Eq — needed for canonical maps.
        let mut v = vec![c, b, a, m1, m0];
        v.sort();
        v.dedup();
        assert_eq!(v.len(), 5);
    }

    #[test]
    fn schedule_plan_displays_picks() {
        let plan = SchedulePlan::new(vec![
            ChannelKey::Net(0, Endpoint::Bank(0)),
            ChannelKey::Local(Endpoint::L1(1)),
        ]);
        assert_eq!(plan.len(), 2);
        assert!(!plan.is_empty());
        let s = plan.to_string();
        assert!(s.contains("net(0->bank:0)"), "{s}");
        assert!(s.contains("local(l1:1)"), "{s}");
    }
}
