//! The controller ↔ system interface.
//!
//! Protocol controllers (MESI L1/directory, DeNovo L1/registry) are written
//! as message-in / actions-out state machines: they never touch the network
//! or the scheduler directly. Each entry point returns a list of [`Action`]s
//! the surrounding [`System`](crate::system::System) applies — this keeps the
//! controllers independently unit-testable, exactly the property the paper
//! exploits when it argues DeNovo's three-state protocol is easy to verify.

use crate::msg::{Endpoint, Msg};
use dvs_engine::Cycle;

/// A side effect requested by a protocol controller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Send a message on the interconnect.
    Send {
        /// Destination endpoint.
        to: Endpoint,
        /// The message.
        msg: Msg,
    },
    /// The core's blocking memory operation completed (loads and RMWs carry
    /// the returned value).
    CoreDone {
        /// Value delivered to the destination register, if any.
        value: Option<u64>,
    },
    /// `count` outstanding non-blocking data stores completed.
    StoresDone {
        /// Number of stores retired.
        count: usize,
    },
    /// The word/line the core is spin-watching changed state; the spin must
    /// re-examine memory.
    SpinWake,
    /// Re-deliver `msg` to this same controller after `delay` cycles,
    /// without touching the network (used to retry installs blocked on a
    /// structural hazard). Generates no traffic.
    Local {
        /// Delay before re-delivery.
        delay: Cycle,
        /// The message to re-process.
        msg: Msg,
    },
    /// The controller received a message its current state cannot legally
    /// handle — a protocol bug (or injected corruption). The system aborts
    /// the run with [`SimError::ProtocolViolation`]
    /// (`crate::system::SimError::ProtocolViolation`) instead of panicking
    /// mid-event-loop, so the offending state is reported with endpoint and
    /// address context.
    Violation {
        /// Human-readable description of the illegal state/message pair.
        detail: String,
    },
}

impl Action {
    /// Shorthand for a [`Action::Violation`] with a formatted detail string.
    pub fn violation(detail: impl Into<String>) -> Action {
        Action::Violation {
            detail: detail.into(),
        }
    }
}

/// The immediate outcome of a core request presented to its L1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IssueResult {
    /// The access completed in the cache (1-cycle hit).
    Hit {
        /// Value returned to the core, if the access returns one.
        value: Option<u64>,
    },
    /// The access missed; an MSHR was allocated and a
    /// [`Action::CoreDone`] will follow. Blocking accesses stall the core.
    Miss,
    /// A non-blocking data store was accepted. If `completed`, it finished
    /// locally; otherwise the store is outstanding until a
    /// [`Action::StoresDone`].
    StoreAccepted {
        /// Whether the store already completed.
        completed: bool,
    },
    /// DeNovoSync hardware backoff: delay this synchronization read for
    /// `cycles`, then re-issue it (which will then miss).
    Backoff {
        /// Stall length.
        cycles: Cycle,
    },
    /// A structural hazard (way full of pinned lines, writeback in
    /// progress); retry the access after a short delay.
    Blocked,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn issue_result_is_inspectable() {
        assert_eq!(
            IssueResult::Hit { value: Some(3) },
            IssueResult::Hit { value: Some(3) }
        );
        assert_ne!(IssueResult::Miss, IssueResult::Blocked);
    }

    #[test]
    fn actions_compare() {
        assert_eq!(
            Action::StoresDone { count: 1 },
            Action::StoresDone { count: 1 }
        );
        assert_ne!(Action::SpinWake, Action::CoreDone { value: None });
    }
}
