//! Trace record/replay: the core-side fast path behind `dvs-trace`.
//!
//! Recording hooks in [`System`](crate::System) capture each core's stream
//! of *completed* memory/sync operations — plus per-word ordering
//! information — while a normal VM-driven run executes. Replay swaps the
//! per-core [`Thread`](dvs_vm::Thread) front-ends for [`TraceCore`]s that
//! feed the recorded operations straight into the L1s, bypassing
//! instruction decode, register files, and stall tracking entirely on the
//! hot path. The protocol layers (MESI / DS0 / DS, timed or oracle) are
//! untouched and cannot tell the difference.
//!
//! # Ordering model (per-word CREW replay)
//!
//! For every word, the recorder numbers completed *sync writes* (sync
//! stores and RMWs) `0, 1, 2, …` and tags each completed sync access:
//!
//! * a sync **read** carries `dep` = the number of sync writes to its word
//!   that completed before it;
//! * a sync **write** carries `dep` = its own ordinal and `rwait` = the
//!   number of sync reads that completed at level `dep` before it (all
//!   dep-`dep` readers, by construction).
//!
//! Replay enforces exactly that schedule with a [`ReplayBoard`]: a read
//! issues only when its word's write level equals `dep`; a write issues
//! only when the level equals `dep` *and* all `rwait` readers of that
//! level have completed. The recorded completion order is a topological
//! order of this wait-for relation, so replay is deadlock-free, every
//! sync access observes the recorded value (spin conditions are satisfied
//! on first issue — the watch machinery never engages), and data accesses
//! need no gating at all for data-race-free programs. Replayed RMW and
//! sync-load results are validated against the recording; any divergence
//! is reported as a protocol violation rather than silently ignored.
//!
//! The `.dvst` on-disk format, the record/replay drivers, composition,
//! and the workload-mix generator live in the `dvs-trace` crate; this
//! module owns only what must sit inside the machine.

use dvs_engine::Cycle;
use dvs_mem::{AccessKind, Addr, Region, WordAddr};
use dvs_stats::TimeComponent;
use dvs_vm::{Effect, MemRequest, Thread};
use std::collections::{BTreeSet, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// One recorded core-side operation.
///
/// `Exec` coalesces an arbitrary run of retired ALU/branch instructions
/// and `Delay` think-time into a single cycle count — this is where
/// replay's speedup over VM-driven execution comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceOp {
    /// `cycles` of local execution with no memory traffic.
    Exec {
        /// Core-local cycles consumed (retires + delays).
        cycles: Cycle,
    },
    /// A memory access, replayed through the real protocol stack.
    Mem {
        /// The access as issued (destination register cleared).
        req: MemRequest,
        /// Sync ordering: write level this access belongs to.
        dep: u32,
        /// Sync writes only: readers of level `dep` to wait for.
        rwait: u32,
        /// Recorded result for value validation (sync loads and RMWs).
        result: Option<u64>,
    },
    /// A full fence (drains outstanding stores).
    Fence,
    /// A self-invalidation of one region's unregistered words.
    SelfInv(Region),
    /// End of this core's stream.
    Halt,
}

/// Per-word sync progress shared by all [`TraceCore`]s of a replay.
#[derive(Debug, Clone, Default)]
pub struct ReplayBoard {
    words: HashMap<WordAddr, WordOrder>,
}

#[derive(Debug, Clone, Copy, Default)]
struct WordOrder {
    /// Completed sync writes (the word's current level).
    writes_done: u32,
    /// Completed sync reads at the current level.
    reads_done: u32,
}

impl ReplayBoard {
    fn level(&self, w: WordAddr) -> WordOrder {
        self.words.get(&w).copied().unwrap_or_default()
    }

    fn read_done(&mut self, w: WordAddr) {
        self.words.entry(w).or_default().reads_done += 1;
    }

    fn write_done(&mut self, w: WordAddr) {
        let e = self.words.entry(w).or_default();
        e.writes_done += 1;
        e.reads_done = 0;
    }

    /// Order-independent hash of the board for state fingerprints.
    pub(crate) fn hash_into<H: Hasher>(&self, h: &mut H) {
        let mut entries: Vec<_> = self
            .words
            .iter()
            .map(|(w, o)| (w.base().raw(), o.writes_done, o.reads_done))
            .collect();
        entries.sort_unstable();
        entries.hash(h);
    }
}

/// What a [`TraceCore`] wants to do next.
pub(crate) enum TraceStep {
    /// Drive this effect through the normal step machinery.
    Run(Effect),
    /// The next op is sync-order-gated; park until the board advances.
    DepWait,
}

/// Replay front-end for one core: serves recorded ops in order, gated by
/// the [`ReplayBoard`]. Implements the same driving contract as
/// [`Thread`](dvs_vm::Thread): `step` yields effects, blocking accesses
/// stay current until `complete` is called with the loaded value.
#[derive(Debug, Clone)]
pub struct TraceCore {
    ops: Arc<Vec<TraceOp>>,
    cursor: usize,
}

impl TraceCore {
    /// A fresh front-end over one recorded per-core stream.
    pub fn new(ops: Arc<Vec<TraceOp>>) -> Self {
        Self { ops, cursor: 0 }
    }

    /// Index of the next op to issue (for diagnostics).
    pub fn position(&self) -> usize {
        self.cursor
    }

    pub(crate) fn step(&mut self, board: &ReplayBoard) -> TraceStep {
        let Some(op) = self.ops.get(self.cursor) else {
            return TraceStep::Run(Effect::Halted);
        };
        match *op {
            TraceOp::Exec { cycles } => {
                self.cursor += 1;
                // Delay consumes `cycles + 1` core cycles; the recorder
                // accounts for the +1 when coalescing.
                TraceStep::Run(Effect::Delay {
                    cycles: cycles.saturating_sub(1),
                    comp: TimeComponent::Compute,
                })
            }
            TraceOp::Mem {
                req, dep, rwait, ..
            } => {
                if req.kind.is_sync() {
                    let at = board.level(req.addr.word());
                    if at.writes_done > dep
                        || (at.writes_done == dep && req.kind.may_write() && at.reads_done > rwait)
                    {
                        return TraceStep::Run(Effect::Failed {
                            pc: self.cursor,
                            msg: "trace replay overshot the recorded per-word sync order",
                        });
                    }
                    let ready = if req.kind.may_write() {
                        at.writes_done == dep && at.reads_done == rwait
                    } else {
                        at.writes_done == dep
                    };
                    if !ready {
                        return TraceStep::DepWait;
                    }
                }
                if !req.kind.blocks_core() {
                    self.cursor += 1;
                }
                TraceStep::Run(Effect::Mem(req))
            }
            TraceOp::Fence => {
                self.cursor += 1;
                TraceStep::Run(Effect::Fence)
            }
            TraceOp::SelfInv(region) => {
                self.cursor += 1;
                TraceStep::Run(Effect::SelfInvalidate(region))
            }
            TraceOp::Halt => {
                self.cursor += 1;
                TraceStep::Run(Effect::Halted)
            }
        }
    }

    /// Completion of the outstanding blocking access. Returns `Ok(true)`
    /// when the board advanced (parked cores should be re-examined), and
    /// `Err` on value divergence from the recording.
    pub(crate) fn complete(&mut self, value: u64, board: &mut ReplayBoard) -> Result<bool, String> {
        let Some(&TraceOp::Mem { req, result, .. }) = self.ops.get(self.cursor) else {
            return Err("trace replay: completion with no blocking op outstanding".into());
        };
        self.cursor += 1;
        if let Some(want) = result {
            if value != want {
                return Err(format!(
                    "trace replay: op {} at {:#x} returned {value:#x}, recording has {want:#x}",
                    self.cursor - 1,
                    req.addr.raw()
                ));
            }
        }
        if req.kind.is_sync() {
            let w = req.addr.word();
            if req.kind.may_write() {
                board.write_done(w);
            } else {
                board.read_done(w);
            }
            return Ok(true);
        }
        Ok(false)
    }

    pub(crate) fn hash_into<H: Hasher>(&self, h: &mut H) {
        self.cursor.hash(h);
    }
}

/// The per-core front-ends of a [`System`](crate::System): either real VM
/// threads or trace-replay cores sharing one ordering board.
#[derive(Debug, Clone)]
pub(crate) enum Fronts {
    Vm(Vec<Thread>),
    Trace {
        cores: Vec<TraceCore>,
        board: ReplayBoard,
    },
}

/// Live recording state, attached to a VM-driven [`System`](crate::System)
/// via `start_recording`.
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    per_core: Vec<Vec<TraceOp>>,
    pending_exec: Vec<Cycle>,
    words: HashMap<WordAddr, WordRec>,
    image: HashMap<WordAddr, u64>,
    touched: BTreeSet<WordAddr>,
    halted: Vec<bool>,
}

#[derive(Debug, Clone, Copy, Default)]
struct WordRec {
    writes: u32,
    reads_since: u32,
}

/// Strip the destination register: replay has no register file.
fn canon(req: &MemRequest) -> MemRequest {
    MemRequest { dst: None, ..*req }
}

impl TraceRecorder {
    pub(crate) fn new(cores: usize) -> Self {
        Self {
            per_core: vec![Vec::new(); cores],
            pending_exec: vec![0; cores],
            words: HashMap::new(),
            image: HashMap::new(),
            touched: BTreeSet::new(),
            halted: vec![false; cores],
        }
    }

    fn flush(&mut self, i: usize) {
        let cycles = std::mem::take(&mut self.pending_exec[i]);
        if cycles > 0 {
            self.per_core[i].push(TraceOp::Exec { cycles });
        }
    }

    pub(crate) fn retired(&mut self, i: usize) {
        self.pending_exec[i] += 1;
    }

    pub(crate) fn delayed(&mut self, i: usize, cycles: Cycle) {
        // A Delay effect consumes `cycles + 1` core cycles (issue + sleep).
        self.pending_exec[i] += cycles + 1;
    }

    pub(crate) fn fence(&mut self, i: usize) {
        self.flush(i);
        self.per_core[i].push(TraceOp::Fence);
    }

    pub(crate) fn self_inv(&mut self, i: usize, region: Region) {
        self.flush(i);
        self.per_core[i].push(TraceOp::SelfInv(region));
    }

    pub(crate) fn halt(&mut self, i: usize) {
        if !self.halted[i] {
            self.halted[i] = true;
            self.flush(i);
            self.per_core[i].push(TraceOp::Halt);
        }
    }

    /// A non-blocking data store was accepted by the L1 (program order on
    /// its core, which is all the ordering a data store needs).
    pub(crate) fn store_accepted(&mut self, i: usize, req: &MemRequest) {
        self.flush(i);
        let w = req.addr.word();
        self.touched.insert(w);
        if let AccessKind::DataStore { value } = req.kind {
            self.image.insert(w, value);
        }
        self.per_core[i].push(TraceOp::Mem {
            req: canon(req),
            dep: 0,
            rwait: 0,
            result: None,
        });
    }

    /// A blocking access completed with `value` (0 for sync stores).
    pub(crate) fn mem_complete(&mut self, i: usize, req: &MemRequest, value: u64) {
        self.flush(i);
        let w = req.addr.word();
        self.touched.insert(w);
        let mut dep = 0;
        let mut rwait = 0;
        let mut result = None;
        match req.kind {
            AccessKind::DataLoad | AccessKind::DataStore { .. } => {}
            AccessKind::SyncLoad => {
                let rec = self.words.entry(w).or_default();
                dep = rec.writes;
                rec.reads_since += 1;
                result = Some(value);
            }
            AccessKind::SyncStore { value: stored } => {
                let rec = self.words.entry(w).or_default();
                dep = rec.writes;
                rwait = rec.reads_since;
                rec.writes += 1;
                rec.reads_since = 0;
                self.image.insert(w, stored);
            }
            AccessKind::SyncRmw(op) => {
                let rec = self.words.entry(w).or_default();
                dep = rec.writes;
                rwait = rec.reads_since;
                rec.writes += 1;
                rec.reads_since = 0;
                result = Some(value);
                self.image.insert(w, op.apply(value));
            }
        }
        self.per_core[i].push(TraceOp::Mem {
            req: canon(req),
            dep,
            rwait,
            result,
        });
    }

    /// Seal the recording. `init` is the workload's preloaded image, used
    /// to pin final values for words that were read but never written.
    pub fn finish(mut self, init: &[(Addr, u64)]) -> Recording {
        for i in 0..self.per_core.len() {
            self.flush(i);
        }
        let init_map: HashMap<WordAddr, u64> = init.iter().map(|&(a, v)| (a.word(), v)).collect();
        let finals = self
            .touched
            .iter()
            .map(|w| {
                let v = self
                    .image
                    .get(w)
                    .or_else(|| init_map.get(w))
                    .copied()
                    .unwrap_or(0);
                (*w, v)
            })
            .collect();
        Recording {
            ops: self.per_core,
            finals,
        }
    }
}

/// A sealed recording: per-core op streams plus the pinned final image of
/// every word the run touched (sorted by address).
#[derive(Debug, Clone)]
pub struct Recording {
    /// One ordered op stream per core.
    pub ops: Vec<Vec<TraceOp>>,
    /// `(word, architecturally-final value)`, sorted by word address.
    pub finals: Vec<(WordAddr, u64)>,
}

/// Cap `Exec` gaps at `cap` cycles. Order and sync semantics are
/// untouched — only modeled think-time shrinks — so compressed replay is
/// bounded by the protocol layer, not by recorded pacing. Compressed
/// replays reach the same final image but different cycle counts.
pub fn compress_ops(ops: &[TraceOp], cap: Cycle) -> Vec<TraceOp> {
    ops.iter()
        .map(|op| match *op {
            TraceOp::Exec { cycles } => TraceOp::Exec {
                cycles: cycles.min(cap),
            },
            other => other,
        })
        .collect()
}
