//! The MESI baseline: a directory protocol with writer-initiated
//! invalidations.
//!
//! This is the comparison point of the paper's evaluation — "the GEMS
//! implementation of the MESI protocol, modified to support non-blocking
//! writes for a fair comparison with DeNovo". Structure:
//!
//! * [`l1`] — the private-cache controller: stable states I/S/E/M plus the
//!   transient transaction states tracked in MSHRs (`IS_D`, `IM_AD`, `IM_A`,
//!   `SM_AD`, `MI_A`, ... in primer nomenclature).
//! * [`dir`] — the directory, embedded in the shared L2 banks: full sharer
//!   bit-vectors, owner tracking, and *blocking* semantics (a line with an
//!   in-flight transaction queues later requests until the requestor's
//!   `Unblock`), exactly the behaviour the paper contrasts with DeNovo's
//!   non-blocking registry.
//!
//! The invalidation/acknowledgment traffic and the directory's sharer-list
//! storage are precisely the overheads DeNovoSync eliminates.

pub mod dir;
pub mod l1;

pub use dir::MesiDir;
pub use l1::MesiL1;
