//! The MESI directory, embedded in an L2 bank.
//!
//! Each line's directory entry tracks a full sharer bit-vector or an owner —
//! exactly the storage DeNovo's registry eliminates — and the bank is a
//! *blocking* directory: a line with an in-flight transaction queues later
//! requests until the requestor's `Unblock` (and, for owner downgrades, the
//! owner's data copy) arrives. The paper's §4.1 contrasts this with DeNovo's
//! non-blocking registry.
//!
//! The L2 keeps a tag for every line touched during a run (no capacity
//! evictions; see DESIGN.md §"deviations"): workload footprints are far
//! below the 4–8 MB capacity of Table 1, so directory/L2 conflict evictions
//! and their recalls would only add noise.

use crate::msg::{BankId, CoreId, Endpoint, LineData, MesiMsg, Msg};
use crate::proto::Action;
use dvs_mem::{LineAddr, MemoryLayout, SpanMap, LINE_BYTES};
use dvs_stats::TrafficClass;
use dvs_telemetry::{Component, Event, EventKind, Telemetry, TelemetryKey};
use std::collections::VecDeque;

/// Directory state for one line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum DirState {
    /// No L1 holds the line.
    Uncached,
    /// Read-shared by the cores in the bitmask.
    Shared(u64),
    /// Exclusively owned (E or M at the L1).
    Owned(CoreId),
}

impl DirState {
    /// Short state label for telemetry transitions.
    fn label(self) -> &'static str {
        match self {
            DirState::Uncached => "U",
            DirState::Shared(_) => "S",
            DirState::Owned(_) => "O",
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Busy {
    /// A coherence transaction is in flight: waiting for the requestor's
    /// `Unblock`, and possibly the former owner's data copy.
    Txn {
        need_unblock: bool,
        need_owner_wb: bool,
    },
    /// The line is being fetched from memory.
    MemFetch,
}

#[derive(Debug, Clone, Hash)]
struct DirLine {
    data: LineData,
    has_data: bool,
    state: DirState,
    busy: Option<Busy>,
    queue: VecDeque<MesiMsg>,
}

impl DirLine {
    fn new() -> Self {
        DirLine {
            data: [0; dvs_mem::WORDS_PER_LINE],
            has_data: false,
            state: DirState::Uncached,
            busy: None,
            queue: VecDeque::new(),
        }
    }
}

/// One L2 bank with its slice of the directory.
#[derive(Debug, Clone)]
pub struct MesiDir {
    bank: BankId,
    mem: Endpoint,
    lines: SpanMap<DirLine>,
    /// Observability only — excluded from `Hash`, never affects behaviour.
    tel: Telemetry,
}

impl MesiDir {
    /// Creates an empty bank. `mem` is the memory-controller endpoint this
    /// bank fetches lines through.
    pub fn new(bank: BankId, mem: Endpoint) -> Self {
        MesiDir {
            bank,
            mem,
            lines: SpanMap::sparse_only(),
            tel: Telemetry::off(),
        }
    }

    /// Sizes the dense line table from the workload layout. This bank homes
    /// exactly the lines `l` with `l.raw() % banks == bank`, so the table
    /// covers the layout span at stride `banks` with no unreachable slots;
    /// out-of-layout lines (thread-private pools) spill to the sparse tier.
    /// Call before any traffic arrives.
    pub fn configure_span(&mut self, layout: &MemoryLayout, banks: usize) {
        debug_assert!(self.lines.is_empty(), "span configured after traffic");
        let top_line = layout.top().div_ceil(LINE_BYTES);
        let slots = top_line.div_ceil(banks as u64) as usize;
        self.lines = SpanMap::with_span(self.bank as u64, banks as u64, slots);
    }

    /// Attaches a telemetry handle (directory state transitions and
    /// invalidation fan-outs).
    pub fn set_telemetry(&mut self, tel: Telemetry) {
        self.tel = tel;
    }

    fn emit_transition(
        &self,
        line: LineAddr,
        from: &'static str,
        to: &'static str,
        cause: &'static str,
    ) {
        self.tel.emit(|| Event {
            cycle: self.tel.now(),
            node: self.bank as u32,
            component: Component::Dir,
            addr: line.telemetry_key(),
            kind: EventKind::Transition { from, to, cause },
        });
    }

    /// Number of lines with at least one sharer or an owner (diagnostics).
    pub fn tracked_lines(&self) -> usize {
        self.lines
            .iter()
            .filter(|(_, l)| l.state != DirState::Uncached)
            .count()
    }

    /// The line's current data as known to the L2 (stale while owned).
    pub fn peek_line(&self, line: LineAddr) -> Option<&LineData> {
        self.lines
            .get(line.raw())
            .filter(|l| l.has_data)
            .map(|l| &l.data)
    }

    /// Iterates every tracked line's sharer mask (empty for uncached/owned)
    /// and owner (for invariant checking).
    pub fn entries(&self) -> impl Iterator<Item = (LineAddr, u64, Option<CoreId>)> + '_ {
        self.lines.iter().map(|(raw, e)| {
            let line = LineAddr::new(raw);
            match e.state {
                DirState::Uncached => (line, 0, None),
                DirState::Shared(mask) => (line, mask, None),
                DirState::Owned(o) => (line, 0, Some(o)),
            }
        })
    }

    /// Whether any line is mid-transaction (for quiescence checks).
    pub fn any_busy(&self) -> bool {
        self.lines
            .iter()
            .any(|(_, l)| l.busy.is_some() || !l.queue.is_empty())
    }

    /// The current owner, if the line is in an owned state.
    pub fn owner(&self, line: LineAddr) -> Option<CoreId> {
        match self.lines.get(line.raw())?.state {
            DirState::Owned(o) => Some(o),
            _ => None,
        }
    }

    /// Whether the line's entry is mid-transaction, fetching memory, or
    /// holding queued requests — the transient exemption for the runtime
    /// invariant checker.
    pub fn busy_or_queued(&self, line: LineAddr) -> bool {
        self.lines
            .get(line.raw())
            .is_some_and(|l| l.busy.is_some() || !l.queue.is_empty())
    }

    /// A one-line human-readable description of the line's directory entry
    /// (stall diagnostics).
    pub fn describe_line(&self, line: LineAddr) -> String {
        match self.lines.get(line.raw()) {
            None => format!("bank {}: {line} untracked", self.bank),
            Some(e) => format!(
                "bank {}: {line} {:?} busy={:?} queued={} has_data={}",
                self.bank,
                e.state,
                e.busy,
                e.queue.len(),
                e.has_data
            ),
        }
    }

    /// Handles one incoming message.
    pub fn on_msg(&mut self, msg: MesiMsg, actions: &mut Vec<Action>) {
        match msg {
            MesiMsg::GetS { .. } | MesiMsg::GetM { .. } => self.request(msg, actions),
            MesiMsg::PutS { line, req } => {
                let entry = self.lines.or_insert_with(line.raw(), DirLine::new);
                if let DirState::Shared(ref mut mask) = entry.state {
                    *mask &= !(1 << req);
                    if *mask == 0 {
                        entry.state = DirState::Uncached;
                    }
                }
                actions.push(Action::Send {
                    to: Endpoint::L1(req),
                    msg: Msg::Mesi(MesiMsg::PutAck { line }),
                });
            }
            MesiMsg::PutM { line, req, data } => {
                let entry = self.lines.or_insert_with(line.raw(), DirLine::new);
                if entry.state == DirState::Owned(req) {
                    entry.data = data;
                    entry.has_data = true;
                    entry.state = DirState::Uncached;
                }
                // Otherwise the PutM is stale (ownership already moved via a
                // forward served from the evictor's MSHR): ack only.
                actions.push(Action::Send {
                    to: Endpoint::L1(req),
                    msg: Msg::Mesi(MesiMsg::PutAck { line }),
                });
            }
            MesiMsg::PutE { line, req } => {
                let entry = self.lines.or_insert_with(line.raw(), DirLine::new);
                if entry.state == DirState::Owned(req) {
                    // E is clean by construction: the L2 data is current.
                    entry.state = DirState::Uncached;
                }
                actions.push(Action::Send {
                    to: Endpoint::L1(req),
                    msg: Msg::Mesi(MesiMsg::PutAck { line }),
                });
            }
            MesiMsg::OwnerWb { line, data, .. } => {
                let Some(entry) = self.lines.get_mut(line.raw()) else {
                    actions.push(Action::violation(format!(
                        "bank {}: OwnerWb for unknown line {line}",
                        self.bank
                    )));
                    return;
                };
                entry.data = data;
                entry.has_data = true;
                if let Some(Busy::Txn {
                    ref mut need_owner_wb,
                    ..
                }) = entry.busy
                {
                    *need_owner_wb = false;
                }
                self.maybe_unblock(line, actions);
            }
            MesiMsg::Unblock { line, .. } => {
                let Some(entry) = self.lines.get_mut(line.raw()) else {
                    actions.push(Action::violation(format!(
                        "bank {}: Unblock for unknown line {line}",
                        self.bank
                    )));
                    return;
                };
                if let Some(Busy::Txn {
                    ref mut need_unblock,
                    ..
                }) = entry.busy
                {
                    *need_unblock = false;
                }
                self.maybe_unblock(line, actions);
            }
            other => actions.push(Action::violation(format!(
                "directory bank {} cannot handle {other:?}",
                self.bank
            ))),
        }
    }

    /// Memory returned a line this bank was fetching.
    pub fn on_mem_data(&mut self, line: LineAddr, data: LineData, actions: &mut Vec<Action>) {
        let Some(entry) = self.lines.get_mut(line.raw()) else {
            actions.push(Action::violation(format!(
                "bank {}: MemData for unknown line {line}",
                self.bank
            )));
            return;
        };
        if entry.busy != Some(Busy::MemFetch) {
            let busy = entry.busy;
            actions.push(Action::violation(format!(
                "bank {}: MemData for {line} while busy={busy:?}",
                self.bank
            )));
            return;
        }
        entry.data = data;
        entry.has_data = true;
        entry.busy = None;
        self.drain(line, actions);
    }

    fn maybe_unblock(&mut self, line: LineAddr, actions: &mut Vec<Action>) {
        let entry = self.lines.get_mut(line.raw()).expect("line exists");
        if let Some(Busy::Txn {
            need_unblock: false,
            need_owner_wb: false,
        }) = entry.busy
        {
            entry.busy = None;
            self.drain(line, actions);
        }
    }

    fn drain(&mut self, line: LineAddr, actions: &mut Vec<Action>) {
        loop {
            let entry = self.lines.get_mut(line.raw()).expect("line exists");
            if entry.busy.is_some() {
                return;
            }
            let Some(next) = entry.queue.pop_front() else {
                return;
            };
            self.request(next, actions);
        }
    }

    fn request(&mut self, msg: MesiMsg, actions: &mut Vec<Action>) {
        let line = msg.line();
        let cause = match msg {
            MesiMsg::GetS { .. } => "GetS",
            _ => "GetM",
        };
        let entry = self.lines.or_insert_with(line.raw(), DirLine::new);
        if entry.busy.is_some() {
            entry.queue.push_back(msg);
            return;
        }
        let before = entry.state;
        let mut inv_fanout = None;
        if !entry.has_data && entry.state == DirState::Uncached {
            // Cold line: fetch from memory first.
            entry.busy = Some(Busy::MemFetch);
            entry.queue.push_front(msg);
            let class = match msg {
                MesiMsg::GetS { .. } => TrafficClass::Load,
                _ => TrafficClass::Store,
            };
            actions.push(Action::Send {
                to: self.mem,
                msg: Msg::MemRead {
                    line,
                    bank: self.bank,
                    class,
                },
            });
            return;
        }
        match msg {
            MesiMsg::GetS { req, .. } => match entry.state {
                DirState::Uncached => {
                    actions.push(Action::Send {
                        to: Endpoint::L1(req),
                        msg: Msg::Mesi(MesiMsg::Data {
                            line,
                            data: entry.data,
                            acks: 0,
                            exclusive: true,
                            class: TrafficClass::Load,
                        }),
                    });
                    entry.state = DirState::Owned(req);
                    entry.busy = Some(Busy::Txn {
                        need_unblock: true,
                        need_owner_wb: false,
                    });
                }
                DirState::Shared(mask) => {
                    actions.push(Action::Send {
                        to: Endpoint::L1(req),
                        msg: Msg::Mesi(MesiMsg::Data {
                            line,
                            data: entry.data,
                            acks: 0,
                            exclusive: false,
                            class: TrafficClass::Load,
                        }),
                    });
                    entry.state = DirState::Shared(mask | (1 << req));
                    entry.busy = Some(Busy::Txn {
                        need_unblock: true,
                        need_owner_wb: false,
                    });
                }
                DirState::Owned(owner) => {
                    if owner == req {
                        actions.push(Action::violation(format!(
                            "bank {}: owner core {req} re-requesting GetS for {line}",
                            self.bank
                        )));
                        return;
                    }
                    actions.push(Action::Send {
                        to: Endpoint::L1(owner),
                        msg: Msg::Mesi(MesiMsg::FwdGetS { line, req }),
                    });
                    entry.state = DirState::Shared((1 << owner) | (1 << req));
                    entry.busy = Some(Busy::Txn {
                        need_unblock: true,
                        need_owner_wb: true,
                    });
                }
            },
            MesiMsg::GetM { req, .. } => match entry.state {
                DirState::Uncached => {
                    actions.push(Action::Send {
                        to: Endpoint::L1(req),
                        msg: Msg::Mesi(MesiMsg::Data {
                            line,
                            data: entry.data,
                            acks: 0,
                            exclusive: false,
                            class: TrafficClass::Store,
                        }),
                    });
                    entry.state = DirState::Owned(req);
                    entry.busy = Some(Busy::Txn {
                        need_unblock: true,
                        need_owner_wb: false,
                    });
                }
                DirState::Shared(mask) => {
                    let others = mask & !(1 << req);
                    let acks = others.count_ones();
                    if acks > 0 {
                        inv_fanout = Some((req, acks));
                    }
                    actions.push(Action::Send {
                        to: Endpoint::L1(req),
                        msg: Msg::Mesi(MesiMsg::Data {
                            line,
                            data: entry.data,
                            acks,
                            exclusive: false,
                            class: TrafficClass::Store,
                        }),
                    });
                    for core in 0..64 {
                        if others & (1 << core) != 0 {
                            actions.push(Action::Send {
                                to: Endpoint::L1(core),
                                msg: Msg::Mesi(MesiMsg::Inv { line, req }),
                            });
                        }
                    }
                    entry.state = DirState::Owned(req);
                    entry.busy = Some(Busy::Txn {
                        need_unblock: true,
                        need_owner_wb: false,
                    });
                }
                DirState::Owned(owner) => {
                    if owner == req {
                        actions.push(Action::violation(format!(
                            "bank {}: owner core {req} re-requesting GetM for {line}",
                            self.bank
                        )));
                        return;
                    }
                    actions.push(Action::Send {
                        to: Endpoint::L1(owner),
                        msg: Msg::Mesi(MesiMsg::FwdGetM { line, req }),
                    });
                    entry.state = DirState::Owned(req);
                    entry.busy = Some(Busy::Txn {
                        need_unblock: true,
                        need_owner_wb: false,
                    });
                }
            },
            other => unreachable!("request() only takes GetS/GetM: {other:?}"),
        }
        let after = self.lines.get(line.raw()).expect("entry exists").state;
        if after != before {
            self.emit_transition(line, before.label(), after.label(), cause);
        }
        if let Some((req, sharers)) = inv_fanout {
            self.tel.emit(|| Event {
                cycle: self.tel.now(),
                node: self.bank as u32,
                component: Component::Dir,
                addr: line.telemetry_key(),
                kind: EventKind::Invalidation {
                    requester: req as u32,
                    sharers,
                },
            });
        }
    }
}

/// Canonical hash for model checking: lines sorted by address. Queued
/// messages hash in FIFO order — their order is architecturally visible.
impl std::hash::Hash for MesiDir {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.bank.hash(state);
        self.mem.hash(state);
        // SpanMap hashes entries sorted by key, length-prefixed; `LineAddr`
        // hashes as its raw `u64`, so the stream is unchanged from the
        // HashMap-backed version of this bank.
        self.lines.hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir() -> MesiDir {
        MesiDir::new(0, Endpoint::Mem(0))
    }

    fn line() -> LineAddr {
        LineAddr::new(16)
    }

    fn warm(d: &mut MesiDir, l: LineAddr) {
        // First touch triggers a memory fetch; complete it with known data.
        let mut acts = Vec::new();
        d.on_msg(MesiMsg::GetS { line: l, req: 0 }, &mut acts);
        assert!(matches!(
            acts[0],
            Action::Send {
                msg: Msg::MemRead { .. },
                ..
            }
        ));
        acts.clear();
        let mut data = [0u64; 8];
        data[0] = 11;
        d.on_mem_data(l, data, &mut acts);
        // GetS is now serviced exclusively.
        assert!(acts.iter().any(|a| matches!(
            a,
            Action::Send {
                to: Endpoint::L1(0),
                msg: Msg::Mesi(MesiMsg::Data {
                    exclusive: true,
                    acks: 0,
                    ..
                })
            }
        )));
        acts.clear();
        d.on_msg(
            MesiMsg::Unblock {
                line: l,
                from: 0,
                class: TrafficClass::Load,
            },
            &mut acts,
        );
    }

    #[test]
    fn cold_gets_fetches_memory_then_grants_exclusive() {
        let mut d = dir();
        warm(&mut d, line());
        assert_eq!(d.owner(line()), Some(0));
    }

    #[test]
    fn second_gets_forwards_to_owner_and_needs_both_completions() {
        let mut d = dir();
        warm(&mut d, line());
        let mut acts = Vec::new();
        d.on_msg(
            MesiMsg::GetS {
                line: line(),
                req: 1,
            },
            &mut acts,
        );
        assert!(acts.iter().any(|a| matches!(
            a,
            Action::Send {
                to: Endpoint::L1(0),
                msg: Msg::Mesi(MesiMsg::FwdGetS { req: 1, .. })
            }
        )));
        // A third GetS queues while busy.
        acts.clear();
        d.on_msg(
            MesiMsg::GetS {
                line: line(),
                req: 2,
            },
            &mut acts,
        );
        assert!(acts.is_empty());
        // Unblock alone is not enough: the owner's data is still due.
        d.on_msg(
            MesiMsg::Unblock {
                line: line(),
                from: 1,
                class: TrafficClass::Load,
            },
            &mut acts,
        );
        assert!(acts.is_empty());
        let mut data = [0u64; 8];
        data[0] = 99;
        d.on_msg(
            MesiMsg::OwnerWb {
                line: line(),
                data,
                from: 0,
            },
            &mut acts,
        );
        // Queue drains: core 2 gets fresh data.
        let got = acts.iter().any(|a| {
            matches!(a, Action::Send { to: Endpoint::L1(2), msg: Msg::Mesi(MesiMsg::Data { data, .. }) } if data[0] == 99)
        });
        assert!(got, "{acts:?}");
    }

    #[test]
    fn getm_on_shared_invalidates_all_other_sharers() {
        let mut d = dir();
        let l = line();
        warm(&mut d, l);
        // Downgrade to shared by a second reader.
        let mut acts = Vec::new();
        d.on_msg(MesiMsg::GetS { line: l, req: 1 }, &mut acts);
        acts.clear();
        d.on_msg(
            MesiMsg::OwnerWb {
                line: l,
                data: [0; 8],
                from: 0,
            },
            &mut acts,
        );
        d.on_msg(
            MesiMsg::Unblock {
                line: l,
                from: 1,
                class: TrafficClass::Load,
            },
            &mut acts,
        );
        acts.clear();
        // Core 2 wants M: cores 0 and 1 must be invalidated, 2 acks expected.
        d.on_msg(MesiMsg::GetM { line: l, req: 2 }, &mut acts);
        let invs: Vec<usize> = acts
            .iter()
            .filter_map(|a| match a {
                Action::Send {
                    to: Endpoint::L1(c),
                    msg: Msg::Mesi(MesiMsg::Inv { .. }),
                } => Some(*c),
                _ => None,
            })
            .collect();
        assert_eq!(invs, vec![0, 1]);
        assert!(acts.iter().any(|a| matches!(
            a,
            Action::Send {
                to: Endpoint::L1(2),
                msg: Msg::Mesi(MesiMsg::Data { acks: 2, .. })
            }
        )));
        assert_eq!(d.owner(l), Some(2));
    }

    #[test]
    fn getm_on_owned_forwards() {
        let mut d = dir();
        let l = line();
        warm(&mut d, l);
        let mut acts = Vec::new();
        d.on_msg(MesiMsg::GetM { line: l, req: 3 }, &mut acts);
        assert!(acts.iter().any(|a| matches!(
            a,
            Action::Send {
                to: Endpoint::L1(0),
                msg: Msg::Mesi(MesiMsg::FwdGetM { req: 3, .. })
            }
        )));
        assert_eq!(d.owner(l), Some(3));
    }

    #[test]
    fn puts_removes_sharer_and_acks() {
        let mut d = dir();
        let l = line();
        warm(&mut d, l);
        let mut acts = Vec::new();
        // Make shared {0,1}.
        d.on_msg(MesiMsg::GetS { line: l, req: 1 }, &mut acts);
        d.on_msg(
            MesiMsg::OwnerWb {
                line: l,
                data: [0; 8],
                from: 0,
            },
            &mut acts,
        );
        d.on_msg(
            MesiMsg::Unblock {
                line: l,
                from: 1,
                class: TrafficClass::Load,
            },
            &mut acts,
        );
        acts.clear();
        d.on_msg(MesiMsg::PutS { line: l, req: 0 }, &mut acts);
        assert!(acts.iter().any(|a| matches!(
            a,
            Action::Send {
                to: Endpoint::L1(0),
                msg: Msg::Mesi(MesiMsg::PutAck { .. })
            }
        )));
        // Core 1 remains the only sharer; a GetM from 1 needs 0 acks.
        acts.clear();
        d.on_msg(MesiMsg::GetM { line: l, req: 1 }, &mut acts);
        assert!(acts.iter().any(|a| matches!(
            a,
            Action::Send {
                to: Endpoint::L1(1),
                msg: Msg::Mesi(MesiMsg::Data { acks: 0, .. })
            }
        )));
    }

    #[test]
    fn stale_putm_is_acked_but_data_rejected() {
        let mut d = dir();
        let l = line();
        warm(&mut d, l);
        // Ownership moves 0 → 3 via FwdGetM.
        let mut acts = Vec::new();
        d.on_msg(MesiMsg::GetM { line: l, req: 3 }, &mut acts);
        acts.clear();
        // Core 0's racing PutM arrives afterwards: stale.
        d.on_msg(
            MesiMsg::PutM {
                line: l,
                req: 0,
                data: [5; 8],
            },
            &mut acts,
        );
        assert!(acts.iter().any(|a| matches!(
            a,
            Action::Send {
                to: Endpoint::L1(0),
                msg: Msg::Mesi(MesiMsg::PutAck { .. })
            }
        )));
        assert_eq!(d.owner(l), Some(3), "stale PutM must not clear ownership");
    }

    #[test]
    fn queued_requests_drain_in_order() {
        let mut d = dir();
        let l = line();
        warm(&mut d, l);
        let mut acts = Vec::new();
        // Owner is 0. Three queued requests while busy.
        d.on_msg(MesiMsg::GetM { line: l, req: 1 }, &mut acts);
        acts.clear();
        d.on_msg(MesiMsg::GetM { line: l, req: 2 }, &mut acts);
        d.on_msg(MesiMsg::GetS { line: l, req: 3 }, &mut acts);
        assert!(acts.is_empty());
        // Unblock from 1: queue head (GetM from 2) is serviced — forwarded
        // to owner 1.
        d.on_msg(
            MesiMsg::Unblock {
                line: l,
                from: 1,
                class: TrafficClass::Store,
            },
            &mut acts,
        );
        assert!(acts.iter().any(|a| matches!(
            a,
            Action::Send {
                to: Endpoint::L1(1),
                msg: Msg::Mesi(MesiMsg::FwdGetM { req: 2, .. })
            }
        )));
        assert_eq!(d.owner(l), Some(2));
        // The GetS from 3 is still queued.
        acts.clear();
        d.on_msg(
            MesiMsg::Unblock {
                line: l,
                from: 2,
                class: TrafficClass::Store,
            },
            &mut acts,
        );
        assert!(acts.iter().any(|a| matches!(
            a,
            Action::Send {
                to: Endpoint::L1(2),
                msg: Msg::Mesi(MesiMsg::FwdGetS { req: 3, .. })
            }
        )));
    }
}
