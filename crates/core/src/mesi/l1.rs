//! The MESI private-cache (L1) controller.
//!
//! Stable states live in the cache array (`S`, `E`, `M`; absence is `I`).
//! Transient states live in MSHR transactions: a `Fetch` transaction is the
//! primer's `IS_D` (with the `IS_D_I` deliver-once race flag), an `Own`
//! transaction is `IM_AD`/`IM_A`/`SM_AD`/`SM_A` depending on whether the
//! line is resident and which of {data, acks} are still outstanding, and an
//! `Evict` transaction is `MI_A`/`EI_A`/`SI_A`/`II_A`.
//!
//! Writes are non-blocking (the paper's modification): data stores merge
//! into the line's `Own` transaction and the core is notified with
//! [`Action::StoresDone`] when the transaction completes; fences drain them.

use crate::config::ProtocolMutation;
use crate::msg::{CoreId, Endpoint, LineData, MesiMsg, Msg};
use crate::proto::{Action, IssueResult};
use dvs_mem::array::InsertOutcome;
use dvs_mem::{AccessKind, CacheArray, CacheGeometry, LineAddr, Mshr, RmwOp, WordAddr};
use dvs_stats::{CacheStats, TrafficClass};
use dvs_telemetry::{Component, Event, EventKind, Telemetry, TelemetryKey};
use dvs_vm::MemRequest;

/// A resident line's stable state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stable {
    /// Shared, clean.
    S,
    /// Exclusive, clean.
    E,
    /// Modified, dirty.
    M,
}

impl Stable {
    /// Short state label for telemetry transitions.
    pub fn label(self) -> &'static str {
        match self {
            Stable::S => "S",
            Stable::E => "E",
            Stable::M => "M",
        }
    }
}

/// A resident cache line.
#[derive(Debug, Clone, Hash)]
pub struct MesiLine {
    /// Coherence state.
    pub state: Stable,
    /// Line contents.
    pub data: LineData,
}

/// The blocking core operation a transaction will complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum BlockingOp {
    /// A (data or sync) load of word `w`.
    Load { w: usize },
    /// A synchronization store of `value` to word `w`.
    SyncStore { w: usize, value: u64 },
    /// An atomic RMW on word `w`.
    Rmw { w: usize, op: RmwOp },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Goal {
    /// GetS in flight (IS_D).
    Fetch,
    /// GetM in flight (IM_AD / SM_AD / IM_A / SM_A).
    Own,
    /// Put(S|E|M) in flight (xI_A), holding evicted dirty data if any.
    Evict,
}

/// One in-flight transaction (the transient-state record).
#[derive(Debug, Clone, Hash)]
struct Txn {
    goal: Goal,
    /// The core's blocking operation, if this transaction carries one.
    blocking: Option<BlockingOp>,
    /// Merged non-blocking data stores `(word, value)`, in program order.
    pending_stores: Vec<(usize, u64)>,
    /// Data received so far (Own transactions).
    data: Option<LineData>,
    /// Invalidation acks still expected minus acks already received.
    acks_balance: i64,
    /// Whether the data response has arrived.
    have_data: bool,
    /// IS_D_I: an invalidation hit the fetch; deliver the value once and end
    /// Invalid.
    deliver_only: bool,
    /// Evict transactions: retained dirty data for servicing forwards.
    evict_data: Option<LineData>,
}

impl Txn {
    fn new(goal: Goal) -> Self {
        Txn {
            goal,
            blocking: None,
            pending_stores: Vec::new(),
            data: None,
            acks_balance: 0,
            have_data: false,
            deliver_only: false,
            evict_data: None,
        }
    }

    fn own_complete(&self) -> bool {
        self.have_data && self.acks_balance == 0
    }
}

/// The MESI L1 controller for one core.
#[derive(Debug, Clone)]
pub struct MesiL1 {
    id: CoreId,
    banks: usize,
    cache: CacheArray<MesiLine>,
    mshr: Mshr<LineAddr, Txn>,
    watch: Option<WordAddr>,
    mutation: Option<ProtocolMutation>,
    stats: CacheStats,
    /// Observability only — excluded from `Hash`, never affects behaviour.
    tel: Telemetry,
}

fn bank_for(line: LineAddr, banks: usize) -> usize {
    (line.raw() % banks as u64) as usize
}

impl MesiL1 {
    /// Creates an empty L1 for core `id` in a system with `banks` L2 banks.
    pub fn new(id: CoreId, geometry: CacheGeometry, banks: usize) -> Self {
        MesiL1 {
            id,
            banks,
            cache: CacheArray::new(geometry),
            mshr: Mshr::unbounded(),
            watch: None,
            mutation: None,
            stats: CacheStats::new(),
            tel: Telemetry::off(),
        }
    }

    /// Arms a seeded protocol bug (negative testing; see
    /// [`ProtocolMutation`]).
    pub fn set_mutation(&mut self, mutation: Option<ProtocolMutation>) {
        self.mutation = mutation;
    }

    /// Attaches a telemetry handle (state transitions, invalidations, MSHR
    /// occupancy).
    pub fn set_telemetry(&mut self, tel: Telemetry) {
        self.mshr.set_telemetry(tel.clone(), self.id as u32);
        self.tel = tel;
    }

    /// Peak simultaneous MSHR occupancy observed.
    pub fn mshr_high_water(&self) -> usize {
        self.mshr.high_water()
    }

    fn emit_transition(
        &self,
        line: LineAddr,
        from: &'static str,
        to: &'static str,
        cause: &'static str,
    ) {
        self.tel.emit(|| Event {
            cycle: self.tel.now(),
            node: self.id as u32,
            component: Component::L1,
            addr: line.telemetry_key(),
            kind: EventKind::Transition { from, to, cause },
        });
    }

    /// Cache-access statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Sets the spin-watched word (at most one; the core is blocking).
    pub fn set_watch(&mut self, word: WordAddr) {
        self.watch = Some(word);
    }

    /// Clears the spin watch.
    pub fn clear_watch(&mut self) {
        self.watch = None;
    }

    /// Whether the line holding `word` is resident in a readable state.
    pub fn word_readable(&self, word: WordAddr) -> bool {
        self.cache.get(word.line()).is_some()
    }

    /// Number of data stores currently outstanding (for fence draining this
    /// is tracked by the system; exposed for assertions).
    pub fn outstanding_txns(&self) -> usize {
        self.mshr.len()
    }

    /// Reads a word's value if the line is resident (diagnostics / final
    /// state reconstruction).
    pub fn peek_word(&self, word: WordAddr) -> Option<u64> {
        self.cache
            .get(word.line())
            .map(|l| l.data[word.index_in_line()])
    }

    /// Iterates resident lines as `(address, state)` (diagnostics and
    /// invariant checking).
    pub fn resident_lines(&self) -> impl Iterator<Item = (LineAddr, Stable)> + '_ {
        self.cache.iter().map(|(a, l)| (a, l.state))
    }

    /// Whether this L1 has an in-flight transaction on `line`.
    pub fn has_txn(&self, line: LineAddr) -> bool {
        self.mshr.contains(&line)
    }

    /// The line's stable state, if resident.
    pub fn line_state(&self, line: LineAddr) -> Option<Stable> {
        self.cache.get(line).map(|l| l.state)
    }

    /// One `(line, description)` pair per in-flight transaction (stall
    /// diagnostics and conservation checking).
    pub fn pending_summaries(&self) -> Vec<(LineAddr, String)> {
        self.mshr
            .iter()
            .map(|(l, t)| {
                (
                    *l,
                    format!(
                        "{:?} (have_data={}, acks_balance={}, blocking={}, merged_stores={})",
                        t.goal,
                        t.have_data,
                        t.acks_balance,
                        t.blocking.is_some(),
                        t.pending_stores.len()
                    ),
                )
            })
            .collect()
    }

    /// Whether this L1 currently owns the line (E or M).
    pub fn owns_line(&self, line: LineAddr) -> Option<&MesiLine> {
        self.cache
            .get(line)
            .filter(|l| matches!(l.state, Stable::E | Stable::M))
    }

    fn wake_if_watched(&self, line: LineAddr, actions: &mut Vec<Action>) {
        if let Some(w) = self.watch {
            if w.line() == line {
                actions.push(Action::SpinWake);
            }
        }
    }

    /// Presents a core memory request.
    pub fn core_request(&mut self, req: &MemRequest, actions: &mut Vec<Action>) -> IssueResult {
        let word = req.addr.word();
        let line = word.line();
        let w = word.index_in_line();
        let home = Endpoint::Bank(bank_for(line, self.banks));

        match req.kind {
            AccessKind::DataLoad | AccessKind::SyncLoad => {
                if self.cache.contains(line) {
                    // Store→load forwarding: a pending merged store to this
                    // word (upgrade in flight, SM_AD) supersedes the resident
                    // line's (pre-upgrade) copy.
                    if let Some(txn) = self.mshr.get(&line) {
                        if let Some((_, v)) = txn.pending_stores.iter().rev().find(|(i, _)| *i == w)
                        {
                            let value = *v;
                            self.note_hit(req.kind);
                            return IssueResult::Hit { value: Some(value) };
                        }
                    }
                    let l = self.cache.get_mut(line).expect("line resident");
                    let value = l.data[w];
                    self.note_hit(req.kind);
                    return IssueResult::Hit { value: Some(value) };
                }
                if let Some(txn) = self.mshr.get_mut(&line) {
                    match txn.goal {
                        Goal::Fetch | Goal::Own => {
                            // Park behind the transaction; the core blocks.
                            if let Some((_, v)) =
                                txn.pending_stores.iter().rev().find(|(i, _)| *i == w)
                            {
                                // Store-to-load forwarding from a merged store.
                                let value = *v;
                                self.note_hit(req.kind);
                                return IssueResult::Hit { value: Some(value) };
                            }
                            assert!(txn.blocking.is_none(), "second blocking op on line");
                            txn.blocking = Some(BlockingOp::Load { w });
                            self.note_miss(req.kind);
                            return IssueResult::Miss;
                        }
                        Goal::Evict => return IssueResult::Blocked,
                    }
                }
                self.note_miss(req.kind);
                let mut txn = Txn::new(Goal::Fetch);
                txn.blocking = Some(BlockingOp::Load { w });
                self.mshr.try_insert(line, txn).expect("fresh mshr");
                actions.push(Action::Send {
                    to: home,
                    msg: Msg::Mesi(MesiMsg::GetS { line, req: self.id }),
                });
                IssueResult::Miss
            }
            AccessKind::DataStore { value } => {
                if let Some(l) = self.cache.get_mut(line) {
                    match l.state {
                        Stable::M => {
                            l.data[w] = value;
                            self.note_hit(req.kind);
                            return IssueResult::StoreAccepted { completed: true };
                        }
                        Stable::E => {
                            l.data[w] = value;
                            l.state = Stable::M;
                            self.note_hit(req.kind);
                            return IssueResult::StoreAccepted { completed: true };
                        }
                        Stable::S => {
                            // Upgrade (SM_AD).
                            self.note_miss(req.kind);
                            if let Some(txn) = self.mshr.get_mut(&line) {
                                txn.pending_stores.push((w, value));
                                return IssueResult::StoreAccepted { completed: false };
                            }
                            let mut txn = Txn::new(Goal::Own);
                            txn.pending_stores.push((w, value));
                            self.mshr.try_insert(line, txn).expect("fresh mshr");
                            actions.push(Action::Send {
                                to: home,
                                msg: Msg::Mesi(MesiMsg::GetM { line, req: self.id }),
                            });
                            return IssueResult::StoreAccepted { completed: false };
                        }
                    }
                }
                if let Some(txn) = self.mshr.get_mut(&line) {
                    match txn.goal {
                        Goal::Own => {
                            txn.pending_stores.push((w, value));
                            self.note_miss(req.kind);
                            return IssueResult::StoreAccepted { completed: false };
                        }
                        Goal::Fetch => {
                            // A load is in flight; upgrading mid-fetch would
                            // need a second transaction on the line. Retry.
                            return IssueResult::Blocked;
                        }
                        Goal::Evict => return IssueResult::Blocked,
                    }
                }
                self.note_miss(req.kind);
                let mut txn = Txn::new(Goal::Own);
                txn.pending_stores.push((w, value));
                self.mshr.try_insert(line, txn).expect("fresh mshr");
                actions.push(Action::Send {
                    to: home,
                    msg: Msg::Mesi(MesiMsg::GetM { line, req: self.id }),
                });
                IssueResult::StoreAccepted { completed: false }
            }
            AccessKind::SyncStore { value } => self.ownership_op(
                line,
                w,
                home,
                BlockingOp::SyncStore { w, value },
                req.kind,
                actions,
            ),
            AccessKind::SyncRmw(op) => {
                self.ownership_op(line, w, home, BlockingOp::Rmw { w, op }, req.kind, actions)
            }
        }
    }

    /// Common path for blocking operations that need M: sync stores & RMWs.
    fn ownership_op(
        &mut self,
        line: LineAddr,
        w: usize,
        home: Endpoint,
        op: BlockingOp,
        kind: AccessKind,
        actions: &mut Vec<Action>,
    ) -> IssueResult {
        if let Some(l) = self.cache.get_mut(line) {
            match l.state {
                Stable::M | Stable::E => {
                    l.state = Stable::M;
                    let old = l.data[w];
                    let value = match op {
                        BlockingOp::SyncStore { value, .. } => {
                            l.data[w] = value;
                            None
                        }
                        BlockingOp::Rmw { op, .. } => {
                            l.data[w] = op.apply(old);
                            Some(old)
                        }
                        BlockingOp::Load { .. } => unreachable!("loads use core_request"),
                    };
                    self.note_hit(kind);
                    return IssueResult::Hit { value };
                }
                Stable::S => {
                    self.note_miss(kind);
                    if let Some(txn) = self.mshr.get_mut(&line) {
                        assert!(txn.blocking.is_none(), "second blocking op on line");
                        txn.blocking = Some(op);
                        return IssueResult::Miss;
                    }
                    let mut txn = Txn::new(Goal::Own);
                    txn.blocking = Some(op);
                    self.mshr.try_insert(line, txn).expect("fresh mshr");
                    actions.push(Action::Send {
                        to: home,
                        msg: Msg::Mesi(MesiMsg::GetM { line, req: self.id }),
                    });
                    return IssueResult::Miss;
                }
            }
        }
        if let Some(txn) = self.mshr.get_mut(&line) {
            match txn.goal {
                Goal::Own => {
                    assert!(txn.blocking.is_none(), "second blocking op on line");
                    txn.blocking = Some(op);
                    self.note_miss(kind);
                    return IssueResult::Miss;
                }
                Goal::Fetch | Goal::Evict => return IssueResult::Blocked,
            }
        }
        self.note_miss(kind);
        let mut txn = Txn::new(Goal::Own);
        txn.blocking = Some(op);
        self.mshr.try_insert(line, txn).expect("fresh mshr");
        actions.push(Action::Send {
            to: home,
            msg: Msg::Mesi(MesiMsg::GetM { line, req: self.id }),
        });
        IssueResult::Miss
    }

    /// Handles an incoming protocol message.
    pub fn on_msg(&mut self, msg: MesiMsg, actions: &mut Vec<Action>) {
        let line = msg.line();
        let home = Endpoint::Bank(bank_for(line, self.banks));
        match msg {
            MesiMsg::Data {
                data,
                acks,
                exclusive,
                class,
                ..
            } => self.on_data(line, data, acks, exclusive, class, home, actions),
            MesiMsg::InvAck { .. } => {
                let Some(txn) = self.mshr.get_mut(&line) else {
                    actions.push(Action::violation(format!(
                        "L1: InvAck without transaction for {line}"
                    )));
                    return;
                };
                if txn.goal != Goal::Own {
                    let goal = txn.goal;
                    actions.push(Action::violation(format!(
                        "L1: InvAck for {line} during {goal:?} transaction"
                    )));
                    return;
                }
                if self.mutation != Some(ProtocolMutation::MesiDropAck) {
                    txn.acks_balance -= 1;
                }
                if txn.own_complete() {
                    self.finish_own(line, home, actions);
                }
            }
            MesiMsg::Inv { req, .. } => {
                // Always acknowledge; invalidate only states the Inv can
                // legitimately target (see module docs).
                let mut invalidated = false;
                if let Some(l) = self.cache.get(line) {
                    if l.state == Stable::S
                        && self.mutation != Some(ProtocolMutation::MesiSkipInvalidate)
                    {
                        self.cache.remove(line);
                        invalidated = true;
                        self.emit_transition(line, "S", "I", "Inv");
                        self.tel.emit(|| Event {
                            cycle: self.tel.now(),
                            node: self.id as u32,
                            component: Component::L1,
                            addr: line.telemetry_key(),
                            kind: EventKind::Invalidation {
                                requester: req as u32,
                                sharers: 1,
                            },
                        });
                    }
                    // E/M: the Inv is from a stale epoch (we have since
                    // re-acquired the line); ack without invalidating.
                }
                if let Some(txn) = self.mshr.get_mut(&line) {
                    match txn.goal {
                        Goal::Fetch => txn.deliver_only = true,
                        Goal::Own | Goal::Evict => {}
                    }
                }
                actions.push(Action::Send {
                    to: Endpoint::L1(req),
                    msg: Msg::Mesi(MesiMsg::InvAck {
                        line,
                        from: self.id,
                    }),
                });
                if invalidated {
                    self.wake_if_watched(line, actions);
                }
            }
            MesiMsg::FwdGetS { req, .. } => {
                // We are the (former) owner: send data to the requestor and a
                // copy to the directory; downgrade to S.
                let data = if let Some(l) = self.cache.get_mut(line) {
                    if !matches!(l.state, Stable::E | Stable::M) {
                        let state = l.state;
                        actions.push(Action::violation(format!(
                            "L1: FwdGetS for {line} held in {state:?}"
                        )));
                        return;
                    }
                    let from = l.state.label();
                    l.state = Stable::S;
                    let data = l.data;
                    self.emit_transition(line, from, "S", "FwdGetS");
                    data
                } else if let Some(txn) = self.mshr.get_mut(&line) {
                    // The eviction now acts as a PutS; the directory will
                    // still PutAck it.
                    let retained = (txn.goal == Goal::Evict)
                        .then_some(txn.evict_data)
                        .flatten();
                    let Some(data) = retained else {
                        let goal = txn.goal;
                        actions.push(Action::violation(format!(
                            "L1: FwdGetS for {line} with {goal:?} transaction and no retained data"
                        )));
                        return;
                    };
                    data
                } else {
                    actions.push(Action::violation(format!(
                        "L1 {}: FwdGetS for {line} held nowhere",
                        self.id
                    )));
                    return;
                };
                actions.push(Action::Send {
                    to: Endpoint::L1(req),
                    msg: Msg::Mesi(MesiMsg::Data {
                        line,
                        data,
                        acks: 0,
                        exclusive: false,
                        class: TrafficClass::Load,
                    }),
                });
                actions.push(Action::Send {
                    to: home,
                    msg: Msg::Mesi(MesiMsg::OwnerWb {
                        line,
                        data,
                        from: self.id,
                    }),
                });
            }
            MesiMsg::FwdGetM { req, .. } => {
                let data = if let Some(l) = self.cache.get(line) {
                    if !matches!(l.state, Stable::E | Stable::M) {
                        let state = l.state;
                        actions.push(Action::violation(format!(
                            "L1: FwdGetM for {line} held in {state:?}"
                        )));
                        return;
                    }
                    let from = l.state.label();
                    let d = l.data;
                    self.cache.remove(line);
                    self.emit_transition(line, from, "I", "FwdGetM");
                    d
                } else if let Some(txn) = self.mshr.get_mut(&line) {
                    let retained = (txn.goal == Goal::Evict)
                        .then(|| txn.evict_data.take())
                        .flatten();
                    let Some(data) = retained else {
                        let goal = txn.goal;
                        actions.push(Action::violation(format!(
                            "L1: FwdGetM for {line} with {goal:?} transaction and no retained data"
                        )));
                        return;
                    };
                    data
                } else {
                    actions.push(Action::violation(format!(
                        "L1 {}: FwdGetM for {line} held nowhere",
                        self.id
                    )));
                    return;
                };
                actions.push(Action::Send {
                    to: Endpoint::L1(req),
                    msg: Msg::Mesi(MesiMsg::Data {
                        line,
                        data,
                        acks: 0,
                        exclusive: false,
                        class: TrafficClass::Store,
                    }),
                });
                self.wake_if_watched(line, actions);
            }
            MesiMsg::PutAck { .. } => {
                let Some(txn) = self.mshr.remove(&line) else {
                    actions.push(Action::violation(format!(
                        "L1: PutAck without eviction for {line}"
                    )));
                    return;
                };
                if txn.goal != Goal::Evict {
                    actions.push(Action::violation(format!(
                        "L1: PutAck for {line} during {:?} transaction",
                        txn.goal
                    )));
                }
            }
            other => actions.push(Action::violation(format!(
                "L1 {} cannot handle {other:?}",
                self.id
            ))),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_data(
        &mut self,
        line: LineAddr,
        data: LineData,
        acks: u32,
        exclusive: bool,
        class: TrafficClass,
        home: Endpoint,
        actions: &mut Vec<Action>,
    ) {
        let Some(txn) = self.mshr.get_mut(&line) else {
            actions.push(Action::violation(format!(
                "L1: Data without transaction for {line}"
            )));
            return;
        };
        match txn.goal {
            Goal::Fetch => {
                let deliver_only = txn.deliver_only;
                let blocking = txn.blocking;
                if deliver_only {
                    // IS_D_I: use the value once, end Invalid.
                    self.mshr.remove(&line);
                    match blocking {
                        Some(BlockingOp::Load { w }) => {
                            actions.push(Action::CoreDone {
                                value: Some(data[w]),
                            });
                        }
                        other => panic!("fetch transaction with {other:?}"),
                    }
                    actions.push(Action::Send {
                        to: home,
                        msg: Msg::Mesi(MesiMsg::Unblock {
                            line,
                            from: self.id,
                            class,
                        }),
                    });
                    return;
                }
                // Install S (or E when granted exclusively).
                let state = if exclusive { Stable::E } else { Stable::S };
                self.emit_transition(line, "I", state.label(), "Data");
                if !self.try_install(line, MesiLine { state, data }, actions) {
                    // Structural hazard: retry the install shortly.
                    actions.push(Action::Local {
                        delay: 8,
                        msg: Msg::Mesi(MesiMsg::Data {
                            line,
                            data,
                            acks: 0,
                            exclusive,
                            class,
                        }),
                    });
                    return;
                }
                let txn = self.mshr.remove(&line).expect("fetch transaction");
                match txn.blocking {
                    Some(BlockingOp::Load { w }) => {
                        actions.push(Action::CoreDone {
                            value: Some(data[w]),
                        });
                    }
                    other => panic!("fetch transaction with {other:?}"),
                }
                actions.push(Action::Send {
                    to: home,
                    msg: Msg::Mesi(MesiMsg::Unblock {
                        line,
                        from: self.id,
                        class,
                    }),
                });
            }
            Goal::Own => {
                if txn.have_data {
                    actions.push(Action::violation(format!(
                        "L1: duplicate Data for Own transaction on {line}"
                    )));
                    return;
                }
                txn.have_data = true;
                txn.data = Some(data);
                txn.acks_balance += i64::from(acks);
                if txn.own_complete() {
                    self.finish_own(line, home, actions);
                }
            }
            Goal::Evict => actions.push(Action::violation(format!(
                "L1: Data for {line} during eviction"
            ))),
        }
    }

    /// Completes an Own transaction: install M, apply merged stores, run the
    /// blocking op, unblock the directory.
    fn finish_own(&mut self, line: LineAddr, home: Endpoint, actions: &mut Vec<Action>) {
        let txn = self.mshr.get_mut(&line).expect("own transaction");
        let mut data = txn.data.expect("own transaction completed without data");
        // If the line was resident (upgrade from S that raced no Inv), the
        // directory's data is equally fresh; either copy works.
        let pending = std::mem::take(&mut txn.pending_stores);
        let blocking = txn.blocking.take();
        for (w, v) in &pending {
            data[*w] = *v;
        }
        let mut core_done: Option<Option<u64>> = None;
        match blocking {
            None => {}
            Some(BlockingOp::SyncStore { w, value }) => {
                data[w] = value;
                core_done = Some(None);
            }
            Some(BlockingOp::Rmw { w, op }) => {
                let old = data[w];
                data[w] = op.apply(old);
                core_done = Some(Some(old));
            }
            Some(BlockingOp::Load { w }) => {
                core_done = Some(Some(data[w]));
            }
        }
        let from = self.cache.get(line).map_or("I", |l| l.state.label());
        self.emit_transition(line, from, "M", "Data");
        if !self.try_install(
            line,
            MesiLine {
                state: Stable::M,
                data,
            },
            actions,
        ) {
            // Could not make room: put the work back and retry shortly.
            let txn = self.mshr.get_mut(&line).expect("own transaction");
            txn.pending_stores = pending;
            txn.blocking = blocking;
            txn.data = Some(data);
            actions.push(Action::Local {
                delay: 8,
                msg: Msg::Mesi(MesiMsg::Data {
                    line,
                    data,
                    acks: 0,
                    exclusive: false,
                    class: TrafficClass::Store,
                }),
            });
            // Undo the duplicate-data bookkeeping the retry will redo.
            let txn = self.mshr.get_mut(&line).expect("own transaction");
            txn.have_data = false;
            return;
        }
        self.mshr.remove(&line);
        if !pending.is_empty() {
            actions.push(Action::StoresDone {
                count: pending.len(),
            });
        }
        if let Some(value) = core_done {
            actions.push(Action::CoreDone { value });
        }
        actions.push(Action::Send {
            to: home,
            msg: Msg::Mesi(MesiMsg::Unblock {
                line,
                from: self.id,
                class: TrafficClass::Store,
            }),
        });
    }

    /// Installs a line, evicting a victim if needed. Returns false if no
    /// victim was evictable (caller retries).
    fn try_install(
        &mut self,
        line: LineAddr,
        payload: MesiLine,
        actions: &mut Vec<Action>,
    ) -> bool {
        let watch_line = self.watch.map(WordAddr::line);
        let mshr = &self.mshr;
        let outcome = self.cache.insert_filtered(line, payload, |addr, _| {
            !mshr.contains(&addr) && Some(addr) != watch_line
        });
        match outcome {
            InsertOutcome::Inserted => true,
            InsertOutcome::Evicted(victim, old) => {
                if victim == line {
                    // Same-address replace: upgrade in place, nothing to evict.
                    return true;
                }
                let victim_home = Endpoint::Bank(bank_for(victim, self.banks));
                let (msg, keep_data) = match old.state {
                    Stable::S => (
                        MesiMsg::PutS {
                            line: victim,
                            req: self.id,
                        },
                        None,
                    ),
                    Stable::E => (
                        MesiMsg::PutE {
                            line: victim,
                            req: self.id,
                        },
                        Some(old.data),
                    ),
                    Stable::M => (
                        MesiMsg::PutM {
                            line: victim,
                            req: self.id,
                            data: old.data,
                        },
                        Some(old.data),
                    ),
                };
                self.emit_transition(victim, old.state.label(), "I", "evict");
                let mut txn = Txn::new(Goal::Evict);
                txn.evict_data = keep_data;
                self.mshr
                    .try_insert(victim, txn)
                    .expect("victim had no mshr");
                actions.push(Action::Send {
                    to: victim_home,
                    msg: Msg::Mesi(msg),
                });
                true
            }
            InsertOutcome::NoVictim(_) => false,
        }
    }

    fn note_hit(&mut self, kind: AccessKind) {
        match kind {
            AccessKind::DataLoad => self.stats.data_read_hits += 1,
            AccessKind::DataStore { .. } => self.stats.data_write_hits += 1,
            AccessKind::SyncLoad => self.stats.sync_read_hits += 1,
            AccessKind::SyncStore { .. } | AccessKind::SyncRmw(_) => {
                self.stats.sync_write_hits += 1
            }
        }
    }

    fn note_miss(&mut self, kind: AccessKind) {
        match kind {
            AccessKind::DataLoad => self.stats.data_read_misses += 1,
            AccessKind::DataStore { .. } => self.stats.data_write_misses += 1,
            AccessKind::SyncLoad => self.stats.sync_read_misses += 1,
            AccessKind::SyncStore { .. } | AccessKind::SyncRmw(_) => {
                self.stats.sync_write_misses += 1
            }
        }
    }
}

/// Canonical hash for model checking: every field that influences future
/// protocol behaviour. `stats` (counters) is excluded; `mutation` is fixed
/// per run and hashing it is harmless.
impl std::hash::Hash for MesiL1 {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.id.hash(state);
        self.banks.hash(state);
        self.cache.hash(state);
        self.mshr.hash(state);
        self.watch.hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvs_mem::Addr;

    fn l1() -> MesiL1 {
        MesiL1::new(0, CacheGeometry::new(1024, 2), 4)
    }

    fn load(addr: u64) -> MemRequest {
        MemRequest {
            addr: Addr::new(addr),
            kind: AccessKind::DataLoad,
            dst: None,
            spin: None,
        }
    }

    fn store(addr: u64, value: u64) -> MemRequest {
        MemRequest {
            addr: Addr::new(addr),
            kind: AccessKind::DataStore { value },
            dst: None,
            spin: None,
        }
    }

    fn data_msg(line: LineAddr, data: LineData, acks: u32, exclusive: bool) -> MesiMsg {
        MesiMsg::Data {
            line,
            data,
            acks,
            exclusive,
            class: TrafficClass::Load,
        }
    }

    #[test]
    fn cold_load_misses_then_hits() {
        let mut l1 = l1();
        let mut acts = Vec::new();
        assert_eq!(l1.core_request(&load(0x100), &mut acts), IssueResult::Miss);
        assert!(matches!(
            acts[0],
            Action::Send {
                msg: Msg::Mesi(MesiMsg::GetS { .. }),
                ..
            }
        ));
        // Directory responds.
        let mut data = [0u64; 8];
        data[0] = 42;
        acts.clear();
        l1.on_msg(data_msg(Addr::new(0x100).line(), data, 0, false), &mut acts);
        assert!(acts.contains(&Action::CoreDone { value: Some(42) }));
        assert!(acts.iter().any(|a| matches!(
            a,
            Action::Send {
                msg: Msg::Mesi(MesiMsg::Unblock { .. }),
                ..
            }
        )));
        // Now it hits.
        acts.clear();
        assert_eq!(
            l1.core_request(&load(0x100), &mut acts),
            IssueResult::Hit { value: Some(42) }
        );
        assert_eq!(l1.stats().data_read_hits, 1);
        assert_eq!(l1.stats().data_read_misses, 1);
    }

    #[test]
    fn exclusive_grant_makes_store_hit_silently() {
        let mut l1 = l1();
        let mut acts = Vec::new();
        l1.core_request(&load(0x100), &mut acts);
        acts.clear();
        l1.on_msg(
            data_msg(Addr::new(0x100).line(), [0; 8], 0, true),
            &mut acts,
        );
        acts.clear();
        // E state: store hits without a GetM.
        assert_eq!(
            l1.core_request(&store(0x100, 9), &mut acts),
            IssueResult::StoreAccepted { completed: true }
        );
        assert!(acts.is_empty());
        assert_eq!(l1.peek_word(Addr::new(0x100).word()), Some(9));
    }

    #[test]
    fn store_miss_gathers_acks_before_completing() {
        let mut l1 = l1();
        let mut acts = Vec::new();
        assert_eq!(
            l1.core_request(&store(0x100, 5), &mut acts),
            IssueResult::StoreAccepted { completed: false }
        );
        let line = Addr::new(0x100).line();
        acts.clear();
        l1.on_msg(data_msg(line, [0; 8], 2, false), &mut acts);
        assert!(acts.is_empty(), "must wait for acks: {acts:?}");
        l1.on_msg(MesiMsg::InvAck { line, from: 3 }, &mut acts);
        assert!(acts.is_empty());
        l1.on_msg(MesiMsg::InvAck { line, from: 5 }, &mut acts);
        assert!(acts.contains(&Action::StoresDone { count: 1 }));
        assert_eq!(l1.peek_word(Addr::new(0x100).word()), Some(5));
    }

    #[test]
    fn acks_arriving_before_data_still_complete() {
        let mut l1 = l1();
        let mut acts = Vec::new();
        l1.core_request(&store(0x100, 5), &mut acts);
        let line = Addr::new(0x100).line();
        acts.clear();
        l1.on_msg(MesiMsg::InvAck { line, from: 3 }, &mut acts);
        assert!(acts.is_empty());
        l1.on_msg(data_msg(line, [0; 8], 1, false), &mut acts);
        assert!(acts.contains(&Action::StoresDone { count: 1 }));
    }

    #[test]
    fn rmw_executes_at_ownership() {
        let mut l1 = l1();
        let mut acts = Vec::new();
        let req = MemRequest {
            addr: Addr::new(0x100),
            kind: AccessKind::SyncRmw(RmwOp::Tas),
            dst: None,
            spin: None,
        };
        assert_eq!(l1.core_request(&req, &mut acts), IssueResult::Miss);
        acts.clear();
        let line = Addr::new(0x100).line();
        l1.on_msg(data_msg(line, [0; 8], 0, false), &mut acts);
        assert!(acts.contains(&Action::CoreDone { value: Some(0) }));
        assert_eq!(l1.peek_word(Addr::new(0x100).word()), Some(1));
        // Second TAS hits in M and returns 1.
        acts.clear();
        assert_eq!(
            l1.core_request(&req, &mut acts),
            IssueResult::Hit { value: Some(1) }
        );
    }

    #[test]
    fn inv_on_shared_line_invalidates_and_acks() {
        let mut l1 = l1();
        let mut acts = Vec::new();
        l1.core_request(&load(0x100), &mut acts);
        let line = Addr::new(0x100).line();
        acts.clear();
        l1.on_msg(data_msg(line, [7; 8], 0, false), &mut acts);
        acts.clear();
        l1.on_msg(MesiMsg::Inv { line, req: 2 }, &mut acts);
        assert!(acts.iter().any(|a| matches!(
            a,
            Action::Send {
                to: Endpoint::L1(2),
                msg: Msg::Mesi(MesiMsg::InvAck { .. })
            }
        )));
        acts.clear();
        assert_eq!(l1.core_request(&load(0x100), &mut acts), IssueResult::Miss);
    }

    #[test]
    fn inv_during_fetch_delivers_once_without_installing() {
        let mut l1 = l1();
        let mut acts = Vec::new();
        l1.core_request(&load(0x100), &mut acts);
        let line = Addr::new(0x100).line();
        acts.clear();
        l1.on_msg(MesiMsg::Inv { line, req: 1 }, &mut acts);
        acts.clear();
        let mut data = [0u64; 8];
        data[0] = 77;
        l1.on_msg(data_msg(line, data, 0, false), &mut acts);
        assert!(acts.contains(&Action::CoreDone { value: Some(77) }));
        acts.clear();
        // Not installed: next load misses again.
        assert_eq!(l1.core_request(&load(0x100), &mut acts), IssueResult::Miss);
    }

    #[test]
    fn fwd_gets_downgrades_owner_and_copies_to_dir() {
        let mut l1 = l1();
        let mut acts = Vec::new();
        // Become M via a store.
        l1.core_request(&store(0x100, 5), &mut acts);
        let line = Addr::new(0x100).line();
        acts.clear();
        l1.on_msg(data_msg(line, [0; 8], 0, false), &mut acts);
        acts.clear();
        l1.on_msg(MesiMsg::FwdGetS { line, req: 3 }, &mut acts);
        let to_req = acts.iter().any(|a| {
            matches!(a, Action::Send { to: Endpoint::L1(3), msg: Msg::Mesi(MesiMsg::Data { data, .. }) } if data[0] == 5)
        });
        let to_dir = acts.iter().any(|a| {
            matches!(
                a,
                Action::Send {
                    msg: Msg::Mesi(MesiMsg::OwnerWb { .. }),
                    ..
                }
            )
        });
        assert!(to_req && to_dir, "{acts:?}");
        // Now S: a store needs an upgrade.
        acts.clear();
        assert_eq!(
            l1.core_request(&store(0x100, 6), &mut acts),
            IssueResult::StoreAccepted { completed: false }
        );
    }

    #[test]
    fn fwd_getm_removes_line_and_wakes_watcher() {
        let mut l1 = l1();
        let mut acts = Vec::new();
        l1.core_request(&store(0x100, 5), &mut acts);
        let line = Addr::new(0x100).line();
        acts.clear();
        l1.on_msg(data_msg(line, [0; 8], 0, false), &mut acts);
        l1.set_watch(Addr::new(0x100).word());
        acts.clear();
        l1.on_msg(MesiMsg::FwdGetM { line, req: 3 }, &mut acts);
        assert!(acts.contains(&Action::SpinWake));
        assert!(!l1.word_readable(Addr::new(0x100).word()));
    }

    #[test]
    fn eviction_sends_putm_and_serves_forwards_from_mshr() {
        // 2-way cache: lines 0x100, 0x300, 0x500 map to the same set
        // (sets = 8 for 1KB 2-way; stride 8 lines = 0x200 bytes).
        let mut l1 = l1();
        let mut acts = Vec::new();
        for (a, v) in [(0x100, 1), (0x300, 2)] {
            l1.core_request(&store(a, v), &mut acts);
            acts.clear();
            l1.on_msg(data_msg(Addr::new(a).line(), [0; 8], 0, false), &mut acts);
            acts.clear();
        }
        // Third line forces an eviction of LRU 0x100.
        l1.core_request(&store(0x500, 3), &mut acts);
        acts.clear();
        l1.on_msg(
            data_msg(Addr::new(0x500).line(), [0; 8], 0, false),
            &mut acts,
        );
        let evicted = acts.iter().find_map(|a| match a {
            Action::Send {
                msg: Msg::Mesi(MesiMsg::PutM { line, data, .. }),
                ..
            } => Some((*line, *data)),
            _ => None,
        });
        let (vline, vdata) = evicted.expect("PutM for the victim");
        assert_eq!(vline, Addr::new(0x100).line());
        assert_eq!(vdata[0], 1);
        // A FwdGetS before the PutAck is served from the eviction record.
        acts.clear();
        l1.on_msg(
            MesiMsg::FwdGetS {
                line: vline,
                req: 7,
            },
            &mut acts,
        );
        assert!(acts.iter().any(|a| matches!(
            a,
            Action::Send {
                to: Endpoint::L1(7),
                msg: Msg::Mesi(MesiMsg::Data { .. })
            }
        )));
        // PutAck retires the eviction.
        acts.clear();
        l1.on_msg(MesiMsg::PutAck { line: vline }, &mut acts);
        assert_eq!(l1.outstanding_txns(), 0);
    }

    #[test]
    fn load_parks_behind_pending_store_txn_and_forwards_value() {
        let mut l1 = l1();
        let mut acts = Vec::new();
        l1.core_request(&store(0x100, 5), &mut acts);
        acts.clear();
        // Load to the same word forwards the merged store value.
        assert_eq!(
            l1.core_request(&load(0x100), &mut acts),
            IssueResult::Hit { value: Some(5) }
        );
        // Load to another word of the line parks (Miss).
        assert_eq!(l1.core_request(&load(0x108), &mut acts), IssueResult::Miss);
        acts.clear();
        let line = Addr::new(0x100).line();
        let mut data = [0u64; 8];
        data[1] = 66;
        l1.on_msg(data_msg(line, data, 0, false), &mut acts);
        assert!(acts.contains(&Action::CoreDone { value: Some(66) }));
        assert!(acts.contains(&Action::StoresDone { count: 1 }));
        assert_eq!(l1.peek_word(Addr::new(0x100).word()), Some(5));
    }
}
